// Google-benchmark microbenchmarks for the flow simulator: event
// throughput under background load, max-min rate recomputation cost,
// and the analytic probe — the quantities that bound how large a
// simulated campaign can get.
#include <benchmark/benchmark.h>

#include "simnet/simulator.hpp"

namespace {

using namespace netconst;
using namespace netconst::simnet;

FlowSimulator loaded_simulator(std::size_t racks, std::size_t servers,
                               int sources, double mean_wait) {
  TreeSpec spec;
  spec.racks = racks;
  spec.servers_per_rack = servers;
  FlowSimulator sim(make_tree_topology(spec), Rng(7));
  Rng rng(8);
  const auto hosts = sim.topology().hosts();
  const auto limit = static_cast<std::int64_t>(hosts.size()) - 1;
  for (int k = 0; k < sources; ++k) {
    BackgroundSource bg;
    bg.src = hosts[static_cast<std::size_t>(rng.uniform_int(0, limit))];
    do {
      bg.dst = hosts[static_cast<std::size_t>(rng.uniform_int(0, limit))];
    } while (bg.dst == bg.src);
    bg.bytes = 10 << 20;
    bg.mean_wait = mean_wait;
    sim.add_background_source(bg);
  }
  sim.advance_to(5.0);
  return sim;
}

void BM_AdvanceUnderBackgroundLoad(benchmark::State& state) {
  auto sim = loaded_simulator(8, 8, static_cast<int>(state.range(0)), 1.0);
  for (auto _ : state) {
    sim.advance_to(sim.now() + 1.0);
  }
  state.SetLabel(std::to_string(state.range(0)) + " sources");
}
BENCHMARK(BM_AdvanceUnderBackgroundLoad)->Arg(16)->Arg(64)->Arg(256);

void BM_MeasureTransferUnderLoad(benchmark::State& state) {
  auto sim = loaded_simulator(8, 8, 64, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.measure_transfer(0, 37, 1 << 20));
  }
}
BENCHMARK(BM_MeasureTransferUnderLoad);

void BM_ProbeRate(benchmark::State& state) {
  auto sim = loaded_simulator(32, 32, static_cast<int>(state.range(0)),
                              2.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.probe_rate(0, 555));
  }
  state.SetLabel(std::to_string(state.range(0)) + " sources");
}
BENCHMARK(BM_ProbeRate)->Arg(32)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
