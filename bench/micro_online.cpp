// Microbenchmarks for the online subsystem: warm-started window refresh
// vs cold find_constant at the paper's evaluation scale (N = 32
// instances, n = 50 calibration rows), plus the O(1) steady-state window
// push. The equivalence report printed before the benchmark run checks
// the two acceptance targets directly: warm >= 3x faster than cold and
// the warm constant matching the cold one within 1e-6 relative
// Frobenius error (off-diagonal entries; the diagonal self-links are
// definitionally identical and would mask a real difference).
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "cloud/synthetic.hpp"
#include "core/constant_finder.hpp"
#include "online/refresher.hpp"
#include "online/service.hpp"
#include "online/window.hpp"
#include "support/stopwatch.hpp"

namespace {

using namespace netconst;

constexpr std::size_t kCluster = 32;
constexpr std::size_t kRows = 50;

cloud::SyntheticCloudConfig cloud_config(std::size_t cluster) {
  cloud::SyntheticCloudConfig config;
  config.cluster_size = cluster;
  config.datacenter_racks = cluster / 2;
  config.seed = 7;
  return config;
}

online::SlidingWindow filled_window(cloud::SyntheticCloud& cloud,
                                    std::size_t capacity) {
  online::SlidingWindow window(capacity);
  while (!window.full()) {
    window.push(cloud.now(), cloud.oracle_snapshot());
    cloud.advance(600.0);
  }
  return window;
}

double offdiag_relative_frobenius(const linalg::Matrix& a,
                                  const linalg::Matrix& b) {
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      if (i == j) continue;
      const double diff = a(i, j) - b(i, j);
      num += diff * diff;
      den += b(i, j) * b(i, j);
    }
  }
  return den == 0.0 ? std::sqrt(num) : std::sqrt(num / den);
}

/// The representative online cycle: a refresher seeded by the solve of
/// window W1 refreshes after the window slid by one snapshot to W2.
struct SlideFixture {
  online::SlidingWindow window;        // W2 contents
  online::WindowRefresher seeded;      // holds the W1 seeds
  core::ConstantFinderOptions finder;  // same options for the cold path

  SlideFixture() : window(2) {
    cloud::SyntheticCloud cloud(cloud_config(kCluster));
    window = filled_window(cloud, kRows);
    online::WindowRefresher refresher;
    refresher.refresh(window);  // cold solve of W1 -> seeds
    cloud.advance(600.0);
    window.push(cloud.now(), cloud.oracle_snapshot());
    seeded = refresher;
    finder = refresher.options().finder;
  }
};

SlideFixture& fixture() {
  static SlideFixture f;
  return f;
}

/// Acceptance check, printed before the benchmark tables.
int equivalence_report() {
  SlideFixture& f = fixture();

  Stopwatch warm_clock;
  online::WindowRefresher warm_refresher = f.seeded;  // keep seeds reusable
  const online::RefreshReport warm = warm_refresher.refresh(f.window);
  const double warm_seconds = warm_clock.seconds();

  Stopwatch cold_clock;
  const core::ConstantComponent cold =
      core::find_constant(f.window.to_series(), f.finder);
  const double cold_seconds = cold_clock.seconds();

  const double lat_rel = offdiag_relative_frobenius(
      warm.component.constant.latency(), cold.constant.latency());
  const double bw_rel = offdiag_relative_frobenius(
      warm.component.constant.bandwidth(), cold.constant.bandwidth());
  const double speedup = cold_seconds / warm_seconds;

  std::printf("== warm refresh vs cold find_constant (N=%zu, n=%zu) ==\n",
              kCluster, kRows);
  std::printf("cold find_constant : %8.3f s\n", cold_seconds);
  std::printf("warm refresh       : %8.3f s  (fully warm: %s, "
              "APG iters lat/bw: %d/%d)\n",
              warm_seconds, warm.fully_warm() ? "yes" : "NO",
              warm.latency.iterations, warm.bandwidth.iterations);
  std::printf("speedup            : %8.1fx  (target >= 3x)  [%s]\n",
              speedup, speedup >= 3.0 ? "PASS" : "FAIL");
  std::printf("constant agreement : latency %.3e, bandwidth %.3e "
              "rel. Frobenius (target <= 1e-6)  [%s]\n\n",
              lat_rel, bw_rel,
              (lat_rel <= 1e-6 && bw_rel <= 1e-6) ? "PASS" : "FAIL");
  return (speedup >= 3.0 && warm.fully_warm() && lat_rel <= 1e-6 &&
          bw_rel <= 1e-6)
             ? 0
             : 1;
}

/// Per-tenant refresh-latency distribution of a short multi-tenant
/// service campaign on the concurrent batch scheduler: the tail (p99),
/// not the mean, is what co-tenant interference would show up in.
void service_latency_report() {
  online::ConstantFinderService service;  // shares the global pool
  constexpr std::size_t kTenants = 4;
  std::vector<std::unique_ptr<cloud::SyntheticCloud>> clouds;
  for (std::uint64_t t = 0; t < kTenants; ++t) {
    cloud::SyntheticCloudConfig config = cloud_config(8);
    config.datacenter_racks = 4;
    config.seed = 20 + t;
    clouds.push_back(std::make_unique<cloud::SyntheticCloud>(config));
    online::TenantConfig tenant;
    tenant.name = "tenant" + std::to_string(t);
    tenant.provider = clouds.back().get();
    tenant.window_capacity = 4;
    tenant.scheduler.base_interval = 1500.0;
    tenant.operation_gap = 300.0;
    tenant.seed = 400 + t;
    service.add_tenant(tenant);
  }
  service.run(24);

  std::printf("== per-tenant refresh latency (%zu tenants, 24 steps) ==\n",
              kTenants);
  for (std::size_t t = 0; t < kTenants; ++t) {
    const std::string name = "tenant" + std::to_string(t);
    const online::Histogram::Summary s = service.metrics().histogram_summary(
        "tenant." + name + ".refresh_seconds");
    std::printf("%-8s: %3llu refreshes, p50 %8.3f ms, p99 %8.3f ms\n",
                name.c_str(), static_cast<unsigned long long>(s.count),
                s.p50 * 1e3, s.p99 * 1e3);
  }
  const online::Histogram::Summary pooled =
      service.metrics().histogram_summary("online.refresh_seconds");
  std::printf("%-8s: %3llu refreshes, p50 %8.3f ms, p99 %8.3f ms\n\n",
              "pooled", static_cast<unsigned long long>(pooled.count),
              pooled.p50 * 1e3, pooled.p99 * 1e3);
}

void BM_ColdFindConstant(benchmark::State& state) {
  SlideFixture& f = fixture();
  const netmodel::TemporalPerformance series = f.window.to_series();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::find_constant(series, f.finder));
  }
  state.SetLabel("N=32 n=50");
}
BENCHMARK(BM_ColdFindConstant)->Unit(benchmark::kMillisecond);

void BM_WarmRefresh(benchmark::State& state) {
  SlideFixture& f = fixture();
  for (auto _ : state) {
    // Copy the pre-seeded refresher so every iteration performs the
    // same W1-seed -> W2-data solve (a refresh mutates the seeds).
    online::WindowRefresher refresher = f.seeded;
    benchmark::DoNotOptimize(refresher.refresh(f.window));
  }
  state.SetLabel("N=32 n=50");
}
BENCHMARK(BM_WarmRefresh)->Unit(benchmark::kMillisecond);

void BM_WindowPush(benchmark::State& state) {
  const auto cluster = static_cast<std::size_t>(state.range(0));
  cloud::SyntheticCloud cloud(cloud_config(cluster));
  online::SlidingWindow window = filled_window(cloud, 10);
  const netmodel::PerformanceMatrix snapshot = cloud.oracle_snapshot();
  double time = cloud.now();
  for (auto _ : state) {
    // Steady-state push: overwrites one ring row in place.
    window.push(time, snapshot);
    time += 1.0;
  }
  state.SetLabel(std::to_string(cluster) + " instances");
}
BENCHMARK(BM_WindowPush)->Arg(32)->Arg(64)->Arg(128);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  const int acceptance = equivalence_report();
  service_latency_report();
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return acceptance;
}
