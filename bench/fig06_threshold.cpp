// Figure 6: broadcast performance and maintenance-overhead breakdown as
// the update-maintenance threshold varies. The paper finds: thresholds
// below ~20% recalibrate constantly (huge overhead), thresholds above
// ~150% never recalibrate, and ~100% is the sweet spot.
#include <iostream>

#include "bench_util.hpp"
#include "cloud/synthetic.hpp"
#include "core/experiment.hpp"

using namespace netconst;

int main() {
  print_banner(std::cout,
               "Figure 6: update maintenance threshold study "
               "(broadcast, 32 instances, week-long dynamic cloud)");
  ConsoleTable table({"threshold", "avg_bcast_s", "avg_maintenance_s",
                      "avg_total_s", "recalibrations"});

  for (const double threshold : {0.1, 0.2, 0.5, 1.0, 1.5, 2.0}) {
    cloud::SyntheticCloudConfig config;
    config.cluster_size = 32;
    config.seed = 99;
    // A dynamic cloud: occasional migrations plus interference make
    // low thresholds trigger often.
    config.mean_migration_interval = 6.0 * 3600.0;
    config.mean_quiet_duration = 4000.0;
    config.mean_spike_duration = 600.0;
    cloud::SyntheticCloud provider(config);

    core::CampaignOptions options;
    options.strategies = {core::Strategy::Rpca};
    options.repeats = 80;
    options.interval_seconds = 1800.0;  // one run every 30 minutes
    options.calibration.time_step = 10;
    options.calibration.interval = 30.0;
    options.maintenance_threshold = threshold;
    options.seed = 7;

    const core::CampaignResult result =
        run_collective_campaign(provider, options);
    const double avg_bcast = result.mean_time(core::Strategy::Rpca);
    const double avg_maintenance =
        result.maintenance_seconds / static_cast<double>(options.repeats);
    table.add_row({ConsoleTable::cell_percent(threshold, 0),
                   ConsoleTable::cell(avg_bcast, 4),
                   ConsoleTable::cell(avg_maintenance, 2),
                   ConsoleTable::cell(avg_bcast + avg_maintenance, 2),
                   std::to_string(result.recalibrations)});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: small thresholds -> frequent "
               "recalibration and large total time; very large "
               "thresholds -> no recalibration; ~100% balances both.\n";
  return 0;
}
