// Figure 8: improvement of RPCA over Baseline for different cluster
// sizes (the paper: 64 vs 196 instances) and message sizes. Larger
// clusters spread over more racks and benefit more; larger messages
// amortize maintenance overhead.
#include <iostream>

#include "bench_util.hpp"
#include "cloud/synthetic.hpp"
#include "core/experiment.hpp"

using namespace netconst;

int main() {
  print_banner(std::cout,
               "Figure 8: RPCA improvement over Baseline vs cluster "
               "size and message size (broadcast)");
  // The paper folds update maintenance into the improvement; there each
  // 30-minute experimental run doubles as a calibration, so maintenance
  // is nearly free. Our harness bills calibration as a dedicated
  // session, so it is reported as its own amortized column instead
  // (Figure 6 quantifies the full cost/benefit trade-off).
  ConsoleTable table({"instances", "message", "improvement_vs_baseline",
                      "maintenance_s_per_run"});

  for (const std::size_t n : {64u, 128u}) {
    for (const std::uint64_t bytes :
         {std::uint64_t{1} << 20, std::uint64_t{4} << 20,
          std::uint64_t{8} << 20}) {
      cloud::SyntheticCloudConfig config;
      config.cluster_size = n;
      config.datacenter_racks = 32;
      config.mean_quiet_duration = 5500.0;
      config.mean_rack_quiet_duration = 20000.0;
      config.mean_rack_congestion_duration = 300.0;
      config.seed = 77;
      cloud::SyntheticCloud provider(config);

      core::CampaignOptions options;
      options.strategies = {core::Strategy::Baseline, core::Strategy::Rpca};
      options.bytes = bytes;
      options.repeats = 40;
      options.calibration.time_step = 10;
      options.calibration.interval = 600.0;
      options.seed = 9;
      const core::CampaignResult result =
          run_collective_campaign(provider, options);
      const double maintenance_per_run =
          result.maintenance_seconds /
          static_cast<double>(options.repeats);
      table.add_row(
          {std::to_string(n),
           std::to_string(bytes / (1024 * 1024)) + "MiB",
           ConsoleTable::cell_percent(result.improvement_over(
               core::Strategy::Rpca, core::Strategy::Baseline)),
           ConsoleTable::cell(maintenance_per_run, 1)});
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: improvement grows with the cluster "
               "size (more rack diversity) and with the message size.\n";
  return 0;
}
