// Figure 7: overall comparison on the EC2-like cloud — broadcast,
// scatter and topology mapping under Baseline / Heuristics / RPCA,
// normalized to Baseline, plus the broadcast CDF. The paper reports
// RPCA 32-40% over Baseline and 8-10% over Heuristics at
// Norm(N_E) ~ 0.1, and a trace-replay accuracy check (Section V-D3).
#include <iostream>

#include "bench_util.hpp"
#include "cloud/synthetic.hpp"
#include "core/experiment.hpp"

using namespace netconst;
using netconst::bench::print_cdf;
using netconst::bench::print_normalized;

namespace {

cloud::SyntheticCloudConfig ec2_like(std::size_t n) {
  cloud::SyntheticCloudConfig config;
  config.cluster_size = n;
  config.datacenter_racks = 32;
  // Interference tuned so RPCA measures Norm(N_E) ~ 0.1, the paper's
  // EC2 reading ("relatively stable"): ~5% per-pair spike duty plus
  // rare rack-level congestion events.
  config.mean_quiet_duration = 5500.0;
  config.mean_spike_duration = 300.0;
  config.mean_rack_quiet_duration = 20000.0;
  config.mean_rack_congestion_duration = 300.0;
  config.seed = 20130801;  // the paper's August 2013 campaign, in spirit
  return config;
}

}  // namespace

int main() {
  constexpr std::size_t kInstances = 96;
  constexpr std::size_t kRepeats = 100;

  // --- collectives ---
  for (const auto op :
       {collective::Collective::Broadcast, collective::Collective::Scatter}) {
    cloud::SyntheticCloud provider(ec2_like(kInstances));
    core::CampaignOptions options;
    options.op = op;
    options.repeats = kRepeats;
    options.calibration.time_step = 10;
    options.calibration.interval = 600.0;
    options.seed = 5;
    const core::CampaignResult result =
        run_collective_campaign(provider, options);
    print_normalized(std::string("Figure 7a: ") +
                         collective::collective_name(op) +
                         " (96 instances, normalized to Baseline)",
                     result, core::Strategy::Baseline);
    std::cout << "Norm(N_E) measured by RPCA: "
              << ConsoleTable::cell(result.error_norm, 3) << "\n";
    if (op == collective::Collective::Broadcast) {
      print_cdf("Figure 7b: CDF of broadcast elapsed time (RPCA)",
                result.times.at(core::Strategy::Rpca));
      print_cdf("Figure 7b: CDF of broadcast elapsed time (Baseline)",
                result.times.at(core::Strategy::Baseline));
    }
  }

  // --- topology mapping ---
  {
    cloud::SyntheticCloud provider(ec2_like(kInstances));
    core::MappingCampaignOptions options;
    options.repeats = kRepeats;
    options.calibration.time_step = 10;
    options.calibration.interval = 600.0;
    options.seed = 6;
    const core::CampaignResult result =
        run_mapping_campaign(provider, options);
    print_normalized(
        "Figure 7a: topology mapping (96 instances, normalized to "
        "Baseline)",
        result, core::Strategy::Baseline);
  }

  // --- trace-replay accuracy (Section V-D3) ---
  {
    cloud::SyntheticCloud provider(ec2_like(48));
    core::CampaignOptions options;
    options.repeats = 40;
    options.calibration.time_step = 10;
    options.calibration.interval = 600.0;
    options.strategies = {core::Strategy::Baseline, core::Strategy::Rpca};
    options.seed = 8;
    // "Measured": score against a fresh oracle sample (default timer).
    const core::CampaignResult measured =
        run_collective_campaign(provider, options);
    // "Replayed": score against the constant component only (the alpha-
    // beta estimate a replay would produce without live dynamics).
    cloud::SyntheticCloud provider2(ec2_like(48));
    core::CampaignOptions replay_options = options;
    replay_options.timer = [&](const collective::CommTree& tree,
                               const netmodel::PerformanceMatrix&) {
      return collective::collective_time(
          tree, provider2.oracle_snapshot(), replay_options.op,
          replay_options.bytes);
    };
    const core::CampaignResult replayed =
        run_collective_campaign(provider2, replay_options);

    print_banner(std::cout,
                 "Section V-D3: trace-replay estimation accuracy");
    ConsoleTable table({"strategy", "measured_s", "replayed_s",
                        "relative_difference"});
    for (const auto strategy :
         {core::Strategy::Baseline, core::Strategy::Rpca}) {
      const double m = measured.mean_time(strategy);
      const double r = replayed.mean_time(strategy);
      table.add_row({core::strategy_name(strategy),
                     ConsoleTable::cell(m, 4), ConsoleTable::cell(r, 4),
                     ConsoleTable::cell_percent(std::abs(m - r) / m)});
    }
    table.print(std::cout);
  }

  std::cout << "\nExpected shape: Heuristics and RPCA both well below "
               "Baseline (tens of percent); RPCA below Heuristics by a "
               "further margin; replay estimates within ~20% of "
               "measurements.\n";
  return 0;
}
