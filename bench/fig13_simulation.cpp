// Figure 13: comparison on the simulated 1024-machine cluster with
// background traffic tuned so Norm(N_E) ~ 0.1, now including the
// Topology-aware strategy (only the simulator knows the true racks).
// Paper: topology-aware performs like Baseline in a dynamic
// environment; RPCA is 25-40% better than Baseline/Topology-aware and
// 10-15% better than Heuristics.
#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "cloud/simnet_provider.hpp"
#include "core/experiment.hpp"

using namespace netconst;
using netconst::bench::print_cdf;
using netconst::bench::print_normalized;

int main() {
  simnet::TreeSpec spec;  // 32 racks x 32 servers
  auto sim = std::make_shared<simnet::FlowSimulator>(
      simnet::make_tree_topology(spec), Rng(55));

  // Background traffic (lambda = 3 s, 100 MB) on 128 host pairs — the
  // regime that yields Norm(N_E) ~ 0.1 in Figure 12's sweep.
  Rng rng(56);
  const auto hosts = sim->topology().hosts();
  for (int k = 0; k < 128; ++k) {
    simnet::BackgroundSource bg;
    bg.src = hosts[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(hosts.size()) - 1))];
    do {
      bg.dst = hosts[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(hosts.size()) - 1))];
    } while (bg.dst == bg.src);
    bg.bytes = 100ull << 20;
    bg.mean_wait = 3.0;
    sim->add_background_source(bg);
  }
  sim->advance_to(30.0);

  // Virtual cluster: 32 randomly selected machines; the topology-aware
  // strategy gets their true rack ids.
  const auto vm_hosts = cloud::pick_random_hosts(sim->topology(), 32, rng);
  std::vector<std::size_t> racks;
  racks.reserve(vm_hosts.size());
  for (const auto host : vm_hosts) {
    racks.push_back(simnet::tree_rack_of(spec, host));
  }
  cloud::SimnetProvider provider(sim, vm_hosts);

  // Collectives, executed inside the simulator.
  for (const auto op : {collective::Collective::Broadcast,
                        collective::Collective::Scatter}) {
    core::CampaignOptions options;
    options.op = op;
    options.strategies = {core::Strategy::Baseline,
                          core::Strategy::TopologyAware,
                          core::Strategy::Heuristics, core::Strategy::Rpca};
    options.racks = &racks;
    options.repeats = 25;
    options.interval_seconds = 20.0;
    options.calibration.time_step = 6;
    options.calibration.interval = 5.0;
    options.calibration.calibration.round_setup_overhead = 0.1;
    options.seed = 57;
    options.timer = [&](const collective::CommTree& tree,
                        const netmodel::PerformanceMatrix&) {
      return collective::run_collective_sim(provider.simulator(), vm_hosts,
                                            tree, op, options.bytes);
    };
    const auto result = run_collective_campaign(provider, options);
    print_normalized(std::string("Figure 13a: ") +
                         collective::collective_name(op) +
                         " on the 1024-machine simulation",
                     result, core::Strategy::Baseline);
    std::cout << "measured Norm(N_E): "
              << ConsoleTable::cell(result.error_norm, 3) << "\n";
    if (op == collective::Collective::Broadcast) {
      print_cdf("Figure 13b: broadcast CDF (Baseline)",
                result.times.at(core::Strategy::Baseline));
      print_cdf("Figure 13b: broadcast CDF (Topology-aware)",
                result.times.at(core::Strategy::TopologyAware));
      print_cdf("Figure 13b: broadcast CDF (RPCA)",
                result.times.at(core::Strategy::Rpca));
    }
  }

  // Topology mapping, scored on the probe-based oracle.
  {
    core::MappingCampaignOptions options;
    options.strategies = {core::Strategy::Baseline,
                          core::Strategy::TopologyAware,
                          core::Strategy::Heuristics, core::Strategy::Rpca};
    options.racks = &racks;
    options.repeats = 15;
    options.interval_seconds = 20.0;
    options.calibration.time_step = 6;
    options.calibration.interval = 5.0;
    options.calibration.calibration.round_setup_overhead = 0.1;
    options.seed = 58;
    const auto result = run_mapping_campaign(provider, options);
    print_normalized("Figure 13a: topology mapping on the simulation",
                     result, core::Strategy::Baseline);
  }

  std::cout << "\nExpected shape: Topology-aware ~ Baseline (static "
               "knowledge does not capture dynamics); RPCA clearly "
               "best, Heuristics in between.\n";
  return 0;
}
