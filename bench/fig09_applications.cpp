// Figure 9: real-world applications.
//  (a) CG: time breakdown vs vector size — at small sizes calibration
//      overhead makes RPCA slower than Baseline; at large sizes the
//      communication savings dominate (paper: 31% over Baseline, 14%
//      over Heuristics).
//  (b) N-body vs #Step (fixed 1 MB messages).
//  (c) N-body vs message size (fixed 2560 steps).
#include <iostream>

#include "apps/nbody.hpp"
#include "bench_util.hpp"
#include "cloud/synthetic.hpp"
#include "core/experiment.hpp"

using namespace netconst;

namespace {

cloud::SyntheticCloud make_provider(std::uint64_t seed) {
  cloud::SyntheticCloudConfig config;
  config.cluster_size = 32;
  config.datacenter_racks = 16;
  config.seed = seed;
  return cloud::SyntheticCloud(config);
}

core::AppCampaignOptions app_options() {
  core::AppCampaignOptions options;
  options.calibration.time_step = 10;
  options.calibration.interval = 10.0;
  return options;
}

void print_breakdown(const std::string& label,
                     const std::map<core::Strategy, core::AppBreakdown>&
                         result) {
  ConsoleTable table({"case", "strategy", "compute_s", "comm_s",
                      "overhead_s", "total_s"});
  for (const auto& [strategy, b] : result) {
    table.add_row({label, core::strategy_name(strategy),
                   ConsoleTable::cell(b.compute_seconds, 2),
                   ConsoleTable::cell(b.communication_seconds, 2),
                   ConsoleTable::cell(b.overhead_seconds, 2),
                   ConsoleTable::cell(b.total(), 2)});
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  // --- (a) CG vs vector size ---
  print_banner(std::cout, "Figure 9a: CG time breakdown vs vector size "
                          "(32 instances)");
  for (const std::size_t grid : {32u, 256u, 1012u}) {
    // Vector size = grid^2 (1024 .. ~1024000, the paper's range);
    // iterations come from the real CG solve on the 2-D Laplacian.
    const apps::CsrMatrix a = apps::laplacian_2d(grid, grid);
    std::vector<double> b(grid * grid, 1.0);
    const apps::DistributedProfile profile = apps::cg_profile(a, b, 32);
    auto provider = make_provider(13);
    const auto result = run_app_campaign(provider, profile, app_options());
    print_breakdown("CG n=" + std::to_string(grid * grid) + " iters=" +
                        std::to_string(profile.rounds),
                    result);
  }

  // --- (b) N-body vs #Step ---
  print_banner(std::cout,
               "Figure 9b: N-body time breakdown vs #Step (1 MiB "
               "messages, 32 instances)");
  for (const std::size_t steps : {10u, 160u, 2560u}) {
    const apps::DistributedProfile profile =
        apps::nbody_profile(4096, steps, 1 << 20, 32);
    auto provider = make_provider(14);
    const auto result = run_app_campaign(provider, profile, app_options());
    print_breakdown("N-body steps=" + std::to_string(steps), result);
  }

  // --- (c) N-body vs message size ---
  print_banner(std::cout,
               "Figure 9c: N-body time breakdown vs message size "
               "(2560 steps, 32 instances)");
  for (const std::uint64_t bytes : {std::uint64_t{1} << 10,
                                    std::uint64_t{1} << 15,
                                    std::uint64_t{1} << 20}) {
    const apps::DistributedProfile profile =
        apps::nbody_profile(4096, 2560, bytes, 32);
    auto provider = make_provider(15);
    const auto result = run_app_campaign(provider, profile, app_options());
    print_breakdown("N-body msg=" + std::to_string(bytes) + "B", result);
  }

  std::cout << "\nExpected shape: at tiny problem sizes the calibration "
               "overhead makes RPCA lose to Baseline; as rounds/message "
               "sizes grow, RPCA's communication savings dominate "
               "(double-digit percent totals).\n";
  return 0;
}
