// Figure 11: detailed study at Norm(N_E) = 0.2 — more dynamic than the
// real EC2 environment — using the paper's trace-replay-with-injected-
// noise method (same as Figure 10). Paper: RPCA outperforms Baseline by
// 20-28% and Heuristics by 12-20%; the broadcast CDF shows the whole
// distribution shifting left.
#include <iostream>

#include "bench_util.hpp"
#include "cloud/calibration.hpp"
#include "cloud/synthetic.hpp"
#include "core/constant_finder.hpp"
#include "core/heuristics.hpp"
#include "core/noise.hpp"
#include "core/strategy.hpp"
#include "mapping/mapping.hpp"
#include "support/statistics.hpp"

using namespace netconst;
using netconst::bench::print_cdf;

namespace {

constexpr std::size_t kInstances = 48;
constexpr std::size_t kPlanRows = 10;
constexpr std::uint64_t kBytes = 8ull << 20;

}  // namespace

int main() {
  // Capture a clean 50-row trace and inject symmetric noise to
  // Norm(N_E) ~ 0.2.
  cloud::SyntheticCloudConfig config;
  config.cluster_size = kInstances;
  config.datacenter_racks = 16;
  config.mean_quiet_duration = 1e9;
  config.seed = 2020;
  cloud::SyntheticCloud provider(config);
  cloud::SeriesOptions series_options;
  series_options.time_step = 50;
  series_options.interval = 1800.0;
  const auto captured = cloud::calibrate_series(provider, series_options);

  Rng noise_rng(21);
  const auto noisy =
      core::inject_noise_to_norm(captured.series, 0.2, noise_rng);
  std::cout << "achieved Norm(N_E): "
            << ConsoleTable::cell(noisy.achieved_norm, 3) << "\n";

  // Plan from the first kPlanRows rows.
  netmodel::TemporalPerformance window;
  for (std::size_t r = 0; r < kPlanRows; ++r) {
    window.append(noisy.series.time_at(r), noisy.series.snapshot(r));
  }
  const auto component = core::find_constant(window);
  const auto mean_matrix =
      core::heuristic_matrix(window, core::HeuristicKind::Mean);

  // Replay collectives on the remaining rows.
  for (const auto op : {collective::Collective::Broadcast,
                        collective::Collective::Scatter}) {
    Rng rng(22);
    std::vector<double> base, heur, rpca;
    for (std::size_t r = kPlanRows; r < noisy.series.row_count(); ++r) {
      const auto root = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(kInstances) - 1));
      const auto& reality = noisy.series.snapshot(r);
      core::PlanContext ctx;
      ctx.bytes = kBytes;
      base.push_back(collective::collective_time(
          core::plan_tree(core::Strategy::Baseline, kInstances, root, ctx),
          reality, op, kBytes));
      ctx.guidance = &mean_matrix;
      heur.push_back(collective::collective_time(
          core::plan_tree(core::Strategy::Heuristics, kInstances, root,
                          ctx),
          reality, op, kBytes));
      ctx.guidance = &component.constant;
      rpca.push_back(collective::collective_time(
          core::plan_tree(core::Strategy::Rpca, kInstances, root, ctx),
          reality, op, kBytes));
    }
    print_banner(std::cout,
                 std::string("Figure 11a: ") +
                     collective::collective_name(op) +
                     " at Norm(N_E)~0.2 (normalized to Baseline)");
    ConsoleTable table({"strategy", "mean_s", "normalized",
                        "improvement_vs_baseline"});
    const double base_mean = mean(base);
    for (const auto& [name, samples] :
         {std::pair{"Baseline", &base}, std::pair{"Heuristics", &heur},
          std::pair{"RPCA", &rpca}}) {
      const double m = mean(*samples);
      table.add_row({name, ConsoleTable::cell(m, 4),
                     ConsoleTable::cell(m / base_mean, 3),
                     ConsoleTable::cell_percent(1.0 - m / base_mean)});
    }
    table.print(std::cout);
    std::cout << "RPCA improvement over Heuristics: "
              << ConsoleTable::cell_percent(1.0 - mean(rpca) / mean(heur))
              << "\n";
    if (op == collective::Collective::Broadcast) {
      print_cdf("Figure 11b: broadcast CDF (Baseline)", base);
      print_cdf("Figure 11b: broadcast CDF (Heuristics)", heur);
      print_cdf("Figure 11b: broadcast CDF (RPCA)", rpca);
    }
  }

  // Topology mapping under the same noisy reality.
  {
    Rng rng(23);
    std::vector<double> base, heur, rpca;
    for (std::size_t r = kPlanRows; r < noisy.series.row_count(); ++r) {
      const auto tasks = mapping::random_task_graph(
          kInstances, rng, 5.0 * 1024 * 1024, 10.0 * 1024 * 1024, 0.2);
      const auto& reality = noisy.series.snapshot(r);
      core::PlanContext ctx;
      base.push_back(mapping::mapping_volume_cost(
          core::plan_mapping(core::Strategy::Baseline, tasks, ctx), tasks,
          reality));
      ctx.guidance = &mean_matrix;
      heur.push_back(mapping::mapping_volume_cost(
          core::plan_mapping(core::Strategy::Heuristics, tasks, ctx),
          tasks, reality));
      ctx.guidance = &component.constant;
      rpca.push_back(mapping::mapping_volume_cost(
          core::plan_mapping(core::Strategy::Rpca, tasks, ctx), tasks,
          reality));
    }
    print_banner(std::cout,
                 "Figure 11a: topology mapping at Norm(N_E)~0.2");
    ConsoleTable table({"strategy", "mean_cost", "normalized"});
    const double base_mean = mean(base);
    for (const auto& [name, samples] :
         {std::pair{"Baseline", &base}, std::pair{"Heuristics", &heur},
          std::pair{"RPCA", &rpca}}) {
      table.add_row({name, ConsoleTable::cell(mean(*samples), 4),
                     ConsoleTable::cell(mean(*samples) / base_mean, 3)});
    }
    table.print(std::cout);
  }

  std::cout << "\nExpected shape: improvements smaller than at "
               "Norm(N_E)~0.1 but RPCA still clearly ahead of "
               "Heuristics; CDFs ordered RPCA < Heuristics < Baseline.\n";
  return 0;
}
