// Google-benchmark microbenchmarks for the per-operation hot paths of
// the pipeline: FNF tree construction, collective cost evaluation,
// greedy mapping, and the synthetic cloud's oracle sampling.
#include <benchmark/benchmark.h>

#include "cloud/synthetic.hpp"
#include "collective/collective_ops.hpp"
#include "collective/fnf.hpp"
#include "core/heuristics.hpp"
#include "mapping/mapping.hpp"

namespace {

using namespace netconst;

cloud::SyntheticCloud make_cloud(std::size_t n) {
  cloud::SyntheticCloudConfig config;
  config.cluster_size = n;
  config.seed = 5;
  return cloud::SyntheticCloud(config);
}

void BM_FnfTree(benchmark::State& state) {
  auto cloud = make_cloud(static_cast<std::size_t>(state.range(0)));
  const auto snap = cloud.oracle_snapshot();
  const auto weights = snap.weight_matrix(8ull << 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(collective::fnf_tree(weights, 0));
  }
}
BENCHMARK(BM_FnfTree)->Arg(32)->Arg(64)->Arg(196);

void BM_CollectiveCost(benchmark::State& state) {
  auto cloud = make_cloud(static_cast<std::size_t>(state.range(0)));
  const auto snap = cloud.oracle_snapshot();
  const auto tree =
      collective::fnf_tree(snap.weight_matrix(8ull << 20), 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(collective::collective_time(
        tree, snap, collective::Collective::Broadcast, 8ull << 20));
  }
}
BENCHMARK(BM_CollectiveCost)->Arg(32)->Arg(64)->Arg(196);

void BM_GreedyMapping(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto cloud = make_cloud(n);
  const auto snap = cloud.oracle_snapshot();
  Rng rng(6);
  const auto tasks = mapping::random_task_graph(n, rng);
  const auto machines = mapping::MachineGraph::from_performance(snap);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapping::greedy_mapping(tasks, machines));
  }
}
BENCHMARK(BM_GreedyMapping)->Arg(32)->Arg(64)->Arg(128);

void BM_OracleSnapshot(benchmark::State& state) {
  auto cloud = make_cloud(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cloud.oracle_snapshot());
    cloud.advance(1.0);
  }
}
BENCHMARK(BM_OracleSnapshot)->Arg(64)->Arg(196);

}  // namespace

BENCHMARK_MAIN();
