// Figure 10: impact of Norm(N_E) on the expected improvement, using the
// paper's own method: capture a calibration trace on the cloud, inject
// random noise (increase or decrease) until RPCA measures the target
// Norm(N_E), then replay — plan from the first `time step` rows, score
// every later row as the network reality at run time.
//
// Paper shape: improvement over Baseline >40% below Norm 0.1 and <20%
// above 0.2; the RPCA-vs-Heuristics gap grows with Norm(N_E).
#include <iostream>

#include "bench_util.hpp"
#include "cloud/calibration.hpp"
#include "cloud/synthetic.hpp"
#include "core/constant_finder.hpp"
#include "core/heuristics.hpp"
#include "core/noise.hpp"
#include "core/strategy.hpp"
#include "mapping/mapping.hpp"
#include "support/statistics.hpp"

using namespace netconst;

namespace {

constexpr std::size_t kInstances = 48;
constexpr std::size_t kPlanRows = 10;  // the paper's time step
constexpr std::uint64_t kBytes = 8ull << 20;

struct ReplayScores {
  double baseline = 0.0;
  double heuristics = 0.0;
  double rpca = 0.0;
};

// Replay one noisy trace: plan on the first kPlanRows, score the rest.
ReplayScores replay_collective(const netmodel::TemporalPerformance& noisy,
                               collective::Collective op, Rng& rng) {
  netmodel::TemporalPerformance window;
  for (std::size_t r = 0; r < kPlanRows; ++r) {
    window.append(noisy.time_at(r), noisy.snapshot(r));
  }
  const auto component = core::find_constant(window);
  const auto mean_matrix =
      core::heuristic_matrix(window, core::HeuristicKind::Mean);

  std::vector<double> base, heur, rpca;
  for (std::size_t r = kPlanRows; r < noisy.row_count(); ++r) {
    const auto root = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(kInstances) - 1));
    const netmodel::PerformanceMatrix& reality = noisy.snapshot(r);
    core::PlanContext ctx;
    ctx.bytes = kBytes;
    base.push_back(collective::collective_time(
        core::plan_tree(core::Strategy::Baseline, kInstances, root, ctx),
        reality, op, kBytes));
    ctx.guidance = &mean_matrix;
    heur.push_back(collective::collective_time(
        core::plan_tree(core::Strategy::Heuristics, kInstances, root, ctx),
        reality, op, kBytes));
    ctx.guidance = &component.constant;
    rpca.push_back(collective::collective_time(
        core::plan_tree(core::Strategy::Rpca, kInstances, root, ctx),
        reality, op, kBytes));
  }
  return {mean(base), mean(heur), mean(rpca)};
}

ReplayScores replay_mapping(const netmodel::TemporalPerformance& noisy,
                            Rng& rng) {
  netmodel::TemporalPerformance window;
  for (std::size_t r = 0; r < kPlanRows; ++r) {
    window.append(noisy.time_at(r), noisy.snapshot(r));
  }
  const auto component = core::find_constant(window);
  const auto mean_matrix =
      core::heuristic_matrix(window, core::HeuristicKind::Mean);

  std::vector<double> base, heur, rpca;
  for (std::size_t r = kPlanRows; r < noisy.row_count(); ++r) {
    const auto tasks = mapping::random_task_graph(
        kInstances, rng, 5.0 * 1024 * 1024, 10.0 * 1024 * 1024, 0.2);
    const netmodel::PerformanceMatrix& reality = noisy.snapshot(r);
    core::PlanContext ctx;
    base.push_back(mapping::mapping_volume_cost(
        core::plan_mapping(core::Strategy::Baseline, tasks, ctx), tasks,
        reality));
    ctx.guidance = &mean_matrix;
    heur.push_back(mapping::mapping_volume_cost(
        core::plan_mapping(core::Strategy::Heuristics, tasks, ctx), tasks,
        reality));
    ctx.guidance = &component.constant;
    rpca.push_back(mapping::mapping_volume_cost(
        core::plan_mapping(core::Strategy::Rpca, tasks, ctx), tasks,
        reality));
  }
  return {mean(base), mean(heur), mean(rpca)};
}

}  // namespace

int main() {
  // Capture a 40-row trace (one calibration every 30 simulated minutes)
  // on a quiet cloud; all dynamics then come from the injected noise,
  // exactly as in the paper's replay methodology.
  cloud::SyntheticCloudConfig config;
  config.cluster_size = kInstances;
  config.datacenter_racks = 16;
  config.mean_quiet_duration = 1e9;  // noise comes from the injector
  config.seed = 4242;
  cloud::SyntheticCloud provider(config);
  cloud::SeriesOptions series_options;
  series_options.time_step = 40;
  series_options.interval = 1800.0;
  const auto captured = cloud::calibrate_series(provider, series_options);

  print_banner(std::cout,
               "Figure 10a: expected improvement vs Norm(N_E) "
               "(48 instances, trace replay with injected noise)");
  ConsoleTable table({"target_norm", "achieved_norm", "bcast_improv",
                      "scatter_improv", "mapping_improv"});
  ConsoleTable table_b({"achieved_norm", "rpca_vs_heuristics_bcast"});

  for (const double target : {0.05, 0.1, 0.2, 0.3, 0.5}) {
    Rng noise_rng(1000 + static_cast<std::uint64_t>(target * 100));
    const auto noisy =
        core::inject_noise_to_norm(captured.series, target, noise_rng);

    Rng replay_rng(17);
    const ReplayScores bcast = replay_collective(
        noisy.series, collective::Collective::Broadcast, replay_rng);
    const ReplayScores scatter = replay_collective(
        noisy.series, collective::Collective::Scatter, replay_rng);
    const ReplayScores map = replay_mapping(noisy.series, replay_rng);

    table.add_row({ConsoleTable::cell(target, 2),
                   ConsoleTable::cell(noisy.achieved_norm, 3),
                   ConsoleTable::cell_percent(1.0 - bcast.rpca /
                                              bcast.baseline),
                   ConsoleTable::cell_percent(1.0 - scatter.rpca /
                                              scatter.baseline),
                   ConsoleTable::cell_percent(1.0 - map.rpca /
                                              map.baseline)});
    table_b.add_row({ConsoleTable::cell(noisy.achieved_norm, 3),
                     ConsoleTable::cell_percent(1.0 - bcast.rpca /
                                                bcast.heuristics)});
  }
  table.print(std::cout);

  print_banner(std::cout,
               "Figure 10b: RPCA improvement over Heuristics vs "
               "Norm(N_E) (broadcast)");
  table_b.print(std::cout);

  std::cout << "\nExpected shape: improvement over Baseline decreases "
               "as Norm(N_E) grows (large when small, <20% when above "
               "~0.2); the RPCA-vs-Heuristics gap widens with N_E "
               "before both collapse at extreme dynamics.\n";
  return 0;
}
