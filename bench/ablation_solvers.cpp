// Ablation: RPCA solver choice (APG — the paper's — vs IALM vs the
// hard rank-1 alternating solver) on synthetic low-rank + sparse
// instances shaped like TP-matrices: recovery quality, Norm(N_E)
// fidelity and runtime.
#include <iostream>

#include "bench_util.hpp"
#include "rpca/validation.hpp"
#include "support/stopwatch.hpp"

using namespace netconst;

int main() {
  print_banner(std::cout,
               "Ablation: RPCA solvers on planted rank-1 + sparse "
               "TP-matrix instances");
  ConsoleTable table({"rows_x_cols", "sparsity", "solver", "low_rank_err",
                      "support_f1", "iterations", "seconds"});

  Rng rng(2718);
  for (const auto& [rows, cols] :
       {std::pair{10, 256}, std::pair{10, 1024}, std::pair{20, 4096}}) {
    for (const double sparsity : {0.02, 0.10}) {
      rpca::SyntheticSpec spec;
      spec.rows = static_cast<std::size_t>(rows);
      spec.cols = static_cast<std::size_t>(cols);
      spec.rank = 1;
      spec.sparsity = sparsity;
      spec.sparse_magnitude = 6.0;
      Rng instance_rng = rng.split();
      const rpca::SyntheticProblem problem =
          rpca::make_synthetic(spec, instance_rng);

      for (const auto solver : {rpca::Solver::Apg, rpca::Solver::Ialm,
                                rpca::Solver::RankOne}) {
        const rpca::Result result = rpca::solve(problem.data, solver);
        const rpca::RecoveryError err = rpca::measure_recovery(
            problem, result.low_rank, result.sparse);
        table.add_row({std::to_string(rows) + "x" + std::to_string(cols),
                       ConsoleTable::cell(sparsity, 2),
                       rpca::solver_name(solver),
                       ConsoleTable::cell(err.low_rank_error, 4),
                       ConsoleTable::cell(err.support_f1, 3),
                       std::to_string(result.iterations),
                       ConsoleTable::cell(result.solve_seconds, 3)});
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected: all three recover the planted rank-1 "
               "component; IALM converges in the fewest iterations; the "
               "hard rank-1 solver — which gets the true rank as prior "
               "knowledge, unlike the convex solvers — is both cheapest "
               "(no SVD) and the most exact on these instances. The "
               "paper's APG remains the safe default when the rank is "
               "not known to be one.\n";
  return 0;
}
