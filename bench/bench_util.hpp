// Shared helpers for the figure-reproduction harnesses.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "support/statistics.hpp"
#include "support/table.hpp"

namespace netconst::bench {

/// Print an empirical CDF as a two-column table (the paper's CDF plots).
inline void print_cdf(const std::string& title,
                      const std::vector<double>& samples,
                      std::size_t points = 12) {
  print_banner(std::cout, title);
  ConsoleTable table({"elapsed_s", "P(X<=x)"});
  for (const auto& point : empirical_cdf(samples, points)) {
    table.add_row({ConsoleTable::cell(point.value, 4),
                   ConsoleTable::cell(point.probability, 3)});
  }
  table.print(std::cout);
}

/// Print per-strategy means normalized to a reference strategy
/// (the paper's "normalized to the average of Baseline" bars).
inline void print_normalized(const std::string& title,
                             const core::CampaignResult& result,
                             core::Strategy reference) {
  print_banner(std::cout, title);
  ConsoleTable table(
      {"strategy", "mean_s", "normalized", "improvement_vs_ref"});
  for (const auto& [strategy, samples] : result.times) {
    table.add_row(
        {core::strategy_name(strategy),
         ConsoleTable::cell(mean(samples), 4),
         ConsoleTable::cell(result.normalized_mean(strategy, reference), 3),
         ConsoleTable::cell_percent(
             result.improvement_over(strategy, reference))});
  }
  table.print(std::cout);
}

}  // namespace netconst::bench
