// Google-benchmark microbenchmarks for the RPCA solvers and the SVD
// kernels at the matrix shapes the paper produces (time-step rows x N^2
// columns). Backs the paper's "RPCA runs in <1 minute at 196 instances,
// <2% of total overhead" claims.
#include <benchmark/benchmark.h>

#include "linalg/svd.hpp"
#include "rpca/rpca.hpp"
#include "rpca/validation.hpp"

namespace {

using namespace netconst;

rpca::SyntheticProblem tp_shaped_problem(std::size_t rows,
                                         std::size_t cluster,
                                         std::uint64_t seed) {
  rpca::SyntheticSpec spec;
  spec.rows = rows;
  spec.cols = cluster * cluster;
  spec.rank = 1;
  spec.sparsity = 0.05;
  Rng rng(seed);
  return rpca::make_synthetic(spec, rng);
}

void BM_SvdGramTpShape(benchmark::State& state) {
  const auto cluster = static_cast<std::size_t>(state.range(0));
  const auto problem = tp_shaped_problem(10, cluster, 1);
  linalg::SvdOptions options;
  options.method = linalg::SvdMethod::Gram;
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::svd(problem.data, options));
  }
  state.SetLabel(std::to_string(cluster) + " instances");
}
BENCHMARK(BM_SvdGramTpShape)->Arg(32)->Arg(64)->Arg(128)->Arg(196);

void BM_RpcaSolver(benchmark::State& state,
                   netconst::rpca::Solver solver) {
  const auto cluster = static_cast<std::size_t>(state.range(0));
  const auto problem = tp_shaped_problem(10, cluster, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rpca::solve(problem.data, solver));
  }
  state.SetLabel(std::to_string(cluster) + " instances");
}
BENCHMARK_CAPTURE(BM_RpcaSolver, apg, netconst::rpca::Solver::Apg)
    ->Arg(32)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_RpcaSolver, ialm, netconst::rpca::Solver::Ialm)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_RpcaSolver, rank1, netconst::rpca::Solver::RankOne)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Arg(196)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
