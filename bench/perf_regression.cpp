// Perf-regression harness for the allocation-free RPCA hot path.
//
// Runs batch and warm-start solve suites at the paper's TP-matrix shapes
// (time-step rows x N^2 columns, N in {16, 32, 64}), timing the frozen
// allocating baselines (rpca::reference) against the workspace solvers,
// and emits machine-readable JSON (BENCH_rpca.json by default) with
// median wall times, iteration counts, and heap-allocation counters from
// the instrumented global allocator below. The allocation counters
// double as a peak-RSS proxy: peak live bytes during a solve bound the
// solver's transient memory footprint.
//
// Exit status is nonzero when any steady-state workspace solve performs
// a heap allocation — CI runs this with --smoke as a regression gate.
//
// Usage: perf_regression [--smoke] [--out <path>]
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <new>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <malloc.h>  // malloc_usable_size (glibc)

#include "rpca/incremental.hpp"
#include "rpca/reference.hpp"
#include "rpca/rpca.hpp"
#include "rpca/validation.hpp"
#include "rpca/workspace.hpp"
#include "support/rng.hpp"
#include "support/stopwatch.hpp"

// ---------------------------------------------------------------------------
// Instrumented global allocator: counts every operator-new allocation in
// the process, solver threads included. The counters are relaxed atomics,
// cheap enough to stay enabled through the timed sections — and both
// sides of every comparison pay the same cost.
// ---------------------------------------------------------------------------
namespace {

std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_total_bytes{0};
std::atomic<std::uint64_t> g_live_bytes{0};
std::atomic<std::uint64_t> g_peak_live_bytes{0};

void note_alloc(void* p) {
  const std::uint64_t size = malloc_usable_size(p);
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_total_bytes.fetch_add(size, std::memory_order_relaxed);
  const std::uint64_t live =
      g_live_bytes.fetch_add(size, std::memory_order_relaxed) + size;
  std::uint64_t peak = g_peak_live_bytes.load(std::memory_order_relaxed);
  while (live > peak && !g_peak_live_bytes.compare_exchange_weak(
                            peak, live, std::memory_order_relaxed)) {
  }
}

void note_free(void* p) {
  if (p == nullptr) return;
  g_live_bytes.fetch_sub(malloc_usable_size(p), std::memory_order_relaxed);
}

}  // namespace

// A malloc-backed operator new is the standard way to instrument the
// global allocator, but GCC flags the new/free pairing once it inlines
// the callers; the mismatch is deliberate and consistent here.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  void* p = std::malloc(size ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  note_alloc(p);
  return p;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  void* p = std::malloc(size ? size : 1);
  if (p != nullptr) note_alloc(p);
  return p;
}

void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}

void operator delete(void* p) noexcept {
  note_free(p);
  std::free(p);
}
void operator delete[](void* p) noexcept { ::operator delete(p); }
void operator delete(void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete[](void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  ::operator delete(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  ::operator delete(p);
}

#pragma GCC diagnostic pop

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------
namespace {

using namespace netconst;

constexpr std::size_t kRows = 10;  // paper's calibration time steps

struct SectionStats {
  double median_ms = 0.0;
  int iterations = 0;
  // Allocator traffic of the last (steady-state) repetition.
  std::uint64_t allocs = 0;
  std::uint64_t alloc_bytes = 0;
  std::uint64_t peak_live_bytes = 0;  // RSS proxy
  double allocs_per_iteration = 0.0;
};

struct SuiteRow {
  std::string suite;  // "batch" | "warm"
  std::string solver;
  std::size_t cluster = 0;
  std::size_t rows = 0;
  std::size_t cols = 0;
  SectionStats reference;
  SectionStats workspace;
  double speedup = 0.0;
};

double median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

rpca::SyntheticProblem tp_problem(std::size_t cluster, std::uint64_t seed) {
  rpca::SyntheticSpec spec;
  spec.rows = kRows;
  spec.cols = cluster * cluster;
  spec.rank = 1;
  spec.sparsity = 0.05;
  Rng rng(seed);
  return rpca::make_synthetic(spec, rng);
}

/// Replace one ring row with a perturbed copy — the sliding-window shape
/// of change the online refresher sees between consecutive solves.
void slide_row(linalg::Matrix& data, std::size_t step, Rng& rng) {
  const std::size_t row = step % data.rows();
  for (std::size_t j = 0; j < data.cols(); ++j) {
    data(row, j) *= 1.0 + 0.01 * rng.normal();
  }
}

/// One timed repetition of `solve` (which returns the iteration count);
/// the allocator delta of every repetition overwrites `stats`, so after a
/// loop the counters describe the last (steady-state) repetition.
template <typename Solve>
void timed_rep(SectionStats& stats, std::vector<double>& times,
               Solve&& solve) {
  g_peak_live_bytes.store(g_live_bytes.load());
  const std::uint64_t allocs0 = g_allocs.load();
  const std::uint64_t bytes0 = g_total_bytes.load();
  const Stopwatch clock;
  stats.iterations = solve();
  times.push_back(clock.milliseconds());
  stats.allocs = g_allocs.load() - allocs0;
  stats.alloc_bytes = g_total_bytes.load() - bytes0;
  stats.peak_live_bytes = g_peak_live_bytes.load();
}

void finish_section(SectionStats& stats, std::vector<double>& times) {
  stats.median_ms = median(std::move(times));
  stats.allocs_per_iteration =
      stats.iterations > 0
          ? static_cast<double>(stats.allocs) / stats.iterations
          : static_cast<double>(stats.allocs);
}

SuiteRow batch_suite(rpca::Solver solver, std::size_t cluster, int reps) {
  const auto problem = tp_problem(cluster, 7 + cluster);
  SuiteRow row;
  row.suite = "batch";
  row.solver = rpca::solver_name(solver);
  row.cluster = cluster;
  row.rows = problem.data.rows();
  row.cols = problem.data.cols();

  const rpca::Options options;  // defaults: auto lambda, tol 1e-7
  rpca::SolverWorkspace ws;
  rpca::Result result;
  // Warm-up both paths: page the data in and let the workspace / result
  // buffers reach capacity.
  rpca::reference::solve(problem.data, solver, options);
  rpca::solve(problem.data, solver, options, ws, result);

  // Reference and workspace repetitions alternate so ambient load
  // perturbs both samples' distributions equally; timing the sections
  // back-to-back let a load spike land entirely inside one of them and
  // dominate the reported ratio.
  std::vector<double> ref_times, ws_times;
  ref_times.reserve(static_cast<std::size_t>(reps));
  ws_times.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    timed_rep(row.reference, ref_times, [&] {
      return rpca::reference::solve(problem.data, solver, options).iterations;
    });
    timed_rep(row.workspace, ws_times, [&] {
      rpca::solve(problem.data, solver, options, ws, result);
      return result.iterations;
    });
  }
  finish_section(row.reference, ref_times);
  finish_section(row.workspace, ws_times);
  row.speedup = row.workspace.median_ms > 0.0
                    ? row.reference.median_ms / row.workspace.median_ms
                    : 0.0;
  return row;
}

/// Warm-start suite: a sliding-window trajectory solved with the online
/// configuration (seeded APG + rank-1 polish). Reference and workspace
/// paths see identical data and identical seeds.
SuiteRow warm_suite(std::size_t cluster, int steps) {
  SuiteRow row;
  row.suite = "warm";
  row.solver = "APG";
  row.cluster = cluster;

  rpca::Options options;
  options.polish_iterations = 300;  // the online refresher default

  const auto problem = tp_problem(cluster, 101 + cluster);
  row.rows = problem.data.rows();
  row.cols = problem.data.cols();

  // Reference trajectory.
  {
    linalg::Matrix data = problem.data;
    Rng rng(11);
    rpca::Options opts = options;
    rpca::Result prev = rpca::reference::solve(data, rpca::Solver::Apg, opts);
    std::vector<double> times;
    std::uint64_t allocs = 0, bytes = 0, peak = 0;
    int iterations = 0;
    for (int s = 0; s < steps; ++s) {
      slide_row(data, static_cast<std::size_t>(s), rng);
      opts.warm_start = {prev.low_rank, prev.sparse, prev.final_mu,
                         prev.mu_floor};
      g_peak_live_bytes.store(g_live_bytes.load());
      const std::uint64_t allocs0 = g_allocs.load();
      const std::uint64_t bytes0 = g_total_bytes.load();
      const Stopwatch clock;
      prev = rpca::reference::solve(data, rpca::Solver::Apg, opts);
      times.push_back(clock.milliseconds());
      allocs = g_allocs.load() - allocs0;
      bytes = g_total_bytes.load() - bytes0;
      peak = g_peak_live_bytes.load();
      iterations = prev.iterations;
    }
    row.reference.median_ms = median(times);
    row.reference.iterations = iterations;
    row.reference.allocs = allocs;
    row.reference.alloc_bytes = bytes;
    row.reference.peak_live_bytes = peak;
    row.reference.allocs_per_iteration =
        iterations > 0 ? static_cast<double>(allocs) / iterations
                       : static_cast<double>(allocs);
  }

  // Workspace trajectory: persistent workspace, seed buffers recycled by
  // copy-assignment (the refresher's steady state).
  {
    linalg::Matrix data = problem.data;
    Rng rng(11);
    rpca::Options opts = options;
    rpca::SolverWorkspace ws;
    rpca::Result result;
    rpca::solve(data, rpca::Solver::Apg, opts, ws, result);
    std::vector<double> times;
    std::uint64_t allocs = 0, bytes = 0, peak = 0;
    int iterations = 0;
    for (int s = 0; s < steps; ++s) {
      slide_row(data, static_cast<std::size_t>(s), rng);
      opts.warm_start.low_rank = result.low_rank;
      opts.warm_start.sparse = result.sparse;
      opts.warm_start.mu = result.final_mu;
      opts.warm_start.mu_floor = result.mu_floor;
      g_peak_live_bytes.store(g_live_bytes.load());
      const std::uint64_t allocs0 = g_allocs.load();
      const std::uint64_t bytes0 = g_total_bytes.load();
      const Stopwatch clock;
      rpca::solve(data, rpca::Solver::Apg, opts, ws, result);
      times.push_back(clock.milliseconds());
      allocs = g_allocs.load() - allocs0;
      bytes = g_total_bytes.load() - bytes0;
      peak = g_peak_live_bytes.load();
      iterations = result.iterations;
    }
    row.workspace.median_ms = median(times);
    row.workspace.iterations = iterations;
    row.workspace.allocs = allocs;
    row.workspace.alloc_bytes = bytes;
    row.workspace.peak_live_bytes = peak;
    row.workspace.allocs_per_iteration =
        iterations > 0 ? static_cast<double>(allocs) / iterations
                       : static_cast<double>(allocs);
  }

  row.speedup = row.workspace.median_ms > 0.0
                    ? row.reference.median_ms / row.workspace.median_ms
                    : 0.0;
  return row;
}

/// Incremental suite: a sliding-window trajectory at scale. The
/// `reference` section is the pre-PR hot path (warm workspace full
/// solve per slide); the `workspace` section is the subspace tracker's
/// row update on the identical trajectory. This is the grid behind the
/// N-scaling claim: the tracker's per-slide cost is O(sweeps * N^2)
/// against the full solve's O(iterations * rows * N^2), so N=512
/// refreshes fit inside the old N=64 budget.
SuiteRow incremental_suite(std::size_t cluster, int slides) {
  SuiteRow row;
  row.suite = "incremental";
  row.solver = "Tracker";
  row.cluster = cluster;

  rpca::Options options;
  options.polish_iterations = 300;  // the online refresher default

  const auto problem = tp_problem(cluster, 201 + cluster);
  row.rows = problem.data.rows();
  row.cols = problem.data.cols();

  // Full-solve side: the warm workspace trajectory (what every slide
  // cost before the tracker existed).
  {
    linalg::Matrix data = problem.data;
    Rng rng(11);
    rpca::Options opts = options;
    rpca::SolverWorkspace ws;
    rpca::Result result;
    rpca::solve(data, rpca::Solver::Apg, opts, ws, result);
    std::vector<double> times;
    for (int s = 0; s < slides; ++s) {
      slide_row(data, static_cast<std::size_t>(s), rng);
      opts.warm_start.low_rank = result.low_rank;
      opts.warm_start.sparse = result.sparse;
      opts.warm_start.mu = result.final_mu;
      opts.warm_start.mu_floor = result.mu_floor;
      timed_rep(row.reference, times, [&] {
        rpca::solve(data, rpca::Solver::Apg, opts, ws, result);
        return result.iterations;
      });
    }
    finish_section(row.reference, times);
  }

  // Tracker side: identical trajectory (same slide Rng), served by the
  // row update. Anchoring is the one-off full solve the online path
  // pays at bootstrap; the steady state is the timed update.
  {
    linalg::Matrix data = problem.data;
    Rng rng(11);
    rpca::SolverWorkspace ws;
    rpca::Result result;
    rpca::solve(data, rpca::Solver::Apg, options, ws, result);
    rpca::IncrementalTracker tracker;
    tracker.anchor(data, result, 1e-3);
    std::vector<double> times;
    for (int s = 0; s < slides; ++s) {
      const std::size_t slot = static_cast<std::size_t>(s) % data.rows();
      slide_row(data, static_cast<std::size_t>(s), rng);
      timed_rep(row.workspace, times, [&] {
        tracker.update(data, slot);
        return static_cast<int>(tracker.options().update_sweeps);
      });
    }
    finish_section(row.workspace, times);
  }

  row.speedup = row.workspace.median_ms > 0.0
                    ? row.reference.median_ms / row.workspace.median_ms
                    : 0.0;
  return row;
}

/// Randomized-SVT suite at a Gram-ineligible shape (96 snapshot rows:
/// small side > 64, so the exact path pays the allocating Jacobi SVD
/// every iteration while the sketch stays in workspace scratch). Warm
/// sliding trajectory — the long-window refresh this policy exists
/// for; warm iterates are near the low-rank solution, so every SVT
/// step's sketch is verified and accepted. The `reference` section is
/// the exact warm solve, the `workspace` section the sketched one —
/// the alloc gate below binds the sketched side, which must hold zero
/// (sketch, QR and subspace scratch all pre-sized in the workspace)
/// even though the exact side cannot at this shape.
SuiteRow randomized_suite(int slides) {
  SuiteRow row;
  row.suite = "randomized";
  row.solver = "APG";
  row.cluster = 32;

  rpca::SyntheticSpec spec;
  spec.rows = 96;
  spec.cols = 32 * 32;
  spec.rank = 1;
  spec.sparsity = 0.05;
  Rng rng(317);
  const auto problem = rpca::make_synthetic(spec, rng);
  row.rows = problem.data.rows();
  row.cols = problem.data.cols();

  rpca::Options base;
  base.polish_iterations = 300;  // the online refresher default

  for (const bool randomized : {false, true}) {
    rpca::Options opts = base;
    opts.randomized.enabled = randomized;
    SectionStats& stats = randomized ? row.workspace : row.reference;

    linalg::Matrix data = problem.data;
    Rng slide_rng(11);
    rpca::SolverWorkspace ws;
    rpca::Result result;
    rpca::solve(data, rpca::Solver::Apg, opts, ws, result);  // anchor
    std::vector<double> times;
    for (int s = 0; s < slides; ++s) {
      slide_row(data, static_cast<std::size_t>(s), slide_rng);
      opts.warm_start.low_rank = result.low_rank;
      opts.warm_start.sparse = result.sparse;
      opts.warm_start.mu = result.final_mu;
      opts.warm_start.mu_floor = result.mu_floor;
      timed_rep(stats, times, [&] {
        rpca::solve(data, rpca::Solver::Apg, opts, ws, result);
        return result.iterations;
      });
    }
    finish_section(stats, times);
  }
  row.speedup = row.workspace.median_ms > 0.0
                    ? row.reference.median_ms / row.workspace.median_ms
                    : 0.0;
  return row;
}

void emit_section(std::ostream& out, const char* name,
                  const SectionStats& s) {
  out << "      \"" << name << "\": {\n"
      << "        \"median_ms\": " << s.median_ms << ",\n"
      << "        \"iterations\": " << s.iterations << ",\n"
      << "        \"steady_state_allocs\": " << s.allocs << ",\n"
      << "        \"allocs_per_iteration\": " << s.allocs_per_iteration
      << ",\n"
      << "        \"alloc_bytes\": " << s.alloc_bytes << ",\n"
      << "        \"peak_live_bytes\": " << s.peak_live_bytes << "\n"
      << "      }";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_rpca.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: perf_regression [--smoke] [--out <path>]\n";
      return 2;
    }
  }
  const int reps = smoke ? 3 : 11;
  const int warm_steps = smoke ? 6 : 20;

  const std::vector<std::size_t> clusters = {16, 32, 64};
  const std::vector<rpca::Solver> solvers = {
      rpca::Solver::Apg, rpca::Solver::Ialm, rpca::Solver::StablePcp,
      rpca::Solver::StablePcpTf, rpca::Solver::RankOne};

  std::vector<SuiteRow> rows;
  for (std::size_t cluster : clusters) {
    for (rpca::Solver solver : solvers) {
      rows.push_back(batch_suite(solver, cluster, reps));
      const SuiteRow& r = rows.back();
      std::cout << "batch " << r.solver << " N=" << cluster << ": ref "
                << r.reference.median_ms << " ms, ws "
                << r.workspace.median_ms << " ms, speedup " << r.speedup
                << "x, steady-state allocs " << r.workspace.allocs << "\n";
    }
    rows.push_back(warm_suite(cluster, warm_steps));
    const SuiteRow& r = rows.back();
    std::cout << "warm APG N=" << cluster << ": ref "
              << r.reference.median_ms << " ms, ws "
              << r.workspace.median_ms << " ms, speedup " << r.speedup
              << "x, steady-state allocs " << r.workspace.allocs << "\n";
  }

  // The N-scaling grid: tracker row update vs warm full solve.
  const std::vector<std::size_t> grid = {64, 128, 256, 512};
  const int slides = smoke ? 4 : 8;
  for (std::size_t cluster : grid) {
    rows.push_back(incremental_suite(cluster, slides));
    const SuiteRow& r = rows.back();
    std::cout << "incremental N=" << cluster << ": full "
              << r.reference.median_ms << " ms, update "
              << r.workspace.median_ms << " ms, speedup " << r.speedup
              << "x, steady-state allocs " << r.workspace.allocs << "\n";
  }

  rows.push_back(randomized_suite(slides));
  {
    const SuiteRow& r = rows.back();
    std::cout << "randomized APG rows=" << r.rows << ": exact "
              << r.reference.median_ms << " ms, sketch "
              << r.workspace.median_ms << " ms, speedup " << r.speedup
              << "x, steady-state allocs " << r.workspace.allocs << "\n";
  }

  // The regression gate: a warm workspace solve must not touch the heap.
  int violations = 0;
  for (const SuiteRow& r : rows) {
    if (r.workspace.allocs > 0) {
      ++violations;
      std::cerr << "ALLOC VIOLATION: " << r.suite << " " << r.solver
                << " N=" << r.cluster << " performed "
                << r.workspace.allocs << " steady-state allocations\n";
    }
  }

  // Scaling gates: the tracker must beat the full solve where both are
  // cheap (N=128), and its N=512 refresh must fit inside the budget the
  // pre-PR hot path spent at N=64 (warm full solve, same trajectory).
  double warm64_full = 0.0, inc128_speedup = 0.0, inc512_ms = -1.0;
  for (const SuiteRow& r : rows) {
    if (r.suite != "incremental") continue;
    if (r.cluster == 64) warm64_full = r.reference.median_ms;
    if (r.cluster == 128) inc128_speedup = r.speedup;
    if (r.cluster == 512) inc512_ms = r.workspace.median_ms;
  }
  if (inc128_speedup < 1.0) {
    ++violations;
    std::cerr << "SCALING VIOLATION: incremental N=128 speedup "
              << inc128_speedup << " < 1.0\n";
  }
  if (inc512_ms > warm64_full) {
    ++violations;
    std::cerr << "SCALING VIOLATION: incremental N=512 update "
              << inc512_ms << " ms exceeds the N=64 full-solve budget of "
              << warm64_full << " ms\n";
  }

  std::ostringstream json;
  json.precision(6);
  json << "{\n"
       << "  \"schema\": \"netconst-perf-regression-v1\",\n"
       << "  \"config\": {\"rows\": " << kRows << ", \"reps\": " << reps
       << ", \"warm_steps\": " << warm_steps
       << ", \"smoke\": " << (smoke ? "true" : "false") << "},\n"
       << "  \"alloc_violations\": " << violations << ",\n"
       << "  \"suites\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SuiteRow& r = rows[i];
    json << "    {\n"
         << "      \"suite\": \"" << r.suite << "\",\n"
         << "      \"solver\": \"" << r.solver << "\",\n"
         << "      \"cluster\": " << r.cluster << ",\n"
         << "      \"rows\": " << r.rows << ",\n"
         << "      \"cols\": " << r.cols << ",\n";
    emit_section(json, "reference", r.reference);
    json << ",\n";
    emit_section(json, "workspace", r.workspace);
    json << ",\n      \"speedup\": " << r.speedup << "\n    }"
         << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";

  std::ofstream out(out_path);
  out << json.str();
  out.close();
  std::cout << "wrote " << out_path << " (" << rows.size() << " suites, "
            << violations << " alloc violations)\n";
  return violations == 0 ? 0 : 1;
}
