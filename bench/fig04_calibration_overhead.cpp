// Figure 4: overhead of calibrating one temporal performance matrix
// (time step = 10) versus the number of instances. The paper reports
// <4 minutes at 64 instances and ~10 minutes at 196, roughly linear,
// plus an RPCA runtime under 1 minute at 196 instances.
#include <iostream>

#include "bench_util.hpp"
#include "cloud/calibration.hpp"
#include "cloud/synthetic.hpp"
#include "core/constant_finder.hpp"
#include "support/stopwatch.hpp"

using namespace netconst;

int main() {
  print_banner(std::cout,
               "Figure 4: calibration overhead vs number of instances "
               "(time step = 10)");
  ConsoleTable table({"instances", "calibration_minutes",
                      "minutes_per_instance", "rpca_solve_seconds"});

  for (const std::size_t n : {16u, 32u, 64u, 96u, 128u, 196u}) {
    cloud::SyntheticCloudConfig config;
    config.cluster_size = n;
    config.seed = 42;
    cloud::SyntheticCloud provider(config);

    cloud::SeriesOptions options;
    options.time_step = 10;
    options.interval = 0.0;  // back-to-back rows, pure calibration cost
    const cloud::SeriesResult series =
        cloud::calibrate_series(provider, options);

    // Wall-clock cost of the RPCA analysis itself (paper: <1 min @196).
    const core::ConstantComponent component =
        core::find_constant(series.series);

    table.add_row({std::to_string(n),
                   ConsoleTable::cell(series.elapsed_seconds / 60.0, 2),
                   ConsoleTable::cell(series.elapsed_seconds / 60.0 /
                                          static_cast<double>(n),
                                      4),
                   ConsoleTable::cell(component.solve_seconds, 2)});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: near-linear growth in N; ~minutes at "
               "64-196 instances; RPCA solve well under a minute.\n";
  return 0;
}
