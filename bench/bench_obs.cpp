// Observability overhead bench: the cost of the flight recorder, on and
// off, measured where it matters — the warm APG refresh path.
//
// Three measurements, emitted as machine-readable JSON (BENCH_obs.json
// by default):
//  * disabled span cost — ns per Span construct/destruct with the
//    recorder off (one relaxed load + branch each way);
//  * enabled span cost — ns per recorded span (seqlock ring push);
//  * warm refresh cost — median wall time of a steady-state
//    WindowRefresher::refresh with tracing off vs on, plus the span
//    count one refresh records.
//
// The regression gate: spans_per_refresh x disabled_span_ns must stay
// under 1% of the refresh itself — i.e. instrumenting the pipeline and
// leaving tracing OFF is free at the advertised < 1% level. CI runs
// this with --smoke.
//
// Usage: bench_obs [--smoke] [--out <path>]
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "cloud/synthetic.hpp"
#include "obs/trace.hpp"
#include "online/ingest.hpp"
#include "online/refresher.hpp"
#include "online/window.hpp"
#include "support/stopwatch.hpp"

namespace {

using namespace netconst;

double median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

/// ns per Span open+close at the current recorder state.
double span_cost_ns(std::size_t iterations) {
  const Stopwatch clock;
  for (std::size_t k = 0; k < iterations; ++k) {
    obs::Span span("bench.span");
    span.set_value(static_cast<double>(k));
  }
  return clock.seconds() * 1e9 / static_cast<double>(iterations);
}

struct RefreshBench {
  double disabled_ms = 0.0;
  double enabled_ms = 0.0;
  double spans_per_refresh = 0.0;
};

/// Median warm-refresh wall time over `reps` maintenance cycles, with
/// tracing off and on, against one steadily sliding window.
///
/// Paired design: TWO independent refreshers consume the same window
/// sequence, one timed with tracing off and one with tracing on. The
/// solver is deterministic, so at every rep both do byte-identical
/// work (same warm seed lineage, same iteration counts) — the only
/// difference is the instrumentation. Timing the same refresher twice
/// would not work (the second solve warm-starts off the first), and
/// splitting reps between phases would not either (refresh cost swings
/// ~10x with window position whenever a warm attempt falls back cold).
/// Within a rep the off/on order alternates to cancel cache effects.
RefreshBench warm_refresh_cost(int reps) {
  cloud::SyntheticCloudConfig config;
  config.cluster_size = 16;
  config.datacenter_racks = 4;
  config.seed = 42;
  cloud::SyntheticCloud cloud(config);

  online::SlidingWindow window(8);
  online::SnapshotIngestor ingestor(cloud, window, {});
  online::WindowRefresher quiet;
  online::WindowRefresher traced;
  ingestor.fill(600.0);
  quiet.refresh(window);  // cold bootstraps; not timed
  traced.refresh(window);

  auto& recorder = obs::FlightRecorder::instance();
  RefreshBench bench;
  std::vector<double> quiet_times;
  std::vector<double> traced_times;
  for (int r = 0; r < reps; ++r) {
    cloud.advance(600.0);
    ingestor.ingest_calibrated();
    for (int leg = 0; leg < 2; ++leg) {
      const bool tracing_on = (leg == r % 2);  // alternate order per rep
      recorder.set_enabled(tracing_on);
      online::WindowRefresher& refresher = tracing_on ? traced : quiet;
      const std::uint64_t spans_before = recorder.total_recorded();
      const Stopwatch clock;
      refresher.refresh(window);
      (tracing_on ? traced_times : quiet_times)
          .push_back(clock.seconds() * 1e3);
      if (tracing_on) {
        bench.spans_per_refresh +=
            static_cast<double>(recorder.total_recorded() - spans_before) /
            static_cast<double>(reps);
      }
    }
  }
  bench.disabled_ms = median(quiet_times);
  bench.enabled_ms = median(traced_times);
  recorder.set_enabled(false);
  recorder.clear();
  return bench;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_obs.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_obs [--smoke] [--out <path>]\n";
      return 2;
    }
  }

  auto& recorder = obs::FlightRecorder::instance();
  const std::size_t disabled_iters = smoke ? 2'000'000 : 20'000'000;
  const std::size_t enabled_iters = smoke ? 200'000 : 2'000'000;
  const int refresh_reps = smoke ? 9 : 31;

  recorder.set_enabled(false);
  const double disabled_ns = span_cost_ns(disabled_iters);
  recorder.set_enabled(true);
  const double enabled_ns = span_cost_ns(enabled_iters);
  recorder.set_enabled(false);
  recorder.clear();

  const RefreshBench refresh = warm_refresh_cost(refresh_reps);

  // Derived gate: the cost of every disabled instrumentation point one
  // refresh passes through, relative to the refresh itself.
  const double disabled_overhead_pct =
      refresh.disabled_ms <= 0.0
          ? 0.0
          : refresh.spans_per_refresh * disabled_ns /
                (refresh.disabled_ms * 1e6) * 100.0;
  const double enabled_overhead_pct =
      refresh.disabled_ms <= 0.0
          ? 0.0
          : (refresh.enabled_ms / refresh.disabled_ms - 1.0) * 100.0;
  const bool disabled_gate = disabled_overhead_pct < 1.0;

  std::cout << "disabled span          : " << disabled_ns << " ns\n"
            << "enabled span           : " << enabled_ns << " ns\n"
            << "warm refresh (off)     : " << refresh.disabled_ms << " ms\n"
            << "warm refresh (on)      : " << refresh.enabled_ms << " ms\n"
            << "spans per refresh      : " << refresh.spans_per_refresh
            << "\n"
            << "disabled overhead      : " << disabled_overhead_pct
            << " % (gate < 1%)\n"
            << "enabled overhead       : " << enabled_overhead_pct
            << " %\n";

  std::ofstream out(out_path);
  out.precision(6);
  out << "{\n"
      << "  \"schema\": \"netconst-bench-obs-v1\",\n"
      << "  \"config\": {\"smoke\": " << (smoke ? "true" : "false")
      << ", \"disabled_iters\": " << disabled_iters
      << ", \"enabled_iters\": " << enabled_iters
      << ", \"refresh_reps\": " << refresh_reps << "},\n"
      << "  \"disabled_span_ns\": " << disabled_ns << ",\n"
      << "  \"enabled_span_ns\": " << enabled_ns << ",\n"
      << "  \"warm_refresh_disabled_ms\": " << refresh.disabled_ms << ",\n"
      << "  \"warm_refresh_enabled_ms\": " << refresh.enabled_ms << ",\n"
      << "  \"spans_per_refresh\": " << refresh.spans_per_refresh << ",\n"
      << "  \"disabled_overhead_pct\": " << disabled_overhead_pct << ",\n"
      << "  \"enabled_overhead_pct\": " << enabled_overhead_pct << ",\n"
      << "  \"disabled_overhead_gate_ok\": "
      << (disabled_gate ? "true" : "false") << "\n"
      << "}\n";
  std::cout << "wrote " << out_path << "\n";

  if (!disabled_gate) {
    std::cerr << "GATE FAILED: disabled-tracing overhead "
              << disabled_overhead_pct << "% >= 1%\n";
    return 1;
  }
  return 0;
}
