// Scale-out study for the parallel runtime (see docs/PERFORMANCE.md):
//
//  1. threads x tenants — drive a ConstantFinderService campaign at
//     every (driver threads, tenant count) grid point and report wall
//     time, aggregate refresh throughput, and per-tenant refresh
//     latency p50/p99. The threads=1 column is the serialized
//     baseline the concurrent scheduler is judged against.
//  2. SIMD single-solve — the warm workspace APG solve at N=64 with
//     the vector kernels forced off vs the detected level, plus the
//     bit-identity check of the scalar path against rpca::reference.
//
// Emits machine-readable JSON (BENCH_scaling.json by default). The
// host's core count and detected SIMD level are recorded alongside the
// numbers: on a 1-core or scalar-only machine the ratios legitimately
// approach 1x, and the JSON says so instead of hiding it.
//
// Usage: bench_scaling [--smoke] [--out <path>]
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cloud/synthetic.hpp"
#include "linalg/simd.hpp"
#include "online/service.hpp"
#include "rpca/reference.hpp"
#include "rpca/rpca.hpp"
#include "rpca/validation.hpp"
#include "support/rng.hpp"
#include "support/stopwatch.hpp"

namespace {

using namespace netconst;

double median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

// ---------------------------------------------------------------------------
// Part 1: threads x tenants service campaign.
// ---------------------------------------------------------------------------

struct ScalePoint {
  std::size_t threads = 0;
  std::size_t tenants = 0;
  std::size_t steps = 0;
  double wall_seconds = 0.0;
  std::uint64_t total_refreshes = 0;
  double refreshes_per_second = 0.0;
  double refresh_p50_ms = 0.0;  // pooled across tenants
  double refresh_p99_ms = 0.0;
};

cloud::SyntheticCloudConfig scale_cloud(std::uint64_t seed) {
  cloud::SyntheticCloudConfig config;
  config.cluster_size = 8;
  config.datacenter_racks = 4;
  config.seed = seed;
  return config;
}

online::TenantConfig scale_tenant(const std::string& name,
                                  cloud::NetworkProvider& provider,
                                  std::uint64_t seed) {
  online::TenantConfig config;
  config.name = name;
  config.provider = &provider;
  config.window_capacity = 4;
  config.snapshot_interval = 600.0;
  config.operation_gap = 300.0;
  config.scheduler.base_interval = 1500.0;
  config.seed = seed;
  return config;
}

ScalePoint run_campaign(std::size_t threads, std::size_t tenants,
                        std::size_t steps) {
  online::ServiceOptions options;
  options.threads = threads;  // dedicated pool: pins driver parallelism
  online::ConstantFinderService service(options);
  std::vector<std::unique_ptr<cloud::SyntheticCloud>> clouds;
  clouds.reserve(tenants);
  for (std::uint64_t t = 0; t < tenants; ++t) {
    clouds.push_back(
        std::make_unique<cloud::SyntheticCloud>(scale_cloud(60 + t)));
    service.add_tenant(scale_tenant("tenant" + std::to_string(t),
                                    *clouds.back(), 300 + t));
  }

  const Stopwatch clock;
  service.run(steps);
  ScalePoint point;
  point.threads = threads;
  point.tenants = tenants;
  point.steps = steps;
  point.wall_seconds = clock.seconds();
  for (std::size_t t = 0; t < tenants; ++t) {
    point.total_refreshes += service.status(t).refreshes;
  }
  point.refreshes_per_second =
      point.wall_seconds > 0.0
          ? static_cast<double>(point.total_refreshes) / point.wall_seconds
          : 0.0;
  const online::Histogram::Summary latency =
      service.metrics().histogram_summary("online.refresh_seconds");
  point.refresh_p50_ms = latency.p50 * 1e3;
  point.refresh_p99_ms = latency.p99 * 1e3;
  return point;
}

// ---------------------------------------------------------------------------
// Part 2: SIMD single-solve study at the paper's N=64 shape.
// ---------------------------------------------------------------------------

struct SimdStudy {
  std::size_t cluster = 64;
  std::string scalar_level = "scalar";
  std::string vector_level;
  double scalar_median_ms = 0.0;
  double vector_median_ms = 0.0;
  double speedup = 0.0;
  bool scalar_matches_reference = false;
};

SimdStudy simd_study(int reps) {
  namespace simd = linalg::simd;
  SimdStudy study;
  study.vector_level = simd::level_name(simd::best_available_level());

  rpca::SyntheticSpec spec;
  spec.rows = 10;  // the paper's calibration time steps
  spec.cols = study.cluster * study.cluster;
  spec.rank = 1;
  spec.sparsity = 0.05;
  Rng rng(71);
  const auto problem = rpca::make_synthetic(spec, rng);
  const rpca::Options options;

  rpca::SolverWorkspace ws;
  rpca::Result result;
  rpca::solve(problem.data, rpca::Solver::Apg, options, ws, result);

  // Bit-identity of the scalar workspace path against the frozen
  // allocating reference — the contract the vector kernels are allowed
  // to relax only in documented reduction order.
  {
    const simd::ScopedLevel scalar(simd::Level::Scalar);
    rpca::solve(problem.data, rpca::Solver::Apg, options, ws, result);
    const rpca::Result ref =
        rpca::reference::solve(problem.data, rpca::Solver::Apg, options);
    study.scalar_matches_reference =
        result.low_rank.max_abs_diff(ref.low_rank) == 0.0 &&
        result.sparse.max_abs_diff(ref.sparse) == 0.0 &&
        result.iterations == ref.iterations;
  }

  std::vector<double> scalar_times, vector_times;
  scalar_times.reserve(static_cast<std::size_t>(reps));
  vector_times.reserve(static_cast<std::size_t>(reps));
  // Alternate the two levels so ambient load perturbs both samples.
  for (int r = 0; r < reps; ++r) {
    {
      const simd::ScopedLevel scalar(simd::Level::Scalar);
      const Stopwatch clock;
      rpca::solve(problem.data, rpca::Solver::Apg, options, ws, result);
      scalar_times.push_back(clock.milliseconds());
    }
    {
      const Stopwatch clock;
      rpca::solve(problem.data, rpca::Solver::Apg, options, ws, result);
      vector_times.push_back(clock.milliseconds());
    }
  }
  study.scalar_median_ms = median(std::move(scalar_times));
  study.vector_median_ms = median(std::move(vector_times));
  study.speedup = study.vector_median_ms > 0.0
                      ? study.scalar_median_ms / study.vector_median_ms
                      : 0.0;
  return study;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_scaling.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_scaling [--smoke] [--out <path>]\n";
      return 2;
    }
  }

  namespace simd = netconst::linalg::simd;
  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  std::cout << "hardware_concurrency=" << hw << ", simd="
            << simd::level_name(simd::best_available_level()) << "\n";

  const std::vector<std::size_t> thread_grid =
      smoke ? std::vector<std::size_t>{1, 2}
            : std::vector<std::size_t>{1, 2, 4, 8};
  const std::vector<std::size_t> tenant_grid =
      smoke ? std::vector<std::size_t>{1, 2}
            : std::vector<std::size_t>{1, 2, 4, 8};
  const std::size_t steps = smoke ? 6 : 16;
  const int simd_reps = smoke ? 3 : 11;

  std::vector<ScalePoint> points;
  for (const std::size_t tenants : tenant_grid) {
    for (const std::size_t threads : thread_grid) {
      points.push_back(run_campaign(threads, tenants, steps));
      const ScalePoint& p = points.back();
      std::cout << "tenants=" << p.tenants << " threads=" << p.threads
                << ": " << p.wall_seconds << " s, " << p.total_refreshes
                << " refreshes (" << p.refreshes_per_second
                << "/s), refresh p50/p99 " << p.refresh_p50_ms << "/"
                << p.refresh_p99_ms << " ms\n";
    }
  }

  // Aggregate speedup at the widest tenant count: best concurrent
  // throughput over the serialized (threads=1) baseline.
  const std::size_t wide = tenant_grid.back();
  double serialized = 0.0, best_concurrent = 0.0;
  for (const ScalePoint& p : points) {
    if (p.tenants != wide) continue;
    if (p.threads == 1) serialized = p.refreshes_per_second;
    best_concurrent = std::max(best_concurrent, p.refreshes_per_second);
  }
  const double aggregate_speedup =
      serialized > 0.0 ? best_concurrent / serialized : 0.0;
  std::cout << "aggregate refresh throughput at " << wide << " tenants: "
            << aggregate_speedup << "x over serialized baseline\n";

  const SimdStudy simd_result = simd_study(simd_reps);
  std::cout << "simd N=" << simd_result.cluster << " warm APG solve: "
            << simd_result.scalar_median_ms << " ms scalar, "
            << simd_result.vector_median_ms << " ms "
            << simd_result.vector_level << " (speedup "
            << simd_result.speedup << "x), scalar==reference: "
            << (simd_result.scalar_matches_reference ? "yes" : "NO")
            << "\n";

  std::ostringstream json;
  json.precision(6);
  json << "{\n"
       << "  \"schema\": \"netconst-scaling-v1\",\n"
       << "  \"config\": {\"steps\": " << steps
       << ", \"smoke\": " << (smoke ? "true" : "false")
       << ", \"hardware_concurrency\": " << hw << ", \"simd_level\": \""
       << simd_result.vector_level << "\"},\n"
       << "  \"aggregate\": {\"tenants\": " << wide
       << ", \"serialized_refreshes_per_second\": " << serialized
       << ", \"best_refreshes_per_second\": " << best_concurrent
       << ", \"speedup\": " << aggregate_speedup << "},\n"
       << "  \"simd_study\": {\"cluster\": " << simd_result.cluster
       << ", \"scalar_median_ms\": " << simd_result.scalar_median_ms
       << ", \"vector_median_ms\": " << simd_result.vector_median_ms
       << ", \"vector_level\": \"" << simd_result.vector_level
       << "\", \"speedup\": " << simd_result.speedup
       << ", \"scalar_matches_reference\": "
       << (simd_result.scalar_matches_reference ? "true" : "false")
       << "},\n"
       << "  \"scaling\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const ScalePoint& p = points[i];
    json << "    {\"threads\": " << p.threads << ", \"tenants\": "
         << p.tenants << ", \"steps\": " << p.steps
         << ", \"wall_seconds\": " << p.wall_seconds
         << ", \"total_refreshes\": " << p.total_refreshes
         << ", \"refreshes_per_second\": " << p.refreshes_per_second
         << ", \"refresh_p50_ms\": " << p.refresh_p50_ms
         << ", \"refresh_p99_ms\": " << p.refresh_p99_ms << "}"
         << (i + 1 < points.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";

  std::ofstream out(out_path);
  out << json.str();
  out.close();
  std::cout << "wrote " << out_path << " (" << points.size()
            << " grid points)\n";

  // The only hard gate that is meaningful on any machine: the scalar
  // workspace path must stay bit-identical to the frozen reference.
  return simd_result.scalar_matches_reference ? 0 : 1;
}
