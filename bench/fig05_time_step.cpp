// Figure 5: relative difference of the long-term performance estimate
// versus the calibration time step. The paper picks the smallest step
// whose difference is within 10% (time step 10 on EC2).
#include <iostream>

#include "bench_util.hpp"
#include "cloud/calibration.hpp"
#include "cloud/synthetic.hpp"
#include "core/time_step.hpp"

using namespace netconst;

int main() {
  // A long reference trace (30 rows) serves as the oracle.
  cloud::SyntheticCloudConfig config;
  config.cluster_size = 32;
  config.seed = 1234;
  cloud::SyntheticCloud provider(config);

  cloud::SeriesOptions options;
  options.time_step = 30;
  options.interval = 60.0;
  const cloud::SeriesResult reference =
      cloud::calibrate_series(provider, options);

  print_banner(std::cout,
               "Figure 5: relative difference of long-term performance "
               "vs time step (32 instances)");
  ConsoleTable table({"time_step", "l0_difference", "frobenius_difference"});
  for (const std::size_t step : {2u, 3u, 5u, 8u, 10u, 15u, 20u, 25u}) {
    const core::TimeStepDifference diff =
        core::long_term_difference(reference.series, step);
    table.add_row({std::to_string(step),
                   ConsoleTable::cell_percent(diff.l0_difference),
                   ConsoleTable::cell_percent(diff.frobenius_difference)});
  }
  table.print(std::cout);

  const std::size_t chosen =
      core::select_time_step(reference.series, 30, 0.10);
  std::cout << "\nSelected time step (first within 10%): " << chosen
            << "\nExpected shape: difference shrinks as the time step "
               "grows; a step near 10 suffices.\n";
  return 0;
}
