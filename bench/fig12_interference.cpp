// Figure 12: impact of background traffic on Norm(N_E) in the simulated
// 1024-machine tree cluster.
//  (a) fixed 100 MB background messages, waiting-time mean lambda swept
//      1..30 s — Norm(N_E) falls as lambda grows (less interference);
//  (b) fixed lambda = 5 s, background message size swept 10..500 MB —
//      Norm(N_E) grows roughly linearly with the message size.
#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "cloud/calibration.hpp"
#include "cloud/simnet_provider.hpp"
#include "core/constant_finder.hpp"

using namespace netconst;

namespace {

double measure_norm(double lambda_s, std::uint64_t background_bytes,
                    std::uint64_t seed) {
  simnet::TreeSpec spec;  // the paper's 32 racks x 32 servers
  auto sim = std::make_shared<simnet::FlowSimulator>(
      simnet::make_tree_topology(spec), Rng(seed));

  // Background: 96 fixed sender/receiver host pairs.
  Rng rng(seed ^ 0x5a5a5a5aULL);
  const auto hosts = sim->topology().hosts();
  for (int k = 0; k < 96; ++k) {
    simnet::BackgroundSource bg;
    bg.src = hosts[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(hosts.size()) - 1))];
    do {
      bg.dst = hosts[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(hosts.size()) - 1))];
    } while (bg.dst == bg.src);
    bg.bytes = background_bytes;
    bg.mean_wait = lambda_s;
    sim->add_background_source(bg);
  }
  sim->advance_to(30.0);  // reach steady state

  auto vm_hosts = cloud::pick_random_hosts(sim->topology(), 24, rng);
  cloud::SimnetProvider provider(sim, vm_hosts);
  cloud::SeriesOptions options;
  options.time_step = 6;
  options.interval = 5.0;
  options.calibration.round_setup_overhead = 0.1;
  const auto series = cloud::calibrate_series(provider, options);
  return core::find_constant(series.series).error_norm;
}

}  // namespace

int main() {
  print_banner(std::cout,
               "Figure 12a: Norm(N_E) vs background waiting time lambda "
               "(100 MB messages, 1024-machine tree, 24-VM cluster)");
  {
    ConsoleTable table({"lambda_s", "norm_ne"});
    for (const double lambda : {1.0, 2.0, 5.0, 10.0, 30.0}) {
      table.add_row({ConsoleTable::cell(lambda, 0),
                     ConsoleTable::cell(
                         measure_norm(lambda, 100ull << 20, 31), 3)});
    }
    table.print(std::cout);
  }

  print_banner(std::cout,
               "Figure 12b: Norm(N_E) vs background message size "
               "(lambda = 5 s)");
  {
    // Above ~300 MB at lambda = 5 s the background saturates host links
    // permanently; congestion then stops being sparse-in-time and is
    // absorbed into the constant, so Norm(N_E) turns back down — we
    // sweep the sparse-interference regime the paper's claim covers.
    ConsoleTable table({"background_MB", "norm_ne"});
    for (const std::uint64_t mb : {10ull, 50ull, 100ull, 200ull, 300ull}) {
      table.add_row({std::to_string(mb),
                     ConsoleTable::cell(
                         measure_norm(5.0, mb << 20, 32), 3)});
    }
    table.print(std::cout);
  }

  std::cout << "\nExpected shape: Norm(N_E) decreases as lambda grows "
               "and increases roughly linearly with the background "
               "message size.\n";
  return 0;
}
