// Ablation: broadcast algorithm families under the alpha-beta model on
// an RPCA-guided cluster — rank-order binomial (Baseline), FNF tree
// (the paper), segmented pipeline chain, and van de Geijn
// scatter-allgather — across message sizes. The classic crossover:
// trees win small messages (latency-bound), pipelines/scatter-allgather
// win large ones (bandwidth-bound); network-aware planning helps both.
#include <iostream>

#include "bench_util.hpp"
#include "cloud/calibration.hpp"
#include "cloud/synthetic.hpp"
#include "collective/binomial.hpp"
#include "collective/collective_ops.hpp"
#include "collective/fnf.hpp"
#include "collective/pipelines.hpp"
#include "core/constant_finder.hpp"
#include "support/statistics.hpp"

using namespace netconst;

int main() {
  constexpr std::size_t kInstances = 32;
  cloud::SyntheticCloudConfig config;
  config.cluster_size = kInstances;
  config.datacenter_racks = 8;
  config.seed = 1618;
  cloud::SyntheticCloud provider(config);

  cloud::SeriesOptions series_options;
  series_options.time_step = 10;
  const auto series = cloud::calibrate_series(provider, series_options);
  const auto component = core::find_constant(series.series);

  print_banner(std::cout,
               "Ablation: broadcast algorithms vs message size "
               "(32 instances, guided by the RPCA constant)");
  ConsoleTable table({"message", "binomial_s", "fnf_tree_s",
                      "pipeline_s(best segs)", "scatter_allgather_s"});

  Rng rng(2);
  for (const std::uint64_t bytes :
       {std::uint64_t{4} << 10, std::uint64_t{256} << 10,
        std::uint64_t{8} << 20, std::uint64_t{64} << 20}) {
    const auto weights = component.constant.weight_matrix(bytes);
    const auto binomial = collective::binomial_tree(kInstances, 0);
    const auto fnf = collective::fnf_tree(weights, 0);
    const auto chain = collective::greedy_chain(weights, 0);
    const std::size_t segments = collective::best_segment_count(
        chain, component.constant, bytes, 128);

    // Score every algorithm against the same fresh oracle samples.
    std::vector<double> t_bin, t_fnf, t_pipe, t_vdg;
    for (int rep = 0; rep < 30; ++rep) {
      const auto oracle = provider.oracle_snapshot();
      t_bin.push_back(collective::collective_time(
          binomial, oracle, collective::Collective::Broadcast, bytes));
      t_fnf.push_back(collective::collective_time(
          fnf, oracle, collective::Collective::Broadcast, bytes));
      t_pipe.push_back(collective::pipeline_broadcast_time(
          chain, oracle, bytes, segments));
      t_vdg.push_back(collective::scatter_allgather_broadcast_time(
          fnf, chain, oracle, bytes));
      provider.advance(120.0);
    }
    table.add_row(
        {std::to_string(bytes >> 10) + "KiB",
         ConsoleTable::cell(mean(t_bin), 5),
         ConsoleTable::cell(mean(t_fnf), 5),
         ConsoleTable::cell(mean(t_pipe), 5) + " (" +
             std::to_string(segments) + ")",
         ConsoleTable::cell(mean(t_vdg), 5)});
  }
  table.print(std::cout);
  std::cout << "\nExpected: trees (binomial/FNF) win the small-message "
               "rows; the segmented pipeline and scatter-allgather take "
               "over as the message grows; FNF <= binomial throughout.\n";
  return 0;
}
