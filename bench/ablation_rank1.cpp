// Ablation: does the RPCA constant component beat per-link summaries
// (the DESIGN.md "rank-one extraction vs column means" question)?
//
// Two regimes are compared, because they answer differently:
//  * stationary interference — per-link summaries are nearly unbiased
//    predictors and everything ties;
//  * replayed trace with injected transient noise (the paper's Fig 10
//    methodology) — past errors carry no information about the future,
//    and only the decomposition that strips them plans well.
#include <iostream>

#include "bench_util.hpp"
#include "cloud/calibration.hpp"
#include "cloud/synthetic.hpp"
#include "collective/collective_ops.hpp"
#include "collective/fnf.hpp"
#include "core/constant_finder.hpp"
#include "core/heuristics.hpp"
#include "core/noise.hpp"
#include "support/statistics.hpp"

using namespace netconst;

namespace {

constexpr std::size_t kInstances = 32;
constexpr std::uint64_t kBytes = 8ull << 20;
constexpr std::size_t kPlanRows = 10;

struct Candidate {
  std::string name;
  netmodel::PerformanceMatrix guidance;
};

std::vector<Candidate> build_candidates(
    const netmodel::TemporalPerformance& window) {
  std::vector<Candidate> candidates;
  candidates.push_back(
      {"RPCA constant", core::find_constant(window).constant});
  for (const auto kind :
       {core::HeuristicKind::Mean, core::HeuristicKind::Min,
        core::HeuristicKind::Ewa, core::HeuristicKind::LastValue}) {
    candidates.push_back({std::string("heuristic:") +
                              core::heuristic_name(kind),
                          core::heuristic_matrix(window, kind)});
  }
  return candidates;
}

void score_and_print(const std::string& title,
                     const std::vector<Candidate>& candidates,
                     const std::vector<const netmodel::PerformanceMatrix*>&
                         realities,
                     Rng& rng) {
  std::vector<std::vector<double>> samples(candidates.size());
  for (const auto* reality : realities) {
    const auto root = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(kInstances) - 1));
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      const auto tree = collective::fnf_tree(
          candidates[c].guidance.weight_matrix(kBytes), root);
      samples[c].push_back(collective::collective_time(
          tree, *reality, collective::Collective::Broadcast, kBytes));
    }
  }
  print_banner(std::cout, title);
  ConsoleTable table({"guidance", "mean_bcast_s", "vs_rpca"});
  const double rpca_mean = mean(samples[0]);
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    const double m = mean(samples[c]);
    table.add_row({candidates[c].name, ConsoleTable::cell(m, 4),
                   ConsoleTable::cell_percent(m / rpca_mean - 1.0)});
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  // Shared clean capture.
  cloud::SyntheticCloudConfig config;
  config.cluster_size = kInstances;
  config.datacenter_racks = 8;
  config.mean_quiet_duration = 3000.0;  // regime 1: live interference
  config.mean_spike_duration = 600.0;
  config.seed = 314;
  cloud::SyntheticCloud provider(config);
  cloud::SeriesOptions series_options;
  series_options.time_step = 40;
  series_options.interval = 1800.0;
  const auto captured = cloud::calibrate_series(provider, series_options);

  // Regime 1: stationary interference, plan on the first rows, score
  // fresh oracle samples of the live cloud.
  {
    netmodel::TemporalPerformance window;
    for (std::size_t r = 0; r < kPlanRows; ++r) {
      window.append(captured.series.time_at(r), captured.series.snapshot(r));
    }
    const auto candidates = build_candidates(window);
    std::vector<netmodel::PerformanceMatrix> oracles;
    for (int k = 0; k < 40; ++k) {
      oracles.push_back(provider.oracle_snapshot());
      provider.advance(600.0);
    }
    std::vector<const netmodel::PerformanceMatrix*> realities;
    for (const auto& o : oracles) realities.push_back(&o);
    Rng rng(15);
    score_and_print(
        "Ablation regime 1: stationary interference (summaries are "
        "near-unbiased; expect a tie)",
        candidates, realities, rng);
  }

  // Regime 2: the paper's replay — symmetric transient noise injected
  // to Norm(N_E) ~ 0.15; past errors are pure noise about the future.
  {
    Rng noise_rng(16);
    const auto noisy =
        core::inject_noise_to_norm(captured.series, 0.15, noise_rng);
    netmodel::TemporalPerformance window;
    for (std::size_t r = 0; r < kPlanRows; ++r) {
      window.append(noisy.series.time_at(r), noisy.series.snapshot(r));
    }
    const auto candidates = build_candidates(window);
    std::vector<const netmodel::PerformanceMatrix*> realities;
    for (std::size_t r = kPlanRows; r < noisy.series.row_count(); ++r) {
      realities.push_back(&noisy.series.snapshot(r));
    }
    Rng rng(17);
    score_and_print(
        "Ablation regime 2: replay with injected transient noise "
        "(Norm ~ 0.15; expect RPCA ahead of every per-link summary)",
        candidates, realities, rng);
  }

  std::cout << "\nExpected: in regime 1 recency-chasing summaries "
               "(last/min) can even lead — stationary, time-correlated "
               "interference makes the newest sample genuinely "
               "predictive. In regime 2 (transient errors that carry no "
               "information about the future — the paper's setting) the "
               "ordering flips: the RPCA constant wins and the "
               "recency-chasers trail the most.\n";
  return 0;
}
