// bench_serving — performance gates for the constant-serving front end.
//
// Three gates, all hard (nonzero exit on violation), emitted as
// machine-readable JSON (BENCH_serving.json by default):
//
//  1. identity  — every cached plan's bytes equal a direct
//                 compute_plan() invocation at the same snapshot
//                 version (the cache can never serve stale or divergent
//                 results);
//  2. zero-alloc — the cache-hit path (pin snapshot, probe, serve the
//                 pre-serialized plan) performs zero heap allocations
//                 in steady state, measured by the instrumented global
//                 allocator below;
//  3. throughput — >= 1M cached plan queries/sec sustained while a
//                 writer thread keeps publishing new snapshot versions
//                 (the ISSUE's headline serving number).
//
// Usage: bench_serving [--smoke] [--out <path>]
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <malloc.h>  // malloc_usable_size (glibc)

#include "serving/epoch.hpp"
#include "serving/plan.hpp"
#include "serving/plan_cache.hpp"
#include "serving/snapshot_store.hpp"
#include "support/stopwatch.hpp"

// ---------------------------------------------------------------------------
// Instrumented global allocator (same idiom as perf_regression.cpp):
// counts every operator-new allocation in the process, query threads
// included — relaxed atomics, cheap enough to stay enabled through the
// timed sections.
// ---------------------------------------------------------------------------
namespace {

std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_total_bytes{0};

void note_alloc(void* p) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_total_bytes.fetch_add(malloc_usable_size(p), std::memory_order_relaxed);
}

}  // namespace

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  void* p = std::malloc(size ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  note_alloc(p);
  return p;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  void* p = std::malloc(size ? size : 1);
  if (p != nullptr) note_alloc(p);
  return p;
}

void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { ::operator delete(p); }
void operator delete(void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete[](void* p, std::size_t) noexcept {
  ::operator delete(p);
}

#pragma GCC diagnostic pop

namespace netconst::serving {
namespace {

constexpr std::size_t kClusterSize = 16;

/// Deterministic asymmetric component: link quality varies by pair and
/// by version, so plans have structure and change across publishes.
core::ConstantComponent bench_component(std::uint64_t version) {
  core::ConstantComponent component;
  component.constant = netmodel::PerformanceMatrix(kClusterSize);
  for (std::size_t i = 0; i < kClusterSize; ++i) {
    for (std::size_t j = 0; j < kClusterSize; ++j) {
      if (i == j) continue;
      const double alpha =
          1e-4 * (1.0 + 0.05 * static_cast<double>((i * 13 + j * 5) % 17));
      const double beta =
          1e8 / (1.0 + 0.1 * static_cast<double>((3 * i + j) % 9) +
                 1e-3 * static_cast<double>(version % 32));
      component.constant.set_link(i, j, {alpha, beta});
    }
  }
  component.error_norm = 0.02;
  component.latency_error_norm = 0.03;
  return component;
}

/// The query working set: a mix of broadcast-tree and topology-mapping
/// shapes over different sub-clusters, pre-canonicalized (the HTTP
/// layer canonicalizes before the cache sees a request).
std::vector<PlanRequest> build_requests() {
  std::vector<PlanRequest> requests;
  for (std::size_t width : {4, 6, 8, 12}) {
    for (std::size_t offset : {0, 2, 4}) {
      std::vector<std::size_t> nodes;
      for (std::size_t k = 0; k < width; ++k) {
        nodes.push_back((offset + k) % kClusterSize);
      }
      requests.push_back(canonical_plan_request(
          PlanKind::BroadcastTree, nodes, nodes.front(), 8u << 20));
      requests.push_back(canonical_plan_request(
          PlanKind::TopologyMapping, nodes, 0, 1u << 20));
    }
  }
  return requests;
}

struct GateResults {
  std::uint64_t identity_mismatches = 0;
  std::uint64_t hit_loop_queries = 0;
  std::uint64_t hit_loop_allocs = 0;
  double hit_loop_seconds = 0.0;
  std::uint64_t concurrent_queries = 0;
  double concurrent_seconds = 0.0;
  double queries_per_second = 0.0;
  std::uint64_t publishes = 0;
  std::size_t query_threads = 0;
  PlanCache::Stats cache;
  std::uint64_t epoch_reclaimed = 0;
};

}  // namespace
}  // namespace netconst::serving

int main(int argc, char** argv) {
  using namespace netconst;
  using namespace netconst::serving;

  bool smoke = false;
  std::string out_path = "BENCH_serving.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_serving [--smoke] [--out <path>]\n";
      return 2;
    }
  }

  const std::uint64_t hit_iterations = smoke ? 2'000'000 : 20'000'000;
  const double concurrent_window = smoke ? 0.5 : 3.0;
  const std::size_t query_threads = 2;

  EpochDomain epoch;
  SnapshotStore store(epoch);
  PlanCache cache(epoch, 4096);
  store.set_publish_hook([&](std::size_t tenant, std::uint64_t version) {
    cache.invalidate_below(tenant, version);
  });

  store.publish("bench", bench_component(1), 0.0, 1);
  const std::size_t tenant = store.find("bench");
  const std::vector<PlanRequest> requests = build_requests();

  GateResults results;
  results.query_threads = query_threads;

  // ---- Gate 1: cached bytes == direct planner invocation.
  {
    EpochDomain::Reader reader(epoch);
    const SnapshotStore::Ref ref = store.acquire(tenant, reader);
    for (const PlanRequest& request : requests) {
      cache.lookup_or_compute(tenant, *ref, request);  // fill
      const Plan* cached = cache.lookup_or_compute(tenant, *ref, request);
      const Plan direct = compute_plan(*ref, request);
      if (cached == nullptr || cached->json != direct.json) {
        ++results.identity_mismatches;
      }
    }
  }

  // ---- Gate 2: the warmed hit path never touches the heap.
  {
    EpochDomain::Reader reader(epoch);
    std::uint64_t checksum = 0;
    const std::uint64_t allocs0 = g_allocs.load();
    const Stopwatch clock;
    for (std::uint64_t i = 0; i < hit_iterations; ++i) {
      const SnapshotStore::Ref ref = store.acquire(tenant, reader);
      const Plan* plan = cache.lookup_or_compute(
          tenant, *ref, requests[i % requests.size()]);
      checksum += plan->json.size();
    }
    results.hit_loop_seconds = clock.seconds();
    results.hit_loop_allocs = g_allocs.load() - allocs0;
    results.hit_loop_queries = hit_iterations;
    if (checksum == 0) std::cerr << "impossible checksum\n";
  }

  // ---- Gate 3: sustained cached throughput while a writer publishes.
  {
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> queries{0};
    std::vector<std::thread> workers;
    for (std::size_t t = 0; t < query_threads; ++t) {
      workers.emplace_back([&, t] {
        EpochDomain::Reader reader(epoch);
        std::uint64_t local = 0;
        std::size_t i = t;  // desynchronize the request streams
        while (!stop.load(std::memory_order_acquire)) {
          const SnapshotStore::Ref ref = store.acquire(tenant, reader);
          const Plan* plan = cache.lookup_or_compute(
              tenant, *ref, requests[i++ % requests.size()]);
          if (plan->json.empty()) break;  // unreachable
          ++local;
        }
        queries.fetch_add(local, std::memory_order_relaxed);
      });
    }

    // The refresher stand-in: publish a new version every few
    // milliseconds, exactly what the online service does under a
    // (pathologically fast) recalibration storm.
    std::uint64_t version = 1;
    const Stopwatch clock;
    while (clock.seconds() < concurrent_window) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      ++version;
      store.publish("bench", bench_component(version),
                    static_cast<double>(version), version);
    }
    stop.store(true, std::memory_order_release);
    for (std::thread& worker : workers) worker.join();
    results.concurrent_seconds = clock.seconds();
    results.concurrent_queries = queries.load();
    results.queries_per_second =
        static_cast<double>(results.concurrent_queries) /
        results.concurrent_seconds;
    results.publishes = version;
  }

  results.cache = cache.stats();
  results.epoch_reclaimed = epoch.reclaimed_total();

  // ---- Verdicts.
  int violations = 0;
  if (results.identity_mismatches > 0) {
    ++violations;
    std::cerr << "IDENTITY VIOLATION: " << results.identity_mismatches
              << " cached plans diverged from direct planner output\n";
  }
  if (results.hit_loop_allocs > 0) {
    ++violations;
    std::cerr << "ALLOC VIOLATION: " << results.hit_loop_allocs
              << " heap allocations on the cache-hit path\n";
  }
  if (results.queries_per_second < 1e6) {
    ++violations;
    std::cerr << "THROUGHPUT VIOLATION: " << results.queries_per_second
              << " cached queries/sec (gate: 1e6)\n";
  }

  const double hit_qps = results.hit_loop_seconds > 0.0
                             ? static_cast<double>(results.hit_loop_queries) /
                                   results.hit_loop_seconds
                             : 0.0;
  std::cout << "identity: " << requests.size() << " shapes, "
            << results.identity_mismatches << " mismatches\n"
            << "hit path: " << results.hit_loop_queries << " queries in "
            << results.hit_loop_seconds << " s (" << hit_qps
            << " q/s), " << results.hit_loop_allocs << " allocs\n"
            << "concurrent: " << results.concurrent_queries
            << " queries across " << query_threads << " threads in "
            << results.concurrent_seconds << " s ("
            << results.queries_per_second << " q/s) with "
            << results.publishes << " publishes\n"
            << "cache: " << results.cache.hits << " hits, "
            << results.cache.misses << " misses, "
            << results.cache.invalidated << " invalidated\n";

  std::ostringstream json;
  json.precision(6);
  json << "{\n"
       << "  \"schema\": \"netconst-bench-serving-v1\",\n"
       << "  \"config\": {\"smoke\": " << (smoke ? "true" : "false")
       << ", \"cluster_size\": " << kClusterSize
       << ", \"request_shapes\": " << requests.size()
       << ", \"query_threads\": " << query_threads << "},\n"
       << "  \"identity\": {\"mismatches\": " << results.identity_mismatches
       << "},\n"
       << "  \"hit_path\": {\"queries\": " << results.hit_loop_queries
       << ", \"seconds\": " << results.hit_loop_seconds
       << ", \"queries_per_second\": " << hit_qps
       << ", \"steady_state_allocs\": " << results.hit_loop_allocs
       << "},\n"
       << "  \"concurrent\": {\"queries\": " << results.concurrent_queries
       << ", \"seconds\": " << results.concurrent_seconds
       << ", \"queries_per_second\": " << results.queries_per_second
       << ", \"publishes\": " << results.publishes << "},\n"
       << "  \"cache\": {\"hits\": " << results.cache.hits
       << ", \"misses\": " << results.cache.misses
       << ", \"uncached\": " << results.cache.uncached
       << ", \"insert_races\": " << results.cache.insert_races
       << ", \"invalidated\": " << results.cache.invalidated
       << ", \"replaced\": " << results.cache.replaced << "},\n"
       << "  \"epoch\": {\"reclaimed\": " << results.epoch_reclaimed
       << "},\n"
       << "  \"violations\": " << violations << "\n}\n";

  std::ofstream out(out_path);
  out << json.str();
  out.close();
  std::cout << "wrote " << out_path << " (" << violations
            << " gate violations)\n";
  return violations == 0 ? 0 : 1;
}
