#!/usr/bin/env python3
"""Markdown link checker for the repo docs.

Scans the given markdown files (default: README.md and docs/*.md) for
inline links and validates every relative one:

  * the target file or directory must exist (resolved against the
    linking file's directory);
  * a fragment (``FILE.md#anchor``, or ``#anchor`` within the same
    file) must match a heading's GitHub-style anchor in the target.

External links (http/https/mailto) are not fetched — CI must not fail
on somebody else's outage — but their URLs are checked for whitespace
damage. Exits non-zero listing every broken link.

Usage: tools/check_links.py [file.md ...]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# Inline markdown links: [text](target). Images share the syntax.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+(?:\s+\"[^\"]*\")?)\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*)$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def github_anchor(heading: str) -> str:
    """GitHub's heading -> fragment rule: lowercase, drop everything
    but word characters, spaces and hyphens, then spaces to hyphens."""
    text = re.sub(r"[`*_]", "", heading.strip())
    text = re.sub(r"[^\w\- ]", "", text.lower())
    return re.sub(r" ", "-", text)


def heading_anchors(path: Path) -> set[str]:
    anchors: set[str] = set()
    seen: dict[str, int] = {}
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING_RE.match(line)
        if not match:
            continue
        anchor = github_anchor(match.group(2))
        count = seen.get(anchor, 0)
        seen[anchor] = count + 1
        anchors.add(anchor if count == 0 else f"{anchor}-{count}")
    return anchors


def iter_links(path: Path):
    in_fence = False
    for number, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_RE.finditer(line):
            target = match.group(1).split(' "')[0].strip()
            yield number, target


def check_file(path: Path, repo_root: Path) -> list[str]:
    errors: list[str] = []
    for number, target in iter_links(path):
        where = f"{path.relative_to(repo_root)}:{number}"
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if target.startswith("#"):
            if target[1:] not in heading_anchors(path):
                errors.append(f"{where}: missing anchor '{target}'")
            continue
        name, _, fragment = target.partition("#")
        resolved = (path.parent / name).resolve()
        if not resolved.exists():
            errors.append(f"{where}: broken link '{target}'")
            continue
        if fragment and resolved.suffix == ".md":
            if fragment not in heading_anchors(resolved):
                errors.append(
                    f"{where}: missing anchor '#{fragment}' in '{name}'"
                )
    return errors


def main(argv: list[str]) -> int:
    repo_root = Path(__file__).resolve().parent.parent
    if argv:
        files = [Path(arg).resolve() for arg in argv]
    else:
        files = [repo_root / "README.md"] + sorted(
            (repo_root / "docs").glob("*.md")
        )
    errors: list[str] = []
    checked = 0
    for path in files:
        if not path.exists():
            errors.append(f"{path}: file not found")
            continue
        checked += 1
        errors.extend(check_file(path, repo_root))
    for error in errors:
        print(error, file=sys.stderr)
    print(f"checked {checked} files: "
          f"{'OK' if not errors else f'{len(errors)} broken links'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
