#!/usr/bin/env python3
"""TSan suite-selection checker for .github/workflows/ci.yml.

The ThreadSanitizer job does not run the full test suite: it selects
the concurrency-bearing gtest suites with an anchored ``ctest -R``
regex, then runs everything labelled ``chaos`` in a second step. That
regex rots silently: a new suite added under a concurrency-bearing
test directory simply never runs under TSan, and a renamed suite
leaves a dead alternation branch behind.

This tool cross-checks the workflow against the tests actually
registered in tests/CMakeLists.txt:

  * every ``TEST``/``TEST_F``/``TEST_P`` suite defined in the
    concurrency-bearing directories (tests/support, tests/online,
    tests/obs, tests/detect, tests/serving) must either match the
    anchored ``-R`` regex or belong to a test binary labelled
    ``chaos`` (those run under ``ctest -L chaos`` in the same job);
  * every alternation branch of the regex must match at least one
    registered suite somewhere in tests/ — no dead entries.

Branches may name suites outside the scoped directories (e.g. the
randomized-SVD suites): that is extra coverage, not an error.

Usage: tools/check_tsan_regex.py  (exits non-zero listing violations)
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# Directories whose suites exercise threads, shared registries, or the
# service/serving stacks and therefore must run under TSan.
SCOPED_DIRS = ("support", "online", "obs", "detect", "serving")

TEST_MACRO_RE = re.compile(r"^\s*TEST(?:_F|_P)?\(\s*([A-Za-z_]\w*)\s*,")
REGISTRATION_RE = re.compile(
    r"netconst_test\(\s*(\w+)\s+([\w/.]+\.cpp)((?:\s+[\w/.]+\.cpp)*)"
    r"(?:\s+LABEL\s+(\w+))?\s*\)"
)
CTEST_REGEX_RE = re.compile(r"-R\s+'\^\(([^')]+)\)\\\.'")


def registered_tests(cmake_path: Path) -> list[tuple[str, str]]:
    """(source path, label) per registration; default label tier1."""
    text = re.sub(r"#[^\n]*", "", cmake_path.read_text(encoding="utf-8"))
    # Registrations span lines; normalise whitespace before matching.
    text = re.sub(r"\s+", " ", text)
    tests: list[tuple[str, str]] = []
    for match in REGISTRATION_RE.finditer(text):
        label = match.group(4) or "tier1"
        for source in [match.group(2)] + match.group(3).split():
            tests.append((source, label))
    return tests


def suites_in(source: Path) -> set[str]:
    suites: set[str] = set()
    for line in source.read_text(encoding="utf-8").splitlines():
        match = TEST_MACRO_RE.match(line)
        if match:
            suites.add(match.group(1))
    return suites


def tsan_regex_branches(workflow: Path) -> list[str]:
    match = CTEST_REGEX_RE.search(workflow.read_text(encoding="utf-8"))
    if not match:
        raise SystemExit(
            f"{workflow}: no anchored ctest -R '^(...)\\.' regex found"
        )
    return match.group(1).split("|")


def main() -> int:
    repo_root = Path(__file__).resolve().parent.parent
    workflow = repo_root / ".github" / "workflows" / "ci.yml"
    cmake = repo_root / "tests" / "CMakeLists.txt"

    branches = tsan_regex_branches(workflow)
    selected = set(branches)

    all_suites: set[str] = set()
    errors: list[str] = []
    for source_rel, label in registered_tests(cmake):
        source = repo_root / "tests" / source_rel
        if not source.exists():
            errors.append(f"tests/CMakeLists.txt: missing source "
                          f"'{source_rel}'")
            continue
        suites = suites_in(source)
        all_suites |= suites
        if source_rel.split("/")[0] not in SCOPED_DIRS:
            continue
        # chaos-labelled binaries run under the job's `ctest -L chaos`
        # step; everything else must be picked up by the -R regex.
        if label == "chaos":
            continue
        for suite in sorted(suites - selected):
            errors.append(
                f"tests/{source_rel}: suite '{suite}' is not in the "
                f"TSan ctest regex (ci.yml) and not chaos-labelled"
            )

    for branch in branches:
        if branch not in all_suites:
            errors.append(
                f"ci.yml: TSan regex branch '{branch}' matches no "
                f"registered gtest suite (stale entry?)"
            )

    for error in errors:
        print(error, file=sys.stderr)
    print(f"checked {len(all_suites)} suites against "
          f"{len(branches)} regex branches: "
          f"{'OK' if not errors else f'{len(errors)} violations'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
