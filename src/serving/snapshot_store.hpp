// RCU snapshot store: the serving front end's source of truth.
//
// Every accepted refresh/recalibration publishes an immutable,
// monotonically versioned ConstantSnapshot per tenant (the store is the
// online::SnapshotSink the ConstantFinderService hands its results to).
// Query threads acquire the current snapshot with a wait-free seq_cst
// pointer load under an EpochDomain read guard; replaced versions are
// retired into the domain and reclaimed only after the last reader
// epoch that could reference them drains (see serving/epoch.hpp).
//
// Concurrency contract:
//  * one writer per tenant at a time (the service guarantees a tenant is
//    owned by exactly one driver); different tenants publish
//    concurrently — registration and retirement serialize on the
//    domain's writer mutex, the pointer swap itself is a lone atomic
//    exchange;
//  * readers never lock, never retry, and never observe a torn or
//    reclaimed snapshot: versions are strictly monotone per tenant and
//    a Ref pins whatever it acquired until it goes out of scope.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "core/constant_finder.hpp"
#include "online/service.hpp"
#include "serving/epoch.hpp"

namespace netconst::serving {

/// One published decomposition result. Immutable after publish: readers
/// share it freely without synchronization.
struct ConstantSnapshot {
  std::string tenant;
  /// Strictly monotone per tenant, starting at 1. The identity clients
  /// (and the plan cache) key caching and invalidation on.
  std::uint64_t version = 0;
  /// Refresh ordinal at the service that produced this snapshot.
  std::uint64_t refresh = 0;
  /// Provider time at publication.
  double published_at = 0.0;
  core::ConstantComponent component;
};

class SnapshotStore final : public online::SnapshotSink {
 public:
  static constexpr std::size_t kMaxTenants = 64;

  explicit SnapshotStore(EpochDomain& epoch) : epoch_(&epoch) {}
  ~SnapshotStore() override;

  SnapshotStore(const SnapshotStore&) = delete;
  SnapshotStore& operator=(const SnapshotStore&) = delete;

  /// online::SnapshotSink — called by the service after every accepted
  /// refresh. Registers the tenant on first publish.
  void publish(const std::string& tenant,
               const core::ConstantComponent& component, double provider_now,
               std::uint64_t refresh) override;

  /// A pinned snapshot reference: holds the epoch read guard for its
  /// lifetime, so the pointed-to snapshot cannot be reclaimed while the
  /// Ref is alive. Check operator bool — a tenant that never published
  /// yields an empty Ref.
  class Ref {
   public:
    Ref(EpochDomain::Reader& reader, const std::atomic<const ConstantSnapshot*>* slot)
        : guard_(reader),
          snapshot_(slot == nullptr
                        ? nullptr
                        : slot->load(std::memory_order_seq_cst)) {}

    explicit operator bool() const { return snapshot_ != nullptr; }
    const ConstantSnapshot& operator*() const { return *snapshot_; }
    const ConstantSnapshot* operator->() const { return snapshot_; }
    const ConstantSnapshot* get() const { return snapshot_; }

   private:
    EpochDomain::ReadGuard guard_;
    const ConstantSnapshot* snapshot_;
  };

  /// Wait-free: pin the current snapshot of tenant slot `tenant_index`
  /// (from find() or publish order). Allocation-free.
  Ref acquire(std::size_t tenant_index, EpochDomain::Reader& reader) const;

  /// Tenant slot index for a name, or npos. Allocation-free, lock-free
  /// (names are immutable once registered).
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t find(const std::string& tenant) const;

  std::size_t tenant_count() const {
    return count_.load(std::memory_order_acquire);
  }
  const std::string& tenant_name(std::size_t tenant_index) const;
  /// Current version of a tenant slot (0 = never published).
  std::uint64_t version(std::size_t tenant_index) const;

  /// Total snapshots ever published (all tenants).
  std::uint64_t published_total() const {
    return published_total_.load(std::memory_order_relaxed);
  }

  EpochDomain& epoch() const { return *epoch_; }

  /// Invoked after every publish with (tenant_index, new_version), on
  /// the publishing thread — the serving front end uses it to drop
  /// plan-cache entries of superseded versions. Set before traffic.
  void set_publish_hook(
      std::function<void(std::size_t, std::uint64_t)> hook) {
    publish_hook_ = std::move(hook);
  }

 private:
  struct alignas(64) TenantSlot {
    std::string name;  // immutable once the slot is visible
    std::atomic<const ConstantSnapshot*> current{nullptr};
    std::atomic<std::uint64_t> version{0};
  };

  /// Find-or-register the slot for `tenant` (writer side).
  std::size_t writer_slot(const std::string& tenant);

  EpochDomain* epoch_;
  std::array<TenantSlot, kMaxTenants> slots_;
  std::atomic<std::size_t> count_{0};
  std::mutex register_mutex_;
  std::atomic<std::uint64_t> published_total_{0};
  std::function<void(std::size_t, std::uint64_t)> publish_hook_;
};

}  // namespace netconst::serving
