// Epoch-based reclamation for the serving read path (RCU-style).
//
// The serving front end publishes immutable objects (constant snapshots,
// cached plans) that query threads dereference without locks. Writers
// replace a published pointer and hand the old object to an EpochDomain,
// which frees it only after every reader that could still hold it has
// finished — the classic read-copy-update contract, implemented with
// per-reader epoch announcement slots:
//
//  * a reader thread registers once (Reader claims a cache-line-sized
//    announcement slot) and brackets each query in a ReadGuard. Entering
//    a guard is wait-free: one seq_cst load of the domain epoch and one
//    seq_cst store into the slot — no loops, no CAS, no waiting on
//    writers or other readers;
//  * a writer retires an object after unlinking it from every shared
//    location. retire() stamps the object with the current epoch and
//    advances the epoch; reclaim() frees every retired object whose
//    stamp is below the minimum epoch announced by any active reader.
//
// Why this is safe (the only subtle point): a reader that obtained a
// retired pointer must have loaded it before the writer unlinked it, so
// its announcement — which precedes its pointer load in its own program
// order — is visible to any reclaim() scan that runs after the unlink,
// and the announced epoch is <= the retire stamp. reclaim() therefore
// keeps the object. A reader that announces an epoch above the stamp
// provably loads the replacement pointer instead (all the operations
// involved are seq_cst, so they are totally ordered).
//
// Writers serialize on one mutex (publish/retire/reclaim are off the
// query path); readers never take it.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace netconst::serving {

class EpochDomain {
 public:
  /// Maximum simultaneously registered reader threads.
  static constexpr std::size_t kMaxReaders = 64;

  EpochDomain() = default;
  /// Frees everything still retired. No Reader may outlive the domain.
  ~EpochDomain();

  EpochDomain(const EpochDomain&) = delete;
  EpochDomain& operator=(const EpochDomain&) = delete;

  class ReadGuard;

  /// A registered reader thread: claims one announcement slot for its
  /// lifetime. Cheap enough to create per thread, not per query —
  /// create one Reader per querying thread and reuse it.
  class Reader {
   public:
    /// Throws ContractViolation when kMaxReaders threads are already
    /// registered.
    explicit Reader(EpochDomain& domain);
    ~Reader();

    Reader(const Reader&) = delete;
    Reader& operator=(const Reader&) = delete;

    EpochDomain& domain() const { return *domain_; }

   private:
    friend class ReadGuard;
    EpochDomain* domain_;
    std::size_t slot_;
  };

  /// RAII critical-section bracket. While alive, any pointer acquired
  /// from an epoch-protected location stays valid. Entering and leaving
  /// are wait-free (one atomic store each, plus one load on entry).
  class ReadGuard {
   public:
    explicit ReadGuard(Reader& reader)
        : epoch_slot_(&reader.domain_->slots_[reader.slot_].epoch) {
      epoch_slot_->store(
          reader.domain_->epoch_.load(std::memory_order_seq_cst),
          std::memory_order_seq_cst);
    }
    ~ReadGuard() { epoch_slot_->store(0, std::memory_order_release); }

    ReadGuard(const ReadGuard&) = delete;
    ReadGuard& operator=(const ReadGuard&) = delete;

   private:
    std::atomic<std::uint64_t>* epoch_slot_;
  };

  /// Hand an unlinked object to the domain; it is deleted (via the
  /// typed deleter) once every reader epoch at or below the current
  /// epoch has drained. Null pointers are ignored.
  template <typename T>
  void retire(const T* object) {
    retire_raw(const_cast<T*>(object),
               [](void* p) { delete static_cast<T*>(p); });
  }

  /// Free every retired object no active reader can still reference.
  /// Returns the number of objects freed. Writers call this
  /// opportunistically (every publish) — it scans kMaxReaders slots.
  std::size_t reclaim();

  /// Objects retired and not yet freed.
  std::size_t pending() const;
  /// Lifetime totals (telemetry).
  std::uint64_t retired_total() const {
    return retired_total_.load(std::memory_order_relaxed);
  }
  std::uint64_t reclaimed_total() const {
    return reclaimed_total_.load(std::memory_order_relaxed);
  }
  /// Currently registered readers.
  std::size_t reader_count() const;
  /// Current epoch (monotone; telemetry and tests).
  std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> epoch{0};  // 0 = quiescent
    std::atomic<bool> used{false};
  };

  struct Retired {
    void* object;
    void (*deleter)(void*);
    std::uint64_t epoch;  // stamp at retire time
  };

  void retire_raw(void* object, void (*deleter)(void*));
  /// Minimum epoch announced by any active reader (max-u64 if none).
  std::uint64_t min_active_epoch() const;

  std::atomic<std::uint64_t> epoch_{1};
  Slot slots_[kMaxReaders];
  mutable std::mutex writer_mutex_;
  std::vector<Retired> limbo_;
  std::atomic<std::uint64_t> retired_total_{0};
  std::atomic<std::uint64_t> reclaimed_total_{0};
};

}  // namespace netconst::serving
