#include "serving/epoch.hpp"

#include <algorithm>
#include <limits>

#include "support/error.hpp"

namespace netconst::serving {

EpochDomain::~EpochDomain() {
  // Destruction requires quiescence by contract (no Reader outlives the
  // domain), so everything in limbo is safe to free.
  std::lock_guard<std::mutex> lock(writer_mutex_);
  for (const Retired& entry : limbo_) entry.deleter(entry.object);
  reclaimed_total_.fetch_add(limbo_.size(), std::memory_order_relaxed);
  limbo_.clear();
}

EpochDomain::Reader::Reader(EpochDomain& domain) : domain_(&domain) {
  slot_ = kMaxReaders;
  for (std::size_t k = 0; k < kMaxReaders; ++k) {
    bool expected = false;
    if (domain.slots_[k].used.compare_exchange_strong(
            expected, true, std::memory_order_acq_rel)) {
      slot_ = k;
      break;
    }
  }
  // Registration is per thread, not per query; running out of slots is
  // a deployment error, not a load condition.
  NETCONST_CHECK(slot_ < kMaxReaders,
                 "EpochDomain reader limit (kMaxReaders) exceeded");
}

EpochDomain::Reader::~Reader() {
  domain_->slots_[slot_].epoch.store(0, std::memory_order_release);
  domain_->slots_[slot_].used.store(false, std::memory_order_release);
}

void EpochDomain::retire_raw(void* object, void (*deleter)(void*)) {
  if (object == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(writer_mutex_);
    limbo_.push_back({object, deleter,
                      epoch_.load(std::memory_order_seq_cst)});
  }
  retired_total_.fetch_add(1, std::memory_order_relaxed);
  // Advance the epoch so future readers announce a value above the
  // stamp — the signal that they can no longer reach the object.
  epoch_.fetch_add(1, std::memory_order_seq_cst);
}

std::uint64_t EpochDomain::min_active_epoch() const {
  std::uint64_t min_epoch = std::numeric_limits<std::uint64_t>::max();
  for (const Slot& slot : slots_) {
    const std::uint64_t announced =
        slot.epoch.load(std::memory_order_seq_cst);
    if (announced != 0) min_epoch = std::min(min_epoch, announced);
  }
  return min_epoch;
}

std::size_t EpochDomain::reclaim() {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  if (limbo_.empty()) return 0;
  const std::uint64_t safe_below = min_active_epoch();
  std::size_t freed = 0;
  auto keep = limbo_.begin();
  for (auto it = limbo_.begin(); it != limbo_.end(); ++it) {
    if (it->epoch < safe_below) {
      it->deleter(it->object);
      ++freed;
    } else {
      *keep++ = *it;
    }
  }
  limbo_.erase(keep, limbo_.end());
  reclaimed_total_.fetch_add(freed, std::memory_order_relaxed);
  return freed;
}

std::size_t EpochDomain::pending() const {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  return limbo_.size();
}

std::size_t EpochDomain::reader_count() const {
  std::size_t count = 0;
  for (const Slot& slot : slots_) {
    if (slot.used.load(std::memory_order_acquire)) ++count;
  }
  return count;
}

}  // namespace netconst::serving
