#include "serving/server.hpp"

#include <sstream>

#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"
#include "support/stopwatch.hpp"

namespace netconst::serving {

namespace {

constexpr const char* kJsonContentType = "application/json";

/// Observe a latency histogram on scope exit (success and error paths).
class LatencyScope {
 public:
  explicit LatencyScope(online::Histogram& histogram)
      : histogram_(&histogram) {}
  ~LatencyScope() { histogram_->observe(clock_.seconds()); }

 private:
  online::Histogram* histogram_;
  Stopwatch clock_;
};

void write_double(std::ostream& out, double value) {
  std::ostringstream os;
  os.precision(17);
  os << value;
  out << os.str();
}

HttpResponse bad_request(const std::string& message) {
  return {400, "text/plain; charset=utf-8", message + "\n"};
}

}  // namespace

ConstantServer::ConstantServer(online::ConstantFinderService& service,
                               const ConstantServerOptions& options)
    : service_(&service),
      store_(epoch_),
      plans_(epoch_, options.plan_cache_capacity),
      http_(options.http),
      healthz_seconds_(
          service.metrics().histogram("serving.http.healthz_seconds")),
      metrics_seconds_(
          service.metrics().histogram("serving.http.metrics_seconds")),
      telemetry_seconds_(
          service.metrics().histogram("serving.http.telemetry_seconds")),
      tenants_seconds_(
          service.metrics().histogram("serving.http.tenants_seconds")),
      snapshot_seconds_(
          service.metrics().histogram("serving.http.snapshot_seconds")),
      plan_seconds_(
          service.metrics().histogram("serving.http.plan_seconds")),
      publishes_(service.metrics().counter("serving.snapshots_published")),
      invalidations_(
          service.metrics().counter("serving.plans_invalidated")) {
  store_.set_publish_hook(
      [this](std::size_t tenant_index, std::uint64_t version) {
        publishes_.increment();
        const std::size_t dropped =
            plans_.invalidate_below(tenant_index, version);
        if (dropped > 0) {
          invalidations_.increment(static_cast<double>(dropped));
        }
      });
  service.set_snapshot_sink(&store_);
  http_reader_ = std::make_unique<EpochDomain::Reader>(epoch_);

  http_.route("/healthz",
              [this](const HttpRequest& r) { return handle_healthz(r); });
  http_.route("/metrics",
              [this](const HttpRequest& r) { return handle_metrics(r); });
  http_.route("/telemetry", [this](const HttpRequest& r) {
    return handle_telemetry(r);
  });
  http_.route("/tenants",
              [this](const HttpRequest& r) { return handle_tenants(r); });
  http_.route("/snapshot", [this](const HttpRequest& r) {
    return handle_snapshot(r);
  });
  http_.route("/plan",
              [this](const HttpRequest& r) { return handle_plan(r); });
}

ConstantServer::~ConstantServer() {
  http_.stop();
  // Detach before the store/cache members are torn down. The detach is
  // an atomic swap that blocks until every publish already in flight
  // has returned, so service drivers running concurrently can never
  // touch the store (or its publish hook) mid-destruction.
  if (service_->snapshot_sink() == &store_) {
    service_->set_snapshot_sink(nullptr);
  }
}

void ConstantServer::sync_serving_metrics() {
  const PlanCache::Stats cache = plans_.stats();
  online::MetricsRegistry& metrics = service_->metrics();
  metrics.gauge("serving.plan_cache.hits")
      .set(static_cast<double>(cache.hits));
  metrics.gauge("serving.plan_cache.misses")
      .set(static_cast<double>(cache.misses));
  metrics.gauge("serving.plan_cache.entries")
      .set(static_cast<double>(plans_.size()));
  metrics.gauge("serving.epoch.pending")
      .set(static_cast<double>(epoch_.pending()));
  metrics.gauge("serving.epoch.reclaimed")
      .set(static_cast<double>(epoch_.reclaimed_total()));
  const HttpServer::Stats http = http_.stats();
  metrics.gauge("serving.http.requests")
      .set(static_cast<double>(http.requests_served));
  metrics.gauge("serving.http.bad_requests")
      .set(static_cast<double>(http.bad_requests));
}

HttpResponse ConstantServer::handle_healthz(const HttpRequest&) {
  LatencyScope latency(healthz_seconds_);
  return {200, "text/plain; charset=utf-8", "ok\n"};
}

HttpResponse ConstantServer::handle_metrics(const HttpRequest&) {
  obs::Span span("serving.http.metrics");
  LatencyScope latency(metrics_seconds_);
  sync_serving_metrics();
  std::ostringstream out;
  service_->write_prometheus(out);
  return {200, obs::kPrometheusContentType, out.str()};
}

HttpResponse ConstantServer::handle_telemetry(const HttpRequest&) {
  obs::Span span("serving.http.telemetry");
  LatencyScope latency(telemetry_seconds_);
  sync_serving_metrics();
  std::ostringstream out;
  service_->write_json_snapshot(out);
  return {200, kJsonContentType, out.str()};
}

HttpResponse ConstantServer::handle_tenants(const HttpRequest&) {
  LatencyScope latency(tenants_seconds_);
  std::ostringstream out;
  out << "{\"tenants\":[";
  const std::size_t count = store_.tenant_count();
  for (std::size_t k = 0; k < count; ++k) {
    if (k > 0) out << ',';
    out << "{\"name\":\"" << obs::json_escape(store_.tenant_name(k))
        << "\",\"version\":" << store_.version(k) << '}';
  }
  out << "]}";
  return {200, kJsonContentType, out.str()};
}

HttpResponse ConstantServer::handle_snapshot(const HttpRequest& request) {
  obs::Span span("serving.http.snapshot");
  LatencyScope latency(snapshot_seconds_);
  static const std::string kEmpty;
  const std::string& tenant = request.query_value("tenant", kEmpty);
  if (tenant.empty()) return bad_request("missing ?tenant=");
  const std::size_t index = store_.find(tenant);
  if (index == SnapshotStore::npos) {
    return {404, "text/plain; charset=utf-8", "unknown tenant\n"};
  }
  const SnapshotStore::Ref ref = store_.acquire(index, *http_reader_);
  if (!ref) {
    return {503, "text/plain; charset=utf-8",
            "tenant has not published yet\n"};
  }

  const ConstantSnapshot& snapshot = *ref;
  const core::ConstantComponent& component = snapshot.component;
  std::ostringstream out;
  out << "{\"tenant\":\"" << obs::json_escape(snapshot.tenant)
      << "\",\"version\":" << snapshot.version
      << ",\"refresh\":" << snapshot.refresh << ",\"published_at\":";
  write_double(out, snapshot.published_at);
  out << ",\"cluster_size\":" << component.constant.size()
      << ",\"error_norm\":";
  write_double(out, component.error_norm);
  out << ",\"latency_error_norm\":";
  write_double(out, component.latency_error_norm);
  out << ",\"bandwidth_rank\":" << component.bandwidth_rank
      << ",\"latency_rank\":" << component.latency_rank;
  if (request.query_value("include", kEmpty) == "links") {
    const std::size_t n = component.constant.size();
    out << ",\"links\":[";
    bool first = true;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (i == j) continue;
        if (!first) out << ',';
        first = false;
        const netmodel::LinkParams link = component.constant.link(i, j);
        out << "{\"i\":" << i << ",\"j\":" << j << ",\"alpha\":";
        write_double(out, link.alpha);
        out << ",\"beta\":";
        write_double(out, link.beta);
        out << '}';
      }
    }
    out << ']';
  }
  out << '}';
  return {200, kJsonContentType, out.str()};
}

std::string ConstantServer::plan_json(const std::string& tenant,
                                      PlanKind kind,
                                      std::vector<std::size_t> nodes,
                                      std::size_t root, std::uint64_t bytes,
                                      EpochDomain::Reader& reader) {
  const std::size_t index = store_.find(tenant);
  NETCONST_CHECK(index != SnapshotStore::npos, "unknown tenant");
  const PlanRequest request =
      canonical_plan_request(kind, std::move(nodes), root, bytes);
  const SnapshotStore::Ref ref = store_.acquire(index, reader);
  NETCONST_CHECK(static_cast<bool>(ref), "tenant has not published yet");
  obs::Span span("serving.plan.lookup");
  const Plan* plan = plans_.lookup_or_compute(index, *ref, request);
  span.set_value(static_cast<double>(plan->version));
  return plan->json;
}

HttpResponse ConstantServer::handle_plan(const HttpRequest& request) {
  obs::Span span("serving.http.plan");
  LatencyScope latency(plan_seconds_);
  static const std::string kEmpty;
  static const std::string kTree = "tree";
  static const std::string kDefaultBytes = "8388608";

  const std::string& tenant = request.query_value("tenant", kEmpty);
  if (tenant.empty()) return bad_request("missing ?tenant=");
  const std::size_t index = store_.find(tenant);
  if (index == SnapshotStore::npos) {
    return {404, "text/plain; charset=utf-8", "unknown tenant\n"};
  }

  const std::string& kind_name = request.query_value("kind", kTree);
  PlanKind kind;
  if (kind_name == "tree" || kind_name == "broadcast_tree") {
    kind = PlanKind::BroadcastTree;
  } else if (kind_name == "mapping" || kind_name == "topology_mapping") {
    kind = PlanKind::TopologyMapping;
  } else {
    return bad_request("kind must be tree or mapping");
  }

  const std::string& node_list = request.query_value("nodes", kEmpty);
  if (node_list.empty()) return bad_request("missing ?nodes=0,1,2");
  std::vector<std::size_t> nodes;
  std::size_t cursor = 0;
  while (cursor <= node_list.size()) {
    std::size_t comma = node_list.find(',', cursor);
    if (comma == std::string::npos) comma = node_list.size();
    const std::string token = node_list.substr(cursor, comma - cursor);
    cursor = comma + 1;
    if (token.empty()) continue;
    try {
      nodes.push_back(std::stoul(token));
    } catch (const std::exception&) {
      return bad_request("nodes must be a comma-separated id list");
    }
  }

  std::size_t root = 0;
  std::uint64_t bytes = 0;
  try {
    root = std::stoul(request.query_value(
        "root", nodes.empty() ? std::string("0")
                              : std::to_string(nodes.front())));
    bytes = std::stoull(request.query_value("bytes", kDefaultBytes));
  } catch (const std::exception&) {
    return bad_request("root and bytes must be integers");
  }

  try {
    PlanRequest canonical =
        canonical_plan_request(kind, std::move(nodes), root, bytes);
    const SnapshotStore::Ref ref = store_.acquire(index, *http_reader_);
    if (!ref) {
      return {503, "text/plain; charset=utf-8",
              "tenant has not published yet\n"};
    }
    if (canonical.nodes.back() >= ref->component.constant.size()) {
      return bad_request("node id exceeds the tenant's cluster size");
    }
    const Plan* plan = plans_.lookup_or_compute(index, *ref, canonical);
    span.set_value(static_cast<double>(plan->version));
    return {200, kJsonContentType, plan->json};
  } catch (const ContractViolation& error) {
    return bad_request(error.what());
  }
}

}  // namespace netconst::serving
