#include "serving/http.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>

#include "support/error.hpp"

namespace netconst::serving {

const std::string& HttpRequest::query_value(
    const std::string& name, const std::string& fallback) const {
  for (const auto& [key, value] : query) {
    if (key == name) return value;
  }
  return fallback;
}

bool HttpRequest::has_query(const std::string& name) const {
  for (const auto& [key, value] : query) {
    if (key == name) return true;
  }
  return false;
}

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

std::string to_lower(std::string text) {
  std::transform(text.begin(), text.end(), text.begin(), [](char c) {
    return static_cast<char>(
        std::tolower(static_cast<unsigned char>(c)));
  });
  return text;
}

/// Percent-decode; '+' becomes a space (query-string convention).
std::string url_decode(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t k = 0; k < text.size(); ++k) {
    const char c = text[k];
    if (c == '+') {
      out.push_back(' ');
    } else if (c == '%' && k + 2 < text.size() &&
               std::isxdigit(static_cast<unsigned char>(text[k + 1])) &&
               std::isxdigit(static_cast<unsigned char>(text[k + 2]))) {
      const auto nibble = [](char h) -> int {
        if (h >= '0' && h <= '9') return h - '0';
        if (h >= 'a' && h <= 'f') return h - 'a' + 10;
        return h - 'A' + 10;
      };
      out.push_back(static_cast<char>(nibble(text[k + 1]) * 16 +
                                      nibble(text[k + 2])));
      k += 2;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

struct HttpServer::Connection {
  int fd = -1;
  std::string input;   // bytes received, request head accumulating
  std::string output;  // bytes pending write
  bool close_after_write = false;
};

HttpServer::HttpServer(const Options& options) : options_(options) {}

HttpServer::~HttpServer() { stop(); }

void HttpServer::route(const std::string& path, HttpHandler handler) {
  NETCONST_CHECK(!running(), "routes must be registered before start()");
  NETCONST_CHECK(!path.empty() && path.front() == '/',
                 "route path must start with '/'");
  routes_[path] = std::move(handler);
}

const char* HttpServer::status_phrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 413:
      return "Content Too Large";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
  }
  return "Unknown";
}

void HttpServer::start() {
  NETCONST_CHECK(!running(), "server already started");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw Error("http: socket() failed");

  const int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable,
               sizeof(enable));

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(),
                  &address.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error("http: invalid bind address " + options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&address),
             sizeof(address)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error("http: bind/listen failed on " + options_.bind_address +
                ":" + std::to_string(options_.port));
  }
  socklen_t address_len = sizeof(address);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&address),
                &address_len);
  port_ = ntohs(address.sin_port);
  set_nonblocking(listen_fd_);

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error("http: pipe() failed");
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  set_nonblocking(wake_read_fd_);

  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { event_loop(); });
}

void HttpServer::stop() {
  std::lock_guard<std::mutex> lock(stop_mutex_);
  if (!running()) return;
  stopping_.store(true, std::memory_order_release);
  const char wake = 'x';
  [[maybe_unused]] const auto written =
      ::write(wake_write_fd_, &wake, 1);
  if (thread_.joinable()) thread_.join();
  for (Connection* connection : connections_) {
    ::close(connection->fd);
    delete connection;
  }
  connections_.clear();
  ::close(listen_fd_);
  ::close(wake_read_fd_);
  ::close(wake_write_fd_);
  listen_fd_ = wake_read_fd_ = wake_write_fd_ = -1;
  running_.store(false, std::memory_order_release);
}

void HttpServer::accept_connections() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error: poll again later
    if (connections_.size() >= options_.max_connections) {
      refused_.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    set_nonblocking(fd);
    const int enable = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
    auto* connection = new Connection;
    connection->fd = fd;
    connections_.push_back(connection);
    accepted_.fetch_add(1, std::memory_order_relaxed);
  }
}

HttpResponse HttpServer::dispatch(const HttpRequest& request) {
  const auto it = routes_.find(request.path);
  if (it == routes_.end()) {
    not_found_.fetch_add(1, std::memory_order_relaxed);
    return {404, "text/plain; charset=utf-8", "not found\n"};
  }
  try {
    return it->second(request);
  } catch (const std::exception& error) {
    return {500, "text/plain; charset=utf-8",
            std::string("internal error: ") + error.what() + "\n"};
  }
}

bool HttpServer::service_input(Connection& connection) {
  // Process every complete request head in the buffer (pipelining-safe,
  // though clients here send one at a time).
  for (;;) {
    const std::size_t head_end = connection.input.find("\r\n\r\n");
    if (head_end == std::string::npos) {
      if (connection.input.size() > options_.max_request_bytes) {
        bad_.fetch_add(1, std::memory_order_relaxed);
        connection.output +=
            "HTTP/1.1 413 Content Too Large\r\nContent-Length: 0\r\n"
            "Connection: close\r\n\r\n";
        connection.close_after_write = true;
        // Drop the oversized head: the connection only drains its
        // output from here on (the event loop stops reading once
        // close_after_write is set), so the bytes are dead weight.
        connection.input.clear();
      }
      return true;
    }

    // ---- Parse the request line.
    const std::string head = connection.input.substr(0, head_end);
    connection.input.erase(0, head_end + 4);
    const std::size_t line_end = head.find("\r\n");
    const std::string request_line =
        line_end == std::string::npos ? head : head.substr(0, line_end);
    const std::size_t method_end = request_line.find(' ');
    const std::size_t target_end =
        method_end == std::string::npos
            ? std::string::npos
            : request_line.find(' ', method_end + 1);
    if (method_end == std::string::npos ||
        target_end == std::string::npos ||
        request_line.compare(target_end + 1, 5, "HTTP/") != 0) {
      bad_.fetch_add(1, std::memory_order_relaxed);
      connection.output +=
          "HTTP/1.1 400 Bad Request\r\nContent-Length: 0\r\n"
          "Connection: close\r\n\r\n";
      connection.close_after_write = true;
      return true;
    }

    HttpRequest request;
    request.method = request_line.substr(0, method_end);
    const std::string target =
        request_line.substr(method_end + 1, target_end - method_end - 1);
    const std::size_t question = target.find('?');
    request.path = url_decode(target.substr(0, question));
    if (question != std::string::npos) {
      // key=value&key=value...
      std::size_t cursor = question + 1;
      while (cursor <= target.size()) {
        std::size_t amp = target.find('&', cursor);
        if (amp == std::string::npos) amp = target.size();
        const std::string pair = target.substr(cursor, amp - cursor);
        if (!pair.empty()) {
          const std::size_t eq = pair.find('=');
          request.query.emplace_back(
              url_decode(pair.substr(0, eq)),
              eq == std::string::npos ? std::string()
                                      : url_decode(pair.substr(eq + 1)));
        }
        cursor = amp + 1;
      }
    }

    // ---- Headers (lower-cased names, trimmed values).
    std::size_t cursor = line_end == std::string::npos ? head.size()
                                                       : line_end + 2;
    bool keep_alive = true;  // HTTP/1.1 default
    while (cursor < head.size()) {
      std::size_t eol = head.find("\r\n", cursor);
      if (eol == std::string::npos) eol = head.size();
      const std::string line = head.substr(cursor, eol - cursor);
      cursor = eol + 2;
      const std::size_t colon = line.find(':');
      if (colon == std::string::npos) continue;
      std::string value = line.substr(colon + 1);
      const std::size_t first = value.find_first_not_of(" \t");
      value.erase(0, first == std::string::npos ? value.size() : first);
      request.headers.emplace_back(to_lower(line.substr(0, colon)),
                                   std::move(value));
    }
    for (const auto& [name, value] : request.headers) {
      if (name == "connection" && to_lower(value) == "close") {
        keep_alive = false;
      }
    }

    // ---- Dispatch and serialize.
    HttpResponse response;
    const bool head_only = request.method == "HEAD";
    if (request.method != "GET" && !head_only) {
      bad_.fetch_add(1, std::memory_order_relaxed);
      response = {405, "text/plain; charset=utf-8",
                  "only GET and HEAD are supported\n"};
      keep_alive = false;
    } else {
      response = dispatch(request);
    }
    served_.fetch_add(1, std::memory_order_relaxed);

    connection.output += "HTTP/1.1 " + std::to_string(response.status) +
                         ' ' + status_phrase(response.status) + "\r\n";
    connection.output +=
        "Content-Type: " + response.content_type + "\r\n";
    connection.output +=
        "Content-Length: " + std::to_string(response.body.size()) +
        "\r\n";
    connection.output += keep_alive ? "Connection: keep-alive\r\n\r\n"
                                    : "Connection: close\r\n\r\n";
    if (!head_only) connection.output += response.body;
    if (!keep_alive) {
      connection.close_after_write = true;
      return true;
    }
  }
}

void HttpServer::event_loop() {
  std::vector<pollfd> poll_fds;
  while (!stopping_.load(std::memory_order_acquire)) {
    poll_fds.clear();
    poll_fds.push_back({listen_fd_, POLLIN, 0});
    poll_fds.push_back({wake_read_fd_, POLLIN, 0});
    for (const Connection* connection : connections_) {
      short events = POLLIN;
      if (!connection->output.empty()) events |= POLLOUT;
      poll_fds.push_back({connection->fd, events, 0});
    }

    if (::poll(poll_fds.data(), poll_fds.size(), 250) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (poll_fds[1].revents != 0) {
      char drain[64];
      while (::read(wake_read_fd_, drain, sizeof(drain)) > 0) {
      }
    }
    if (poll_fds[0].revents != 0) accept_connections();

    // poll_fds only covers connections that existed when poll() was
    // called; accept_connections() may have appended new ones since, so
    // bound the walk by the polled entries, not connections_.size().
    // New connections are picked up by the next poll cycle.
    std::size_t index = 2;
    for (std::size_t k = 0;
         index < poll_fds.size() && k < connections_.size();
         ++index, ++k) {
      Connection& connection = *connections_[k];
      const short revents = poll_fds[index].revents;
      bool alive = (revents & (POLLERR | POLLNVAL)) == 0;

      // A connection marked close_after_write is drain-only: reading
      // more input could queue further responses (e.g. a second 413 for
      // the same oversized head) that the peer must never see.
      if (alive && !connection.close_after_write &&
          (revents & (POLLIN | POLLHUP)) != 0) {
        char buffer[4096];
        for (;;) {
          const ssize_t received =
              ::recv(connection.fd, buffer, sizeof(buffer), 0);
          if (received > 0) {
            connection.input.append(buffer,
                                    static_cast<std::size_t>(received));
            if (connection.input.size() >
                options_.max_request_bytes + sizeof(buffer)) {
              break;  // service_input answers 413 below
            }
          } else if (received == 0) {
            alive = false;  // peer closed
            break;
          } else {
            if (errno != EAGAIN && errno != EWOULDBLOCK) alive = false;
            break;
          }
        }
        if (!connection.input.empty() && !service_input(connection)) {
          alive = false;
        }
      }

      if (alive && !connection.output.empty()) {
        const ssize_t sent =
            ::send(connection.fd, connection.output.data(),
                   connection.output.size(), MSG_NOSIGNAL);
        if (sent > 0) {
          connection.output.erase(0, static_cast<std::size_t>(sent));
        } else if (sent < 0 && errno != EAGAIN && errno != EWOULDBLOCK) {
          alive = false;
        }
        if (connection.output.empty() && connection.close_after_write) {
          alive = false;
        }
      }

      if (!alive) {
        ::close(connection.fd);
        delete connections_[k];
        connections_.erase(connections_.begin() +
                           static_cast<std::ptrdiff_t>(k));
        --k;
      }
    }
  }
}

HttpServer::Stats HttpServer::stats() const {
  Stats stats;
  stats.connections_accepted = accepted_.load(std::memory_order_relaxed);
  stats.connections_refused = refused_.load(std::memory_order_relaxed);
  stats.requests_served = served_.load(std::memory_order_relaxed);
  stats.bad_requests = bad_.load(std::memory_order_relaxed);
  stats.not_found = not_found_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace netconst::serving
