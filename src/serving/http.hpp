// Embedded HTTP/1.1 endpoint: a small, dependency-free (std + POSIX)
// poll(2) event loop on one background thread.
//
// Scope is deliberately narrow — the serving front end needs GET/HEAD
// with query strings, keep-alive, and exact Content-Type control; it
// does not need TLS, chunked bodies, or route templates. Handlers run
// on the server thread; they must be thread-safe against the
// application's other threads (the serving handlers only touch
// epoch-protected snapshots and thread-safe registries).
//
// Robustness rules: request heads are capped at max_request_bytes
// (oversized or malformed requests get a 4xx and the connection is
// closed), idle keep-alive connections are bounded by max_connections
// (accepts beyond it are refused), and partial writes are buffered and
// drained via POLLOUT. stop() (or destruction) wakes the loop through
// a self-pipe and joins the thread.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace netconst::serving {

struct HttpRequest {
  std::string method;  // upper-case: "GET", "HEAD"
  std::string path;    // percent-decoded, no query string
  /// Query parameters in order of appearance, percent-decoded.
  std::vector<std::pair<std::string, std::string>> query;
  /// Header fields, names lower-cased.
  std::vector<std::pair<std::string, std::string>> headers;

  /// First value of a query parameter, or `fallback`.
  const std::string& query_value(const std::string& name,
                                 const std::string& fallback) const;
  bool has_query(const std::string& name) const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

struct HttpServerOptions {
  /// Loopback by default: the embedded endpoint is an operator /
  /// sidecar surface, not an internet listener.
  std::string bind_address = "127.0.0.1";
  /// 0 = ephemeral (read the outcome from port() after start()).
  std::uint16_t port = 0;
  std::size_t max_connections = 32;
  std::size_t max_request_bytes = 16 * 1024;
};

class HttpServer {
 public:
  using Options = HttpServerOptions;

  struct Stats {
    std::uint64_t connections_accepted = 0;
    std::uint64_t connections_refused = 0;
    std::uint64_t requests_served = 0;
    std::uint64_t bad_requests = 0;
    std::uint64_t not_found = 0;
  };

  explicit HttpServer(const Options& options = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Register an exact-match route (before start()). GET and HEAD hit
  /// the same handler; HEAD responses drop the body automatically.
  void route(const std::string& path, HttpHandler handler);

  /// Bind, listen, and run the event loop on a background thread.
  /// Throws netconst::Error when the socket cannot be set up.
  void start();
  /// Idempotent and safe to call from multiple threads (one caller
  /// performs the join/cleanup, the rest wait); also called by the
  /// destructor.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (valid after start()).
  std::uint16_t port() const { return port_; }

  Stats stats() const;

  /// Reason phrase for the few status codes the server emits.
  static const char* status_phrase(int status);

 private:
  struct Connection;

  void event_loop();
  void accept_connections();
  /// Returns false when the connection must be closed.
  bool service_input(Connection& connection);
  HttpResponse dispatch(const HttpRequest& request);

  Options options_;
  std::map<std::string, HttpHandler> routes_;
  /// Serializes stop() callers: without it, two threads passing the
  /// running() check would both join the thread and close the fds.
  std::mutex stop_mutex_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  std::uint16_t port_ = 0;
  std::vector<Connection*> connections_;

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> refused_{0};
  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> bad_{0};
  std::atomic<std::uint64_t> not_found_{0};
};

}  // namespace netconst::serving
