// Plan requests and plans: "the best FNF tree / topology mapping for
// this node set", computed from one published constant snapshot.
//
// A PlanRequest is canonicalized before it is used as a cache key: the
// node set is sorted and deduplicated, so permuted spellings of the
// same request share one cache entry and one plan. compute_plan() is a
// pure function of (snapshot component, canonical request) — it calls
// the src/mapping and src/collective planners on the snapshot's
// performance matrix restricted to the requested nodes, and serializes
// the result to JSON exactly once. Serving a plan from the cache is
// therefore byte-identical to planning directly at the same snapshot
// version, which is what the determinism tests and bench_serving pin.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "mapping/mapping.hpp"
#include "serving/snapshot_store.hpp"

namespace netconst::serving {

enum class PlanKind {
  /// Fastest-Node-First broadcast tree over the node set (the paper's
  /// collective optimization), rooted at `root`.
  BroadcastTree,
  /// Task -> node topology mapping (greedy + 2-swap refinement) for a
  /// dense uniform task graph of `bytes` per ordered pair.
  TopologyMapping,
};

const char* plan_kind_name(PlanKind kind);

struct PlanRequest {
  PlanKind kind = PlanKind::BroadcastTree;
  /// Canonical: sorted ascending, no duplicates, all < cluster size.
  std::vector<std::size_t> nodes;
  /// BroadcastTree only: must be a member of `nodes`.
  std::size_t root = 0;
  /// Message size driving the weight matrix / task volumes.
  std::uint64_t bytes = 8ull * 1024 * 1024;

  bool operator==(const PlanRequest&) const = default;
};

/// Sort + dedup the node set (permuted requests become one key) and
/// validate: >= 2 nodes and, for BroadcastTree, root in the set.
/// Throws ContractViolation on an unsatisfiable request.
PlanRequest canonical_plan_request(PlanKind kind,
                                   std::vector<std::size_t> nodes,
                                   std::size_t root, std::uint64_t bytes);

/// FNV-1a over the canonical request plus the (tenant, version) the
/// plan would be computed at. Allocation-free.
std::uint64_t plan_request_hash(std::size_t tenant_index,
                                std::uint64_t version,
                                const PlanRequest& request);

/// An immutable computed plan. `json` is the exact HTTP response body —
/// built once at compute time so the cache-hit path serves bytes
/// without formatting (or allocating) anything.
struct Plan {
  PlanRequest request;  // canonical
  std::string tenant;
  std::uint64_t version = 0;  // snapshot version the plan was planned at
  /// BroadcastTree: edges in send order, node ids from the request set.
  struct TreeEdge {
    std::size_t parent = 0;
    std::size_t child = 0;
    bool operator==(const TreeEdge&) const = default;
  };
  std::vector<TreeEdge> edges;
  /// TopologyMapping: task k runs on node assignment[k] (node ids from
  /// the request set).
  std::vector<std::size_t> assignment;
  /// Alpha-beta predicted completion time of the planned operation.
  double predicted_seconds = 0.0;
  std::string json;
};

/// Pure planner: restrict the snapshot's constant performance matrix to
/// the request's nodes and run the mapping/collective planners.
/// Requires a canonical request (see canonical_plan_request) whose node
/// ids are all below the snapshot's cluster size.
Plan compute_plan(const ConstantSnapshot& snapshot,
                  const PlanRequest& request);

}  // namespace netconst::serving
