// Memoized plan cache: one planner run per (snapshot version,
// canonical request shape), every subsequent hit lock-free.
//
// The table is fixed-capacity open addressing over atomic entry
// pointers. Entries are immutable once published, so the hit path is:
// hash the canonical request (no allocation), probe a bounded window of
// seq_cst pointer loads, compare keys, return the entry's plan — zero
// locks, zero allocations, zero stores. The caller must hold an
// EpochDomain read guard (the same guard that pins the snapshot) for
// as long as it uses the returned plan.
//
// Invalidation is exact and free: the snapshot version is part of the
// key, so a version bump makes every older entry unreachable by
// construction. The store's publish hook calls invalidate_below() to
// unlink superseded entries and retire them through the epoch domain —
// memory is reclaimed once the last in-flight reader drains, never
// under one.
//
// Misses compute the plan (outside any lock — planning is the
// expensive part), then publish the entry with a CAS: losing a race to
// an identical concurrent insert just means serving the winner and
// retiring the duplicate. When the probe window has no free or
// replaceable slot, the plan is still served — the entry goes straight
// to the limbo list (valid until the caller's guard drains), counted
// in stats().uncached.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "serving/epoch.hpp"
#include "serving/plan.hpp"
#include "serving/snapshot_store.hpp"

namespace netconst::serving {

class PlanCache {
 public:
  /// Probe window: slots inspected per lookup before declaring the
  /// region full.
  static constexpr std::size_t kProbeWindow = 16;

  /// `capacity` is rounded up to a power of two (minimum 64).
  explicit PlanCache(EpochDomain& epoch, std::size_t capacity = 4096);
  ~PlanCache();

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// The hit path. Returns the cached plan for (tenant_index,
  /// snapshot.version, request), computing and inserting it on a miss.
  /// Requires: `request` canonical, an active ReadGuard on the epoch
  /// domain held while the returned plan is used, and `snapshot`
  /// acquired under that same guard.
  const Plan* lookup_or_compute(std::size_t tenant_index,
                                const ConstantSnapshot& snapshot,
                                const PlanRequest& request);

  /// Probe only (no compute, no insert): the pure wait-free hit path,
  /// nullptr on a miss. Same guard contract as lookup_or_compute.
  const Plan* find(std::size_t tenant_index, std::uint64_t version,
                   const PlanRequest& request) const;

  /// Unlink every entry of `tenant_index` with version < `version` and
  /// retire it. Called from the snapshot store's publish hook; unlike
  /// the query paths it needs no caller-held guard — the scan pins the
  /// cache's own reader slot (concurrent callers serialize on it),
  /// so entries a racing stale-replacement retires cannot be reclaimed
  /// and re-inserted (ABA) mid-traversal.
  std::size_t invalidate_below(std::size_t tenant_index,
                               std::uint64_t version);

  std::size_t capacity() const { return mask_ + 1; }
  /// Entries currently linked in the table.
  std::size_t size() const;

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;        // computed and inserted
    std::uint64_t uncached = 0;      // computed, probe window full
    std::uint64_t insert_races = 0;  // lost a CAS to an identical insert
    std::uint64_t invalidated = 0;   // entries dropped by version bumps
    std::uint64_t replaced = 0;      // stale entries overwritten in place
  };
  Stats stats() const;

 private:
  struct Entry {
    std::uint64_t hash = 0;
    std::size_t tenant = 0;
    Plan plan;  // plan.version / plan.request complete the key
  };

  bool matches(const Entry& entry, std::uint64_t hash,
               std::size_t tenant_index, std::uint64_t version,
               const PlanRequest& request) const;

  EpochDomain* epoch_;
  std::size_t mask_;  // capacity - 1 (power of two)
  std::vector<std::atomic<const Entry*>> table_;
  /// Reader slot pinned across invalidate_below scans; one slot, so
  /// concurrent invalidators serialize on the mutex (publish path only).
  std::mutex invalidate_mutex_;
  EpochDomain::Reader invalidate_reader_;

  mutable std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> uncached_{0};
  std::atomic<std::uint64_t> insert_races_{0};
  std::atomic<std::uint64_t> invalidated_{0};
  std::atomic<std::uint64_t> replaced_{0};
};

}  // namespace netconst::serving
