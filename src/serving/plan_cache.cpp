#include "serving/plan_cache.hpp"

#include "obs/trace.hpp"
#include "support/error.hpp"

namespace netconst::serving {

namespace {

std::size_t round_up_pow2(std::size_t value) {
  std::size_t pow2 = 64;
  while (pow2 < value) pow2 <<= 1;
  return pow2;
}

}  // namespace

PlanCache::PlanCache(EpochDomain& epoch, std::size_t capacity)
    : epoch_(&epoch),
      mask_(round_up_pow2(capacity) - 1),
      table_(mask_ + 1),
      invalidate_reader_(epoch) {}

PlanCache::~PlanCache() {
  for (std::atomic<const Entry*>& slot : table_) {
    epoch_->retire(slot.exchange(nullptr, std::memory_order_seq_cst));
  }
  epoch_->reclaim();
}

bool PlanCache::matches(const Entry& entry, std::uint64_t hash,
                        std::size_t tenant_index, std::uint64_t version,
                        const PlanRequest& request) const {
  return entry.hash == hash && entry.tenant == tenant_index &&
         entry.plan.version == version && entry.plan.request == request;
}

const Plan* PlanCache::find(std::size_t tenant_index, std::uint64_t version,
                            const PlanRequest& request) const {
  const std::uint64_t hash =
      plan_request_hash(tenant_index, version, request);
  for (std::size_t k = 0; k < kProbeWindow; ++k) {
    const Entry* entry =
        table_[(hash + k) & mask_].load(std::memory_order_seq_cst);
    if (entry != nullptr &&
        matches(*entry, hash, tenant_index, version, request)) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return &entry->plan;
    }
  }
  return nullptr;
}

const Plan* PlanCache::lookup_or_compute(std::size_t tenant_index,
                                         const ConstantSnapshot& snapshot,
                                         const PlanRequest& request) {
  if (const Plan* cached = find(tenant_index, snapshot.version, request)) {
    return cached;
  }

  // Miss: plan outside any lock — planning dominates, and concurrent
  // identical misses just race to insert (loser retires its copy).
  obs::Span span("serving.plan.compute");
  const std::uint64_t hash =
      plan_request_hash(tenant_index, snapshot.version, request);
  auto* fresh = new Entry;
  fresh->hash = hash;
  fresh->tenant = tenant_index;
  fresh->plan = compute_plan(snapshot, request);
  span.set_value(static_cast<double>(request.nodes.size()));

  for (std::size_t k = 0; k < kProbeWindow; ++k) {
    std::atomic<const Entry*>& slot = table_[(hash + k) & mask_];
    const Entry* current = slot.load(std::memory_order_seq_cst);
    for (;;) {
      if (current != nullptr &&
          matches(*current, hash, tenant_index, snapshot.version,
                  request)) {
        // An identical insert won the race; ours was never visible.
        insert_races_.fetch_add(1, std::memory_order_relaxed);
        const Plan* winner = &current->plan;
        delete fresh;
        return winner;
      }
      const bool empty = current == nullptr;
      // A same-tenant entry of an older version is dead weight (its
      // version can never be queried through the store again): replace
      // it in place instead of walking further.
      const bool stale = current != nullptr &&
                         current->tenant == tenant_index &&
                         current->plan.version < snapshot.version;
      if (!empty && !stale) break;  // occupied by live data; next slot
      if (slot.compare_exchange_strong(current, fresh,
                                       std::memory_order_seq_cst)) {
        if (stale) {
          epoch_->retire(current);
          replaced_.fetch_add(1, std::memory_order_relaxed);
        }
        misses_.fetch_add(1, std::memory_order_relaxed);
        return &fresh->plan;
      }
      // CAS refreshed `current`; re-evaluate the slot.
    }
  }

  // Probe window exhausted: serve the plan anyway. Retiring the entry
  // now is safe — the caller's read guard pins it until released.
  uncached_.fetch_add(1, std::memory_order_relaxed);
  const Plan* plan = &fresh->plan;
  epoch_->retire(static_cast<const Entry*>(fresh));
  return plan;
}

std::size_t PlanCache::invalidate_below(std::size_t tenant_index,
                                        std::uint64_t version) {
  // The scan dereferences entries it has not unlinked yet, so it must
  // run under an epoch read guard: without one, a query thread can
  // stale-replace and retire the entry we just loaded, and a concurrent
  // publish for another tenant can reclaim() it — a use-after-free on
  // the key compare, and (if the freed address is reused by a new
  // insert in the same slot) an ABA double-retire on the CAS. The guard
  // pins every entry loaded below until the scan finishes. Publishing
  // threads hold no Reader of their own, so the cache keeps one slot
  // for this purpose; the mutex serializes concurrent invalidators
  // (different-tenant publishes) onto it.
  std::lock_guard<std::mutex> lock(invalidate_mutex_);
  EpochDomain::ReadGuard guard(invalidate_reader_);
  std::size_t dropped = 0;
  for (std::atomic<const Entry*>& slot : table_) {
    const Entry* entry = slot.load(std::memory_order_seq_cst);
    if (entry == nullptr || entry->tenant != tenant_index ||
        entry->plan.version >= version) {
      continue;
    }
    if (slot.compare_exchange_strong(entry, nullptr,
                                     std::memory_order_seq_cst)) {
      epoch_->retire(entry);
      ++dropped;
    }
  }
  if (dropped > 0) {
    invalidated_.fetch_add(dropped, std::memory_order_relaxed);
  }
  return dropped;
}

std::size_t PlanCache::size() const {
  std::size_t count = 0;
  for (const std::atomic<const Entry*>& slot : table_) {
    if (slot.load(std::memory_order_acquire) != nullptr) ++count;
  }
  return count;
}

PlanCache::Stats PlanCache::stats() const {
  Stats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.uncached = uncached_.load(std::memory_order_relaxed);
  stats.insert_races = insert_races_.load(std::memory_order_relaxed);
  stats.invalidated = invalidated_.load(std::memory_order_relaxed);
  stats.replaced = replaced_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace netconst::serving
