#include "serving/snapshot_store.hpp"

#include "obs/trace.hpp"
#include "support/error.hpp"

namespace netconst::serving {

SnapshotStore::~SnapshotStore() {
  // Retire every live snapshot; the domain frees them (immediately if
  // quiescent, else when the last reader drains — the domain must
  // outlive the store's readers by contract).
  const std::size_t count = count_.load(std::memory_order_acquire);
  for (std::size_t k = 0; k < count; ++k) {
    epoch_->retire(
        slots_[k].current.exchange(nullptr, std::memory_order_seq_cst));
  }
  epoch_->reclaim();
}

std::size_t SnapshotStore::writer_slot(const std::string& tenant) {
  const std::size_t count = count_.load(std::memory_order_acquire);
  for (std::size_t k = 0; k < count; ++k) {
    if (slots_[k].name == tenant) return k;
  }
  std::lock_guard<std::mutex> lock(register_mutex_);
  // Re-check under the lock: another writer may have registered it.
  const std::size_t recheck = count_.load(std::memory_order_acquire);
  for (std::size_t k = 0; k < recheck; ++k) {
    if (slots_[k].name == tenant) return k;
  }
  NETCONST_CHECK(recheck < kMaxTenants,
                 "SnapshotStore tenant limit (kMaxTenants) exceeded");
  slots_[recheck].name = tenant;
  // The name must be fully written before the slot becomes visible.
  count_.store(recheck + 1, std::memory_order_release);
  return recheck;
}

void SnapshotStore::publish(const std::string& tenant,
                            const core::ConstantComponent& component,
                            double provider_now, std::uint64_t refresh) {
  obs::Span span("serving.publish");
  const std::size_t slot_index = writer_slot(tenant);
  TenantSlot& slot = slots_[slot_index];

  auto* snapshot = new ConstantSnapshot;
  snapshot->tenant = tenant;
  // One writer per tenant: the version counter is only advanced here.
  snapshot->version = slot.version.load(std::memory_order_relaxed) + 1;
  snapshot->refresh = refresh;
  snapshot->published_at = provider_now;
  snapshot->component = component;

  const ConstantSnapshot* old =
      slot.current.exchange(snapshot, std::memory_order_seq_cst);
  slot.version.store(snapshot->version, std::memory_order_release);
  published_total_.fetch_add(1, std::memory_order_relaxed);
  span.set_value(static_cast<double>(snapshot->version));

  if (publish_hook_) publish_hook_(slot_index, snapshot->version);
  epoch_->retire(old);
  epoch_->reclaim();
}

SnapshotStore::Ref SnapshotStore::acquire(
    std::size_t tenant_index, EpochDomain::Reader& reader) const {
  const std::atomic<const ConstantSnapshot*>* slot =
      tenant_index < count_.load(std::memory_order_acquire)
          ? &slots_[tenant_index].current
          : nullptr;
  return Ref(reader, slot);
}

std::size_t SnapshotStore::find(const std::string& tenant) const {
  const std::size_t count = count_.load(std::memory_order_acquire);
  for (std::size_t k = 0; k < count; ++k) {
    if (slots_[k].name == tenant) return k;
  }
  return npos;
}

const std::string& SnapshotStore::tenant_name(
    std::size_t tenant_index) const {
  NETCONST_CHECK(tenant_index < tenant_count(),
                 "tenant slot out of range");
  return slots_[tenant_index].name;
}

std::uint64_t SnapshotStore::version(std::size_t tenant_index) const {
  NETCONST_CHECK(tenant_index < tenant_count(),
                 "tenant slot out of range");
  return slots_[tenant_index].version.load(std::memory_order_acquire);
}

}  // namespace netconst::serving
