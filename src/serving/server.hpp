// ConstantServer — the serving front end assembled: RCU snapshot store
// + memoized plan cache + embedded HTTP query API, wrapped around a
// ConstantFinderService.
//
// Construction wires the store in as the service's snapshot sink (every
// accepted refresh publishes a new immutable version) and the store's
// publish hook into the plan cache (superseded versions are dropped the
// moment the version bumps). start() brings the HTTP endpoint up; the
// service keeps refreshing concurrently — queries and publishes never
// block each other (see serving/snapshot_store.hpp).
//
// Routes:
//   GET /healthz            liveness ("ok")
//   GET /metrics            Prometheus text exposition (version 0.0.4)
//   GET /telemetry          JSON telemetry snapshot (metrics +
//                           convergence + flight-recorder status)
//   GET /tenants            tenant list with current snapshot versions
//   GET /snapshot?tenant=T  snapshot metadata (version, norms, ranks);
//                           &include=links adds the link parameters
//   GET /plan?tenant=T&kind=tree|mapping&nodes=0,1,2[&root=0][&bytes=N]
//                           the memoized planner — byte-identical to a
//                           direct src/mapping / src/collective
//                           invocation at the same snapshot version
//
// Every endpooint records a latency histogram
// (serving.http.<route>_seconds) and the plan/publish paths open
// serving.* tracing spans, all through the service's own registry — so
// /metrics observes the server that serves it.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "online/service.hpp"
#include "serving/epoch.hpp"
#include "serving/http.hpp"
#include "serving/plan_cache.hpp"
#include "serving/snapshot_store.hpp"

namespace netconst::serving {

struct ConstantServerOptions {
  HttpServer::Options http;
  std::size_t plan_cache_capacity = 4096;
};

class ConstantServer {
 public:
  /// Registers the snapshot store as `service`'s sink. The service must
  /// outlive the server; the server detaches the sink on destruction.
  explicit ConstantServer(online::ConstantFinderService& service,
                          const ConstantServerOptions& options = {});
  ~ConstantServer();

  ConstantServer(const ConstantServer&) = delete;
  ConstantServer& operator=(const ConstantServer&) = delete;

  /// Start / stop the HTTP endpoint (the store serves in-process
  /// queries from construction on, with or without HTTP).
  void start() { http_.start(); }
  void stop() { http_.stop(); }
  std::uint16_t port() const { return http_.port(); }

  SnapshotStore& store() { return store_; }
  const SnapshotStore& store() const { return store_; }
  PlanCache& plans() { return plans_; }
  const PlanCache& plans() const { return plans_; }
  EpochDomain& epoch() { return epoch_; }
  HttpServer& http() { return http_; }

  /// In-process query path (what the HTTP /plan handler runs): pin the
  /// tenant's current snapshot, serve the plan from the cache, return
  /// the response body. Useful for tests and embedded callers.
  /// `reader` must belong to epoch(). Throws on unknown tenant.
  std::string plan_json(const std::string& tenant, PlanKind kind,
                        std::vector<std::size_t> nodes, std::size_t root,
                        std::uint64_t bytes,
                        EpochDomain::Reader& reader);

 private:
  HttpResponse handle_healthz(const HttpRequest& request);
  HttpResponse handle_metrics(const HttpRequest& request);
  HttpResponse handle_telemetry(const HttpRequest& request);
  HttpResponse handle_tenants(const HttpRequest& request);
  HttpResponse handle_snapshot(const HttpRequest& request);
  HttpResponse handle_plan(const HttpRequest& request);
  /// Mirror serving-layer stats (cache, epoch, http) into registry
  /// gauges so the exporters pick them up.
  void sync_serving_metrics();

  online::ConstantFinderService* service_;
  EpochDomain epoch_;
  SnapshotStore store_;
  PlanCache plans_;
  HttpServer http_;
  /// Epoch slot of the HTTP event-loop thread (handlers run there).
  std::unique_ptr<EpochDomain::Reader> http_reader_;

  online::Histogram& healthz_seconds_;
  online::Histogram& metrics_seconds_;
  online::Histogram& telemetry_seconds_;
  online::Histogram& tenants_seconds_;
  online::Histogram& snapshot_seconds_;
  online::Histogram& plan_seconds_;
  online::Counter& publishes_;
  online::Counter& invalidations_;
};

}  // namespace netconst::serving
