#include "serving/plan.hpp"

#include <algorithm>
#include <sstream>

#include "collective/collective_ops.hpp"
#include "collective/fnf.hpp"
#include "mapping/refine.hpp"
#include "obs/export.hpp"
#include "support/error.hpp"

namespace netconst::serving {

const char* plan_kind_name(PlanKind kind) {
  switch (kind) {
    case PlanKind::BroadcastTree:
      return "broadcast_tree";
    case PlanKind::TopologyMapping:
      return "topology_mapping";
  }
  return "unknown";
}

PlanRequest canonical_plan_request(PlanKind kind,
                                   std::vector<std::size_t> nodes,
                                   std::size_t root, std::uint64_t bytes) {
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  NETCONST_CHECK(nodes.size() >= 2, "a plan needs at least two nodes");
  NETCONST_CHECK(bytes > 0, "message size must be positive");
  if (kind == PlanKind::BroadcastTree) {
    NETCONST_CHECK(
        std::binary_search(nodes.begin(), nodes.end(), root),
        "broadcast root must be a member of the node set");
  }
  PlanRequest request;
  request.kind = kind;
  request.nodes = std::move(nodes);
  request.root = kind == PlanKind::BroadcastTree ? root : 0;
  request.bytes = bytes;
  return request;
}

std::uint64_t plan_request_hash(std::size_t tenant_index,
                                std::uint64_t version,
                                const PlanRequest& request) {
  std::uint64_t hash = 1469598103934665603ull;  // FNV offset basis
  const auto mix = [&hash](std::uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (value >> (byte * 8)) & 0xffu;
      hash *= 1099511628211ull;  // FNV prime
    }
  };
  mix(static_cast<std::uint64_t>(tenant_index));
  mix(version);
  mix(static_cast<std::uint64_t>(request.kind));
  mix(static_cast<std::uint64_t>(request.root));
  mix(request.bytes);
  mix(static_cast<std::uint64_t>(request.nodes.size()));
  for (const std::size_t node : request.nodes) {
    mix(static_cast<std::uint64_t>(node));
  }
  return hash;
}

namespace {

/// Value formatting shared with the exporters' conventions: integers
/// exact, reals with round-trip precision.
void write_double(std::ostream& out, double value) {
  std::ostringstream os;
  os.precision(17);
  os << value;
  out << os.str();
}

void write_plan_json(Plan& plan) {
  std::ostringstream out;
  out << "{\"tenant\":\"" << obs::json_escape(plan.tenant)
      << "\",\"version\":" << plan.version << ",\"kind\":\""
      << plan_kind_name(plan.request.kind) << "\",\"bytes\":"
      << plan.request.bytes << ",\"nodes\":[";
  for (std::size_t k = 0; k < plan.request.nodes.size(); ++k) {
    if (k > 0) out << ',';
    out << plan.request.nodes[k];
  }
  out << ']';
  if (plan.request.kind == PlanKind::BroadcastTree) {
    out << ",\"root\":" << plan.request.root << ",\"edges\":[";
    for (std::size_t k = 0; k < plan.edges.size(); ++k) {
      if (k > 0) out << ',';
      out << '[' << plan.edges[k].parent << ',' << plan.edges[k].child
          << ']';
    }
    out << ']';
  } else {
    out << ",\"assignment\":[";
    for (std::size_t k = 0; k < plan.assignment.size(); ++k) {
      if (k > 0) out << ',';
      out << plan.assignment[k];
    }
    out << ']';
  }
  out << ",\"predicted_seconds\":";
  write_double(out, plan.predicted_seconds);
  out << '}';
  plan.json = out.str();
}

/// Append the tree's edges in send order (pre-order, children in stored
/// order — the order the alpha-beta cost model charges).
void collect_edges(const collective::CommTree& tree, std::size_t node,
                   const std::vector<std::size_t>& members,
                   std::vector<Plan::TreeEdge>& edges) {
  for (const std::size_t child : tree.children(node)) {
    edges.push_back({members[node], members[child]});
    collect_edges(tree, child, members, edges);
  }
}

}  // namespace

Plan compute_plan(const ConstantSnapshot& snapshot,
                  const PlanRequest& request) {
  const netmodel::PerformanceMatrix& full = snapshot.component.constant;
  NETCONST_CHECK(!request.nodes.empty() &&
                     request.nodes.back() < full.size(),
                 "plan request node ids exceed the tenant's cluster");

  Plan plan;
  plan.request = request;
  plan.tenant = snapshot.tenant;
  plan.version = snapshot.version;

  const netmodel::PerformanceMatrix sub = full.restrict_to(request.nodes);
  if (request.kind == PlanKind::BroadcastTree) {
    // Root position inside the canonical (sorted) node set.
    const std::size_t root_pos = static_cast<std::size_t>(
        std::lower_bound(request.nodes.begin(), request.nodes.end(),
                         request.root) -
        request.nodes.begin());
    const collective::CommTree tree =
        collective::fnf_tree(sub.weight_matrix(request.bytes), root_pos);
    plan.edges.reserve(request.nodes.size() - 1);
    collect_edges(tree, root_pos, request.nodes, plan.edges);
    plan.predicted_seconds = collective::collective_time(
        tree, sub, collective::Collective::Broadcast, request.bytes);
  } else {
    // Dense uniform task graph: every ordered pair exchanges `bytes`.
    mapping::TaskGraph tasks(request.nodes.size());
    for (std::size_t u = 0; u < request.nodes.size(); ++u) {
      for (std::size_t v = 0; v < request.nodes.size(); ++v) {
        if (u != v) tasks.set_volume(u, v, static_cast<double>(request.bytes));
      }
    }
    const mapping::RefineResult refined =
        mapping::plan_mapping(tasks, sub, mapping::mapping_cost);
    plan.assignment.reserve(refined.mapping.size());
    for (const std::size_t machine : refined.mapping) {
      plan.assignment.push_back(request.nodes[machine]);
    }
    plan.predicted_seconds = refined.cost;
  }
  write_plan_json(plan);
  return plan;
}

}  // namespace netconst::serving
