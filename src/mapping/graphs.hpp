// Task and machine graphs for topology mapping (Hoefler & Snir).
//
// Both are weighted digraphs stored as dense matrices:
//  * TaskGraph   — weight(u, v) is the data volume (bytes) task u sends
//                  to task v per execution;
//  * MachineGraph — weight(i, j) is the bandwidth (bytes/s) of the link
//                  from machine i to machine j (built from a
//                  PerformanceMatrix).
#pragma once

#include <cstdint>

#include "linalg/matrix.hpp"
#include "netmodel/perf_matrix.hpp"
#include "support/rng.hpp"

namespace netconst::mapping {

class TaskGraph {
 public:
  explicit TaskGraph(std::size_t tasks) : volume_(tasks, tasks) {}

  std::size_t size() const { return volume_.rows(); }
  double volume(std::size_t u, std::size_t v) const { return volume_(u, v); }
  void set_volume(std::size_t u, std::size_t v, double bytes);

  /// Vertex weight: total volume on all edges touching `u` (in + out).
  double vertex_weight(std::size_t u) const;

  const linalg::Matrix& volumes() const { return volume_; }

 private:
  linalg::Matrix volume_;
};

/// Random task graph with edge volumes uniform in [min_volume,
/// max_volume] and the given edge density (fraction of ordered pairs
/// with traffic). The paper's experiments use 5-10 MB volumes on a
/// complete graph.
TaskGraph random_task_graph(std::size_t tasks, Rng& rng,
                            double min_volume = 5.0 * 1024 * 1024,
                            double max_volume = 10.0 * 1024 * 1024,
                            double density = 1.0);

/// Ring-of-neighbours task graph (each task talks to its successor),
/// useful as a structured alternative workload.
TaskGraph ring_task_graph(std::size_t tasks, double volume);

class MachineGraph {
 public:
  explicit MachineGraph(std::size_t machines)
      : bandwidth_(machines, machines) {}

  /// Bandwidth view of a performance matrix.
  static MachineGraph from_performance(
      const netmodel::PerformanceMatrix& performance);

  std::size_t size() const { return bandwidth_.rows(); }
  double bandwidth(std::size_t i, std::size_t j) const {
    return bandwidth_(i, j);
  }
  void set_bandwidth(std::size_t i, std::size_t j, double bytes_per_s);

  /// Vertex weight: total bandwidth of all links touching `i`.
  double vertex_weight(std::size_t i) const;

 private:
  linalg::Matrix bandwidth_;
};

}  // namespace netconst::mapping
