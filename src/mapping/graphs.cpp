#include "mapping/graphs.hpp"

#include "support/error.hpp"

namespace netconst::mapping {

void TaskGraph::set_volume(std::size_t u, std::size_t v, double bytes) {
  NETCONST_CHECK(u < size() && v < size(), "task index out of range");
  NETCONST_CHECK(u != v, "self-communication is free");
  NETCONST_CHECK(bytes >= 0.0, "volume must be non-negative");
  volume_(u, v) = bytes;
}

double TaskGraph::vertex_weight(std::size_t u) const {
  NETCONST_CHECK(u < size(), "task index out of range");
  double total = 0.0;
  for (std::size_t v = 0; v < size(); ++v) {
    total += volume_(u, v) + volume_(v, u);
  }
  return total;
}

TaskGraph random_task_graph(std::size_t tasks, Rng& rng, double min_volume,
                            double max_volume, double density) {
  NETCONST_CHECK(tasks >= 2, "need at least two tasks");
  NETCONST_CHECK(min_volume >= 0.0 && max_volume >= min_volume,
                 "invalid volume range");
  NETCONST_CHECK(density >= 0.0 && density <= 1.0, "invalid density");
  TaskGraph g(tasks);
  for (std::size_t u = 0; u < tasks; ++u) {
    for (std::size_t v = 0; v < tasks; ++v) {
      if (u == v) continue;
      if (density < 1.0 && !rng.bernoulli(density)) continue;
      g.set_volume(u, v, rng.uniform(min_volume, max_volume));
    }
  }
  return g;
}

TaskGraph ring_task_graph(std::size_t tasks, double volume) {
  NETCONST_CHECK(tasks >= 2, "need at least two tasks");
  TaskGraph g(tasks);
  for (std::size_t u = 0; u < tasks; ++u) {
    g.set_volume(u, (u + 1) % tasks, volume);
  }
  return g;
}

MachineGraph MachineGraph::from_performance(
    const netmodel::PerformanceMatrix& performance) {
  MachineGraph g(performance.size());
  for (std::size_t i = 0; i < performance.size(); ++i) {
    for (std::size_t j = 0; j < performance.size(); ++j) {
      if (i == j) continue;
      g.set_bandwidth(i, j, performance.link(i, j).beta);
    }
  }
  return g;
}

void MachineGraph::set_bandwidth(std::size_t i, std::size_t j,
                                 double bytes_per_s) {
  NETCONST_CHECK(i < size() && j < size(), "machine index out of range");
  NETCONST_CHECK(i != j, "self-links are not stored");
  NETCONST_CHECK(bytes_per_s > 0.0, "bandwidth must be positive");
  bandwidth_(i, j) = bytes_per_s;
}

double MachineGraph::vertex_weight(std::size_t i) const {
  NETCONST_CHECK(i < size(), "machine index out of range");
  double total = 0.0;
  for (std::size_t j = 0; j < size(); ++j) {
    total += bandwidth_(i, j) + bandwidth_(j, i);
  }
  return total;
}

}  // namespace netconst::mapping
