// Topology mapping strategies and the mapping cost model.
//
// A mapping assigns task u to machine mapping[u] (a bijection when task
// and machine counts match). Strategies:
//  * ring_mapping   — the paper's Baseline: task k on machine k;
//  * greedy_mapping — the Greedy Heuristic of Hoefler & Snir as the
//    paper describes it: seed with the heaviest machine vertex mapped to
//    the heaviest task vertex, then repeatedly map the unmapped machine
//    with the strongest connection to the mapped set onto the unmapped
//    task with the heaviest connection to the corresponding mapped tasks.
//
// Cost model: tasks execute concurrently; each task performs its sends
// sequentially, so the elapsed communication time is
//   max_u  sum_v  (alpha + volume(u, v) / beta)  over mapped links.
#pragma once

#include <vector>

#include "mapping/graphs.hpp"
#include "netmodel/perf_matrix.hpp"

namespace netconst::mapping {

using Mapping = std::vector<std::size_t>;  // task -> machine

/// task k -> machine k. Task and machine counts must match.
Mapping ring_mapping(std::size_t tasks);

/// Greedy heuristic guided by the machine graph (typically built from
/// the RPCA constant component or the raw measurement average).
Mapping greedy_mapping(const TaskGraph& tasks, const MachineGraph& machines);

/// True if `mapping` is a bijection task -> machine of the right size.
bool is_valid_mapping(const Mapping& mapping, std::size_t tasks,
                      std::size_t machines);

/// Elapsed communication time of one communication round under the
/// alpha-beta model (per-task sequential sends, tasks in parallel).
double mapping_cost(const Mapping& mapping, const TaskGraph& tasks,
                    const netmodel::PerformanceMatrix& performance);

/// Total bytes-weighted inverse bandwidth (volume / beta summed over all
/// edges): a secondary score insensitive to per-task serialization.
double mapping_volume_cost(const Mapping& mapping, const TaskGraph& tasks,
                           const netmodel::PerformanceMatrix& performance);

}  // namespace netconst::mapping
