#include "mapping/mapping.hpp"

#include <algorithm>
#include <limits>

#include "support/error.hpp"

namespace netconst::mapping {

Mapping ring_mapping(std::size_t tasks) {
  Mapping m(tasks);
  for (std::size_t k = 0; k < tasks; ++k) m[k] = k;
  return m;
}

Mapping greedy_mapping(const TaskGraph& tasks,
                       const MachineGraph& machines) {
  const std::size_t n = tasks.size();
  NETCONST_CHECK(machines.size() == n,
                 "task and machine counts must match");
  constexpr auto kUnmapped = std::numeric_limits<std::size_t>::max();
  Mapping task_to_machine(n, kUnmapped);
  std::vector<std::size_t> machine_to_task(n, kUnmapped);

  auto heaviest = [](auto&& weight, const std::vector<bool>& used,
                     std::size_t count) {
    std::size_t best = count;
    double best_weight = -1.0;
    for (std::size_t k = 0; k < count; ++k) {
      if (used[k]) continue;
      const double w = weight(k);
      if (w > best_weight) {
        best_weight = w;
        best = k;
      }
    }
    return best;
  };

  std::vector<bool> machine_used(n, false), task_used(n, false);

  // Seed: heaviest machine vertex <- heaviest task vertex.
  const std::size_t v0 = heaviest(
      [&](std::size_t i) { return machines.vertex_weight(i); },
      machine_used, n);
  const std::size_t s0 = heaviest(
      [&](std::size_t u) { return tasks.vertex_weight(u); }, task_used, n);
  machine_used[v0] = true;
  task_used[s0] = true;
  task_to_machine[s0] = v0;
  machine_to_task[v0] = s0;

  // Expansion: next machine = unmapped machine with the strongest total
  // connection to the mapped machines; next task = unmapped task with
  // the heaviest total connection to the tasks already placed on those
  // mapped machines.
  for (std::size_t placed = 1; placed < n; ++placed) {
    std::size_t best_machine = n;
    double best_bw = -1.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (machine_used[i]) continue;
      double bw = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        if (!machine_used[j]) continue;
        bw += machines.bandwidth(i, j) + machines.bandwidth(j, i);
      }
      if (bw > best_bw) {
        best_bw = bw;
        best_machine = i;
      }
    }
    std::size_t best_task = n;
    double best_volume = -1.0;
    for (std::size_t u = 0; u < n; ++u) {
      if (task_used[u]) continue;
      double vol = 0.0;
      for (std::size_t w = 0; w < n; ++w) {
        if (!task_used[w]) continue;
        vol += tasks.volume(u, w) + tasks.volume(w, u);
      }
      if (vol > best_volume) {
        best_volume = vol;
        best_task = u;
      }
    }
    NETCONST_ASSERT(best_machine < n && best_task < n);
    machine_used[best_machine] = true;
    task_used[best_task] = true;
    task_to_machine[best_task] = best_machine;
    machine_to_task[best_machine] = best_task;
  }
  return task_to_machine;
}

bool is_valid_mapping(const Mapping& mapping, std::size_t tasks,
                      std::size_t machines) {
  if (mapping.size() != tasks) return false;
  std::vector<bool> used(machines, false);
  for (std::size_t machine : mapping) {
    if (machine >= machines || used[machine]) return false;
    used[machine] = true;
  }
  return true;
}

double mapping_cost(const Mapping& mapping, const TaskGraph& tasks,
                    const netmodel::PerformanceMatrix& performance) {
  NETCONST_CHECK(
      is_valid_mapping(mapping, tasks.size(), performance.size()),
      "invalid mapping");
  double worst = 0.0;
  for (std::size_t u = 0; u < tasks.size(); ++u) {
    double task_time = 0.0;
    for (std::size_t v = 0; v < tasks.size(); ++v) {
      if (u == v) continue;
      const double volume = tasks.volume(u, v);
      if (volume <= 0.0) continue;
      task_time += performance.transfer_time(
          mapping[u], mapping[v], static_cast<std::uint64_t>(volume));
    }
    worst = std::max(worst, task_time);
  }
  return worst;
}

double mapping_volume_cost(const Mapping& mapping, const TaskGraph& tasks,
                           const netmodel::PerformanceMatrix& performance) {
  NETCONST_CHECK(
      is_valid_mapping(mapping, tasks.size(), performance.size()),
      "invalid mapping");
  double total = 0.0;
  for (std::size_t u = 0; u < tasks.size(); ++u) {
    for (std::size_t v = 0; v < tasks.size(); ++v) {
      if (u == v) continue;
      const double volume = tasks.volume(u, v);
      if (volume <= 0.0) continue;
      total += volume / performance.link(mapping[u], mapping[v]).beta;
    }
  }
  return total;
}

}  // namespace netconst::mapping
