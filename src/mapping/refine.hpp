// Mapping refinement and exact reference.
//
//  * refine_mapping — pairwise-swap hill climbing on top of any seed
//    mapping (typically the greedy heuristic's output): keep applying
//    the best improving swap of two tasks' machines until a local
//    optimum. A cheap, classic post-pass that the paper's greedy lacks.
//  * optimal_mapping — exhaustive search over all bijections for tiny
//    clusters (n <= 8); the ground-truth reference the property tests
//    compare the heuristics against.
#pragma once

#include <functional>

#include "mapping/mapping.hpp"

namespace netconst::mapping {

/// Cost function used by the refinement/search (smaller is better).
using MappingCost =
    std::function<double(const Mapping&, const TaskGraph&,
                         const netmodel::PerformanceMatrix&)>;

struct RefineResult {
  Mapping mapping;
  double cost = 0.0;
  std::size_t swaps = 0;  // improving swaps applied
};

/// Hill-climb from `seed` by the best improving 2-swap per round; stops
/// at a local optimum or after `max_rounds`.
RefineResult refine_mapping(const Mapping& seed, const TaskGraph& tasks,
                            const netmodel::PerformanceMatrix& performance,
                            const MappingCost& cost = mapping_volume_cost,
                            std::size_t max_rounds = 100);

/// Exhaustive optimum over all task->machine bijections. Requires
/// tasks.size() == performance.size() <= 8.
Mapping optimal_mapping(const TaskGraph& tasks,
                        const netmodel::PerformanceMatrix& performance,
                        const MappingCost& cost = mapping_volume_cost);

/// The full planning pipeline as one pure entry point: greedy seed over
/// the bandwidth view of `performance`, then 2-swap refinement under
/// `cost`. Deterministic in its inputs (no RNG, no global state) — the
/// serving front end memoizes exactly this call per (snapshot version,
/// request shape), so any planner change funnels through here.
RefineResult plan_mapping(const TaskGraph& tasks,
                          const netmodel::PerformanceMatrix& performance,
                          const MappingCost& cost = mapping_volume_cost,
                          std::size_t max_rounds = 100);

}  // namespace netconst::mapping
