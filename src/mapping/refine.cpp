#include "mapping/refine.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "support/error.hpp"

namespace netconst::mapping {

RefineResult refine_mapping(const Mapping& seed, const TaskGraph& tasks,
                            const netmodel::PerformanceMatrix& performance,
                            const MappingCost& cost,
                            std::size_t max_rounds) {
  NETCONST_CHECK(
      is_valid_mapping(seed, tasks.size(), performance.size()),
      "refinement needs a valid seed mapping");
  RefineResult result;
  result.mapping = seed;
  result.cost = cost(result.mapping, tasks, performance);

  const std::size_t n = seed.size();
  for (std::size_t round = 0; round < max_rounds; ++round) {
    double best_cost = result.cost;
    std::size_t best_u = n, best_v = n;
    for (std::size_t u = 0; u < n; ++u) {
      for (std::size_t v = u + 1; v < n; ++v) {
        std::swap(result.mapping[u], result.mapping[v]);
        const double c = cost(result.mapping, tasks, performance);
        std::swap(result.mapping[u], result.mapping[v]);
        if (c < best_cost) {
          best_cost = c;
          best_u = u;
          best_v = v;
        }
      }
    }
    if (best_u == n) break;  // local optimum
    std::swap(result.mapping[best_u], result.mapping[best_v]);
    result.cost = best_cost;
    ++result.swaps;
  }
  return result;
}

Mapping optimal_mapping(const TaskGraph& tasks,
                        const netmodel::PerformanceMatrix& performance,
                        const MappingCost& cost) {
  const std::size_t n = tasks.size();
  NETCONST_CHECK(n == performance.size(),
                 "task and machine counts must match");
  NETCONST_CHECK(n <= 8, "exhaustive mapping is limited to n <= 8");
  Mapping current(n);
  std::iota(current.begin(), current.end(), std::size_t{0});
  Mapping best = current;
  double best_cost = std::numeric_limits<double>::infinity();
  do {
    const double c = cost(current, tasks, performance);
    if (c < best_cost) {
      best_cost = c;
      best = current;
    }
  } while (std::next_permutation(current.begin(), current.end()));
  return best;
}

RefineResult plan_mapping(const TaskGraph& tasks,
                          const netmodel::PerformanceMatrix& performance,
                          const MappingCost& cost, std::size_t max_rounds) {
  const Mapping seed = greedy_mapping(
      tasks, MachineGraph::from_performance(performance));
  return refine_mapping(seed, tasks, performance, cost, max_rounds);
}

}  // namespace netconst::mapping
