// Matrix norms used by the RPCA objective and by the paper's
// Norm(N_E) = ||N_E||_0 / ||N_A||_0 effectiveness metric.
//
// The zero "norm" is a count; in floating point an exact-zero test is
// meaningless, so l0 takes a tolerance interpreted as an absolute cutoff
// (callers derive it from the scale of the data, see rpca::relative_l0).
#pragma once

#include <cstddef>

#include "linalg/matrix.hpp"

namespace netconst::linalg {

/// Frobenius norm sqrt(sum a_ij^2).
double frobenius_norm(const Matrix& a);

/// Entrywise 1-norm sum |a_ij|.
double l1_norm(const Matrix& a);

/// Max |a_ij|.
double max_abs(const Matrix& a);

/// Number of entries with |a_ij| > tolerance.
std::size_t l0_count(const Matrix& a, double tolerance);

/// Nuclear norm (sum of singular values); computes an SVD.
double nuclear_norm(const Matrix& a);

/// Spectral norm (largest singular value) via power iteration on A^T A.
/// Cheap compared to a full SVD; used for RPCA step-size bounds.
double spectral_norm(const Matrix& a, int max_iterations = 100,
                     double tolerance = 1e-9);

/// Power-iteration vectors reused across spectral_norm calls on
/// same-sized inputs (one per solver workspace).
struct SpectralNormScratch {
  std::vector<double> x;  // current iterate, length min(m, n)
  std::vector<double> y;  // next iterate
  std::vector<double> t;  // intermediate gemv result, length max(m, n)
};

/// spectral_norm with caller-owned scratch; numerically identical and
/// allocation-free once `scratch` carries capacity.
double spectral_norm(const Matrix& a, SpectralNormScratch& scratch,
                     int max_iterations = 100, double tolerance = 1e-9);

}  // namespace netconst::linalg
