#include "linalg/qr.hpp"

#include <cmath>

#include "linalg/blas.hpp"
#include "support/error.hpp"

namespace netconst::linalg {

void qr_factor_inplace(Matrix& work, std::vector<double>& tau) {
  NETCONST_CHECK(work.rows() >= work.cols(),
                 "Householder factorization requires rows >= cols");
  const std::size_t m = work.rows();
  const std::size_t n = work.cols();
  tau.assign(n, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    // Norm of the k-th column below the diagonal.
    double norm = 0.0;
    for (std::size_t i = k; i < m; ++i) norm += work(i, k) * work(i, k);
    norm = std::sqrt(norm);
    if (norm == 0.0) continue;
    const double alpha = work(k, k) >= 0.0 ? -norm : norm;
    // v = x - alpha * e1, normalized so v[k] = 1.
    const double vkk = work(k, k) - alpha;
    if (vkk == 0.0) continue;
    for (std::size_t i = k + 1; i < m; ++i) work(i, k) /= vkk;
    tau[k] = -vkk / alpha;
    work(k, k) = alpha;
    // Apply (I - tau v v^T) to the trailing columns.
    for (std::size_t j = k + 1; j < n; ++j) {
      double s = work(k, j);
      for (std::size_t i = k + 1; i < m; ++i) s += work(i, k) * work(i, j);
      s *= tau[k];
      work(k, j) -= s;
      for (std::size_t i = k + 1; i < m; ++i) {
        work(i, j) -= s * work(i, k);
      }
    }
  }
}

void qr_thin_q_into(const Matrix& work, const std::vector<double>& tau,
                    Matrix& q) {
  const std::size_t m = work.rows();
  const std::size_t n = work.cols();
  NETCONST_CHECK(tau.size() == n, "tau does not match the factorization");
  // Apply the reflectors to the first n identity columns in reverse
  // order.
  q.resize(m, n);
  q.fill(0.0);
  for (std::size_t j = 0; j < n; ++j) q(j, j) = 1.0;
  for (std::size_t k = n; k-- > 0;) {
    if (tau[k] == 0.0) continue;
    for (std::size_t j = 0; j < n; ++j) {
      double s = q(k, j);
      for (std::size_t i = k + 1; i < m; ++i) {
        s += work(i, k) * q(i, j);
      }
      s *= tau[k];
      q(k, j) -= s;
      for (std::size_t i = k + 1; i < m; ++i) {
        q(i, j) -= s * work(i, k);
      }
    }
  }
}

namespace {

// Apply Q^T (product of reflectors in `work`/`tau`) to a vector in place.
void apply_qt(const Matrix& work, const std::vector<double>& tau,
              std::vector<double>& b) {
  const std::size_t m = work.rows();
  const std::size_t n = work.cols();
  for (std::size_t k = 0; k < n; ++k) {
    if (tau[k] == 0.0) continue;
    double s = b[k];
    for (std::size_t i = k + 1; i < m; ++i) s += work(i, k) * b[i];
    s *= tau[k];
    b[k] -= s;
    for (std::size_t i = k + 1; i < m; ++i) b[i] -= s * work(i, k);
  }
}

}  // namespace

QrResult qr_decompose(const Matrix& a) {
  NETCONST_CHECK(a.rows() >= a.cols(), "thin QR requires rows >= cols");
  const std::size_t n = a.cols();
  Matrix work = a;
  std::vector<double> tau;
  qr_factor_inplace(work, tau);

  QrResult result;
  result.r = Matrix(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) result.r(i, j) = work(i, j);
  }
  qr_thin_q_into(work, tau, result.q);
  return result;
}

std::vector<double> solve_upper_triangular(const Matrix& r,
                                           std::vector<double> y) {
  NETCONST_CHECK(r.rows() == r.cols(), "triangular solve needs square R");
  NETCONST_CHECK(r.rows() == y.size(), "triangular solve size mismatch");
  const std::size_t n = r.rows();
  for (std::size_t i = n; i-- > 0;) {
    double s = y[i];
    for (std::size_t j = i + 1; j < n; ++j) s -= r(i, j) * y[j];
    NETCONST_CHECK(std::abs(r(i, i)) > 1e-300,
                   "singular triangular system");
    y[i] = s / r(i, i);
  }
  return y;
}

std::vector<double> least_squares(const Matrix& a, std::vector<double> b) {
  NETCONST_CHECK(a.rows() == b.size(), "least_squares size mismatch");
  NETCONST_CHECK(a.rows() >= a.cols(), "least_squares needs rows >= cols");
  Matrix work = a;
  std::vector<double> tau;
  qr_factor_inplace(work, tau);
  apply_qt(work, tau, b);
  Matrix r(a.cols(), a.cols());
  for (std::size_t i = 0; i < a.cols(); ++i) {
    for (std::size_t j = i; j < a.cols(); ++j) r(i, j) = work(i, j);
  }
  b.resize(a.cols());
  return solve_upper_triangular(r, std::move(b));
}

}  // namespace netconst::linalg
