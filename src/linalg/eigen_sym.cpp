#include "linalg/eigen_sym.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/error.hpp"

namespace netconst::linalg {
namespace {

double off_diagonal_norm(const Matrix& a) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = i + 1; j < a.cols(); ++j) s += a(i, j) * a(i, j);
  }
  return std::sqrt(2.0 * s);
}

double frobenius(const Matrix& a) {
  double s = 0.0;
  for (double v : a.data()) s += v * v;
  return std::sqrt(s);
}

}  // namespace

SymmetricEigen eigen_symmetric(const Matrix& a,
                               const JacobiOptions& options) {
  SymmetricEigenScratch scratch;
  SymmetricEigen result;
  eigen_symmetric_into(a, options, scratch, result);
  return result;
}

void eigen_symmetric_into(const Matrix& a, const JacobiOptions& options,
                          SymmetricEigenScratch& scratch,
                          SymmetricEigen& out) {
  NETCONST_CHECK(a.rows() == a.cols(), "eigen_symmetric needs square input");
  const std::size_t n = a.rows();
  // Loose symmetry check: tolerate roundoff from Gram accumulation.
  double asym = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      asym = std::max(asym, std::abs(a(i, j) - a(j, i)));
    }
  }
  const double scale = std::max(frobenius(a), 1.0);
  NETCONST_CHECK(asym <= 1e-8 * scale, "input is not symmetric");

  Matrix& w = scratch.work;  // working copy, symmetrized
  w = a;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double avg = 0.5 * (w(i, j) + w(j, i));
      w(i, j) = avg;
      w(j, i) = avg;
    }
  }
  Matrix& v = scratch.rotations;
  v.resize(n, n);
  v.fill(0.0);
  for (std::size_t i = 0; i < n; ++i) v(i, i) = 1.0;

  SymmetricEigen& result = out;
  const double stop = options.tolerance * scale;
  int sweep = 0;
  for (; sweep < options.max_sweeps; ++sweep) {
    if (off_diagonal_norm(w) <= stop) break;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = w(p, q);
        if (std::abs(apq) <= 1e-300) continue;
        const double app = w(p, p);
        const double aqq = w(q, q);
        // Classic Jacobi rotation annihilating w(p, q).
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) +
                          std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (std::size_t k = 0; k < n; ++k) {
          const double wkp = w(k, p);
          const double wkq = w(k, q);
          w(k, p) = c * wkp - s * wkq;
          w(k, q) = s * wkp + c * wkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double wpk = w(p, k);
          const double wqk = w(q, k);
          w(p, k) = c * wpk - s * wqk;
          w(q, k) = s * wpk + c * wqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }
  result.sweeps = sweep;

  // Sort eigenpairs by descending eigenvalue.
  std::vector<std::size_t>& order = scratch.order;
  order.resize(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::vector<double>& diag = scratch.diagonal;
  diag.resize(n);
  for (std::size_t i = 0; i < n; ++i) diag[i] = w(i, i);
  std::sort(order.begin(), order.end(),
            [&diag](std::size_t x, std::size_t y) {
              return diag[x] > diag[y];
            });
  result.eigenvalues.resize(n);
  result.eigenvectors.resize(n, n);  // fully overwritten below
  for (std::size_t k = 0; k < n; ++k) {
    result.eigenvalues[k] = diag[order[k]];
    for (std::size_t i = 0; i < n; ++i) {
      result.eigenvectors(i, k) = v(i, order[k]);
    }
  }
}

}  // namespace netconst::linalg
