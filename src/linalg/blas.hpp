// Level-2/3 kernels on Matrix. gemm is cache-blocked and parallelized
// over row panels via the shared thread pool; everything downstream
// (Gram matrices for the SVD fast path, RPCA iterations) sits on top.
#pragma once

#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace netconst::linalg {

/// C = A * B. Shapes: (m x k) * (k x n) -> (m x n).
Matrix multiply(const Matrix& a, const Matrix& b);

/// C = A^T * A (n x n), exploiting symmetry.
Matrix gram(const Matrix& a);

/// C = A * A^T (m x m), exploiting symmetry.
Matrix outer_gram(const Matrix& a);

/// outer_gram writing into caller-owned storage (resized to m x m,
/// reusing capacity). Numerically identical to outer_gram; performs no
/// allocation once `g` has capacity.
void outer_gram_into(const Matrix& a, Matrix& g);

/// y = A * x.
std::vector<double> multiply(const Matrix& a, std::span<const double> x);

/// y = A * x into a preallocated y (y.size() == a.rows()).
void multiply_into(const Matrix& a, std::span<const double> x,
                   std::span<double> y);

/// y = A^T * x.
std::vector<double> multiply_transposed(const Matrix& a,
                                        std::span<const double> x);

/// y = A^T * x into a preallocated y (y.size() == a.cols()).
void multiply_transposed_into(const Matrix& a, std::span<const double> x,
                              std::span<double> y);

/// Dot product.
double dot(std::span<const double> x, std::span<const double> y);

/// Euclidean norm of a vector.
double norm2(std::span<const double> x);

/// y += alpha * x.
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// y = 0.0 + alpha * x. The explicit leading 0.0 matches the first
/// accumulation onto a zero-filled output bitwise (it turns a -0.0
/// product into +0.0, exactly as `0.0 += v` would).
void scaled_set(double alpha, std::span<const double> x,
                std::span<double> y);

/// x *= alpha.
void scale(double alpha, std::span<double> x);

}  // namespace netconst::linalg
