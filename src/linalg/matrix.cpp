#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace netconst::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, double value)
    : rows_(rows), cols_(cols), data_(rows * cols, value) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
  rows_ = init.size();
  cols_ = rows_ == 0 ? 0 : init.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    NETCONST_CHECK(row.size() == cols_, "ragged initializer list");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::from_rows(std::size_t rows, std::size_t cols,
                         std::vector<double> data) {
  NETCONST_CHECK(data.size() == rows * cols,
                 "buffer size does not match matrix shape");
  Matrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.data_ = std::move(data);
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& Matrix::at(std::size_t i, std::size_t j) {
  NETCONST_CHECK(i < rows_ && j < cols_, "matrix index out of range");
  return (*this)(i, j);
}

double Matrix::at(std::size_t i, std::size_t j) const {
  NETCONST_CHECK(i < rows_ && j < cols_, "matrix index out of range");
  return (*this)(i, j);
}

std::vector<double> Matrix::column(std::size_t j) const {
  NETCONST_CHECK(j < cols_, "column index out of range");
  std::vector<double> col(rows_);
  for (std::size_t i = 0; i < rows_; ++i) col[i] = (*this)(i, j);
  return col;
}

void Matrix::set_column(std::size_t j, std::span<const double> values) {
  NETCONST_CHECK(j < cols_, "column index out of range");
  NETCONST_CHECK(values.size() == rows_, "column length mismatch");
  for (std::size_t i = 0; i < rows_; ++i) (*this)(i, j) = values[i];
}

void Matrix::set_row(std::size_t i, std::span<const double> values) {
  NETCONST_CHECK(i < rows_, "row index out of range");
  NETCONST_CHECK(values.size() == cols_, "row length mismatch");
  std::copy(values.begin(), values.end(), data_.begin() + i * cols_);
}

void Matrix::fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Matrix::resize(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.resize(rows * cols);
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
  }
  return t;
}

Matrix Matrix::block(std::size_t r0, std::size_t c0, std::size_t rows,
                     std::size_t cols) const {
  NETCONST_CHECK(r0 + rows <= rows_ && c0 + cols <= cols_,
                 "block out of range");
  Matrix b(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) b(i, j) = (*this)(r0 + i, c0 + j);
  }
  return b;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  NETCONST_CHECK(same_shape(other), "shape mismatch in +=");
  for (std::size_t k = 0; k < data_.size(); ++k) data_[k] += other.data_[k];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  NETCONST_CHECK(same_shape(other), "shape mismatch in -=");
  for (std::size_t k = 0; k < data_.size(); ++k) data_[k] -= other.data_[k];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) {
  for (auto& v : data_) v *= scalar;
  return *this;
}

double Matrix::max_abs_diff(const Matrix& other) const {
  NETCONST_CHECK(same_shape(other), "shape mismatch in max_abs_diff");
  double m = 0.0;
  for (std::size_t k = 0; k < data_.size(); ++k) {
    m = std::max(m, std::abs(data_[k] - other.data_[k]));
  }
  return m;
}

}  // namespace netconst::linalg
