// Householder QR factorization and least-squares solve.
//
// Used to precondition tall-skinny inputs before the one-sided Jacobi SVD
// (SVD of the small R factor instead of the full matrix) and exposed on
// its own for tests and downstream users.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace netconst::linalg {

/// Thin QR of an m x n matrix with m >= n: A = Q (m x n, orthonormal
/// columns) * R (n x n, upper triangular).
struct QrResult {
  Matrix q;
  Matrix r;
};

/// Compute the thin QR factorization. Requires rows >= cols.
QrResult qr_decompose(const Matrix& a);

/// Solve min ||A x - b||_2 for full-column-rank A via QR. Throws Error if
/// R is numerically singular.
std::vector<double> least_squares(const Matrix& a,
                                  std::vector<double> b);

/// Back-substitution for upper-triangular R x = y.
std::vector<double> solve_upper_triangular(const Matrix& r,
                                           std::vector<double> y);

}  // namespace netconst::linalg
