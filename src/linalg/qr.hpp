// Householder QR factorization and least-squares solve.
//
// Used to precondition tall-skinny inputs before the one-sided Jacobi SVD
// (SVD of the small R factor instead of the full matrix) and exposed on
// its own for tests and downstream users.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace netconst::linalg {

/// Thin QR of an m x n matrix with m >= n: A = Q (m x n, orthonormal
/// columns) * R (n x n, upper triangular).
struct QrResult {
  Matrix q;
  Matrix r;
};

/// Compute the thin QR factorization. Requires rows >= cols.
QrResult qr_decompose(const Matrix& a);

/// In-place Householder factorization of `work` (m x n, m >= n): on
/// return the upper triangle holds R and the essential parts of the
/// reflectors sit below the diagonal with scaling factors in `tau`
/// (resized to n; capacity-reusing). The building block behind
/// qr_decompose, exposed for callers that own their scratch — the
/// randomized SVD re-orthonormalizes its sketch panel through this
/// without allocating. Sequential scalar code: bit-identical results at
/// every thread count and SIMD level.
void qr_factor_inplace(Matrix& work, std::vector<double>& tau);

/// Form the thin Q (m x n, orthonormal columns) of a factorization
/// produced by qr_factor_inplace into caller-owned `q` (resized;
/// capacity-reusing, no allocation once warm).
void qr_thin_q_into(const Matrix& work, const std::vector<double>& tau,
                    Matrix& q);

/// Solve min ||A x - b||_2 for full-column-rank A via QR. Throws Error if
/// R is numerically singular.
std::vector<double> least_squares(const Matrix& a,
                                  std::vector<double> b);

/// Back-substitution for upper-triangular R x = y.
std::vector<double> solve_upper_triangular(const Matrix& r,
                                           std::vector<double> y);

}  // namespace netconst::linalg
