// Proximal operators for the RPCA convex surrogate:
//  * soft_threshold        — prox of tau * ||.||_1 (elementwise shrinkage)
//  * singular_value_threshold — prox of tau * ||.||_* (shrink the spectrum)
#pragma once

#include <vector>

#include "linalg/eigen_sym.hpp"
#include "linalg/matrix.hpp"
#include "linalg/svd.hpp"

namespace netconst::linalg {

/// Elementwise soft thresholding: sign(a) * max(|a| - tau, 0).
Matrix soft_threshold(const Matrix& a, double tau);

/// In-place variant.
void soft_threshold_inplace(Matrix& a, double tau);

/// Result of the singular value thresholding operator.
struct SvtResult {
  Matrix value;         // U * max(Sigma - tau, 0) * V^T
  std::size_t rank = 0; // number of singular values that survived
  double top_singular_value = 0.0;
};

/// Singular value thresholding D_tau(A) = U shrink(Sigma, tau) V^T.
SvtResult singular_value_threshold(const Matrix& a, double tau,
                                   const SvdOptions& options = {});

/// Reusable storage for the scratch-based SVT below: the Gram matrix, the
/// Jacobi eigensolver working set, and the right-vector panel. One of
/// these lives in each rpca::SolverWorkspace.
struct GramSvtScratch {
  Matrix gram;                          // m x m Gram matrix A A^T
  SymmetricEigenScratch eig_scratch;    // Jacobi working set
  SymmetricEigen eig;                   // eigenpairs of the Gram matrix
  std::vector<double> singular_values;  // pre-shrink spectrum
  std::vector<double> shrunk;           // post-shrink spectrum
  Matrix v;  // m x n transposed right-vector panel (row k = v_k)
  Matrix u_kept;  // m x rank panel of the kept U columns, packed
};

/// True when singular_value_threshold_into would take the allocation-
/// free Gram fast path for this shape (mirror of svd()'s Auto
/// resolution, plus rows <= cols). Exposed so the RPCA SVT dispatch can
/// tell which shapes the exact path already serves cheaply — the
/// randomized sketch only pays off where this is false.
bool gram_fast_path_applies(const Matrix& a, const SvdOptions& options);

/// Diagnostics of one scratch-based SVT application.
struct SvtInfo {
  std::size_t rank = 0;  // singular values that survived the threshold
  double top_singular_value = 0.0;
  /// True when the allocation-free Gram fast path ran. False means the
  /// shape was not Gram-eligible and the call fell back to the allocating
  /// general SVD (numerically identical to singular_value_threshold).
  bool used_scratch = false;
};

/// SVT writing into caller-owned `out` using `scratch` for every
/// intermediate. On Gram-eligible shapes (the method resolution matches
/// svd()'s Auto rule, plus rows <= cols) this performs zero allocations
/// once the scratch is warm, and additionally skips the right-vector
/// columns annihilated by the threshold — the dominant cost of the RPCA
/// iteration at paper shapes. Numerically identical to
/// singular_value_threshold in both regimes.
SvtInfo singular_value_threshold_into(const Matrix& a, double tau,
                                      const SvdOptions& options,
                                      GramSvtScratch& scratch, Matrix& out);

/// Best rank-k approximation written into `out` through the same scratch
/// machinery (stable PCP's debias step). Numerically identical to
/// low_rank_approximation.
void low_rank_approximation_into(const Matrix& a, std::size_t k,
                                 const SvdOptions& options,
                                 GramSvtScratch& scratch, Matrix& out);

}  // namespace netconst::linalg
