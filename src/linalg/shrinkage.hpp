// Proximal operators for the RPCA convex surrogate:
//  * soft_threshold        — prox of tau * ||.||_1 (elementwise shrinkage)
//  * singular_value_threshold — prox of tau * ||.||_* (shrink the spectrum)
#pragma once

#include "linalg/matrix.hpp"
#include "linalg/svd.hpp"

namespace netconst::linalg {

/// Elementwise soft thresholding: sign(a) * max(|a| - tau, 0).
Matrix soft_threshold(const Matrix& a, double tau);

/// In-place variant.
void soft_threshold_inplace(Matrix& a, double tau);

/// Result of the singular value thresholding operator.
struct SvtResult {
  Matrix value;         // U * max(Sigma - tau, 0) * V^T
  std::size_t rank = 0; // number of singular values that survived
  double top_singular_value = 0.0;
};

/// Singular value thresholding D_tau(A) = U shrink(Sigma, tau) V^T.
SvtResult singular_value_threshold(const Matrix& a, double tau,
                                   const SvdOptions& options = {});

}  // namespace netconst::linalg
