// Randomized truncated SVD (Halko, Martinsson & Tropp): project onto a
// small random subspace, orthonormalize, and solve the small problem.
// For the near-rank-1 matrices RPCA iterates on, a rank budget of a few
// columns captures the spectrum at a fraction of a full decomposition's
// cost — the practical SVT path for window shapes the Gram fast path
// cannot serve (more than 64 snapshot rows; see linalg/shrinkage.hpp).
//
// Determinism contract: every reduction in this file is either a
// fixed-order scalar loop or an elementwise axpy accumulation (blas
// elementwise kernels are bit-identical at every SIMD level), and
// parallelism only ever splits *independent output elements* across
// workers. Factors are therefore bit-identical across thread counts AND
// SIMD levels given the same Rng state — a stronger contract than the
// blas dot kernels, whose lane-split accumulators are deterministic per
// level only.
//
// Error accounting: with Q the orthonormal sketch basis and B = Q^T A,
//   ||A - Q Q^T A||_F^2 = ||A||_F^2 - ||B||_F^2
// is a free byproduct of the factorization, and every singular value of
// A the sketch missed is bounded by that Frobenius error. The *_into
// entry points report it as `truncation_error` and refuse to write
// output when it exceeds the caller's acceptance bound, which is what
// lets the RPCA solvers use an approximate SVT as a verified inexact
// proximal step with automatic fallback to the exact path (see
// docs/ALGORITHMS.md "Incremental RPCA & randomized SVD").
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/eigen_sym.hpp"
#include "linalg/svd.hpp"
#include "support/rng.hpp"

namespace netconst::linalg {

struct RandomizedSvdOptions {
  /// Extra random directions beyond the target rank (stabilizes the
  /// subspace capture).
  std::size_t oversampling = 8;
  /// Power iterations (A A^T)^q sharpen the spectrum separation; 1-2 is
  /// standard for slowly decaying spectra.
  int power_iterations = 2;
};

/// Reusable working set of the scratch-based entry points below. One of
/// these lives in each rpca::SolverWorkspace; after the first call at a
/// given shape and sketch width, every subsequent call is allocation-free.
struct RandomizedSvdScratch {
  /// Sketch directions, stored transposed (one direction per contiguous
  /// row) and cached across calls: redrawing costs a Box–Muller draw per
  /// entry, which would dominate at TP-matrix widths, and a frozen
  /// sketch keeps repeated SVT calls deterministic for free. The cache
  /// is redrawn from the caller's Rng whenever the input width changes
  /// or a wider sketch is requested (Matrix::resize leaves values
  /// unspecified, so partial reuse across a growth is not defined).
  Matrix omega_t;
  std::size_t filled_directions = 0;
  std::size_t omega_cols = 0;

  Matrix y;     // rows x sketch: sketch image / QR work
  Matrix q;     // rows x sketch: orthonormal basis of the sketch range
  Matrix z;     // sketch x cols: A^T panel of the power iteration
  Matrix b;     // sketch x cols: small problem B = Q^T A
  Matrix gram;  // sketch x sketch: B B^T
  Matrix mix;   // sketch x sketch: U_B diag(shrink ratio) U_B^T
  Matrix w;     // rows x sketch: Q * mix
  std::vector<double> tau;              // Householder scaling factors
  std::vector<double> row_partials;     // per-row |A_i|^2 partial sums
  std::vector<double> singular_values;  // captured spectrum, descending
  std::vector<double> ratio;            // per-value shrink ratios
  SymmetricEigenScratch eig_scratch;    // Jacobi working set for `gram`
  SymmetricEigen eig;

  /// Pre-size for rows x cols inputs and sketch widths up to
  /// `sketch_cap` (clamped to rows). Optional — the entry points size
  /// everything on demand; this front-loads the cost so even the first
  /// call runs allocation-free. Does NOT draw sketch directions (that
  /// consumes the Rng and is deferred to first use).
  void reserve(std::size_t rows, std::size_t cols, std::size_t sketch_cap);
};

/// Diagnostics of one randomized SVT / low-rank application.
struct RandomizedSvdInfo {
  /// Singular values surviving the threshold (SVT) or kept (low-rank).
  std::size_t rank = 0;
  double top_singular_value = 0.0;
  /// Frobenius bound ||A - Q Q^T A||_F on everything the sketch missed;
  /// any singular value of A not represented in the output is <= this.
  double truncation_error = 0.0;
  /// ||A||_F, computed with the deterministic fixed-order kernels (the
  /// relative acceptance bound is checked against this, never against
  /// the lane-split blas norm, so the accept/reject decision itself is
  /// identical across SIMD levels).
  double input_fro = 0.0;
  /// Sketch width actually used (min(target + oversampling, rows)).
  std::size_t sketch = 0;
  /// True when the decomposition was accepted (truncation_error within
  /// the caller's bound, or the sketch spanned the full row space and
  /// the result is exact to roundoff) and `out` holds the
  /// reconstruction. False leaves `out` untouched — the caller falls
  /// back to the exact path.
  bool accepted = false;
};

/// Approximate singular value thresholding D_tau(A) through a rank
/// `target_rank` sketch, written into caller-owned `out`. Requires
/// rows <= cols (RPCA data is wide; callers transpose or use the exact
/// path otherwise). The result is accepted only when truncation_error
/// <= max(acceptance_bound, acceptance_rel * ||A||_F); pass a fraction
/// of `tau` as the absolute bound to make the missed spectrum provably
/// sub-threshold, and a small relative budget to admit an inexact
/// proximal step bounded well below the solver tolerance.
RandomizedSvdInfo randomized_svt_into(const Matrix& a, double tau,
                                      std::size_t target_rank, Rng& rng,
                                      const RandomizedSvdOptions& options,
                                      double acceptance_bound,
                                      double acceptance_rel,
                                      RandomizedSvdScratch& scratch,
                                      Matrix& out);

/// Approximate best rank-`k` approximation of `a` (stable PCP's debias
/// step) through the same machinery and acceptance rule.
RandomizedSvdInfo randomized_low_rank_into(const Matrix& a, std::size_t k,
                                           Rng& rng,
                                           const RandomizedSvdOptions& options,
                                           double acceptance_bound,
                                           double acceptance_rel,
                                           RandomizedSvdScratch& scratch,
                                           Matrix& out);

/// Rank-`target_rank` approximate SVD. Returns U (m x k), singular
/// values (k) and V (n x k) with k = min(target_rank, min(m, n)),
/// further capped by the numerically captured rank of the sketch. The
/// sketch is drawn from `rng`, so results are deterministic given its
/// state (and identical across thread counts and SIMD levels).
SvdResult randomized_svd(const Matrix& a, std::size_t target_rank,
                         Rng& rng,
                         const RandomizedSvdOptions& options = {});

}  // namespace netconst::linalg
