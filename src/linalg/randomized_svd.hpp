// Randomized truncated SVD (Halko, Martinsson & Tropp): project onto a
// small random subspace, orthonormalize, and solve the small problem.
// For the near-rank-1 matrices RPCA iterates on, a rank budget of a few
// columns captures the spectrum at a fraction of a full decomposition's
// cost — the practical speedup path for very large clusters.
#pragma once

#include "linalg/svd.hpp"
#include "support/rng.hpp"

namespace netconst::linalg {

struct RandomizedSvdOptions {
  /// Extra random directions beyond the target rank (stabilizes the
  /// subspace capture).
  std::size_t oversampling = 8;
  /// Power iterations (A A^T)^q sharpen the spectrum separation; 1-2 is
  /// standard for slowly decaying spectra.
  int power_iterations = 2;
};

/// Rank-`target_rank` approximate SVD. Returns U (m x k), singular
/// values (k) and V (n x k) with k = min(target_rank, min(m, n)). The
/// sketch is drawn from `rng`, so results are deterministic given its
/// state.
SvdResult randomized_svd(const Matrix& a, std::size_t target_rank,
                         Rng& rng,
                         const RandomizedSvdOptions& options = {});

}  // namespace netconst::linalg
