#include "linalg/blas.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/simd.hpp"
#include "support/error.hpp"
#include "support/parallel_for.hpp"

#if defined(NETCONST_SIMD_X86)
#include <immintrin.h>
#elif defined(NETCONST_SIMD_NEON)
#include <arm_neon.h>
#endif

// SIMD policy (see linalg/simd.hpp): axpy / scaled_set / scale are
// elementwise, so their vector bodies are bit-identical to the scalar
// loops at every level. dot (and the 4-wide dot block of
// outer_gram_into) is an ordered reduction: the vector body splits the
// accumulator across lanes and combines them left-to-right, which is
// deterministic for a fixed level but not the scalar association — it
// only runs when simd::active_level() is a vector level. Both the
// reference and workspace RPCA paths funnel through these same
// entry points, so they shift together and their mutual bit-equality
// holds at any level.

namespace netconst::linalg {
namespace {

bool use_vector_kernels() {
  return simd::active_level() != simd::Level::Scalar;
}

double dot_scalar(const double* x, const double* y, std::size_t n) {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) s += x[i] * y[i];
  return s;
}

void dot4_scalar(const double* r1, const double* a0, const double* a1,
                 const double* a2, const double* a3, std::size_t n,
                 double out[4]) {
  double sa = 0.0, sb = 0.0, sc = 0.0, sd = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    const double x = r1[j];
    sa += x * a0[j];
    sb += x * a1[j];
    sc += x * a2[j];
    sd += x * a3[j];
  }
  out[0] = sa;
  out[1] = sb;
  out[2] = sc;
  out[3] = sd;
}

#if defined(NETCONST_SIMD_X86)
NETCONST_TARGET_AVX2 inline double avx2_lane_sum(__m256d v) {
  alignas(32) double l[4];
  _mm256_store_pd(l, v);
  return ((l[0] + l[1]) + l[2]) + l[3];
}

NETCONST_TARGET_AVX2 double dot_vec(const double* x, const double* y,
                                    std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_pd(
        acc, _mm256_mul_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i)));
  }
  double s = avx2_lane_sum(acc);
  for (; i < n; ++i) s += x[i] * y[i];
  return s;
}

NETCONST_TARGET_AVX2 void dot4_vec(const double* r1, const double* a0,
                                   const double* a1, const double* a2,
                                   const double* a3, std::size_t n,
                                   double out[4]) {
  __m256d s0 = _mm256_setzero_pd();
  __m256d s1 = _mm256_setzero_pd();
  __m256d s2 = _mm256_setzero_pd();
  __m256d s3 = _mm256_setzero_pd();
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256d x = _mm256_loadu_pd(r1 + j);
    s0 = _mm256_add_pd(s0, _mm256_mul_pd(x, _mm256_loadu_pd(a0 + j)));
    s1 = _mm256_add_pd(s1, _mm256_mul_pd(x, _mm256_loadu_pd(a1 + j)));
    s2 = _mm256_add_pd(s2, _mm256_mul_pd(x, _mm256_loadu_pd(a2 + j)));
    s3 = _mm256_add_pd(s3, _mm256_mul_pd(x, _mm256_loadu_pd(a3 + j)));
  }
  double sa = avx2_lane_sum(s0);
  double sb = avx2_lane_sum(s1);
  double sc = avx2_lane_sum(s2);
  double sd = avx2_lane_sum(s3);
  for (; j < n; ++j) {
    const double x = r1[j];
    sa += x * a0[j];
    sb += x * a1[j];
    sc += x * a2[j];
    sd += x * a3[j];
  }
  out[0] = sa;
  out[1] = sb;
  out[2] = sc;
  out[3] = sd;
}

NETCONST_TARGET_AVX2 void axpy_vec(double alpha, const double* x, double* y,
                                   std::size_t n) {
  const __m256d va = _mm256_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        y + i, _mm256_add_pd(_mm256_loadu_pd(y + i),
                             _mm256_mul_pd(va, _mm256_loadu_pd(x + i))));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

NETCONST_TARGET_AVX2 void scaled_set_vec(double alpha, const double* x,
                                         double* y, std::size_t n) {
  const __m256d va = _mm256_set1_pd(alpha);
  const __m256d vz = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        y + i, _mm256_add_pd(vz, _mm256_mul_pd(va, _mm256_loadu_pd(x + i))));
  }
  for (; i < n; ++i) y[i] = 0.0 + alpha * x[i];
}

NETCONST_TARGET_AVX2 void scale_vec(double alpha, double* x, std::size_t n) {
  const __m256d va = _mm256_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(x + i, _mm256_mul_pd(va, _mm256_loadu_pd(x + i)));
  }
  for (; i < n; ++i) x[i] *= alpha;
}
#elif defined(NETCONST_SIMD_NEON)
double dot_vec(const double* x, const double* y, std::size_t n) {
  float64x2_t acc = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    acc = vaddq_f64(acc, vmulq_f64(vld1q_f64(x + i), vld1q_f64(y + i)));
  }
  double s = vgetq_lane_f64(acc, 0) + vgetq_lane_f64(acc, 1);
  for (; i < n; ++i) s += x[i] * y[i];
  return s;
}

void axpy_vec(double alpha, const double* x, double* y, std::size_t n) {
  const float64x2_t va = vdupq_n_f64(alpha);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(y + i,
              vaddq_f64(vld1q_f64(y + i), vmulq_f64(va, vld1q_f64(x + i))));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}
#endif

void dot4(const double* r1, const double* a0, const double* a1,
          const double* a2, const double* a3, std::size_t n, double out[4]) {
#if defined(NETCONST_SIMD_X86)
  if (use_vector_kernels()) {
    dot4_vec(r1, a0, a1, a2, a3, n, out);
    return;
  }
#endif
  dot4_scalar(r1, a0, a1, a2, a3, n, out);
}

// Row-panel kernel: computes rows [r0, r1) of C = A * B using an ikj loop
// order that streams B rows sequentially (row-major friendly).
void gemm_rows(const Matrix& a, const Matrix& b, Matrix& c, std::size_t r0,
               std::size_t r1) {
  const std::size_t k_dim = a.cols();
  for (std::size_t i = r0; i < r1; ++i) {
    auto ci = c.row(i);
    for (std::size_t k = 0; k < k_dim; ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      axpy(aik, b.row(k), ci);
    }
  }
}

}  // namespace

Matrix multiply(const Matrix& a, const Matrix& b) {
  NETCONST_CHECK(a.cols() == b.rows(), "gemm inner dimension mismatch");
  Matrix c(a.rows(), b.cols());
  // Parallel over row panels; the per-row work is O(k*n), so a grain of 1
  // row is already coarse for the matrix sizes RPCA produces.
  parallel_for_chunked(
      0, a.rows(),
      [&](std::size_t lo, std::size_t hi) { gemm_rows(a, b, c, lo, hi); },
      /*grain=*/1);
  return c;
}

Matrix gram(const Matrix& a) {
  const std::size_t n = a.cols();
  Matrix g(n, n);
  // G(j1, j2) = sum_i a(i, j1) * a(i, j2); parallel over j1.
  parallel_for_chunked(
      0, n,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t j1 = lo; j1 < hi; ++j1) {
          for (std::size_t j2 = j1; j2 < n; ++j2) {
            double s = 0.0;
            for (std::size_t i = 0; i < a.rows(); ++i) {
              s += a(i, j1) * a(i, j2);
            }
            g(j1, j2) = s;
            g(j2, j1) = s;
          }
        }
      },
      /*grain=*/1);
  return g;
}

Matrix outer_gram(const Matrix& a) {
  Matrix g;
  outer_gram_into(a, g);
  return g;
}

void outer_gram_into(const Matrix& a, Matrix& g) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  g.resize(m, m);  // every element is written below
  parallel_for_chunked(
      0, m,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i1 = lo; i1 < hi; ++i1) {
          const auto r1 = a.row(i1);
          // Four dots per pass over r1: the accumulators are independent
          // dependency chains (at scalar level each individual dot still
          // sums in index order, so every G entry is bit-identical to a
          // lone dot()), and r1 is loaded once instead of once per i2.
          std::size_t i2 = i1;
          for (; i2 + 4 <= m; i2 += 4) {
            double s4[4];
            dot4(r1.data(), a.row(i2).data(), a.row(i2 + 1).data(),
                 a.row(i2 + 2).data(), a.row(i2 + 3).data(), n, s4);
            g(i1, i2) = s4[0];
            g(i2, i1) = s4[0];
            g(i1, i2 + 1) = s4[1];
            g(i2 + 1, i1) = s4[1];
            g(i1, i2 + 2) = s4[2];
            g(i2 + 2, i1) = s4[2];
            g(i1, i2 + 3) = s4[3];
            g(i2 + 3, i1) = s4[3];
          }
          for (; i2 < m; ++i2) {
            const double s = dot(r1, a.row(i2));
            g(i1, i2) = s;
            g(i2, i1) = s;
          }
        }
      },
      /*grain=*/1);
}

std::vector<double> multiply(const Matrix& a, std::span<const double> x) {
  std::vector<double> y(a.rows(), 0.0);
  multiply_into(a, x, y);
  return y;
}

void multiply_into(const Matrix& a, std::span<const double> x,
                   std::span<double> y) {
  NETCONST_CHECK(a.cols() == x.size(), "gemv dimension mismatch");
  NETCONST_CHECK(a.rows() == y.size(), "gemv output size mismatch");
  for (std::size_t i = 0; i < a.rows(); ++i) y[i] = dot(a.row(i), x);
}

std::vector<double> multiply_transposed(const Matrix& a,
                                        std::span<const double> x) {
  std::vector<double> y(a.cols(), 0.0);
  multiply_transposed_into(a, x, y);
  return y;
}

void multiply_transposed_into(const Matrix& a, std::span<const double> x,
                              std::span<double> y) {
  NETCONST_CHECK(a.rows() == x.size(), "gemv^T dimension mismatch");
  NETCONST_CHECK(a.cols() == y.size(), "gemv^T output size mismatch");
  std::fill(y.begin(), y.end(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    axpy(xi, a.row(i), y);
  }
}

double dot(std::span<const double> x, std::span<const double> y) {
  NETCONST_CHECK(x.size() == y.size(), "dot dimension mismatch");
#if defined(NETCONST_SIMD_X86) || defined(NETCONST_SIMD_NEON)
  if (use_vector_kernels()) return dot_vec(x.data(), y.data(), x.size());
#endif
  return dot_scalar(x.data(), y.data(), x.size());
}

double norm2(std::span<const double> x) { return std::sqrt(dot(x, x)); }

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  NETCONST_CHECK(x.size() == y.size(), "axpy dimension mismatch");
#if defined(NETCONST_SIMD_X86) || defined(NETCONST_SIMD_NEON)
  if (use_vector_kernels()) {
    axpy_vec(alpha, x.data(), y.data(), x.size());
    return;
  }
#endif
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scaled_set(double alpha, std::span<const double> x, std::span<double> y) {
  NETCONST_CHECK(x.size() == y.size(), "scaled_set dimension mismatch");
#if defined(NETCONST_SIMD_X86)
  if (use_vector_kernels()) {
    scaled_set_vec(alpha, x.data(), y.data(), x.size());
    return;
  }
#endif
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = 0.0 + alpha * x[i];
}

void scale(double alpha, std::span<double> x) {
#if defined(NETCONST_SIMD_X86)
  if (use_vector_kernels()) {
    scale_vec(alpha, x.data(), x.size());
    return;
  }
#endif
  for (auto& v : x) v *= alpha;
}

}  // namespace netconst::linalg
