#include "linalg/blas.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"
#include "support/parallel_for.hpp"

namespace netconst::linalg {
namespace {

// Row-panel kernel: computes rows [r0, r1) of C = A * B using an ikj loop
// order that streams B rows sequentially (row-major friendly).
void gemm_rows(const Matrix& a, const Matrix& b, Matrix& c, std::size_t r0,
               std::size_t r1) {
  const std::size_t k_dim = a.cols();
  const std::size_t n = b.cols();
  for (std::size_t i = r0; i < r1; ++i) {
    auto ci = c.row(i);
    for (std::size_t k = 0; k < k_dim; ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      const auto bk = b.row(k);
      for (std::size_t j = 0; j < n; ++j) ci[j] += aik * bk[j];
    }
  }
}

}  // namespace

Matrix multiply(const Matrix& a, const Matrix& b) {
  NETCONST_CHECK(a.cols() == b.rows(), "gemm inner dimension mismatch");
  Matrix c(a.rows(), b.cols());
  // Parallel over row panels; the per-row work is O(k*n), so a grain of 1
  // row is already coarse for the matrix sizes RPCA produces.
  parallel_for_chunked(
      0, a.rows(),
      [&](std::size_t lo, std::size_t hi) { gemm_rows(a, b, c, lo, hi); },
      /*grain=*/1);
  return c;
}

Matrix gram(const Matrix& a) {
  const std::size_t n = a.cols();
  Matrix g(n, n);
  // G(j1, j2) = sum_i a(i, j1) * a(i, j2); parallel over j1.
  parallel_for_chunked(
      0, n,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t j1 = lo; j1 < hi; ++j1) {
          for (std::size_t j2 = j1; j2 < n; ++j2) {
            double s = 0.0;
            for (std::size_t i = 0; i < a.rows(); ++i) {
              s += a(i, j1) * a(i, j2);
            }
            g(j1, j2) = s;
            g(j2, j1) = s;
          }
        }
      },
      /*grain=*/1);
  return g;
}

Matrix outer_gram(const Matrix& a) {
  Matrix g;
  outer_gram_into(a, g);
  return g;
}

void outer_gram_into(const Matrix& a, Matrix& g) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  g.resize(m, m);  // every element is written below
  parallel_for_chunked(
      0, m,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i1 = lo; i1 < hi; ++i1) {
          const auto r1 = a.row(i1);
          // Four dots per pass over r1: the accumulators are independent
          // dependency chains (each individual dot still sums in index
          // order, so every G entry is bit-identical to a lone dot()),
          // and r1 is loaded once instead of once per i2.
          std::size_t i2 = i1;
          for (; i2 + 4 <= m; i2 += 4) {
            const auto r2a = a.row(i2);
            const auto r2b = a.row(i2 + 1);
            const auto r2c = a.row(i2 + 2);
            const auto r2d = a.row(i2 + 3);
            double sa = 0.0, sb = 0.0, sc = 0.0, sd = 0.0;
            for (std::size_t j = 0; j < n; ++j) {
              const double x = r1[j];
              sa += x * r2a[j];
              sb += x * r2b[j];
              sc += x * r2c[j];
              sd += x * r2d[j];
            }
            g(i1, i2) = sa;
            g(i2, i1) = sa;
            g(i1, i2 + 1) = sb;
            g(i2 + 1, i1) = sb;
            g(i1, i2 + 2) = sc;
            g(i2 + 2, i1) = sc;
            g(i1, i2 + 3) = sd;
            g(i2 + 3, i1) = sd;
          }
          for (; i2 < m; ++i2) {
            const double s = dot(r1, a.row(i2));
            g(i1, i2) = s;
            g(i2, i1) = s;
          }
        }
      },
      /*grain=*/1);
}

std::vector<double> multiply(const Matrix& a, std::span<const double> x) {
  std::vector<double> y(a.rows(), 0.0);
  multiply_into(a, x, y);
  return y;
}

void multiply_into(const Matrix& a, std::span<const double> x,
                   std::span<double> y) {
  NETCONST_CHECK(a.cols() == x.size(), "gemv dimension mismatch");
  NETCONST_CHECK(a.rows() == y.size(), "gemv output size mismatch");
  for (std::size_t i = 0; i < a.rows(); ++i) y[i] = dot(a.row(i), x);
}

std::vector<double> multiply_transposed(const Matrix& a,
                                        std::span<const double> x) {
  std::vector<double> y(a.cols(), 0.0);
  multiply_transposed_into(a, x, y);
  return y;
}

void multiply_transposed_into(const Matrix& a, std::span<const double> x,
                              std::span<double> y) {
  NETCONST_CHECK(a.rows() == x.size(), "gemv^T dimension mismatch");
  NETCONST_CHECK(a.cols() == y.size(), "gemv^T output size mismatch");
  std::fill(y.begin(), y.end(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    const auto ri = a.row(i);
    for (std::size_t j = 0; j < a.cols(); ++j) y[j] += xi * ri[j];
  }
}

double dot(std::span<const double> x, std::span<const double> y) {
  NETCONST_CHECK(x.size() == y.size(), "dot dimension mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) s += x[i] * y[i];
  return s;
}

double norm2(std::span<const double> x) { return std::sqrt(dot(x, x)); }

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  NETCONST_CHECK(x.size() == y.size(), "axpy dimension mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(double alpha, std::span<double> x) {
  for (auto& v : x) v *= alpha;
}

}  // namespace netconst::linalg
