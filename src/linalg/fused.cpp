#include "linalg/fused.hpp"

#include "linalg/simd.hpp"
#include "support/error.hpp"
#include "support/parallel_for.hpp"

#if defined(NETCONST_SIMD_X86)
#include <immintrin.h>
#elif defined(NETCONST_SIMD_NEON)
#include <arm_neon.h>
#endif

// Each kernel has a scalar range body (the original loop, unchanged —
// this is the bit-exact reference path) and, where the architecture
// supports it, an explicit vector range body selected per call through
// simd::active_level(). Vector bodies perform the identical IEEE
// mul/add sequence per element — separate multiply and add, no FMA
// (AVX2 target functions do not enable FMA; NEON bodies use
// vmulq/vaddq, never vmlaq) — so every elementwise kernel here is
// bit-identical at every level. The scalar side of that promise needs
// the compiler to leave `a*b + c` uncontracted, so this translation
// unit is built with -ffp-contract=off (see linalg/CMakeLists.txt);
// without it GCC/Clang emit fmadd by default on aarch64 and the scalar
// loops would diverge from the vector bodies. The one reduction kernel
// (iterate_change_norms) lane-splits its accumulators under a vector
// level; see its comment.
//
// On x86-64 the vector bodies carry NETCONST_TARGET_AVX2 so the
// library still builds for baseline x86-64; dispatch only enters them
// after the cpuid check inside simd::active_level(). On aarch64 NEON
// is baseline, and only the hottest bodies (gradient_step,
// soft_threshold, extrapolate, the convergence norms) are written in
// intrinsics — the remaining elementwise loops are left to the
// auto-vectorizer, which already has NEON available.

namespace netconst::linalg {
namespace {

// Elementwise kernels are memory-bound; one chunk should cover enough
// elements to amortize the fork (same coarse-grain discipline as the
// row-panel kernels in blas.cpp, expressed in elements instead of rows).
constexpr std::size_t kElementGrain = 8192;

void check_same_shape(const Matrix& a, const Matrix& b, const char* what) {
  NETCONST_CHECK(a.same_shape(b), what);
}

bool use_vector_kernels() {
  return simd::active_level() != simd::Level::Scalar;
}

// ---- axpby: o[i] = alpha * x[i] + beta * y[i] ----

void axpby_range_scalar(double alpha, const double* x, double beta,
                        const double* y, double* o, std::size_t lo,
                        std::size_t hi) {
  for (std::size_t i = lo; i < hi; ++i) o[i] = alpha * x[i] + beta * y[i];
}

#if defined(NETCONST_SIMD_X86)
NETCONST_TARGET_AVX2 void axpby_range_vec(double alpha, const double* x,
                                          double beta, const double* y,
                                          double* o, std::size_t lo,
                                          std::size_t hi) {
  const __m256d va = _mm256_set1_pd(alpha);
  const __m256d vb = _mm256_set1_pd(beta);
  std::size_t i = lo;
  for (; i + 4 <= hi; i += 4) {
    const __m256d vx = _mm256_loadu_pd(x + i);
    const __m256d vy = _mm256_loadu_pd(y + i);
    _mm256_storeu_pd(
        o + i, _mm256_add_pd(_mm256_mul_pd(va, vx), _mm256_mul_pd(vb, vy)));
  }
  axpby_range_scalar(alpha, x, beta, y, o, i, hi);
}
#endif

void axpby_range(double alpha, const double* x, double beta, const double* y,
                 double* o, std::size_t lo, std::size_t hi) {
#if defined(NETCONST_SIMD_X86)
  if (use_vector_kernels()) {
    axpby_range_vec(alpha, x, beta, y, o, lo, hi);
    return;
  }
#endif
  axpby_range_scalar(alpha, x, beta, y, o, lo, hi);
}

// ---- extrapolate: o[i] = x[i] + (x[i] - p[i]) * c ----

void extrapolate_range_scalar(const double* x, const double* p, double c,
                              double* o, std::size_t lo, std::size_t hi) {
  for (std::size_t i = lo; i < hi; ++i) o[i] = x[i] + (x[i] - p[i]) * c;
}

#if defined(NETCONST_SIMD_X86)
NETCONST_TARGET_AVX2 void extrapolate_range_vec(const double* x,
                                                const double* p, double c,
                                                double* o, std::size_t lo,
                                                std::size_t hi) {
  const __m256d vc = _mm256_set1_pd(c);
  std::size_t i = lo;
  for (; i + 4 <= hi; i += 4) {
    const __m256d vx = _mm256_loadu_pd(x + i);
    const __m256d vp = _mm256_loadu_pd(p + i);
    _mm256_storeu_pd(
        o + i, _mm256_add_pd(vx, _mm256_mul_pd(_mm256_sub_pd(vx, vp), vc)));
  }
  extrapolate_range_scalar(x, p, c, o, i, hi);
}
#elif defined(NETCONST_SIMD_NEON)
void extrapolate_range_vec(const double* x, const double* p, double c,
                           double* o, std::size_t lo, std::size_t hi) {
  const float64x2_t vc = vdupq_n_f64(c);
  std::size_t i = lo;
  for (; i + 2 <= hi; i += 2) {
    const float64x2_t vx = vld1q_f64(x + i);
    const float64x2_t vp = vld1q_f64(p + i);
    vst1q_f64(o + i, vaddq_f64(vx, vmulq_f64(vsubq_f64(vx, vp), vc)));
  }
  extrapolate_range_scalar(x, p, c, o, i, hi);
}
#endif

void extrapolate_range(const double* x, const double* p, double c, double* o,
                       std::size_t lo, std::size_t hi) {
#if defined(NETCONST_SIMD_X86) || defined(NETCONST_SIMD_NEON)
  if (use_vector_kernels()) {
    extrapolate_range_vec(x, p, c, o, lo, hi);
    return;
  }
#endif
  extrapolate_range_scalar(x, p, c, o, lo, hi);
}

// ---- soft threshold: o[i] = sign(v) * max(|v| - tau, 0) ----
//
// The vector form evaluates both shifted values and blends by the two
// compare masks. Requires tau >= 0 (asserted at every public entry
// point: soft_threshold_into, gradient_step, soft_threshold_inplace):
// a negative tau would make v > tau and v < -tau overlap, and the AVX2
// or-of-masked-values blend would combine both shrunk values into
// bitwise garbage instead of taking the scalar chain's first branch.
// With tau >= 0 the masks are mutually exclusive and a NaN input fails
// both compares (ordered, non-signaling), so every lane — including the
// NaN-maps-to-zero case — matches the scalar if/else chain bitwise.

void soft_threshold_range_scalar(const double* s, double tau, double* o,
                                 std::size_t lo, std::size_t hi) {
  for (std::size_t i = lo; i < hi; ++i) {
    const double v = s[i];
    if (v > tau) {
      o[i] = v - tau;
    } else if (v < -tau) {
      o[i] = v + tau;
    } else {
      o[i] = 0.0;
    }
  }
}

#if defined(NETCONST_SIMD_X86)
NETCONST_TARGET_AVX2 inline __m256d avx2_soft_threshold(__m256d v,
                                                        __m256d vtau,
                                                        __m256d vntau) {
  const __m256d gt = _mm256_cmp_pd(v, vtau, _CMP_GT_OQ);
  const __m256d lt = _mm256_cmp_pd(v, vntau, _CMP_LT_OQ);
  const __m256d shrunk_pos = _mm256_and_pd(gt, _mm256_sub_pd(v, vtau));
  const __m256d shrunk_neg = _mm256_and_pd(lt, _mm256_add_pd(v, vtau));
  return _mm256_or_pd(shrunk_pos, shrunk_neg);
}

NETCONST_TARGET_AVX2 void soft_threshold_range_vec(const double* s,
                                                   double tau, double* o,
                                                   std::size_t lo,
                                                   std::size_t hi) {
  const __m256d vtau = _mm256_set1_pd(tau);
  const __m256d vntau = _mm256_set1_pd(-tau);
  std::size_t i = lo;
  for (; i + 4 <= hi; i += 4) {
    _mm256_storeu_pd(
        o + i, avx2_soft_threshold(_mm256_loadu_pd(s + i), vtau, vntau));
  }
  soft_threshold_range_scalar(s, tau, o, i, hi);
}
#elif defined(NETCONST_SIMD_NEON)
inline float64x2_t neon_soft_threshold(float64x2_t v, float64x2_t vtau,
                                       float64x2_t vntau) {
  const uint64x2_t gt = vcgtq_f64(v, vtau);
  const uint64x2_t lt = vcltq_f64(v, vntau);
  return vbslq_f64(gt, vsubq_f64(v, vtau),
                   vbslq_f64(lt, vaddq_f64(v, vtau), vdupq_n_f64(0.0)));
}

void soft_threshold_range_vec(const double* s, double tau, double* o,
                              std::size_t lo, std::size_t hi) {
  const float64x2_t vtau = vdupq_n_f64(tau);
  const float64x2_t vntau = vdupq_n_f64(-tau);
  std::size_t i = lo;
  for (; i + 2 <= hi; i += 2) {
    vst1q_f64(o + i, neon_soft_threshold(vld1q_f64(s + i), vtau, vntau));
  }
  soft_threshold_range_scalar(s, tau, o, i, hi);
}
#endif

void soft_threshold_range(const double* s, double tau, double* o,
                          std::size_t lo, std::size_t hi) {
#if defined(NETCONST_SIMD_X86) || defined(NETCONST_SIMD_NEON)
  if (use_vector_kernels()) {
    soft_threshold_range_vec(s, tau, o, lo, hi);
    return;
  }
#endif
  soft_threshold_range_scalar(s, tau, o, lo, hi);
}

// ---- gradient_step: the fused APG inner loop ----

void gradient_step_range_scalar(const double* ds, const double* dp,
                                const double* es, const double* ep,
                                const double* as, double c, double inv_lf,
                                double soft_tau, double* gds, double* ens,
                                std::size_t lo, std::size_t hi) {
  for (std::size_t i = lo; i < hi; ++i) {
    const double yd = ds[i] + (ds[i] - dp[i]) * c;
    const double ye = es[i] + (es[i] - ep[i]) * c;
    const double r = (yd + ye) - as[i];
    gds[i] = yd - r * inv_lf;
    const double ge = ye - r * inv_lf;
    if (ge > soft_tau) {
      ens[i] = ge - soft_tau;
    } else if (ge < -soft_tau) {
      ens[i] = ge + soft_tau;
    } else {
      ens[i] = 0.0;
    }
  }
}

#if defined(NETCONST_SIMD_X86)
NETCONST_TARGET_AVX2 void gradient_step_range_vec(
    const double* ds, const double* dp, const double* es, const double* ep,
    const double* as, double c, double inv_lf, double soft_tau, double* gds,
    double* ens, std::size_t lo, std::size_t hi) {
  const __m256d vc = _mm256_set1_pd(c);
  const __m256d vinv = _mm256_set1_pd(inv_lf);
  const __m256d vtau = _mm256_set1_pd(soft_tau);
  const __m256d vntau = _mm256_set1_pd(-soft_tau);
  std::size_t i = lo;
  for (; i + 4 <= hi; i += 4) {
    const __m256d vd = _mm256_loadu_pd(ds + i);
    const __m256d vdp = _mm256_loadu_pd(dp + i);
    const __m256d ve = _mm256_loadu_pd(es + i);
    const __m256d vep = _mm256_loadu_pd(ep + i);
    const __m256d va = _mm256_loadu_pd(as + i);
    const __m256d yd =
        _mm256_add_pd(vd, _mm256_mul_pd(_mm256_sub_pd(vd, vdp), vc));
    const __m256d ye =
        _mm256_add_pd(ve, _mm256_mul_pd(_mm256_sub_pd(ve, vep), vc));
    const __m256d r = _mm256_sub_pd(_mm256_add_pd(yd, ye), va);
    const __m256d rl = _mm256_mul_pd(r, vinv);
    _mm256_storeu_pd(gds + i, _mm256_sub_pd(yd, rl));
    const __m256d ge = _mm256_sub_pd(ye, rl);
    _mm256_storeu_pd(ens + i, avx2_soft_threshold(ge, vtau, vntau));
  }
  gradient_step_range_scalar(ds, dp, es, ep, as, c, inv_lf, soft_tau, gds,
                             ens, i, hi);
}
#elif defined(NETCONST_SIMD_NEON)
void gradient_step_range_vec(const double* ds, const double* dp,
                             const double* es, const double* ep,
                             const double* as, double c, double inv_lf,
                             double soft_tau, double* gds, double* ens,
                             std::size_t lo, std::size_t hi) {
  const float64x2_t vc = vdupq_n_f64(c);
  const float64x2_t vinv = vdupq_n_f64(inv_lf);
  const float64x2_t vtau = vdupq_n_f64(soft_tau);
  const float64x2_t vntau = vdupq_n_f64(-soft_tau);
  std::size_t i = lo;
  for (; i + 2 <= hi; i += 2) {
    const float64x2_t vd = vld1q_f64(ds + i);
    const float64x2_t vdp = vld1q_f64(dp + i);
    const float64x2_t ve = vld1q_f64(es + i);
    const float64x2_t vep = vld1q_f64(ep + i);
    const float64x2_t va = vld1q_f64(as + i);
    const float64x2_t yd =
        vaddq_f64(vd, vmulq_f64(vsubq_f64(vd, vdp), vc));
    const float64x2_t ye =
        vaddq_f64(ve, vmulq_f64(vsubq_f64(ve, vep), vc));
    const float64x2_t r = vsubq_f64(vaddq_f64(yd, ye), va);
    const float64x2_t rl = vmulq_f64(r, vinv);
    vst1q_f64(gds + i, vsubq_f64(yd, rl));
    vst1q_f64(ens + i, neon_soft_threshold(vsubq_f64(ye, rl), vtau, vntau));
  }
  gradient_step_range_scalar(ds, dp, es, ep, as, c, inv_lf, soft_tau, gds,
                             ens, i, hi);
}
#endif

void gradient_step_range(const double* ds, const double* dp, const double* es,
                         const double* ep, const double* as, double c,
                         double inv_lf, double soft_tau, double* gds,
                         double* ens, std::size_t lo, std::size_t hi) {
#if defined(NETCONST_SIMD_X86) || defined(NETCONST_SIMD_NEON)
  if (use_vector_kernels()) {
    gradient_step_range_vec(ds, dp, es, ep, as, c, inv_lf, soft_tau, gds, ens,
                            lo, hi);
    return;
  }
#endif
  gradient_step_range_scalar(ds, dp, es, ep, as, c, inv_lf, soft_tau, gds,
                             ens, lo, hi);
}

// ---- three-operand elementwise forms ----

enum class TriOp { SubAddScaled, SubSub, FusedResidual };

template <TriOp Op>
void tri_range_scalar(const double* a, const double* b, const double* c,
                      double alpha, double* o, std::size_t lo,
                      std::size_t hi) {
  for (std::size_t i = lo; i < hi; ++i) {
    if constexpr (Op == TriOp::SubAddScaled) {
      o[i] = (a[i] - b[i]) + c[i] * alpha;
    } else if constexpr (Op == TriOp::SubSub) {
      o[i] = (a[i] - b[i]) - c[i];
    } else {
      o[i] = (a[i] + b[i]) - c[i];
    }
  }
}

#if defined(NETCONST_SIMD_X86)
template <TriOp Op>
NETCONST_TARGET_AVX2 void tri_range_vec(const double* a, const double* b,
                                        const double* c, double alpha,
                                        double* o, std::size_t lo,
                                        std::size_t hi) {
  const __m256d valpha = _mm256_set1_pd(alpha);
  std::size_t i = lo;
  for (; i + 4 <= hi; i += 4) {
    const __m256d va = _mm256_loadu_pd(a + i);
    const __m256d vb = _mm256_loadu_pd(b + i);
    const __m256d vcv = _mm256_loadu_pd(c + i);
    __m256d r;
    if constexpr (Op == TriOp::SubAddScaled) {
      r = _mm256_add_pd(_mm256_sub_pd(va, vb), _mm256_mul_pd(vcv, valpha));
    } else if constexpr (Op == TriOp::SubSub) {
      r = _mm256_sub_pd(_mm256_sub_pd(va, vb), vcv);
    } else {
      r = _mm256_sub_pd(_mm256_add_pd(va, vb), vcv);
    }
    _mm256_storeu_pd(o + i, r);
  }
  tri_range_scalar<Op>(a, b, c, alpha, o, i, hi);
}
#endif

template <TriOp Op>
void tri_range(const double* a, const double* b, const double* c,
               double alpha, double* o, std::size_t lo, std::size_t hi) {
#if defined(NETCONST_SIMD_X86)
  if (use_vector_kernels()) {
    tri_range_vec<Op>(a, b, c, alpha, o, lo, hi);
    return;
  }
#endif
  tri_range_scalar<Op>(a, b, c, alpha, o, lo, hi);
}

// ---- two-operand elementwise forms ----

void sub_range_scalar(const double* a, const double* b, double* o,
                      std::size_t lo, std::size_t hi) {
  for (std::size_t i = lo; i < hi; ++i) o[i] = a[i] - b[i];
}

void sub_scaled_range_scalar(const double* y, double alpha, const double* r,
                             double* o, std::size_t lo, std::size_t hi) {
  for (std::size_t i = lo; i < hi; ++i) o[i] = y[i] - r[i] * alpha;
}

void add_scaled_range_scalar(double alpha, const double* x, double* y,
                             std::size_t lo, std::size_t hi) {
  for (std::size_t i = lo; i < hi; ++i) y[i] += x[i] * alpha;
}

#if defined(NETCONST_SIMD_X86)
NETCONST_TARGET_AVX2 void sub_range_vec(const double* a, const double* b,
                                        double* o, std::size_t lo,
                                        std::size_t hi) {
  std::size_t i = lo;
  for (; i + 4 <= hi; i += 4) {
    _mm256_storeu_pd(
        o + i, _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
  }
  sub_range_scalar(a, b, o, i, hi);
}

NETCONST_TARGET_AVX2 void sub_scaled_range_vec(const double* y, double alpha,
                                               const double* r, double* o,
                                               std::size_t lo,
                                               std::size_t hi) {
  const __m256d valpha = _mm256_set1_pd(alpha);
  std::size_t i = lo;
  for (; i + 4 <= hi; i += 4) {
    _mm256_storeu_pd(
        o + i, _mm256_sub_pd(_mm256_loadu_pd(y + i),
                             _mm256_mul_pd(_mm256_loadu_pd(r + i), valpha)));
  }
  sub_scaled_range_scalar(y, alpha, r, o, i, hi);
}

NETCONST_TARGET_AVX2 void add_scaled_range_vec(double alpha, const double* x,
                                               double* y, std::size_t lo,
                                               std::size_t hi) {
  const __m256d valpha = _mm256_set1_pd(alpha);
  std::size_t i = lo;
  for (; i + 4 <= hi; i += 4) {
    _mm256_storeu_pd(
        y + i, _mm256_add_pd(_mm256_loadu_pd(y + i),
                             _mm256_mul_pd(_mm256_loadu_pd(x + i), valpha)));
  }
  add_scaled_range_scalar(alpha, x, y, i, hi);
}
#endif

void sub_range(const double* a, const double* b, double* o, std::size_t lo,
               std::size_t hi) {
#if defined(NETCONST_SIMD_X86)
  if (use_vector_kernels()) {
    sub_range_vec(a, b, o, lo, hi);
    return;
  }
#endif
  sub_range_scalar(a, b, o, lo, hi);
}

void sub_scaled_range(const double* y, double alpha, const double* r,
                      double* o, std::size_t lo, std::size_t hi) {
#if defined(NETCONST_SIMD_X86)
  if (use_vector_kernels()) {
    sub_scaled_range_vec(y, alpha, r, o, lo, hi);
    return;
  }
#endif
  sub_scaled_range_scalar(y, alpha, r, o, lo, hi);
}

void add_scaled_range(double alpha, const double* x, double* y,
                      std::size_t lo, std::size_t hi) {
#if defined(NETCONST_SIMD_X86)
  if (use_vector_kernels()) {
    add_scaled_range_vec(alpha, x, y, lo, hi);
    return;
  }
#endif
  add_scaled_range_scalar(alpha, x, y, lo, hi);
}

// ---- convergence norms (sequential reduction) ----

void change_norms_scalar(const double* ds, const double* dp, const double* es,
                         const double* ep, std::size_t n, double& change,
                         double& scale) {
  double ch = 0.0, sc = 0.0;
  for (std::size_t idx = 0; idx < n; ++idx) {
    const double dd = ds[idx] - dp[idx];
    const double de = es[idx] - ep[idx];
    ch += dd * dd + de * de;
    sc += ds[idx] * ds[idx] + es[idx] * es[idx];
  }
  change = ch;
  scale = sc;
}

#if defined(NETCONST_SIMD_X86)
NETCONST_TARGET_AVX2 void change_norms_vec(const double* ds, const double* dp,
                                           const double* es, const double* ep,
                                           std::size_t n, double& change,
                                           double& scale) {
  __m256d vch = _mm256_setzero_pd();
  __m256d vsc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vd = _mm256_loadu_pd(ds + i);
    const __m256d vdp = _mm256_loadu_pd(dp + i);
    const __m256d ve = _mm256_loadu_pd(es + i);
    const __m256d vep = _mm256_loadu_pd(ep + i);
    const __m256d dd = _mm256_sub_pd(vd, vdp);
    const __m256d de = _mm256_sub_pd(ve, vep);
    vch = _mm256_add_pd(
        vch, _mm256_add_pd(_mm256_mul_pd(dd, dd), _mm256_mul_pd(de, de)));
    vsc = _mm256_add_pd(
        vsc, _mm256_add_pd(_mm256_mul_pd(vd, vd), _mm256_mul_pd(ve, ve)));
  }
  // Fixed left-to-right lane combine, then the tail in element order:
  // deterministic for this level, though not the scalar association.
  alignas(32) double lch[4], lsc[4];
  _mm256_store_pd(lch, vch);
  _mm256_store_pd(lsc, vsc);
  double ch = ((lch[0] + lch[1]) + lch[2]) + lch[3];
  double sc = ((lsc[0] + lsc[1]) + lsc[2]) + lsc[3];
  for (; i < n; ++i) {
    const double dd = ds[i] - dp[i];
    const double de = es[i] - ep[i];
    ch += dd * dd + de * de;
    sc += ds[i] * ds[i] + es[i] * es[i];
  }
  change = ch;
  scale = sc;
}
#elif defined(NETCONST_SIMD_NEON)
void change_norms_vec(const double* ds, const double* dp, const double* es,
                      const double* ep, std::size_t n, double& change,
                      double& scale) {
  float64x2_t vch = vdupq_n_f64(0.0);
  float64x2_t vsc = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t vd = vld1q_f64(ds + i);
    const float64x2_t vdp = vld1q_f64(dp + i);
    const float64x2_t ve = vld1q_f64(es + i);
    const float64x2_t vep = vld1q_f64(ep + i);
    const float64x2_t dd = vsubq_f64(vd, vdp);
    const float64x2_t de = vsubq_f64(ve, vep);
    vch = vaddq_f64(vch, vaddq_f64(vmulq_f64(dd, dd), vmulq_f64(de, de)));
    vsc = vaddq_f64(vsc, vaddq_f64(vmulq_f64(vd, vd), vmulq_f64(ve, ve)));
  }
  double ch = vgetq_lane_f64(vch, 0) + vgetq_lane_f64(vch, 1);
  double sc = vgetq_lane_f64(vsc, 0) + vgetq_lane_f64(vsc, 1);
  for (; i < n; ++i) {
    const double dd = ds[i] - dp[i];
    const double de = es[i] - ep[i];
    ch += dd * dd + de * de;
    sc += ds[i] * ds[i] + es[i] * es[i];
  }
  change = ch;
  scale = sc;
}
#endif

}  // namespace

void axpby(double alpha, const Matrix& x, double beta, const Matrix& y,
           Matrix& out) {
  check_same_shape(x, y, "axpby shape mismatch");
  out.resize(x.rows(), x.cols());
  const auto xs = x.data();
  const auto ys = y.data();
  const auto os = out.data();
  parallel_for_chunked(
      0, xs.size(),
      [&](std::size_t lo, std::size_t hi) {
        axpby_range(alpha, xs.data(), beta, ys.data(), os.data(), lo, hi);
      },
      kElementGrain);
}

void extrapolate(const Matrix& x, const Matrix& x_prev, double c,
                 Matrix& out) {
  check_same_shape(x, x_prev, "extrapolate shape mismatch");
  out.resize(x.rows(), x.cols());
  const auto xs = x.data();
  const auto ps = x_prev.data();
  const auto os = out.data();
  parallel_for_chunked(
      0, xs.size(),
      [&](std::size_t lo, std::size_t hi) {
        extrapolate_range(xs.data(), ps.data(), c, os.data(), lo, hi);
      },
      kElementGrain);
}

void fused_residual(const Matrix& yd, const Matrix& ye, const Matrix& a,
                    Matrix& out) {
  check_same_shape(yd, ye, "fused_residual shape mismatch");
  check_same_shape(yd, a, "fused_residual shape mismatch");
  out.resize(a.rows(), a.cols());
  const auto ds = yd.data();
  const auto es = ye.data();
  const auto as = a.data();
  const auto os = out.data();
  parallel_for_chunked(
      0, as.size(),
      [&](std::size_t lo, std::size_t hi) {
        tri_range<TriOp::FusedResidual>(ds.data(), es.data(), as.data(), 0.0,
                                        os.data(), lo, hi);
      },
      kElementGrain);
}

void sub_scaled(const Matrix& y, double alpha, const Matrix& r,
                Matrix& out) {
  check_same_shape(y, r, "sub_scaled shape mismatch");
  out.resize(y.rows(), y.cols());
  const auto ys = y.data();
  const auto rs = r.data();
  const auto os = out.data();
  parallel_for_chunked(
      0, ys.size(),
      [&](std::size_t lo, std::size_t hi) {
        sub_scaled_range(ys.data(), alpha, rs.data(), os.data(), lo, hi);
      },
      kElementGrain);
}

void gradient_step(const Matrix& d, const Matrix& d_prev, const Matrix& e,
                   const Matrix& e_prev, const Matrix& a, double c,
                   double inv_lf, double soft_tau, Matrix& gd,
                   Matrix& e_next) {
  check_same_shape(d, d_prev, "gradient_step shape mismatch");
  check_same_shape(d, e, "gradient_step shape mismatch");
  check_same_shape(e, e_prev, "gradient_step shape mismatch");
  check_same_shape(d, a, "gradient_step shape mismatch");
  NETCONST_CHECK(soft_tau >= 0.0, "soft threshold must be non-negative");
  gd.resize(d.rows(), d.cols());
  e_next.resize(d.rows(), d.cols());
  const auto ds = d.data();
  const auto dp = d_prev.data();
  const auto es = e.data();
  const auto ep = e_prev.data();
  const auto as = a.data();
  const auto gds = gd.data();
  const auto ens = e_next.data();
  parallel_for_chunked(
      0, ds.size(),
      [&](std::size_t lo, std::size_t hi) {
        gradient_step_range(ds.data(), dp.data(), es.data(), ep.data(),
                            as.data(), c, inv_lf, soft_tau, gds.data(),
                            ens.data(), lo, hi);
      },
      kElementGrain);
}

void sub_add_scaled(const Matrix& a, const Matrix& b, double alpha,
                    const Matrix& c, Matrix& out) {
  check_same_shape(a, b, "sub_add_scaled shape mismatch");
  check_same_shape(a, c, "sub_add_scaled shape mismatch");
  out.resize(a.rows(), a.cols());
  const auto as = a.data();
  const auto bs = b.data();
  const auto cs = c.data();
  const auto os = out.data();
  parallel_for_chunked(
      0, as.size(),
      [&](std::size_t lo, std::size_t hi) {
        tri_range<TriOp::SubAddScaled>(as.data(), bs.data(), cs.data(), alpha,
                                       os.data(), lo, hi);
      },
      kElementGrain);
}

void sub(const Matrix& a, const Matrix& b, Matrix& out) {
  check_same_shape(a, b, "sub shape mismatch");
  out.resize(a.rows(), a.cols());
  const auto as = a.data();
  const auto bs = b.data();
  const auto os = out.data();
  parallel_for_chunked(
      0, as.size(),
      [&](std::size_t lo, std::size_t hi) {
        sub_range(as.data(), bs.data(), os.data(), lo, hi);
      },
      kElementGrain);
}

void sub_sub(const Matrix& a, const Matrix& b, const Matrix& c,
             Matrix& out) {
  check_same_shape(a, b, "sub_sub shape mismatch");
  check_same_shape(a, c, "sub_sub shape mismatch");
  out.resize(a.rows(), a.cols());
  const auto as = a.data();
  const auto bs = b.data();
  const auto cs = c.data();
  const auto os = out.data();
  parallel_for_chunked(
      0, as.size(),
      [&](std::size_t lo, std::size_t hi) {
        tri_range<TriOp::SubSub>(as.data(), bs.data(), cs.data(), 0.0,
                                 os.data(), lo, hi);
      },
      kElementGrain);
}

void add_scaled(double alpha, const Matrix& x, Matrix& y) {
  check_same_shape(x, y, "add_scaled shape mismatch");
  const auto xs = x.data();
  const auto ys = y.data();
  parallel_for_chunked(
      0, xs.size(),
      [&](std::size_t lo, std::size_t hi) {
        add_scaled_range(alpha, xs.data(), ys.data(), lo, hi);
      },
      kElementGrain);
}

void soft_threshold_into(const Matrix& src, double tau, Matrix& out) {
  NETCONST_CHECK(tau >= 0.0, "soft threshold must be non-negative");
  out.resize(src.rows(), src.cols());
  const auto ss = src.data();
  const auto os = out.data();
  parallel_for_chunked(
      0, ss.size(),
      [&](std::size_t lo, std::size_t hi) {
        soft_threshold_range(ss.data(), tau, os.data(), lo, hi);
      },
      kElementGrain);
}

void iterate_change_norms(const Matrix& d, const Matrix& d_prev,
                          const Matrix& e, const Matrix& e_prev,
                          double& change_sq, double& scale_sq) {
  check_same_shape(d, d_prev, "iterate_change_norms shape mismatch");
  check_same_shape(d, e, "iterate_change_norms shape mismatch");
  check_same_shape(e, e_prev, "iterate_change_norms shape mismatch");
  const auto ds = d.data();
  const auto dp = d_prev.data();
  const auto es = e.data();
  const auto ep = e_prev.data();
#if defined(NETCONST_SIMD_X86) || defined(NETCONST_SIMD_NEON)
  if (use_vector_kernels()) {
    change_norms_vec(ds.data(), dp.data(), es.data(), ep.data(), ds.size(),
                     change_sq, scale_sq);
    return;
  }
#endif
  change_norms_scalar(ds.data(), dp.data(), es.data(), ep.data(), ds.size(),
                      change_sq, scale_sq);
}

}  // namespace netconst::linalg
