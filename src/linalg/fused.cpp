#include "linalg/fused.hpp"

#include "support/error.hpp"
#include "support/parallel_for.hpp"

namespace netconst::linalg {
namespace {

// Elementwise kernels are memory-bound; one chunk should cover enough
// elements to amortize the fork (same coarse-grain discipline as the
// row-panel kernels in blas.cpp, expressed in elements instead of rows).
constexpr std::size_t kElementGrain = 8192;

void check_same_shape(const Matrix& a, const Matrix& b, const char* what) {
  NETCONST_CHECK(a.same_shape(b), what);
}

}  // namespace

void axpby(double alpha, const Matrix& x, double beta, const Matrix& y,
           Matrix& out) {
  check_same_shape(x, y, "axpby shape mismatch");
  out.resize(x.rows(), x.cols());
  const auto xs = x.data();
  const auto ys = y.data();
  const auto os = out.data();
  parallel_for_chunked(
      0, xs.size(),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          os[i] = alpha * xs[i] + beta * ys[i];
        }
      },
      kElementGrain);
}

void extrapolate(const Matrix& x, const Matrix& x_prev, double c,
                 Matrix& out) {
  check_same_shape(x, x_prev, "extrapolate shape mismatch");
  out.resize(x.rows(), x.cols());
  const auto xs = x.data();
  const auto ps = x_prev.data();
  const auto os = out.data();
  parallel_for_chunked(
      0, xs.size(),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          os[i] = xs[i] + (xs[i] - ps[i]) * c;
        }
      },
      kElementGrain);
}

void fused_residual(const Matrix& yd, const Matrix& ye, const Matrix& a,
                    Matrix& out) {
  check_same_shape(yd, ye, "fused_residual shape mismatch");
  check_same_shape(yd, a, "fused_residual shape mismatch");
  out.resize(a.rows(), a.cols());
  const auto ds = yd.data();
  const auto es = ye.data();
  const auto as = a.data();
  const auto os = out.data();
  parallel_for_chunked(
      0, as.size(),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          os[i] = (ds[i] + es[i]) - as[i];
        }
      },
      kElementGrain);
}

void sub_scaled(const Matrix& y, double alpha, const Matrix& r,
                Matrix& out) {
  check_same_shape(y, r, "sub_scaled shape mismatch");
  out.resize(y.rows(), y.cols());
  const auto ys = y.data();
  const auto rs = r.data();
  const auto os = out.data();
  parallel_for_chunked(
      0, ys.size(),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          os[i] = ys[i] - rs[i] * alpha;
        }
      },
      kElementGrain);
}

void gradient_step(const Matrix& d, const Matrix& d_prev, const Matrix& e,
                   const Matrix& e_prev, const Matrix& a, double c,
                   double inv_lf, double soft_tau, Matrix& gd,
                   Matrix& e_next) {
  check_same_shape(d, d_prev, "gradient_step shape mismatch");
  check_same_shape(d, e, "gradient_step shape mismatch");
  check_same_shape(e, e_prev, "gradient_step shape mismatch");
  check_same_shape(d, a, "gradient_step shape mismatch");
  NETCONST_CHECK(soft_tau >= 0.0, "soft threshold must be non-negative");
  gd.resize(d.rows(), d.cols());
  e_next.resize(d.rows(), d.cols());
  const auto ds = d.data();
  const auto dp = d_prev.data();
  const auto es = e.data();
  const auto ep = e_prev.data();
  const auto as = a.data();
  const auto gds = gd.data();
  const auto ens = e_next.data();
  parallel_for_chunked(
      0, ds.size(),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          const double yd = ds[i] + (ds[i] - dp[i]) * c;
          const double ye = es[i] + (es[i] - ep[i]) * c;
          const double r = (yd + ye) - as[i];
          gds[i] = yd - r * inv_lf;
          const double ge = ye - r * inv_lf;
          if (ge > soft_tau) {
            ens[i] = ge - soft_tau;
          } else if (ge < -soft_tau) {
            ens[i] = ge + soft_tau;
          } else {
            ens[i] = 0.0;
          }
        }
      },
      kElementGrain);
}

void sub_add_scaled(const Matrix& a, const Matrix& b, double alpha,
                    const Matrix& c, Matrix& out) {
  check_same_shape(a, b, "sub_add_scaled shape mismatch");
  check_same_shape(a, c, "sub_add_scaled shape mismatch");
  out.resize(a.rows(), a.cols());
  const auto as = a.data();
  const auto bs = b.data();
  const auto cs = c.data();
  const auto os = out.data();
  parallel_for_chunked(
      0, as.size(),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          os[i] = (as[i] - bs[i]) + cs[i] * alpha;
        }
      },
      kElementGrain);
}

void sub(const Matrix& a, const Matrix& b, Matrix& out) {
  check_same_shape(a, b, "sub shape mismatch");
  out.resize(a.rows(), a.cols());
  const auto as = a.data();
  const auto bs = b.data();
  const auto os = out.data();
  parallel_for_chunked(
      0, as.size(),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) os[i] = as[i] - bs[i];
      },
      kElementGrain);
}

void sub_sub(const Matrix& a, const Matrix& b, const Matrix& c,
             Matrix& out) {
  check_same_shape(a, b, "sub_sub shape mismatch");
  check_same_shape(a, c, "sub_sub shape mismatch");
  out.resize(a.rows(), a.cols());
  const auto as = a.data();
  const auto bs = b.data();
  const auto cs = c.data();
  const auto os = out.data();
  parallel_for_chunked(
      0, as.size(),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          os[i] = (as[i] - bs[i]) - cs[i];
        }
      },
      kElementGrain);
}

void add_scaled(double alpha, const Matrix& x, Matrix& y) {
  check_same_shape(x, y, "add_scaled shape mismatch");
  const auto xs = x.data();
  const auto ys = y.data();
  parallel_for_chunked(
      0, xs.size(),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) ys[i] += xs[i] * alpha;
      },
      kElementGrain);
}

void soft_threshold_into(const Matrix& src, double tau, Matrix& out) {
  NETCONST_CHECK(tau >= 0.0, "soft threshold must be non-negative");
  out.resize(src.rows(), src.cols());
  const auto ss = src.data();
  const auto os = out.data();
  parallel_for_chunked(
      0, ss.size(),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          const double v = ss[i];
          if (v > tau) {
            os[i] = v - tau;
          } else if (v < -tau) {
            os[i] = v + tau;
          } else {
            os[i] = 0.0;
          }
        }
      },
      kElementGrain);
}

}  // namespace netconst::linalg
