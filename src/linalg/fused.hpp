// Fused elementwise kernels for the RPCA iteration loop.
//
// The solvers' algebra was originally written as chains of Matrix
// operator+/-/* calls; each link allocated (and zero-faulted) a fresh
// m x n temporary and made an extra pass over memory. Every kernel here
// computes one full right-hand side in a single pass and writes into a
// caller-owned output, so an APG/IALM/stable-PCP iteration touches each
// matrix exactly once and allocates nothing (see docs/PERFORMANCE.md).
//
// Bit-exactness contract: each kernel performs the same floating-point
// operations, in the same per-element order, as the operator chain it
// replaces — this is what lets the workspace solvers match the reference
// solvers exactly (tests/rpca/workspace_equivalence_test.cpp). All
// kernels parallelize over the shared pool with a coarse grain, which is
// safe because every output element is computed independently.
#pragma once

#include "linalg/matrix.hpp"

namespace netconst::linalg {

/// out = alpha * x + beta * y, elementwise (general-purpose axpby).
void axpby(double alpha, const Matrix& x, double beta, const Matrix& y,
           Matrix& out);

/// Momentum extrapolation out = x + c * (x - x_prev) in one pass —
/// replaces {copy, subtract, scale, add} of the APG extrapolation step.
void extrapolate(const Matrix& x, const Matrix& x_prev, double c,
                 Matrix& out);

/// out = (yd + ye) - a: the shared residual of the smooth RPCA term.
void fused_residual(const Matrix& yd, const Matrix& ye, const Matrix& a,
                    Matrix& out);

/// out = y - alpha * r: the proximal gradient step.
void sub_scaled(const Matrix& y, double alpha, const Matrix& r, Matrix& out);

/// The whole APG / stable-PCP gradient step plus the sparse-block prox in
/// one pass. With the extrapolated points yd = d + (d - d_prev) * c and
/// ye = e + (e - e_prev) * c and the shared residual r = (yd + ye) - a,
/// writes gd = yd - r * inv_lf and e_next = soft-threshold(ye - r *
/// inv_lf, soft_tau) without materializing yd, ye, r, or the raw ge: six
/// kernel launches (eighteen passes over m x n memory) become one launch
/// with seven passes. The per-element operation order is exactly
/// extrapolate + fused_residual + sub_scaled + soft_threshold_into.
void gradient_step(const Matrix& d, const Matrix& d_prev, const Matrix& e,
                   const Matrix& e_prev, const Matrix& a, double c,
                   double inv_lf, double soft_tau, Matrix& gd,
                   Matrix& e_next);

/// out = (a - b) + alpha * c: IALM's shrinkage target A - E + Y/mu.
void sub_add_scaled(const Matrix& a, const Matrix& b, double alpha,
                    const Matrix& c, Matrix& out);

/// out = a - b.
void sub(const Matrix& a, const Matrix& b, Matrix& out);

/// out = (a - b) - c: the final decomposition residual A - D - E.
void sub_sub(const Matrix& a, const Matrix& b, const Matrix& c, Matrix& out);

/// y += alpha * x (matrix axpy): IALM's multiplier update Y += mu * R.
void add_scaled(double alpha, const Matrix& x, Matrix& y);

/// out = soft-threshold(src, tau): sign(v) * max(|v| - tau, 0) without
/// the copy the out-of-place soft_threshold makes.
void soft_threshold_into(const Matrix& src, double tau, Matrix& out);

/// Fused convergence reduction of the proximal solvers: one pass
/// computing change_sq = ||D - D_prev||_F^2 + ||E - E_prev||_F^2 and
/// scale_sq = ||D||_F^2 + ||E||_F^2, in the exact interleaved
/// accumulation order the in-solver loop used (scalar path). Under a
/// SIMD level the accumulators are lane-split — deterministic for a
/// fixed level but reassociated, which is why only the workspace
/// solvers call this and rpca::reference keeps its own loop.
void iterate_change_norms(const Matrix& d, const Matrix& d_prev,
                          const Matrix& e, const Matrix& e_prev,
                          double& change_sq, double& scale_sq);

}  // namespace netconst::linalg
