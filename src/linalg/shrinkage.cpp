#include "linalg/shrinkage.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "linalg/blas.hpp"
#include "support/error.hpp"
#include "support/parallel_for.hpp"

namespace netconst::linalg {

bool gram_fast_path_applies(const Matrix& a, const SvdOptions& options) {
  if (a.empty()) return false;  // let the general path report the error
  SvdMethod method = options.method;
  if (method == SvdMethod::Auto) {
    const std::size_t small = std::min(a.rows(), a.cols());
    const std::size_t large = std::max(a.rows(), a.cols());
    method = (small <= 64 && large >= 4 * small) ? SvdMethod::Gram
                                                 : SvdMethod::OneSidedJacobi;
  }
  return method == SvdMethod::Gram && a.rows() <= a.cols();
}

namespace {

// Auto method resolution never takes the Gram route above this many
// rows; a larger row count only appears when the caller forces
// SvdMethod::Gram.
constexpr std::size_t kMaxInterleavedRows = 64;
// Column-tile width of the fused panel/reconstruction pass below: small
// enough that one tile's right-vector slice plus its output block stay
// in L1 across the whole pass.
constexpr std::size_t kJTile = 64;

/// One fused column tile of the scratch SVT tail, with the surviving
/// rank as a compile-time constant. The compile-time bound lets the
/// accumulator arrays live in registers across the row loop (a runtime
/// bound forces them through memory, which costs more than the
/// multiplies at paper shapes) and processes two columns per strip so
/// the paired loads and multiply-adds vectorize. Each column's dot
/// still sums in ascending-i order, each division is the same lone
/// divide, and the output accumulates kept terms in ascending index
/// order — bit-identical to the one-column-at-a-time form.
template <std::size_t NK>
void gram_svt_tile(const Matrix& a, const Matrix& up, const double* sigma_kept,
                   const double (&w)[kMaxInterleavedRows][kMaxInterleavedRows],
                   const int* first_t, Matrix& out, std::size_t m,
                   std::size_t jb, std::size_t je) {
  double vtile[NK][kJTile];
  std::size_t j = jb;
  for (; j + 1 < je; j += 2) {
    double acc[NK][2];
    for (std::size_t t = 0; t < NK; ++t) acc[t][0] = acc[t][1] = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      const auto ai = a.row(i);
      const auto ui = up.row(i);
      const double x0 = ai[j];
      const double x1 = ai[j + 1];
      for (std::size_t t = 0; t < NK; ++t) {
        acc[t][0] += x0 * ui[t];
        acc[t][1] += x1 * ui[t];
      }
    }
    for (std::size_t t = 0; t < NK; ++t) {
      acc[t][0] /= sigma_kept[t];
      acc[t][1] /= sigma_kept[t];
    }
    for (std::size_t t = 0; t < NK; ++t) {
      vtile[t][j - jb] = acc[t][0];
      vtile[t][j - jb + 1] = acc[t][1];
    }
  }
  if (j < je) {
    double acc[NK];
    for (std::size_t t = 0; t < NK; ++t) acc[t] = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      const double aij = a.row(i)[j];
      const auto ui = up.row(i);
      for (std::size_t t = 0; t < NK; ++t) acc[t] += aij * ui[t];
    }
    for (std::size_t t = 0; t < NK; ++t) {
      vtile[t][j - jb] = acc[t] / sigma_kept[t];
    }
  }
  // Tile reconstruction goes through the shared axpy / scaled_set
  // kernels: elementwise, so their SIMD paths are bit-identical to
  // these loops' scalar form (see blas.cpp).
  for (std::size_t t = 0; t < NK; ++t) {
    const std::span<const double> vk(vtile[t], je - jb);
    for (std::size_t i = 0; i < m; ++i) {
      const double us = w[t][i];
      if (us == 0.0) continue;
      const auto oi = out.row(i).subspan(jb, je - jb);
      if (static_cast<int>(t) == first_t[i]) {
        scaled_set(us, vk, oi);
      } else {
        axpy(us, vk, oi);
      }
    }
  }
  for (std::size_t i = 0; i < m; ++i) {
    if (first_t[i] >= 0) continue;
    auto oi = out.row(i);
    for (std::size_t jj = jb; jj < je; ++jj) oi[jj] = 0.0;
  }
}

/// Runtime-rank variant of gram_svt_tile for ranks past the unroll
/// cutoff: identical structure and operation order, accumulators in a
/// fixed-capacity buffer.
void gram_svt_tile_any(const Matrix& a, const Matrix& up,
                       const double* sigma_kept,
                       const double (&w)[kMaxInterleavedRows]
                                        [kMaxInterleavedRows],
                       const int* first_t, Matrix& out, std::size_t m,
                       std::size_t nk, std::size_t jb, std::size_t je) {
  double vtile[kMaxInterleavedRows][kJTile];
  double acc[kMaxInterleavedRows];
  for (std::size_t j = jb; j < je; ++j) {
    for (std::size_t t = 0; t < nk; ++t) acc[t] = 0.0;
    const std::span<double> accs(acc, nk);
    for (std::size_t i = 0; i < m; ++i) {
      // Each acc[t] is its own ascending-i chain, so the accumulation
      // is elementwise across t — axpy's SIMD path stays bit-exact.
      axpy(a.row(i)[j], up.row(i).first(nk), accs);
    }
    for (std::size_t t = 0; t < nk; ++t) acc[t] /= sigma_kept[t];
    for (std::size_t t = 0; t < nk; ++t) vtile[t][j - jb] = acc[t];
  }
  for (std::size_t t = 0; t < nk; ++t) {
    const std::span<const double> vk(vtile[t], je - jb);
    for (std::size_t i = 0; i < m; ++i) {
      const double us = w[t][i];
      if (us == 0.0) continue;
      const auto oi = out.row(i).subspan(jb, je - jb);
      if (static_cast<int>(t) == first_t[i]) {
        scaled_set(us, vk, oi);
      } else {
        axpy(us, vk, oi);
      }
    }
  }
  for (std::size_t i = 0; i < m; ++i) {
    if (first_t[i] >= 0) continue;
    auto oi = out.row(i);
    for (std::size_t jj = jb; jj < je; ++jj) oi[jj] = 0.0;
  }
}

using GramSvtTileFn = void (*)(const Matrix&, const Matrix&, const double*,
                               const double (&)[kMaxInterleavedRows]
                                               [kMaxInterleavedRows],
                               const int*, Matrix&, std::size_t, std::size_t,
                               std::size_t);

/// Resolve the unrolled tile pass for a surviving rank (nullptr past the
/// cutoff; callers fall back to gram_svt_tile_any).
GramSvtTileFn gram_svt_tile_for(std::size_t nk) {
  switch (nk) {
    case 1: return &gram_svt_tile<1>;
    case 2: return &gram_svt_tile<2>;
    case 3: return &gram_svt_tile<3>;
    case 4: return &gram_svt_tile<4>;
    case 5: return &gram_svt_tile<5>;
    case 6: return &gram_svt_tile<6>;
    case 7: return &gram_svt_tile<7>;
    case 8: return &gram_svt_tile<8>;
    case 9: return &gram_svt_tile<9>;
    case 10: return &gram_svt_tile<10>;
    case 11: return &gram_svt_tile<11>;
    case 12: return &gram_svt_tile<12>;
    default: return nullptr;
  }
}

/// Shared tail of the scratch SVT/low-rank paths: given the shrunk
/// spectrum in scratch.shrunk, form the surviving right-vector columns
/// v_k = A^T u_k / sigma_k and accumulate out = U diag(shrunk) V^T with
/// the exact per-element operation order of gram_svd + reconstruct.
void gram_reconstruct_shrunk(const Matrix& a, GramSvtScratch& scratch,
                             Matrix& out) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  const Matrix& u = scratch.eig.eigenvectors;
  const std::vector<double>& sigma = scratch.singular_values;
  const std::vector<double>& shrunk = scratch.shrunk;

  // Right vectors only for columns the shrinkage kept; the skipped
  // columns are exactly the ones the reconstruction never reads. The
  // panel is stored transposed (row k = v_k, m x n) so both the writes
  // here and the reads in the reconstruction below stream sequentially —
  // the j-indexed layout made the reconstruction fetch one double per
  // cache line, which dominated the whole SVT at full rank.
  out.resize(m, n);
  if (m > kMaxInterleavedRows) {
    // Forced-Gram shapes beyond the Auto cutoff: materialize the full
    // right-vector panel, then plain fill-and-accumulate (no fixed-size
    // term arrays).
    Matrix& vt = scratch.v;
    vt.resize(m, n);
    parallel_for_chunked(
        0, n,
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t j = lo; j < hi; ++j) {
            for (std::size_t k = 0; k < m; ++k) {
              if (shrunk[k] == 0.0) continue;
              double dotv = 0.0;
              for (std::size_t i = 0; i < m; ++i) {
                dotv += a(i, j) * u(i, k);
              }
              vt(k, j) = dotv / sigma[k];
            }
          }
        },
        /*grain=*/128);
    out.fill(0.0);
    parallel_for_chunked(
        0, m,
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) {
            auto oi = out.row(i);
            for (std::size_t k = 0; k < m; ++k) {
              const double us = u(i, k) * shrunk[k];
              if (us == 0.0) continue;
              axpy(us, vt.row(k), oi);
            }
          }
        },
        /*grain=*/8);
    return;
  }

  std::size_t kept[kMaxInterleavedRows];
  std::size_t nk = 0;
  for (std::size_t k = 0; k < m; ++k) {
    if (shrunk[k] != 0.0) kept[nk++] = k;
  }
  // Packing the kept U columns (and their sigmas) contiguously lets the
  // accumulator and division loops below vectorize (an indexed
  // ui[kept[t]] access defeats that); each lane is still its own
  // ascending-i sum and its own exact division, so nothing changes
  // numerically.
  Matrix& up = scratch.u_kept;
  up.resize(m, std::max<std::size_t>(nk, 1));
  double sigma_kept[kMaxInterleavedRows];
  for (std::size_t t = 0; t < nk; ++t) sigma_kept[t] = sigma[kept[t]];
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t t = 0; t < nk; ++t) up(i, t) = u(i, kept[t]);
  }
  // Per-(t, i) reconstruction weights and each row's first surviving
  // term. The first term is stored as 0.0 + us * v instead of
  // accumulating onto a separately zero-filled row (the explicit 0.0 +
  // keeps the sum bit-identical — dropping it would flip the sign of a
  // -0.0 product).
  double w[kMaxInterleavedRows][kMaxInterleavedRows];
  int first_t[kMaxInterleavedRows];
  for (std::size_t i = 0; i < m; ++i) first_t[i] = -1;
  for (std::size_t t = 0; t < nk; ++t) {
    const std::size_t k = kept[t];
    for (std::size_t i = 0; i < m; ++i) {
      w[t][i] = u(i, k) * shrunk[k];
      if (w[t][i] != 0.0 && first_t[i] < 0) first_t[i] = static_cast<int>(t);
    }
  }
  // One fused pass in kJTile-column tiles: form the kept right-vector
  // slice for the tile in a per-thread stack buffer, then immediately
  // accumulate the output tile from it while it is still in L1. The
  // unfused form streamed the full m x n panel out to memory and read it
  // straight back — at paper shapes that round trip was the largest
  // share of the SVT's memory traffic.
  const GramSvtTileFn tile = gram_svt_tile_for(nk);
  parallel_for_chunked(
      0, n,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t jb = lo; jb < hi; jb += kJTile) {
          const std::size_t je = std::min(jb + kJTile, hi);
          if (tile != nullptr) {
            tile(a, up, sigma_kept, w, first_t, out, m, jb, je);
          } else {
            gram_svt_tile_any(a, up, sigma_kept, w, first_t, out, m, nk, jb,
                              je);
          }
        }
      },
      /*grain=*/1024);
}

/// Gram spectrum into scratch.singular_values, replicating gram_svd's
/// eigenvalue flooring.
void gram_spectrum(const Matrix& a, GramSvtScratch& scratch) {
  const std::size_t m = a.rows();
  outer_gram_into(a, scratch.gram);
  eigen_symmetric_into(scratch.gram, JacobiOptions{}, scratch.eig_scratch,
                       scratch.eig);
  scratch.singular_values.resize(m);
  const double lambda_max = std::max(scratch.eig.eigenvalues.front(), 0.0);
  // Eigenvalues below this are numerical noise of the Gram product.
  const double floor = lambda_max * 1e-14;
  for (std::size_t k = 0; k < m; ++k) {
    const double lambda = scratch.eig.eigenvalues[k];
    scratch.singular_values[k] = lambda > floor ? std::sqrt(lambda) : 0.0;
  }
}

}  // namespace

Matrix soft_threshold(const Matrix& a, double tau) {
  Matrix out = a;
  soft_threshold_inplace(out, tau);
  return out;
}

void soft_threshold_inplace(Matrix& a, double tau) {
  NETCONST_CHECK(tau >= 0.0, "soft threshold must be non-negative");
  for (auto& v : a.data()) {
    if (v > tau) {
      v -= tau;
    } else if (v < -tau) {
      v += tau;
    } else {
      v = 0.0;
    }
  }
}

SvtResult singular_value_threshold(const Matrix& a, double tau,
                                   const SvdOptions& options) {
  NETCONST_CHECK(tau >= 0.0, "SVT threshold must be non-negative");
  SvdResult dec = svd(a, options);
  SvtResult result;
  result.top_singular_value =
      dec.singular_values.empty() ? 0.0 : dec.singular_values.front();
  for (auto& s : dec.singular_values) {
    s = s > tau ? s - tau : 0.0;
    if (s > 0.0) ++result.rank;
  }
  result.value = dec.reconstruct();
  return result;
}

SvtInfo singular_value_threshold_into(const Matrix& a, double tau,
                                      const SvdOptions& options,
                                      GramSvtScratch& scratch, Matrix& out) {
  NETCONST_CHECK(tau >= 0.0, "SVT threshold must be non-negative");
  SvtInfo info;
  if (!gram_fast_path_applies(a, options)) {
    SvtResult r = singular_value_threshold(a, tau, options);
    info.rank = r.rank;
    info.top_singular_value = r.top_singular_value;
    out = std::move(r.value);
    return info;
  }

  gram_spectrum(a, scratch);
  const std::size_t m = a.rows();
  info.used_scratch = true;
  info.top_singular_value =
      scratch.singular_values.empty() ? 0.0 : scratch.singular_values.front();
  scratch.shrunk.resize(m);
  for (std::size_t k = 0; k < m; ++k) {
    const double s = scratch.singular_values[k];
    scratch.shrunk[k] = s > tau ? s - tau : 0.0;
    if (scratch.shrunk[k] > 0.0) ++info.rank;
  }
  gram_reconstruct_shrunk(a, scratch, out);
  return info;
}

void low_rank_approximation_into(const Matrix& a, std::size_t k,
                                 const SvdOptions& options,
                                 GramSvtScratch& scratch, Matrix& out) {
  if (!gram_fast_path_applies(a, options)) {
    out = low_rank_approximation(a, k, options);
    return;
  }
  gram_spectrum(a, scratch);
  const std::size_t m = a.rows();
  scratch.shrunk.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    scratch.shrunk[i] = i < k ? scratch.singular_values[i] : 0.0;
  }
  gram_reconstruct_shrunk(a, scratch, out);
}

}  // namespace netconst::linalg
