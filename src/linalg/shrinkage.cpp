#include "linalg/shrinkage.hpp"

#include <cmath>

#include "support/error.hpp"

namespace netconst::linalg {

Matrix soft_threshold(const Matrix& a, double tau) {
  Matrix out = a;
  soft_threshold_inplace(out, tau);
  return out;
}

void soft_threshold_inplace(Matrix& a, double tau) {
  NETCONST_CHECK(tau >= 0.0, "soft threshold must be non-negative");
  for (auto& v : a.data()) {
    if (v > tau) {
      v -= tau;
    } else if (v < -tau) {
      v += tau;
    } else {
      v = 0.0;
    }
  }
}

SvtResult singular_value_threshold(const Matrix& a, double tau,
                                   const SvdOptions& options) {
  NETCONST_CHECK(tau >= 0.0, "SVT threshold must be non-negative");
  SvdResult dec = svd(a, options);
  SvtResult result;
  result.top_singular_value =
      dec.singular_values.empty() ? 0.0 : dec.singular_values.front();
  for (auto& s : dec.singular_values) {
    s = s > tau ? s - tau : 0.0;
    if (s > 0.0) ++result.rank;
  }
  result.value = dec.reconstruct();
  return result;
}

}  // namespace netconst::linalg
