#include "linalg/randomized_svd.hpp"

#include <algorithm>

#include "linalg/blas.hpp"
#include "linalg/qr.hpp"
#include "support/error.hpp"

namespace netconst::linalg {

SvdResult randomized_svd(const Matrix& a, std::size_t target_rank,
                         Rng& rng, const RandomizedSvdOptions& options) {
  NETCONST_CHECK(!a.empty(), "randomized SVD of an empty matrix");
  NETCONST_CHECK(target_rank >= 1, "target rank must be >= 1");
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();

  // Keep the sketched side the tall one: recurse on the transpose and
  // swap the factors.
  if (m > n) {
    SvdResult t = randomized_svd(a.transposed(), target_rank, rng, options);
    SvdResult result;
    result.u = std::move(t.v);
    result.v = std::move(t.u);
    result.singular_values = std::move(t.singular_values);
    return result;
  }

  const std::size_t k = std::min(target_rank, m);
  const std::size_t sketch = std::min(k + options.oversampling, m);

  // Gaussian sketch of the row space: Y = A * Omega, m x sketch.
  Matrix omega(n, sketch);
  for (auto& v : omega.data()) v = rng.normal();
  Matrix y = multiply(a, omega);

  // Power iterations (A A^T)^q Y with re-orthonormalization.
  for (int q = 0; q < options.power_iterations; ++q) {
    y = qr_decompose(y).q;
    Matrix z = multiply(a.transposed(), y);  // n x sketch
    z = qr_decompose(z).q;
    y = multiply(a, z);
  }
  const Matrix q = qr_decompose(y).q;  // m x sketch, orthonormal

  // Small problem: B = Q^T A, sketch x n.
  const SvdResult small = svd(multiply(q.transposed(), a));
  const Matrix qu = multiply(q, small.u);

  const std::size_t kept = std::min(k, small.singular_values.size());
  SvdResult result;
  result.singular_values.assign(
      small.singular_values.begin(),
      small.singular_values.begin() + static_cast<std::ptrdiff_t>(kept));
  result.u = Matrix(m, kept);
  result.v = Matrix(n, kept);
  for (std::size_t c = 0; c < kept; ++c) {
    for (std::size_t i = 0; i < m; ++i) result.u(i, c) = qu(i, c);
    for (std::size_t i = 0; i < n; ++i) result.v(i, c) = small.v(i, c);
  }
  return result;
}

}  // namespace netconst::linalg
