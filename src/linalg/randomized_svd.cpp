#include "linalg/randomized_svd.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/blas.hpp"
#include "linalg/qr.hpp"
#include "support/error.hpp"
#include "support/parallel_for.hpp"

namespace netconst::linalg {
namespace {

// Relative eigenvalue floor of the small Gram problem, matching the
// Gram SVT path (linalg/shrinkage.cpp): eigenvalues below
// lambda_max * kGramFloor are squared-roundoff, not spectrum.
constexpr double kGramFloor = 1e-14;

// Fixed-order scalar dot of two equal-length contiguous spans. Four
// independent accumulators folded in a fixed order at the end: the
// floating-point operation sequence is identical at every thread count
// and SIMD level, which is this file's determinism contract. (blas::dot
// is lane-split per SIMD level and must not be used here.)
double dot_rows(std::span<const double> x, std::span<const double> y) {
  const std::size_t n = x.size();
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    s0 += x[j] * y[j];
    s1 += x[j + 1] * y[j + 1];
    s2 += x[j + 2] * y[j + 2];
    s3 += x[j + 3] * y[j + 3];
  }
  double tail = 0.0;
  for (; j < n; ++j) tail += x[j] * y[j];
  return ((s0 + s1) + (s2 + s3)) + tail;
}

// Make sure the cached sketch panel holds at least `sketch` directions
// for width-n inputs, drawing fresh rows from `rng` as needed.
void ensure_omega(RandomizedSvdScratch& s, std::size_t n,
                  std::size_t sketch, Rng& rng) {
  if (s.omega_cols != n) {
    s.omega_t.resize(sketch, n);
    s.omega_cols = n;
    s.filled_directions = 0;
  } else if (s.omega_t.rows() < sketch) {
    // Grow preserving the drawn prefix: each direction is drawn from
    // the stream exactly once, in row order, so the sketch a given
    // (stream state, width) pair sees is independent of how much
    // capacity was reserved up front — a reserved and an on-demand
    // workspace replay identical sketches. (Matrix::resize leaves
    // values unspecified, hence the explicit copy.)
    Matrix grown(sketch, n);
    for (std::size_t r = 0; r < s.filled_directions; ++r) {
      const auto src = s.omega_t.row(r);
      auto dst = grown.row(r);
      std::copy(src.begin(), src.end(), dst.begin());
    }
    s.omega_t.swap(grown);
  }
  for (std::size_t r = s.filled_directions; r < sketch; ++r) {
    for (double& v : s.omega_t.row(r)) v = rng.normal();
  }
  s.filled_directions = std::max(s.filled_directions, sketch);
}

// panel = M^T applied to the columns of `basis` (rows x width), written
// as `width` contiguous rows of `panel` (width x n). Each output row is
// an independent fixed-order accumulation over the rows of `m`, so the
// split across workers never changes a result bit.
void transpose_apply(const Matrix& m, const Matrix& basis,
                     std::size_t width, Matrix& panel) {
  panel.resize(width, m.cols());
  parallel_for(
      0, width,
      [&](std::size_t k) {
        auto out = panel.row(k);
        scaled_set(basis(0, k), m.row(0), out);
        for (std::size_t i = 1; i < m.rows(); ++i) {
          axpy(basis(i, k), m.row(i), out);
        }
      },
      1);
}

// y(i, k) = <a.row(i), panel.row(k)> for k < width; independent output
// rows across workers, fixed-order dots within.
void apply_panel(const Matrix& a, const Matrix& panel, std::size_t width,
                 Matrix& y) {
  y.resize(a.rows(), width);
  parallel_for(
      0, a.rows(),
      [&](std::size_t i) {
        for (std::size_t k = 0; k < width; ++k) {
          y(i, k) = dot_rows(a.row(i), panel.row(k));
        }
      },
      1);
}

// Modified Gram–Schmidt over the first `width` rows of `panel`
// (sequential; rows that cancel to zero stay zero — the final
// Householder QR of the sketch image absorbs degenerate directions).
void orthonormalize_rows(Matrix& panel, std::size_t width) {
  for (std::size_t k = 0; k < width; ++k) {
    auto row = panel.row(k);
    for (std::size_t l = 0; l < k; ++l) {
      const double proj = dot_rows(row, panel.row(l));
      if (proj != 0.0) axpy(-proj, panel.row(l), row);
    }
    const double norm2 = dot_rows(row, row);
    if (norm2 > 0.0) {
      scale(1.0 / std::sqrt(norm2), row);
    } else {
      for (double& v : row) v = 0.0;
    }
  }
}

struct SpectrumResult {
  std::size_t sketch = 0;    // directions used (<= rows)
  std::size_t captured = 0;  // numerically nonzero singular values
  double err = 0.0;          // Frobenius truncation bound
  double input_fro = 0.0;    // ||A||_F (fixed-order accumulation)
};

// The shared pipeline: sketch, power-iterate, orthonormalize, and solve
// the small problem. On return scratch.q holds the orthonormal basis
// (rows x sketch), scratch.b the small problem B = Q^T A (sketch x n),
// scratch.eig its Gram eigenpairs and scratch.singular_values the
// captured spectrum (descending).
SpectrumResult sketch_spectrum(const Matrix& a, std::size_t sketch,
                               Rng& rng,
                               const RandomizedSvdOptions& options,
                               RandomizedSvdScratch& s) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  sketch = std::min(std::max<std::size_t>(sketch, 1), m);
  ensure_omega(s, n, sketch, rng);

  // Y = A * Omega^T (m x sketch).
  apply_panel(a, s.omega_t, sketch, s.y);

  // Power iterations (A A^T)^q Y with re-orthonormalization. A complete
  // sketch already spans the row space; skip the polish.
  if (sketch < m) {
    for (int p = 0; p < options.power_iterations; ++p) {
      qr_factor_inplace(s.y, s.tau);
      qr_thin_q_into(s.y, s.tau, s.q);
      transpose_apply(a, s.q, sketch, s.z);
      orthonormalize_rows(s.z, sketch);
      apply_panel(a, s.z, sketch, s.y);
    }
  }
  qr_factor_inplace(s.y, s.tau);
  qr_thin_q_into(s.y, s.tau, s.q);

  // Small problem B = Q^T A and its Gram matrix B B^T.
  transpose_apply(a, s.q, sketch, s.b);
  s.gram.resize(sketch, sketch);
  for (std::size_t k = 0; k < sketch; ++k) {
    for (std::size_t l = 0; l <= k; ++l) {
      const double g = dot_rows(s.b.row(k), s.b.row(l));
      s.gram(k, l) = g;
      s.gram(l, k) = g;
    }
  }
  eigen_symmetric_into(s.gram, JacobiOptions{}, s.eig_scratch, s.eig);

  // ||A||_F^2 via per-row partials combined in row order, ||B||_F^2 as
  // the trace of the Gram spectrum.
  s.row_partials.resize(m);
  parallel_for(
      0, m,
      [&](std::size_t i) {
        s.row_partials[i] = dot_rows(a.row(i), a.row(i));
      },
      1);
  double a_fro2 = 0.0;
  for (std::size_t i = 0; i < m; ++i) a_fro2 += s.row_partials[i];
  double b_fro2 = 0.0;
  for (const double lambda : s.eig.eigenvalues) {
    b_fro2 += std::max(lambda, 0.0);
  }

  SpectrumResult result;
  result.sketch = sketch;
  result.err = std::sqrt(std::max(a_fro2 - b_fro2, 0.0));
  result.input_fro = std::sqrt(a_fro2);
  const double lambda_max = std::max(s.eig.eigenvalues[0], 0.0);
  const double floor = lambda_max * kGramFloor;
  std::size_t captured = 0;
  while (captured < sketch && s.eig.eigenvalues[captured] > floor &&
         s.eig.eigenvalues[captured] > 0.0) {
    ++captured;
  }
  result.captured = captured;
  s.singular_values.resize(captured);
  for (std::size_t k = 0; k < captured; ++k) {
    s.singular_values[k] = std::sqrt(s.eig.eigenvalues[k]);
  }
  return result;
}

// out = Q * U_B * diag(scratch.ratio) * U_B^T * B, the lifted
// reconstruction with per-value multipliers (sigma' / sigma for SVT,
// 0/1 for a rank cut). Rows of `out` are independent across workers.
void reconstruct_into(const Matrix& a, std::size_t sketch,
                      std::size_t captured, RandomizedSvdScratch& s,
                      Matrix& out) {
  const std::size_t m = a.rows();
  s.mix.resize(sketch, sketch);
  for (std::size_t k = 0; k < sketch; ++k) {
    for (std::size_t l = 0; l <= k; ++l) {
      double acc = 0.0;
      for (std::size_t c = 0; c < captured; ++c) {
        if (s.ratio[c] == 0.0) continue;
        acc += s.eig.eigenvectors(k, c) * s.eig.eigenvectors(l, c) *
               s.ratio[c];
      }
      s.mix(k, l) = acc;
      s.mix(l, k) = acc;
    }
  }
  s.w.resize(m, sketch);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t l = 0; l < sketch; ++l) {
      double acc = 0.0;
      for (std::size_t k = 0; k < sketch; ++k) {
        acc += s.q(i, k) * s.mix(k, l);
      }
      s.w(i, l) = acc;
    }
  }
  out.resize(m, a.cols());
  parallel_for(
      0, m,
      [&](std::size_t i) {
        auto row = out.row(i);
        scaled_set(s.w(i, 0), s.b.row(0), row);
        for (std::size_t l = 1; l < sketch; ++l) {
          axpy(s.w(i, l), s.b.row(l), row);
        }
      },
      1);
}

}  // namespace

void RandomizedSvdScratch::reserve(std::size_t rows, std::size_t cols,
                                   std::size_t sketch_cap) {
  const std::size_t s = std::min(std::max<std::size_t>(sketch_cap, 1),
                                 std::max<std::size_t>(rows, 1));
  omega_t.resize(s, cols);
  omega_cols = cols;
  filled_directions = 0;
  y.resize(rows, s);
  q.resize(rows, s);
  z.resize(s, cols);
  b.resize(s, cols);
  gram.resize(s, s);
  mix.resize(s, s);
  w.resize(rows, s);
  tau.reserve(s);
  row_partials.reserve(rows);
  singular_values.reserve(s);
  ratio.reserve(s);
  eig_scratch.work.resize(s, s);
  eig_scratch.rotations.resize(s, s);
  eig_scratch.order.reserve(s);
  eig_scratch.diagonal.reserve(s);
  eig.eigenvalues.reserve(s);
  eig.eigenvectors.resize(s, s);
}

RandomizedSvdInfo randomized_svt_into(const Matrix& a, double tau,
                                      std::size_t target_rank, Rng& rng,
                                      const RandomizedSvdOptions& options,
                                      double acceptance_bound,
                                      double acceptance_rel,
                                      RandomizedSvdScratch& scratch,
                                      Matrix& out) {
  NETCONST_CHECK(!a.empty(), "randomized SVT of an empty matrix");
  NETCONST_CHECK(a.rows() <= a.cols(),
                 "randomized SVT requires rows <= cols");
  NETCONST_CHECK(target_rank >= 1, "target rank must be >= 1");
  NETCONST_CHECK(tau >= 0.0, "SVT threshold must be >= 0");
  const std::size_t m = a.rows();
  const SpectrumResult spec = sketch_spectrum(
      a, std::min(m, target_rank + options.oversampling), rng, options,
      scratch);

  RandomizedSvdInfo info;
  info.sketch = spec.sketch;
  info.truncation_error = spec.err;
  info.input_fro = spec.input_fro;
  const double bound =
      std::max(acceptance_bound, acceptance_rel * spec.input_fro);
  // A complete sketch spans the whole row space — the decomposition is
  // exact to roundoff regardless of the bound.
  if (spec.sketch < m && spec.err > bound) return info;
  info.accepted = true;
  info.top_singular_value =
      spec.captured > 0 ? scratch.singular_values[0] : 0.0;

  scratch.ratio.resize(spec.captured);
  for (std::size_t c = 0; c < spec.captured; ++c) {
    const double sigma = scratch.singular_values[c];
    const double shrunk = sigma - tau;
    if (shrunk > 0.0) {
      scratch.ratio[c] = shrunk / sigma;
      ++info.rank;
    } else {
      scratch.ratio[c] = 0.0;
    }
  }
  out.resize(m, a.cols());
  if (info.rank == 0) {
    out.fill(0.0);
    return info;
  }
  reconstruct_into(a, spec.sketch, spec.captured, scratch, out);
  return info;
}

RandomizedSvdInfo randomized_low_rank_into(
    const Matrix& a, std::size_t k, Rng& rng,
    const RandomizedSvdOptions& options, double acceptance_bound,
    double acceptance_rel, RandomizedSvdScratch& scratch, Matrix& out) {
  NETCONST_CHECK(!a.empty(), "randomized rank cut of an empty matrix");
  NETCONST_CHECK(a.rows() <= a.cols(),
                 "randomized rank cut requires rows <= cols");
  NETCONST_CHECK(k >= 1, "rank must be >= 1");
  const std::size_t m = a.rows();
  const SpectrumResult spec = sketch_spectrum(
      a, std::min(m, k + options.oversampling), rng, options, scratch);

  RandomizedSvdInfo info;
  info.sketch = spec.sketch;
  info.truncation_error = spec.err;
  info.input_fro = spec.input_fro;
  const double bound =
      std::max(acceptance_bound, acceptance_rel * spec.input_fro);
  if (spec.sketch < m && spec.err > bound) return info;
  info.accepted = true;
  info.top_singular_value =
      spec.captured > 0 ? scratch.singular_values[0] : 0.0;

  info.rank = std::min(k, spec.captured);
  scratch.ratio.resize(spec.captured);
  for (std::size_t c = 0; c < spec.captured; ++c) {
    scratch.ratio[c] = c < info.rank ? 1.0 : 0.0;
  }
  out.resize(m, a.cols());
  if (info.rank == 0) {
    out.fill(0.0);
    return info;
  }
  reconstruct_into(a, spec.sketch, spec.captured, scratch, out);
  return info;
}

SvdResult randomized_svd(const Matrix& a, std::size_t target_rank,
                         Rng& rng, const RandomizedSvdOptions& options) {
  NETCONST_CHECK(!a.empty(), "randomized SVD of an empty matrix");
  NETCONST_CHECK(target_rank >= 1, "target rank must be >= 1");

  // Keep the sketched side the tall one: recurse on the transpose and
  // swap the factors.
  if (a.rows() > a.cols()) {
    SvdResult t = randomized_svd(a.transposed(), target_rank, rng, options);
    SvdResult result;
    result.u = std::move(t.v);
    result.v = std::move(t.u);
    result.singular_values = std::move(t.singular_values);
    return result;
  }

  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  const std::size_t k = std::min(target_rank, m);
  RandomizedSvdScratch scratch;
  const SpectrumResult spec = sketch_spectrum(
      a, std::min(m, k + options.oversampling), rng, options, scratch);

  const std::size_t kept = std::min(k, spec.captured);
  SvdResult result;
  result.singular_values.assign(
      scratch.singular_values.begin(),
      scratch.singular_values.begin() + static_cast<std::ptrdiff_t>(kept));
  result.u = Matrix(m, kept);
  result.v = Matrix(n, kept);
  // U = Q * U_B, V^T = diag(1/sigma) * U_B^T * B.
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t c = 0; c < kept; ++c) {
      double acc = 0.0;
      for (std::size_t l = 0; l < spec.sketch; ++l) {
        acc += scratch.q(i, l) * scratch.eig.eigenvectors(l, c);
      }
      result.u(i, c) = acc;
    }
  }
  Matrix vt(kept, n);
  for (std::size_t c = 0; c < kept; ++c) {
    auto row = vt.row(c);
    scaled_set(scratch.eig.eigenvectors(0, c), scratch.b.row(0), row);
    for (std::size_t l = 1; l < spec.sketch; ++l) {
      axpy(scratch.eig.eigenvectors(l, c), scratch.b.row(l), row);
    }
    scale(1.0 / result.singular_values[c], row);
  }
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t c = 0; c < kept; ++c) result.v(j, c) = vt(c, j);
  }
  return result;
}

}  // namespace netconst::linalg
