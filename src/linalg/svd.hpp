// Thin singular value decomposition.
//
// Two methods behind one interface:
//  * One-sided Jacobi — the accurate general-purpose path. Tall inputs are
//    QR-preconditioned (SVD of the small R factor), wide inputs go through
//    the transpose.
//  * Gram — for extremely rectangular inputs like RPCA's TP-matrices
//    (time-step rows x N^2 columns): eigendecompose the small m x m Gram
//    matrix A A^T and recover V = A^T U Sigma^-1. This is the fast path
//    that keeps the paper's "RPCA runs in under a minute on a 196-instance
//    cluster" property.
// `Auto` picks Gram when min(m,n) is small relative to max(m,n).
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace netconst::linalg {

enum class SvdMethod { Auto, OneSidedJacobi, Gram };

struct SvdOptions {
  SvdMethod method = SvdMethod::Auto;
  int max_sweeps = 60;       // Jacobi sweeps
  double tolerance = 1e-12;  // relative orthogonality tolerance
};

/// Thin SVD A = U diag(s) V^T with U: m x r, V: n x r, r = min(m, n).
/// Singular values are non-negative and sorted descending. Columns of U/V
/// corresponding to (numerically) zero singular values are zero-filled by
/// the Gram path and orthonormal in the Jacobi path; both reconstruct A.
struct SvdResult {
  Matrix u;
  std::vector<double> singular_values;
  Matrix v;

  /// U diag(s) V^T.
  Matrix reconstruct() const;

  /// Number of singular values above `rel_tol * s_max`.
  std::size_t rank(double rel_tol = 1e-10) const;

  /// Sum of singular values (nuclear norm of the input).
  double nuclear_norm() const;
};

/// Compute the thin SVD. Throws ContractViolation on an empty input.
SvdResult svd(const Matrix& a, const SvdOptions& options = {});

/// Best rank-k approximation of `a` (truncated SVD product).
Matrix low_rank_approximation(const Matrix& a, std::size_t k,
                              const SvdOptions& options = {});

}  // namespace netconst::linalg
