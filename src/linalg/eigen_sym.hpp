// Symmetric eigendecomposition via the cyclic Jacobi rotation method.
//
// Used by the SVD Gram fast path: the TP-matrices RPCA decomposes are
// extremely rectangular (time-step rows x N^2 columns, e.g. 10 x 38416),
// so the m x m Gram matrix is tiny and Jacobi converges in a handful of
// sweeps with excellent accuracy.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace netconst::linalg {

/// Result of a symmetric eigendecomposition A = V diag(w) V^T.
struct SymmetricEigen {
  std::vector<double> eigenvalues;  // descending order
  Matrix eigenvectors;              // columns match eigenvalues
  int sweeps = 0;                   // Jacobi sweeps used
};

/// Options for the Jacobi eigensolver.
struct JacobiOptions {
  int max_sweeps = 50;
  double tolerance = 1e-12;  // relative off-diagonal norm stop criterion
};

/// Reusable working storage of the Jacobi sweep: the symmetrized working
/// copy, the accumulated rotations, and the sort permutation. Callers on
/// the RPCA hot path keep one of these per solver workspace so repeated
/// eigendecompositions of same-sized Gram matrices allocate nothing.
struct SymmetricEigenScratch {
  Matrix work;                     // symmetrized working copy of the input
  Matrix rotations;                // accumulated Jacobi rotations
  std::vector<std::size_t> order;  // sort permutation
  std::vector<double> diagonal;    // unsorted eigenvalues
};

/// Eigendecomposition of a symmetric matrix. The input must be square and
/// numerically symmetric (max asymmetry is checked against a loose bound).
SymmetricEigen eigen_symmetric(const Matrix& a, const JacobiOptions& options = {});

/// eigen_symmetric into caller-owned output and scratch storage.
/// Numerically identical to eigen_symmetric; performs no allocation once
/// `scratch` and `out` carry capacity for this problem size.
void eigen_symmetric_into(const Matrix& a, const JacobiOptions& options,
                          SymmetricEigenScratch& scratch,
                          SymmetricEigen& out);

}  // namespace netconst::linalg
