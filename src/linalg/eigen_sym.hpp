// Symmetric eigendecomposition via the cyclic Jacobi rotation method.
//
// Used by the SVD Gram fast path: the TP-matrices RPCA decomposes are
// extremely rectangular (time-step rows x N^2 columns, e.g. 10 x 38416),
// so the m x m Gram matrix is tiny and Jacobi converges in a handful of
// sweeps with excellent accuracy.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace netconst::linalg {

/// Result of a symmetric eigendecomposition A = V diag(w) V^T.
struct SymmetricEigen {
  std::vector<double> eigenvalues;  // descending order
  Matrix eigenvectors;              // columns match eigenvalues
  int sweeps = 0;                   // Jacobi sweeps used
};

/// Options for the Jacobi eigensolver.
struct JacobiOptions {
  int max_sweeps = 50;
  double tolerance = 1e-12;  // relative off-diagonal norm stop criterion
};

/// Eigendecomposition of a symmetric matrix. The input must be square and
/// numerically symmetric (max asymmetry is checked against a loose bound).
SymmetricEigen eigen_symmetric(const Matrix& a, const JacobiOptions& options = {});

}  // namespace netconst::linalg
