#include "linalg/norms.hpp"

#include <cmath>

#include "linalg/blas.hpp"
#include "linalg/svd.hpp"
#include "support/error.hpp"

namespace netconst::linalg {

double frobenius_norm(const Matrix& a) {
  double s = 0.0;
  for (double v : a.data()) s += v * v;
  return std::sqrt(s);
}

double l1_norm(const Matrix& a) {
  double s = 0.0;
  for (double v : a.data()) s += std::abs(v);
  return s;
}

double max_abs(const Matrix& a) {
  double m = 0.0;
  for (double v : a.data()) m = std::max(m, std::abs(v));
  return m;
}

std::size_t l0_count(const Matrix& a, double tolerance) {
  NETCONST_CHECK(tolerance >= 0.0, "l0 tolerance must be non-negative");
  std::size_t count = 0;
  for (double v : a.data()) {
    if (std::abs(v) > tolerance) ++count;
  }
  return count;
}

double nuclear_norm(const Matrix& a) { return svd(a).nuclear_norm(); }

double spectral_norm(const Matrix& a, int max_iterations, double tolerance) {
  SpectralNormScratch scratch;
  return spectral_norm(a, scratch, max_iterations, tolerance);
}

double spectral_norm(const Matrix& a, SpectralNormScratch& scratch,
                     int max_iterations, double tolerance) {
  NETCONST_CHECK(!a.empty(), "spectral norm of an empty matrix");
  // Power iteration on the smaller Gram operator.
  const bool wide = a.cols() > a.rows();
  const std::size_t dim = wide ? a.rows() : a.cols();
  const std::size_t other = wide ? a.cols() : a.rows();
  std::vector<double>& x = scratch.x;
  std::vector<double>& y = scratch.y;
  std::vector<double>& t = scratch.t;
  x.assign(dim, 1.0 / std::sqrt(static_cast<double>(dim)));
  y.resize(dim);
  t.resize(other);
  double sigma = 0.0;
  for (int it = 0; it < max_iterations; ++it) {
    if (wide) {
      // y = A (A^T x)
      multiply_transposed_into(a, x, t);
      multiply_into(a, t, y);
    } else {
      // y = A^T (A x)
      multiply_into(a, x, t);
      multiply_transposed_into(a, t, y);
    }
    const double norm = norm2(y);
    if (norm == 0.0) return 0.0;
    const double next = std::sqrt(norm);
    for (std::size_t i = 0; i < dim; ++i) x[i] = y[i] / norm;
    if (std::abs(next - sigma) <= tolerance * std::max(next, 1.0)) {
      return next;
    }
    sigma = next;
  }
  return sigma;
}

}  // namespace netconst::linalg
