#include "linalg/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace netconst::linalg::simd {
namespace {

/// -1 = no override in force, otherwise a Level value. Relaxed atomics:
/// kernels read it once per call and overrides are a test/bench tool.
std::atomic<int> g_override{-1};

bool env_equals(const char* value, const char* want) {
  return value != nullptr && std::strcmp(value, want) == 0;
}

Level detect() {
  const char* env = std::getenv("NETCONST_SIMD");
  if (env_equals(env, "scalar") || env_equals(env, "off")) {
    return Level::Scalar;
  }
#if defined(NETCONST_SIMD_X86)
  if (env == nullptr || env_equals(env, "auto") || env_equals(env, "avx2")) {
    if (__builtin_cpu_supports("avx2")) return Level::Avx2;
  }
#elif defined(NETCONST_SIMD_NEON)
  if (env == nullptr || env_equals(env, "auto") || env_equals(env, "neon")) {
    return Level::Neon;
  }
#endif
  return Level::Scalar;
}

Level detected() {
  static const Level level = detect();
  return level;
}

Level clamp_to_executable(Level level) {
#if defined(NETCONST_SIMD_X86)
  if (level == Level::Avx2 && __builtin_cpu_supports("avx2")) return level;
#elif defined(NETCONST_SIMD_NEON)
  if (level == Level::Neon) return level;
#endif
  return Level::Scalar;
}

}  // namespace

Level active_level() {
  const int over = g_override.load(std::memory_order_relaxed);
  if (over >= 0) return static_cast<Level>(over);
  return detected();
}

Level best_available_level() {
#if defined(NETCONST_SIMD_X86)
  return clamp_to_executable(Level::Avx2);
#elif defined(NETCONST_SIMD_NEON)
  return Level::Neon;
#else
  return Level::Scalar;
#endif
}

const char* level_name(Level level) {
  switch (level) {
    case Level::Avx2:
      return "avx2";
    case Level::Neon:
      return "neon";
    case Level::Scalar:
    default:
      return "scalar";
  }
}

std::size_t lane_width(Level level) {
  switch (level) {
    case Level::Avx2:
      return 4;
    case Level::Neon:
      return 2;
    case Level::Scalar:
    default:
      return 1;
  }
}

ScopedLevel::ScopedLevel(Level level)
    : saved_(g_override.load(std::memory_order_relaxed)) {
  g_override.store(static_cast<int>(clamp_to_executable(level)),
                   std::memory_order_relaxed);
}

ScopedLevel::~ScopedLevel() {
  g_override.store(saved_, std::memory_order_relaxed);
}

}  // namespace netconst::linalg::simd
