#include "linalg/svd.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "linalg/blas.hpp"
#include "linalg/eigen_sym.hpp"
#include "linalg/qr.hpp"
#include "support/error.hpp"
#include "support/parallel_for.hpp"

namespace netconst::linalg {
namespace {

// One-sided Jacobi on an m x n matrix with m >= n. Returns U (m x n),
// singular values (n) and V (n x n), unsorted.
void jacobi_svd_tall(const Matrix& a, Matrix& u, std::vector<double>& s,
                     Matrix& v, const SvdOptions& options) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  Matrix b = a;
  v = Matrix::identity(n);

  for (int sweep = 0; sweep < options.max_sweeps; ++sweep) {
    bool converged = true;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        double app = 0.0, aqq = 0.0, apq = 0.0;
        for (std::size_t i = 0; i < m; ++i) {
          app += b(i, p) * b(i, p);
          aqq += b(i, q) * b(i, q);
          apq += b(i, p) * b(i, q);
        }
        if (std::abs(apq) <=
            options.tolerance * std::sqrt(app * aqq) + 1e-300) {
          continue;
        }
        converged = false;
        const double zeta = (aqq - app) / (2.0 * apq);
        const double t = (zeta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double sn = c * t;
        for (std::size_t i = 0; i < m; ++i) {
          const double bip = b(i, p);
          const double biq = b(i, q);
          b(i, p) = c * bip - sn * biq;
          b(i, q) = sn * bip + c * biq;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double vip = v(i, p);
          const double viq = v(i, q);
          v(i, p) = c * vip - sn * viq;
          v(i, q) = sn * vip + c * viq;
        }
      }
    }
    if (converged) break;
  }

  s.assign(n, 0.0);
  u = Matrix(m, n);
  for (std::size_t j = 0; j < n; ++j) {
    double norm = 0.0;
    for (std::size_t i = 0; i < m; ++i) norm += b(i, j) * b(i, j);
    norm = std::sqrt(norm);
    s[j] = norm;
    if (norm > 0.0) {
      for (std::size_t i = 0; i < m; ++i) u(i, j) = b(i, j) / norm;
    }
  }
}

void sort_descending(Matrix& u, std::vector<double>& s, Matrix& v) {
  const std::size_t r = s.size();
  std::vector<std::size_t> order(r);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&s](std::size_t a, std::size_t b) { return s[a] > s[b]; });
  Matrix u2(u.rows(), r), v2(v.rows(), r);
  std::vector<double> s2(r);
  for (std::size_t k = 0; k < r; ++k) {
    s2[k] = s[order[k]];
    for (std::size_t i = 0; i < u.rows(); ++i) u2(i, k) = u(i, order[k]);
    for (std::size_t i = 0; i < v.rows(); ++i) v2(i, k) = v(i, order[k]);
  }
  u = std::move(u2);
  s = std::move(s2);
  v = std::move(v2);
}

// SVD via the m x m Gram matrix A A^T — for m <= n (short-wide inputs).
SvdResult gram_svd(const Matrix& a) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  NETCONST_ASSERT(m <= n);
  const Matrix g = outer_gram(a);
  const SymmetricEigen eig = eigen_symmetric(g);

  SvdResult result;
  result.u = eig.eigenvectors;  // m x m, already sorted descending
  result.singular_values.resize(m);
  const double lambda_max = std::max(eig.eigenvalues.front(), 0.0);
  // Eigenvalues below this are numerical noise of the Gram product.
  const double floor = lambda_max * 1e-14;
  for (std::size_t k = 0; k < m; ++k) {
    const double lambda = eig.eigenvalues[k];
    result.singular_values[k] = lambda > floor ? std::sqrt(lambda) : 0.0;
  }
  // V column k = A^T u_k / sigma_k (zero-filled for null singular values).
  result.v = Matrix(n, m);
  parallel_for_chunked(
      0, n,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t j = lo; j < hi; ++j) {
          for (std::size_t k = 0; k < m; ++k) {
            const double sigma = result.singular_values[k];
            if (sigma == 0.0) continue;
            double dotv = 0.0;
            for (std::size_t i = 0; i < m; ++i) {
              dotv += a(i, j) * result.u(i, k);
            }
            result.v(j, k) = dotv / sigma;
          }
        }
      },
      /*grain=*/128);
  return result;
}

SvdResult jacobi_path(const Matrix& a, const SvdOptions& options) {
  SvdResult result;
  if (a.rows() >= a.cols()) {
    if (a.rows() > 2 * a.cols() && a.cols() > 1) {
      // QR preconditioning: SVD of the small R factor.
      const QrResult qr = qr_decompose(a);
      Matrix ur;
      jacobi_svd_tall(qr.r, ur, result.singular_values, result.v, options);
      result.u = multiply(qr.q, ur);
    } else {
      jacobi_svd_tall(a, result.u, result.singular_values, result.v,
                      options);
    }
  } else {
    const Matrix at = a.transposed();
    SvdOptions opt = options;
    SvdResult t;
    if (at.rows() > 2 * at.cols() && at.cols() > 1) {
      const QrResult qr = qr_decompose(at);
      Matrix ur;
      jacobi_svd_tall(qr.r, ur, t.singular_values, t.v, opt);
      t.u = multiply(qr.q, ur);
    } else {
      jacobi_svd_tall(at, t.u, t.singular_values, t.v, opt);
    }
    result.u = std::move(t.v);
    result.v = std::move(t.u);
    result.singular_values = std::move(t.singular_values);
  }
  sort_descending(result.u, result.singular_values, result.v);
  return result;
}

}  // namespace

Matrix SvdResult::reconstruct() const {
  const std::size_t m = u.rows();
  const std::size_t n = v.rows();
  const std::size_t r = singular_values.size();
  Matrix a(m, n);
  parallel_for_chunked(
      0, m,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          for (std::size_t k = 0; k < r; ++k) {
            const double us = u(i, k) * singular_values[k];
            if (us == 0.0) continue;
            for (std::size_t j = 0; j < n; ++j) a(i, j) += us * v(j, k);
          }
        }
      },
      /*grain=*/8);
  return a;
}

std::size_t SvdResult::rank(double rel_tol) const {
  if (singular_values.empty()) return 0;
  const double cutoff = singular_values.front() * rel_tol;
  std::size_t r = 0;
  for (double s : singular_values) {
    if (s > cutoff) ++r;
  }
  return r;
}

double SvdResult::nuclear_norm() const {
  double s = 0.0;
  for (double v : singular_values) s += v;
  return s;
}

SvdResult svd(const Matrix& a, const SvdOptions& options) {
  NETCONST_CHECK(!a.empty(), "SVD of an empty matrix");
  SvdMethod method = options.method;
  if (method == SvdMethod::Auto) {
    const std::size_t small = std::min(a.rows(), a.cols());
    const std::size_t large = std::max(a.rows(), a.cols());
    method = (small <= 64 && large >= 4 * small) ? SvdMethod::Gram
                                                 : SvdMethod::OneSidedJacobi;
  }
  if (method == SvdMethod::Gram) {
    if (a.rows() <= a.cols()) return gram_svd(a);
    SvdResult t = gram_svd(a.transposed());
    SvdResult result;
    result.u = std::move(t.v);
    result.v = std::move(t.u);
    result.singular_values = std::move(t.singular_values);
    return result;
  }
  return jacobi_path(a, options);
}

Matrix low_rank_approximation(const Matrix& a, std::size_t k,
                              const SvdOptions& options) {
  SvdResult r = svd(a, options);
  for (std::size_t i = k; i < r.singular_values.size(); ++i) {
    r.singular_values[i] = 0.0;
  }
  return r.reconstruct();
}

}  // namespace netconst::linalg
