// Dense row-major double matrix — the numeric workhorse under the RPCA
// solvers. Kept deliberately small: storage, element access, shape, and
// elementwise algebra. Kernels with interesting cost (gemm, factorizations)
// live in blas.hpp / qr.hpp / svd.hpp.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <utility>
#include <vector>

namespace netconst::linalg {

class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// rows x cols matrix, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols);

  /// rows x cols matrix filled with `value`.
  Matrix(std::size_t rows, std::size_t cols, double value);

  /// From nested initializer list; all rows must have equal width.
  Matrix(std::initializer_list<std::initializer_list<double>> init);

  // Moves are noexcept and copies are defaulted; workspace code rotates
  // iterates with swap()/moves and relies on these never deep-copying.
  Matrix(const Matrix&) = default;
  Matrix& operator=(const Matrix&) = default;
  Matrix(Matrix&&) noexcept = default;
  Matrix& operator=(Matrix&&) noexcept = default;
  ~Matrix() = default;

  /// O(1) exchange of shape and storage. Never allocates or copies
  /// elements — the RPCA solvers rotate (iterate, previous-iterate) buffer
  /// pairs with this instead of assignment.
  void swap(Matrix& other) noexcept {
    std::swap(rows_, other.rows_);
    std::swap(cols_, other.cols_);
    data_.swap(other.data_);
  }
  friend void swap(Matrix& a, Matrix& b) noexcept { a.swap(b); }

  /// Build from a flat row-major buffer (copied). size must be rows*cols.
  static Matrix from_rows(std::size_t rows, std::size_t cols,
                          std::vector<double> data);

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t i, std::size_t j) {
    return data_[i * cols_ + j];
  }
  double operator()(std::size_t i, std::size_t j) const {
    return data_[i * cols_ + j];
  }

  /// Checked element access (throws ContractViolation when out of range).
  double& at(std::size_t i, std::size_t j);
  double at(std::size_t i, std::size_t j) const;

  std::span<double> row(std::size_t i) {
    return {data_.data() + i * cols_, cols_};
  }
  std::span<const double> row(std::size_t i) const {
    return {data_.data() + i * cols_, cols_};
  }

  std::span<double> data() { return data_; }
  std::span<const double> data() const { return data_; }

  /// Copy one column out / in.
  std::vector<double> column(std::size_t j) const;
  void set_column(std::size_t j, std::span<const double> values);
  void set_row(std::size_t i, std::span<const double> values);

  void fill(double value);

  /// Reshape to rows x cols, reusing the existing storage when capacity
  /// allows (the point: a workspace matrix resized to the same shape every
  /// solve performs zero allocations after the first). Element values are
  /// unspecified afterwards; callers overwrite or fill().
  void resize(std::size_t rows, std::size_t cols);

  Matrix transposed() const;

  /// Contiguous sub-block copy [r0, r0+rows) x [c0, c0+cols).
  Matrix block(std::size_t r0, std::size_t c0, std::size_t rows,
               std::size_t cols) const;

  // Elementwise algebra. Shapes must match.
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scalar);
  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(Matrix a, double s) { return a *= s; }
  friend Matrix operator*(double s, Matrix a) { return a *= s; }

  bool same_shape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  /// Max |a_ij - b_ij|; shapes must match.
  double max_abs_diff(const Matrix& other) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace netconst::linalg
