// Portable explicit-SIMD dispatch for the linear-algebra kernels.
//
// The hot kernels (linalg/fused.cpp, blas.cpp, shrinkage.cpp) carry
// hand-written vector paths selected per architecture at compile time:
//
//  * x86-64 — an AVX2 path built with function-level target attributes,
//    so the library itself still targets baseline x86-64 and the vector
//    code is only entered after a cpuid check at runtime;
//  * aarch64 — a NEON path (NEON is baseline on aarch64, no runtime
//    check needed);
//  * everything else — the scalar loops, unchanged.
//
// Numerics contract (see docs/PERFORMANCE.md "Threading model & SIMD"):
// elementwise kernels are bit-identical at every level — SIMD lanes
// perform the same IEEE mul/add per element and no FMA contraction is
// ever emitted. Reduction kernels (dot products, Gram accumulations,
// the solvers' convergence norms) split the accumulator across lanes
// under a vector level, which reassociates the sum: deterministic for a
// fixed level, but not bit-identical to the scalar order. The bit-exact
// equivalence suites therefore pin Level::Scalar (ScopedLevel below),
// and the frozen rpca::reference numerics are reproduced exactly by the
// scalar level.
//
// The active level resolves once from the NETCONST_SIMD environment
// variable ("auto" default, "scalar"/"off" to disable, "avx2"/"neon" to
// require) plus CPU detection; benches and tests can override it in
// process with ScopedLevel for A/B comparisons inside one binary.
#pragma once

#include <cstddef>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define NETCONST_SIMD_X86 1
// Lets baseline-x86-64 translation units define AVX2 functions; callers
// must guard every call with a runtime check (simd::active_level()).
#define NETCONST_TARGET_AVX2 __attribute__((target("avx2")))
#elif defined(__aarch64__) && defined(__ARM_NEON)
#define NETCONST_SIMD_NEON 1
#define NETCONST_TARGET_AVX2
#else
#define NETCONST_TARGET_AVX2
#endif

namespace netconst::linalg::simd {

enum class Level {
  Scalar = 0,
  Avx2 = 1,
  Neon = 2,
};

/// The level kernels dispatch on for this call: a ScopedLevel override
/// if one is in force, otherwise the process-wide detected level.
Level active_level();

/// Best level this binary + CPU supports (ignores overrides and the
/// environment); what "auto" resolves to when NETCONST_SIMD is unset.
Level best_available_level();

const char* level_name(Level level);
inline const char* active_level_name() { return level_name(active_level()); }

/// Doubles per vector register at `level` (1 for Scalar).
std::size_t lane_width(Level level);

/// RAII process-wide level override for benches and equivalence tests
/// (e.g. pin Scalar for the bit-exact suites, or A/B scalar vs vector
/// kernels inside one binary). Requesting a level the binary/CPU cannot
/// execute clamps to Scalar. Overrides nest; not intended for use while
/// kernels run concurrently on other threads with a *different* desired
/// level (the override is global).
class ScopedLevel {
 public:
  explicit ScopedLevel(Level level);
  ~ScopedLevel();

  ScopedLevel(const ScopedLevel&) = delete;
  ScopedLevel& operator=(const ScopedLevel&) = delete;

 private:
  int saved_;  // previous override slot (-1 = none)
};

}  // namespace netconst::linalg::simd
