// Shared metric naming: the single source of truth for metric type
// names, unit inference, and the internal-dotted-name -> Prometheus
// series mapping. Both the online MetricsRegistry exports (CSV / JSON /
// console) and the obs exporters (Prometheus text, JSON snapshot) go
// through these helpers, so a metric can never be spelled two ways by
// two exporters.
//
// Naming scheme:
//  * internal names are dotted, e.g. "online.refresh_seconds" or
//    "tenant.<name>.refresh_seconds";
//  * the "tenant.<name>." prefix is a label, not part of the metric
//    identity: the Prometheus series for the example above is
//    netconst_tenant_refresh_seconds{tenant="<name>"} — one metric,
//    many tenants, as a Prometheus consumer expects;
//  * units ride in the name suffix ("_seconds", "_bytes"), mirroring
//    Prometheus conventions; metric_unit() recovers them for exporters
//    that want an explicit unit field.
#pragma once

#include <string>

namespace netconst::obs {

enum class MetricType { Counter, Gauge, Histogram };

/// Canonical lower-case type name ("counter", "gauge", "histogram").
const char* metric_type_name(MetricType type);

/// Unit implied by the metric name's suffix: "seconds", "bytes", or ""
/// for dimensionless metrics.
const char* metric_unit(const std::string& dotted_name);

/// Replace every character outside [a-zA-Z0-9_] with '_' (and prefix
/// '_' if the first character is a digit) — a valid Prometheus metric
/// name fragment.
std::string sanitize_metric_name(const std::string& name);

/// A Prometheus series: the exposition name plus a rendered label set
/// ("" or `key="value"` — braces are the exporter's job).
struct PrometheusSeries {
  std::string name;
  std::string labels;

  bool operator==(const PrometheusSeries&) const = default;
};

/// Map an internal dotted metric name to its Prometheus series.
/// "tenant.<t>.<rest>" becomes netconst_tenant_<rest>{tenant="<t>"};
/// anything else becomes netconst_<dotted-with-underscores>.
PrometheusSeries prometheus_series(const std::string& dotted_name);

}  // namespace netconst::obs
