#include "obs/export.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "obs/convergence.hpp"
#include "obs/trace.hpp"

namespace netconst::obs {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out.push_back(' ');
    } else {
      out.push_back(c);
    }
  }
  return out;
}

namespace {

/// Exposition/JSON value formatting: integers print exactly (counter
/// totals must not turn into 1e+06), everything else with enough digits
/// to round-trip.
std::string format_value(double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::fabs(value) < 1e15) {
    std::ostringstream os;
    os << static_cast<long long>(value);
    return os.str();
  }
  std::ostringstream os;
  os.precision(17);
  os << value;
  return os.str();
}

/// "name" or "name{labels}" / "name{labels,extra}".
std::string series_ref(const PrometheusSeries& series, const char* suffix,
                       const std::string& extra_label = {}) {
  std::string out = series.name + suffix;
  if (!series.labels.empty() || !extra_label.empty()) {
    out += '{';
    out += series.labels;
    if (!series.labels.empty() && !extra_label.empty()) out += ',';
    out += extra_label;
    out += '}';
  }
  return out;
}

struct PromRow {
  PrometheusSeries series;
  const MetricSample* sample;
};

}  // namespace

void write_prometheus(std::ostream& out,
                      const std::vector<MetricSample>& samples) {
  // Group by exposition name: all series of one metric (e.g. the same
  // per-tenant histogram across tenants) must sit under one # TYPE
  // header, whatever order the dotted names sorted into.
  std::vector<PromRow> rows;
  rows.reserve(samples.size());
  for (const MetricSample& sample : samples) {
    rows.push_back({prometheus_series(sample.name), &sample});
  }
  std::stable_sort(rows.begin(), rows.end(),
                   [](const PromRow& a, const PromRow& b) {
                     return a.series.name != b.series.name
                                ? a.series.name < b.series.name
                                : a.series.labels < b.series.labels;
                   });

  const std::string* open_type_for = nullptr;
  for (const PromRow& row : rows) {
    const MetricSample& sample = *row.sample;
    if (open_type_for == nullptr || *open_type_for != row.series.name) {
      // Histograms export as Prometheus summaries (exact quantiles).
      const char* type = sample.type == MetricType::Histogram
                             ? "summary"
                             : metric_type_name(sample.type);
      out << "# TYPE " << row.series.name << ' ' << type << '\n';
      open_type_for = &row.series.name;
    }
    if (sample.type == MetricType::Histogram) {
      const HistogramStats& h = sample.histogram;
      out << series_ref(row.series, "", "quantile=\"0.5\"") << ' '
          << format_value(h.p50) << '\n'
          << series_ref(row.series, "", "quantile=\"0.99\"") << ' '
          << format_value(h.p99) << '\n'
          << series_ref(row.series, "_sum") << ' ' << format_value(h.sum)
          << '\n'
          << series_ref(row.series, "_count") << ' '
          << format_value(static_cast<double>(h.count)) << '\n';
    } else {
      out << series_ref(row.series, "") << ' ' << format_value(sample.value)
          << '\n';
    }
  }
}

void write_json_snapshot(std::ostream& out,
                         const TelemetrySnapshot& snapshot) {
  out << "{\"metrics\":[";
  for (std::size_t k = 0; k < snapshot.metrics.size(); ++k) {
    const MetricSample& sample = snapshot.metrics[k];
    if (k > 0) out << ',';
    out << "{\"name\":\"" << json_escape(sample.name) << "\",\"type\":\""
        << metric_type_name(sample.type) << "\",\"unit\":\""
        << metric_unit(sample.name) << '"';
    if (sample.type == MetricType::Histogram) {
      const HistogramStats& h = sample.histogram;
      out << ",\"count\":" << h.count << ",\"rejected\":" << h.rejected
          << ",\"sum\":" << format_value(h.sum)
          << ",\"min\":" << format_value(h.min)
          << ",\"max\":" << format_value(h.max)
          << ",\"mean\":" << format_value(h.mean())
          << ",\"p50\":" << format_value(h.p50)
          << ",\"p99\":" << format_value(h.p99);
    } else {
      out << ",\"value\":" << format_value(sample.value);
    }
    out << '}';
  }
  out << "],\"convergence\":{";
  for (std::size_t k = 0; k < snapshot.convergence.size(); ++k) {
    if (k > 0) out << ',';
    out << '"' << json_escape(snapshot.convergence[k].first) << "\":";
    snapshot.convergence[k].second->write_json(out);
  }
  const FlightRecorder& recorder = FlightRecorder::instance();
  out << "},\"trace\":{\"enabled\":"
      << (trace_enabled() ? "true" : "false")
      << ",\"recorded\":" << recorder.total_recorded()
      << ",\"retained\":" << recorder.snapshot().size()
      << ",\"auto_dumps\":" << recorder.auto_dumps_written() << "}}";
}

}  // namespace netconst::obs
