// Telemetry exporters: Prometheus text exposition and a JSON snapshot,
// both stream-based (write to a file, a socket, a test buffer — the
// caller owns the sink).
//
// The exporters operate on neutral MetricSample rows so the obs layer
// stays dependency-free; online::MetricsRegistry::samples() produces
// the rows for the service (see online/metrics.hpp). Series naming is
// delegated to obs/naming.hpp, the same helper the registry's own
// CSV/JSON exports use — one spelling per metric, everywhere.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "obs/naming.hpp"

namespace netconst::obs {

class ConvergenceLog;

/// Distribution summary of a histogram metric (mirrors the statistics
/// online::Histogram tracks; exporters only need the numbers).
struct HistogramStats {
  std::uint64_t count = 0;
  std::uint64_t rejected = 0;  // non-finite observations dropped
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;

  double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

/// One metric in a snapshot, keyed by its internal dotted name.
struct MetricSample {
  std::string name;
  MetricType type = MetricType::Counter;
  double value = 0.0;        // counters / gauges
  HistogramStats histogram;  // histograms
};

/// Escape a string for embedding in a JSON string literal.
std::string json_escape(const std::string& text);

/// The Content-Type an HTTP endpoint must send with write_prometheus()
/// output — the text exposition format's standard media type. Scrapers
/// key the parser off the version parameter, so serve it verbatim.
inline constexpr const char* kPrometheusContentType =
    "text/plain; version=0.0.4";

/// Prometheus text exposition (version 0.0.4). Counters and gauges
/// export as single samples; histograms export as summaries
/// (quantile="0.5"/"0.99" series plus _sum and _count). Series sharing
/// an exposition name (e.g. one per-tenant metric across tenants) are
/// grouped under one # TYPE header, as the format requires.
void write_prometheus(std::ostream& out,
                      const std::vector<MetricSample>& samples);

/// Everything the service knows, as one JSON document:
///   {"metrics":[...],"convergence":{tenant: {...}},"trace":{...}}
/// Convergence logs are referenced, not copied; they must stay alive
/// for the duration of the call.
struct TelemetrySnapshot {
  std::vector<MetricSample> metrics;
  std::vector<std::pair<std::string, const ConvergenceLog*>> convergence;
};

void write_json_snapshot(std::ostream& out,
                         const TelemetrySnapshot& snapshot);

}  // namespace netconst::obs
