#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <utility>

namespace netconst::obs {

namespace detail {

namespace {

bool env_trace_enabled() {
  const char* env = std::getenv("NETCONST_TRACE");
  if (env == nullptr) return false;
  return !(env[0] == '\0' || (env[0] == '0' && env[1] == '\0'));
}

}  // namespace

std::atomic<bool> g_trace_enabled{env_trace_enabled()};

}  // namespace detail

// Each slot is a seqlock of plain atomics. The sequence word of push
// number n settles at 2n + 2; a reader that finds anything else (odd =
// mid-write, larger = recycled for a later push) skips the slot. Using
// atomics for the payload too keeps the concurrent read/write pair a
// defined race-free program (and TSan-clean) while the producer stays
// wait-free.
namespace detail {

struct ThreadRing {
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> id{0};
    std::atomic<std::uint64_t> parent{0};
    std::atomic<std::int64_t> start_ns{0};
    std::atomic<std::int64_t> end_ns{0};
    std::atomic<std::uintptr_t> name{0};
    std::atomic<std::uint64_t> value_bits{0};
  };

  explicit ThreadRing(std::uint32_t index_in) : index(index_in) {}

  void push(const char* name, std::uint64_t id, std::uint64_t parent,
            std::int64_t start_ns, std::int64_t end_ns, double value) {
    const std::uint64_t n = count.load(std::memory_order_relaxed);
    Slot& slot = slots[n % FlightRecorder::kRingCapacity];
    slot.seq.store(2 * n + 1, std::memory_order_relaxed);
    slot.id.store(id, std::memory_order_relaxed);
    slot.parent.store(parent, std::memory_order_relaxed);
    slot.start_ns.store(start_ns, std::memory_order_relaxed);
    slot.end_ns.store(end_ns, std::memory_order_relaxed);
    slot.name.store(reinterpret_cast<std::uintptr_t>(name),
                    std::memory_order_relaxed);
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value));
    __builtin_memcpy(&bits, &value, sizeof(bits));
    slot.value_bits.store(bits, std::memory_order_relaxed);
    slot.seq.store(2 * n + 2, std::memory_order_release);
    count.store(n + 1, std::memory_order_release);
  }

  /// Append every retained, consistent record to `out`.
  void read_into(std::vector<SpanRecord>& out) const {
    const std::uint64_t n = count.load(std::memory_order_acquire);
    std::uint64_t begin =
        n > FlightRecorder::kRingCapacity
            ? n - FlightRecorder::kRingCapacity
            : 0;
    begin = std::max(begin, trim.load(std::memory_order_relaxed));
    for (std::uint64_t k = begin; k < n; ++k) {
      const Slot& slot = slots[k % FlightRecorder::kRingCapacity];
      const std::uint64_t s1 = slot.seq.load(std::memory_order_acquire);
      if (s1 != 2 * k + 2) continue;  // mid-write or already recycled
      SpanRecord record;
      record.id = slot.id.load(std::memory_order_relaxed);
      record.parent = slot.parent.load(std::memory_order_relaxed);
      record.start_ns = slot.start_ns.load(std::memory_order_relaxed);
      record.end_ns = slot.end_ns.load(std::memory_order_relaxed);
      record.name = reinterpret_cast<const char*>(
          slot.name.load(std::memory_order_relaxed));
      const std::uint64_t bits =
          slot.value_bits.load(std::memory_order_relaxed);
      __builtin_memcpy(&record.value, &bits, sizeof(record.value));
      record.thread = index;
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.seq.load(std::memory_order_relaxed) != s1) continue;
      out.push_back(record);
    }
  }

  const std::uint32_t index;
  std::atomic<std::uint64_t> count{0};  // pushes ever made to this ring
  std::atomic<std::uint64_t> trim{0};   // pushes logically cleared
  std::uint64_t next_span = 0;          // owning thread only
  Slot slots[FlightRecorder::kRingCapacity];
};

}  // namespace detail

using detail::ThreadRing;

struct FlightRecorder::Impl {
  using Clock = std::chrono::steady_clock;

  Impl() : epoch(Clock::now()) {
    if (const char* env = std::getenv("NETCONST_TRACE_DUMP_DIR")) {
      dump_directory = env;
    }
  }

  const Clock::time_point epoch;

  std::mutex rings_mutex;  // guards registration and the vector spine
  std::vector<std::unique_ptr<ThreadRing>> rings;

  std::mutex dump_mutex;  // guards dump_directory and file writes
  std::string dump_directory;
  std::atomic<std::uint64_t> dump_requests{0};
  std::atomic<std::uint64_t> dumps_written{0};
};

namespace {

// The innermost live span of the calling thread; 0 at top level.
thread_local std::uint64_t t_current_span = 0;
thread_local ThreadRing* t_ring = nullptr;

}  // namespace

FlightRecorder::FlightRecorder() : impl_(new Impl) {}

FlightRecorder& FlightRecorder::instance() {
  // Intentionally leaked: worker threads (e.g. ThreadPool::global())
  // may record spans during static destruction.
  static FlightRecorder* recorder = new FlightRecorder;
  return *recorder;
}

void FlightRecorder::set_enabled(bool enabled) {
#if NETCONST_TRACE_COMPILED
  detail::g_trace_enabled.store(enabled, std::memory_order_relaxed);
#else
  (void)enabled;
#endif
}

std::int64_t FlightRecorder::now_ns() {
  const Impl& impl = *instance().impl_;
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Impl::Clock::now() - impl.epoch)
      .count();
}

ThreadRing& FlightRecorder::local_ring() {
  if (t_ring == nullptr) {
    std::lock_guard<std::mutex> lock(impl_->rings_mutex);
    const auto index = static_cast<std::uint32_t>(impl_->rings.size());
    impl_->rings.push_back(std::make_unique<ThreadRing>(index));
    t_ring = impl_->rings.back().get();
  }
  return *t_ring;
}

void FlightRecorder::push(const char* name, std::uint64_t id,
                          std::uint64_t parent, std::int64_t start_ns,
                          std::int64_t end_ns, double value) {
  local_ring().push(name, id, parent, start_ns, end_ns, value);
}

void FlightRecorder::record_interval(const char* name, std::int64_t start_ns,
                                     std::int64_t end_ns, double value) {
  if (!trace_enabled()) return;
  ThreadRing& ring = local_ring();
  const std::uint64_t id =
      (static_cast<std::uint64_t>(ring.index) + 1) << 40 | ++ring.next_span;
  ring.push(name, id, t_current_span, start_ns, end_ns, value);
}

std::vector<SpanRecord> FlightRecorder::snapshot() const {
  std::vector<SpanRecord> records;
  {
    std::lock_guard<std::mutex> lock(impl_->rings_mutex);
    for (const auto& ring : impl_->rings) ring->read_into(records);
  }
  std::sort(records.begin(), records.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.start_ns != b.start_ns ? a.start_ns < b.start_ns
                                              : a.id < b.id;
            });
  return records;
}

std::uint64_t FlightRecorder::total_recorded() const {
  std::lock_guard<std::mutex> lock(impl_->rings_mutex);
  std::uint64_t total = 0;
  for (const auto& ring : impl_->rings) {
    total += ring->count.load(std::memory_order_relaxed);
  }
  return total;
}

void FlightRecorder::clear() {
  std::lock_guard<std::mutex> lock(impl_->rings_mutex);
  for (const auto& ring : impl_->rings) {
    ring->trim.store(ring->count.load(std::memory_order_acquire),
                     std::memory_order_relaxed);
  }
}

namespace {

void write_json_escaped(std::ostream& out, const char* text) {
  for (; text != nullptr && *text != '\0'; ++text) {
    const char c = *text;
    if (c == '"' || c == '\\') {
      out << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out << ' ';
    } else {
      out << c;
    }
  }
}

}  // namespace

void FlightRecorder::write_chrome_trace(std::ostream& out) const {
  const std::vector<SpanRecord> records = snapshot();
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& record : records) {
    if (!first) out << ',';
    first = false;
    // Complete ("X") events; ts/dur are microseconds by the format.
    const double ts = static_cast<double>(record.start_ns) * 1e-3;
    const double dur =
        static_cast<double>(record.end_ns - record.start_ns) * 1e-3;
    out << "{\"name\":\"";
    write_json_escaped(out, record.name);
    out << "\",\"cat\":\"netconst\",\"ph\":\"X\",\"pid\":1,\"tid\":"
        << record.thread << ",\"ts\":" << ts << ",\"dur\":" << dur
        << ",\"args\":{\"value\":" << record.value << ",\"id\":" << record.id
        << ",\"parent\":" << record.parent << "}}";
  }
  out << "]}";
}

void FlightRecorder::set_dump_directory(std::string directory) {
  std::lock_guard<std::mutex> lock(impl_->dump_mutex);
  impl_->dump_directory = std::move(directory);
}

std::string FlightRecorder::dump_directory() const {
  std::lock_guard<std::mutex> lock(impl_->dump_mutex);
  return impl_->dump_directory;
}

std::string FlightRecorder::maybe_auto_dump(const char* reason) {
  impl_->dump_requests.fetch_add(1, std::memory_order_relaxed);
  if (!trace_enabled()) return {};
  std::lock_guard<std::mutex> lock(impl_->dump_mutex);
  if (impl_->dump_directory.empty()) return {};
  const std::uint64_t written =
      impl_->dumps_written.load(std::memory_order_relaxed);
  if (written >= kMaxAutoDumps) return {};
  std::string path = impl_->dump_directory + "/netconst_trace_" +
                     std::to_string(written) + "_" + reason + ".json";
  std::ofstream file(path);
  if (!file) return {};
  write_chrome_trace(file);
  impl_->dumps_written.fetch_add(1, std::memory_order_relaxed);
  return path;
}

std::uint64_t FlightRecorder::auto_dumps_requested() const {
  return impl_->dump_requests.load(std::memory_order_relaxed);
}

std::uint64_t FlightRecorder::auto_dumps_written() const {
  return impl_->dumps_written.load(std::memory_order_relaxed);
}

#if NETCONST_TRACE_COMPILED

void Span::begin(const char* name) noexcept {
  FlightRecorder& recorder = FlightRecorder::instance();
  ThreadRing& ring = recorder.local_ring();
  name_ = name;
  parent_ = t_current_span;
  id_ = (static_cast<std::uint64_t>(ring.index) + 1) << 40 |
        ++ring.next_span;
  t_current_span = id_;
  start_ns_ = FlightRecorder::now_ns();
  active_ = true;
}

void Span::finish() noexcept {
  t_current_span = parent_;
  FlightRecorder::instance().push(name_, id_, parent_, start_ns_,
                                  FlightRecorder::now_ns(), value_);
  active_ = false;
}

#endif  // NETCONST_TRACE_COMPILED

}  // namespace netconst::obs
