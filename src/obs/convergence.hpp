// Solver convergence telemetry: per-iteration traces of an RPCA solve
// (objective, residual, rank, sparsity, step size, continuation mu) and
// a bounded per-tenant ring of per-refresh records.
//
// The solver exposes a SolverProbe hook (rpca::Options::probe): when
// null — the default — the solver pays one branch per iteration and
// computes nothing extra; when set, each iteration's diagnostics are
// computed read-only from the live iterates and handed to the probe.
// Observation never changes any iterate, so solver outputs are
// byte-identical with and without a probe attached (pinned by
// tests/obs/convergence_test.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

namespace netconst::obs {

/// Diagnostics of one solver iteration, computed from the live iterates.
struct IterationStats {
  int iteration = 0;       // 1-based, matches rpca::Result::iterations
  double objective = 0.0;  // penalized objective at the current mu:
                           // ||A-D-E||_F^2 / (2 mu) + lambda ||E||_1
  double residual = 0.0;   // ||A - D - E||_F / ||A||_F
  std::size_t rank = 0;    // rank of D after this iteration's SVT
  double sparsity = 0.0;   // nnz(E) / size(E) in [0, 1]
  double mu = 0.0;         // continuation value after this iteration
  double step = 0.0;       // relative iterate change (the solver's own
                           // convergence metric)
};

/// Per-iteration observer of a solve. Implementations must be cheap and
/// must not throw; they run inside the solver loop.
class SolverProbe {
 public:
  virtual ~SolverProbe() = default;
  virtual void on_iteration(const IterationStats& stats) = 0;
};

/// Probe that buffers the iteration trace, capped at `capacity`
/// samples (later iterations are dropped, the count keeps counting).
class TraceProbe final : public SolverProbe {
 public:
  explicit TraceProbe(std::size_t capacity = 512) : capacity_(capacity) {}

  void on_iteration(const IterationStats& stats) override {
    ++observed_;
    if (trace_.size() < capacity_) trace_.push_back(stats);
  }

  void reset() {
    trace_.clear();
    observed_ = 0;
  }

  const std::vector<IterationStats>& trace() const { return trace_; }
  std::uint64_t observed() const { return observed_; }

 private:
  std::size_t capacity_;
  std::uint64_t observed_ = 0;
  std::vector<IterationStats> trace_;
};

/// One layer solve of one window refresh, as retained by ConvergenceLog.
struct SolveConvergence {
  std::uint64_t refresh = 0;      // per-tenant refresh sequence, from 1
  double time = 0.0;              // tenant provider time (simulated s)
  std::string layer;              // "latency" / "bandwidth"
  bool warm = false;              // accepted result came from a warm solve
  bool cold_fallback = false;     // warm attempt rejected, redone cold
  int iterations = 0;             // of the accepted solve
  double residual = 0.0;          // pre-polish, of the accepted solve
  double solve_seconds = 0.0;
  std::vector<IterationStats> trace;  // accepted solve only, bounded
};

/// Bounded ring of per-refresh convergence records for one tenant.
/// Thread-safe; the oldest records are dropped once `capacity` is
/// exceeded (recorded() keeps counting).
class ConvergenceLog {
 public:
  explicit ConvergenceLog(std::size_t capacity = 64);

  void record(SolveConvergence record);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const;
  std::uint64_t recorded() const;
  /// Copy of the retained records, oldest first.
  std::vector<SolveConvergence> snapshot() const;

  /// {"capacity":...,"recorded":...,"solves":[{...,"trace":[...]},...]}
  void write_json(std::ostream& out) const;

 private:
  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::uint64_t recorded_ = 0;
  std::size_t head_ = 0;  // index of the oldest retained record
  std::vector<SolveConvergence> records_;
};

}  // namespace netconst::obs
