// Flight-recorder tracing: RAII scoped spans with steady-clock timing
// and explicit parent links, recorded into lock-free per-thread ring
// buffers that can be snapshotted on demand and dumped as Chrome
// trace_event JSON (loadable in about:tracing / Perfetto).
//
// Design points:
//  * a span on a disabled recorder costs exactly one relaxed atomic
//    load and a branch — the pipeline is instrumented unconditionally
//    and the toggle decides whether anything is recorded;
//  * recording is wait-free for the owning thread: each thread writes
//    its own ring, every slot is a small seqlock of plain atomics, so
//    a concurrent snapshot never blocks a producer and never reads a
//    torn record (it skips slots that are mid-write or recycled);
//  * the ring is a flight recorder, not a log: when it wraps, the
//    oldest spans are overwritten and `total_recorded()` keeps
//    counting. Snapshot what you need, when you need it — typically
//    when the fault layer reports an anomaly (see maybe_auto_dump);
//  * span names must be string literals (or otherwise outlive the
//    recorder): only the pointer is stored.
//
// Toggles:
//  * compile time — configure with -DNETCONST_TRACE=OFF (defines
//    NETCONST_TRACE_COMPILED=0) and Span collapses to an empty object;
//  * runtime — the NETCONST_TRACE environment variable (1/0) sets the
//    initial state; tests and tools flip it with set_enabled().
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#ifndef NETCONST_TRACE_COMPILED
#define NETCONST_TRACE_COMPILED 1
#endif

namespace netconst::obs {

/// One completed span as read out of the recorder.
struct SpanRecord {
  std::uint64_t id = 0;      // unique per process run, never 0
  std::uint64_t parent = 0;  // 0 = root (no enclosing span on the thread)
  std::int64_t start_ns = 0; // steady-clock ns since the recorder epoch
  std::int64_t end_ns = 0;
  const char* name = nullptr;
  double value = 0.0;        // span-specific payload (iterations, bytes...)
  std::uint32_t thread = 0;  // dense per-thread index (Chrome "tid")
};

namespace detail {

/// True when recording is on. Kept as a plain global atomic (not behind
/// a function-local static) so the disabled fast path is one relaxed
/// load, no guard-variable check.
extern std::atomic<bool> g_trace_enabled;

struct ThreadRing;  // one per recording thread; defined in trace.cpp

}  // namespace detail

/// One relaxed load: the cost of every instrumentation point when
/// tracing is off.
inline bool trace_enabled() {
#if NETCONST_TRACE_COMPILED
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
#else
  return false;
#endif
}

/// Process-wide span recorder. All methods are thread-safe.
class FlightRecorder {
 public:
  /// Span slots retained per thread before the ring wraps.
  static constexpr std::size_t kRingCapacity = 4096;

  static FlightRecorder& instance();

  bool enabled() const { return trace_enabled(); }
  /// No-op (always off) when compiled out.
  void set_enabled(bool enabled);

  /// Steady-clock ns since the recorder epoch (the clock spans use).
  static std::int64_t now_ns();

  /// Record an externally timed span on the calling thread's ring (used
  /// for intervals that do not nest with the thread's live spans, e.g.
  /// a task's time in the pool queue). No-op when disabled.
  void record_interval(const char* name, std::int64_t start_ns,
                       std::int64_t end_ns, double value = 0.0);

  /// All currently retained spans, merged across threads and sorted by
  /// start time. Safe to call concurrently with recording.
  std::vector<SpanRecord> snapshot() const;

  /// Spans ever recorded (including ones the rings have overwritten).
  std::uint64_t total_recorded() const;

  /// Logically drop every retained span (recording continues).
  void clear();

  /// Write the current snapshot in Chrome trace_event JSON ("X" phase
  /// events; open in about:tracing or https://ui.perfetto.dev).
  void write_chrome_trace(std::ostream& out) const;

  /// Auto-dump configuration: when a directory is set (explicitly or
  /// via the NETCONST_TRACE_DUMP_DIR environment variable) and tracing
  /// is enabled, maybe_auto_dump() writes the flight recorder to
  /// `<dir>/netconst_trace_<seq>_<reason>.json`. At most kMaxAutoDumps
  /// files are written per process (an anomaly storm must not fill the
  /// disk); requests are always counted.
  static constexpr std::uint64_t kMaxAutoDumps = 64;
  void set_dump_directory(std::string directory);
  std::string dump_directory() const;
  /// Returns the path written, or "" when disabled / unconfigured /
  /// over the file cap.
  std::string maybe_auto_dump(const char* reason);
  std::uint64_t auto_dumps_requested() const;
  std::uint64_t auto_dumps_written() const;

 private:
  friend class Span;
  struct Impl;

  FlightRecorder();
  ~FlightRecorder() = delete;  // process-lifetime singleton

  /// The calling thread's ring, created and registered on first use.
  detail::ThreadRing& local_ring();
  void push(const char* name, std::uint64_t id, std::uint64_t parent,
            std::int64_t start_ns, std::int64_t end_ns, double value);

  Impl* impl_;
};

/// RAII scoped span. Construction opens the span (parented to the
/// thread's innermost live span), destruction records it. When tracing
/// is disabled at construction the span is inert — including its
/// destructor — so toggling mid-span never records a half-timed record.
class Span {
 public:
#if NETCONST_TRACE_COMPILED
  explicit Span(const char* name) noexcept {
    if (trace_enabled()) begin(name);
  }
  ~Span() {
    if (active_) finish();
  }
  /// Attach the span's numeric payload (last call wins).
  void set_value(double value) noexcept {
    if (active_) value_ = value;
  }
  bool active() const { return active_; }
#else
  explicit Span(const char*) noexcept {}
  void set_value(double) noexcept {}
  bool active() const { return false; }
#endif

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
#if NETCONST_TRACE_COMPILED
  void begin(const char* name) noexcept;
  void finish() noexcept;

  const char* name_ = nullptr;
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  std::int64_t start_ns_ = 0;
  double value_ = 0.0;
  bool active_ = false;
#endif
};

}  // namespace netconst::obs
