#include "obs/naming.hpp"

#include <cctype>

namespace netconst::obs {

const char* metric_type_name(MetricType type) {
  switch (type) {
    case MetricType::Counter:
      return "counter";
    case MetricType::Gauge:
      return "gauge";
    case MetricType::Histogram:
      return "histogram";
  }
  return "unknown";
}

namespace {

bool ends_with(const std::string& name, const char* suffix) {
  const std::string s(suffix);
  return name.size() >= s.size() &&
         name.compare(name.size() - s.size(), s.size(), s) == 0;
}

}  // namespace

const char* metric_unit(const std::string& dotted_name) {
  if (ends_with(dotted_name, "_seconds")) return "seconds";
  if (ends_with(dotted_name, "_bytes")) return "bytes";
  return "";
}

std::string sanitize_metric_name(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (const char c : name) {
    const auto uc = static_cast<unsigned char>(c);
    out.push_back(std::isalnum(uc) != 0 || c == '_' ? c : '_');
  }
  if (!out.empty() && std::isdigit(static_cast<unsigned char>(out[0]))) {
    out.insert(out.begin(), '_');
  }
  return out;
}

namespace {

/// Escape a label value per the exposition format (backslash, quote,
/// newline).
std::string escape_label_value(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (c == '\\' || c == '"') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

PrometheusSeries prometheus_series(const std::string& dotted_name) {
  constexpr const char* kTenantPrefix = "tenant.";
  constexpr std::size_t kTenantPrefixLen = 7;
  constexpr const char* kSvdPathPrefix = "rpca.svd.path.";
  constexpr std::size_t kSvdPathPrefixLen = 14;
  PrometheusSeries series;
  if (dotted_name.compare(0, kSvdPathPrefixLen, kSvdPathPrefix) == 0 &&
      dotted_name.size() > kSvdPathPrefixLen) {
    // The decomposition-path counters fold into one labeled series so
    // dashboards can stack full/randomized/incremental shares.
    const std::string path = dotted_name.substr(kSvdPathPrefixLen);
    series.name = "netconst_rpca_svd_path";
    series.labels = "path=\"" + escape_label_value(path) + '"';
    return series;
  }
  constexpr const char* kVerdictPrefix = "detect.verdicts.";
  constexpr std::size_t kVerdictPrefixLen = 16;
  if (dotted_name.compare(0, kVerdictPrefixLen, kVerdictPrefix) == 0 &&
      dotted_name.size() > kVerdictPrefixLen) {
    // Per-kind verdict counters fold into one labeled series so a
    // dashboard can stack placement_shift/outlier_storm/baseline_drift
    // shares in a single query.
    const std::string kind = dotted_name.substr(kVerdictPrefixLen);
    series.name = "netconst_detect_verdicts";
    series.labels = "kind=\"" + escape_label_value(kind) + '"';
    return series;
  }
  if (dotted_name.compare(0, kTenantPrefixLen, kTenantPrefix) == 0) {
    const std::size_t dot = dotted_name.find('.', kTenantPrefixLen);
    if (dot != std::string::npos && dot + 1 < dotted_name.size()) {
      const std::string tenant =
          dotted_name.substr(kTenantPrefixLen, dot - kTenantPrefixLen);
      series.name =
          "netconst_tenant_" + sanitize_metric_name(dotted_name.substr(dot + 1));
      series.labels = "tenant=\"" + escape_label_value(tenant) + '"';
      return series;
    }
  }
  series.name = "netconst_" + sanitize_metric_name(dotted_name);
  return series;
}

}  // namespace netconst::obs
