#include "obs/convergence.hpp"

#include <ostream>
#include <utility>

#include "support/error.hpp"

namespace netconst::obs {

ConvergenceLog::ConvergenceLog(std::size_t capacity) : capacity_(capacity) {
  NETCONST_CHECK(capacity > 0, "convergence log capacity must be > 0");
  records_.reserve(capacity);
}

void ConvergenceLog::record(SolveConvergence record) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++recorded_;
  if (records_.size() < capacity_) {
    records_.push_back(std::move(record));
  } else {
    // Fixed-capacity ring: overwrite the oldest slot in place so a
    // steady-state service never reallocates the spine.
    records_[head_] = std::move(record);
    head_ = (head_ + 1) % capacity_;
  }
}

std::size_t ConvergenceLog::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_.size();
}

std::uint64_t ConvergenceLog::recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return recorded_;
}

std::vector<SolveConvergence> ConvergenceLog::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SolveConvergence> out;
  out.reserve(records_.size());
  for (std::size_t k = 0; k < records_.size(); ++k) {
    out.push_back(records_[(head_ + k) % records_.size()]);
  }
  return out;
}

void ConvergenceLog::write_json(std::ostream& out) const {
  const std::vector<SolveConvergence> records = snapshot();
  out << "{\"capacity\":" << capacity_ << ",\"recorded\":" << recorded()
      << ",\"solves\":[";
  for (std::size_t r = 0; r < records.size(); ++r) {
    const SolveConvergence& solve = records[r];
    if (r > 0) out << ',';
    out << "{\"refresh\":" << solve.refresh << ",\"time\":" << solve.time
        << ",\"layer\":\"" << solve.layer << "\",\"warm\":"
        << (solve.warm ? "true" : "false") << ",\"cold_fallback\":"
        << (solve.cold_fallback ? "true" : "false")
        << ",\"iterations\":" << solve.iterations
        << ",\"residual\":" << solve.residual
        << ",\"solve_seconds\":" << solve.solve_seconds << ",\"trace\":[";
    for (std::size_t k = 0; k < solve.trace.size(); ++k) {
      const IterationStats& it = solve.trace[k];
      if (k > 0) out << ',';
      out << "{\"iteration\":" << it.iteration
          << ",\"objective\":" << it.objective
          << ",\"residual\":" << it.residual << ",\"rank\":" << it.rank
          << ",\"sparsity\":" << it.sparsity << ",\"mu\":" << it.mu
          << ",\"step\":" << it.step << '}';
    }
    out << "]}";
  }
  out << "]}";
}

}  // namespace netconst::obs
