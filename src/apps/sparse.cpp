#include "apps/sparse.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace netconst::apps {

CsrMatrix::CsrMatrix(std::size_t rows, std::size_t cols,
                     std::vector<Triplet> triplets)
    : rows_(rows), cols_(cols) {
  NETCONST_CHECK(rows > 0 && cols > 0, "empty matrix");
  for (const Triplet& t : triplets) {
    NETCONST_CHECK(t.row < rows && t.col < cols,
                   "triplet index out of range");
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  row_ptr_.assign(rows + 1, 0);
  for (std::size_t k = 0; k < triplets.size();) {
    // Merge duplicates.
    std::size_t end = k + 1;
    double sum = triplets[k].value;
    while (end < triplets.size() && triplets[end].row == triplets[k].row &&
           triplets[end].col == triplets[k].col) {
      sum += triplets[end].value;
      ++end;
    }
    col_idx_.push_back(triplets[k].col);
    values_.push_back(sum);
    ++row_ptr_[triplets[k].row + 1];
    k = end;
  }
  for (std::size_t r = 0; r < rows; ++r) row_ptr_[r + 1] += row_ptr_[r];
}

void CsrMatrix::multiply(std::span<const double> x,
                         std::vector<double>& y) const {
  NETCONST_CHECK(x.size() == cols_, "SpMV dimension mismatch");
  y.assign(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      sum += values_[k] * x[col_idx_[k]];
    }
    y[r] = sum;
  }
}

double CsrMatrix::value_at(std::size_t row, std::size_t col) const {
  NETCONST_CHECK(row < rows_ && col < cols_, "index out of range");
  for (std::size_t k = row_ptr_[row]; k < row_ptr_[row + 1]; ++k) {
    if (col_idx_[k] == col) return values_[k];
  }
  return 0.0;
}

bool CsrMatrix::is_symmetric(double tolerance) const {
  if (rows_ != cols_) return false;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      if (std::abs(values_[k] - value_at(col_idx_[k], r)) > tolerance) {
        return false;
      }
    }
  }
  return true;
}

CsrMatrix laplacian_2d(std::size_t nx, std::size_t ny) {
  NETCONST_CHECK(nx >= 1 && ny >= 1, "grid must be non-empty");
  const std::size_t n = nx * ny;
  std::vector<CsrMatrix::Triplet> triplets;
  triplets.reserve(5 * n);
  auto id = [nx](std::size_t x, std::size_t y) { return y * nx + x; };
  for (std::size_t y = 0; y < ny; ++y) {
    for (std::size_t x = 0; x < nx; ++x) {
      triplets.push_back({id(x, y), id(x, y), 4.0});
      if (x > 0) triplets.push_back({id(x, y), id(x - 1, y), -1.0});
      if (x + 1 < nx) triplets.push_back({id(x, y), id(x + 1, y), -1.0});
      if (y > 0) triplets.push_back({id(x, y), id(x, y - 1), -1.0});
      if (y + 1 < ny) triplets.push_back({id(x, y), id(x, y + 1), -1.0});
    }
  }
  return CsrMatrix(n, n, std::move(triplets));
}

CsrMatrix random_spd(std::size_t n, std::size_t offdiag_per_row, Rng& rng) {
  NETCONST_CHECK(n >= 2, "matrix too small");
  std::vector<CsrMatrix::Triplet> triplets;
  std::vector<double> row_abs_sum(n, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t k = 0; k < offdiag_per_row; ++k) {
      auto c = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      if (c == r) continue;
      const double v = rng.uniform(-1.0, 1.0);
      // Insert symmetrically so the result stays symmetric.
      triplets.push_back({r, c, v});
      triplets.push_back({c, r, v});
      row_abs_sum[r] += std::abs(v);
      row_abs_sum[c] += std::abs(v);
    }
  }
  for (std::size_t r = 0; r < n; ++r) {
    // Strict diagonal dominance => SPD for a symmetric matrix.
    triplets.push_back({r, r, row_abs_sum[r] + 1.0});
  }
  return CsrMatrix(n, n, std::move(triplets));
}

}  // namespace netconst::apps
