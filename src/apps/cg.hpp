// Conjugate gradient (Hestenes & Stiefel) — the paper's second
// real-world application. The numerical method is implemented for real
// (it is what fixes the iteration count the communication model needs);
// the distributed execution profile mirrors the paper's setup: each
// iteration's core is a distributed SpMV whose vector exchange is an
// all-to-all implemented as gather + broadcast.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "apps/sparse.hpp"

namespace netconst::apps {

struct CgResult {
  std::vector<double> solution;
  std::size_t iterations = 0;
  double final_residual_norm = 0.0;
  bool converged = false;
};

struct CgOptions {
  /// Paper's convergence condition: ||r|| <= rel_tolerance * ||g0||.
  double rel_tolerance = 1e-5;
  std::size_t max_iterations = 10000;
};

/// Solve A x = b for SPD A. Throws ContractViolation on shape mismatch.
CgResult conjugate_gradient(const CsrMatrix& a, std::span<const double> b,
                            const CgOptions& options = {});

/// Distributed execution profile of one application: how many
/// communication rounds it performs, how much each member contributes to
/// the all-to-all per round, and how much local compute happens per
/// round. The experiment harness combines this with a communication-time
/// evaluator to produce the paper's compute/communication breakdowns.
struct DistributedProfile {
  std::size_t instances = 0;
  std::size_t rounds = 0;                   // iterations / steps
  std::uint64_t bytes_per_member = 0;       // all-to-all contribution
  double compute_seconds_per_round = 0.0;   // modeled local compute
};

/// Profile of CG on `instances` VMs for a vector of `vector_size`
/// doubles: rounds = the actual iteration count of solving the given
/// system, per-member payload = vector_size * 8 / instances bytes,
/// compute = (2 nnz + 10 n) flops per iteration / instances / flop_rate.
DistributedProfile cg_profile(const CsrMatrix& a, std::span<const double> b,
                              std::size_t instances,
                              double flop_rate = 2e9,
                              const CgOptions& options = {});

}  // namespace netconst::apps
