// N-body gravitational simulation — the paper's first real-world
// application. The physics (all-pairs forces, leapfrog integration,
// energy diagnostics) is implemented for real; the distributed execution
// profile follows the paper: after every step the bodies are exchanged
// with an all-to-all implemented as gather + broadcast, with the message
// size swept independently of the body count in Figure 9(c).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "apps/cg.hpp"  // DistributedProfile
#include "support/rng.hpp"

namespace netconst::apps {

struct Body {
  double x = 0.0, y = 0.0, z = 0.0;
  double vx = 0.0, vy = 0.0, vz = 0.0;
  double mass = 1.0;
};

class NBodySimulation {
 public:
  /// `softening` regularizes close encounters (Plummer softening).
  NBodySimulation(std::vector<Body> bodies, double gravitational_constant = 1.0,
                  double softening = 1e-3);

  std::size_t body_count() const { return bodies_.size(); }
  const std::vector<Body>& bodies() const { return bodies_; }

  /// One leapfrog (kick-drift-kick) step of size dt.
  void step(double dt);
  void run(std::size_t steps, double dt);

  /// Diagnostics: total energy (kinetic + potential) and momentum —
  /// conserved quantities the tests check.
  double total_energy() const;
  std::array<double, 3> total_momentum() const;

 private:
  void compute_accelerations();

  std::vector<Body> bodies_;
  std::vector<std::array<double, 3>> acceleration_;
  double g_;
  double softening2_;
};

/// Random Plummer-ish cluster of `count` bodies.
std::vector<Body> random_bodies(std::size_t count, Rng& rng);

/// Distributed profile of N-body on `instances` VMs: `steps` rounds,
/// each exchanging `message_bytes` per member (the paper sweeps this
/// from 1 KB to 1 MB) and computing bodies^2 pair interactions split
/// across instances.
DistributedProfile nbody_profile(std::size_t bodies, std::size_t steps,
                                 std::uint64_t message_bytes,
                                 std::size_t instances,
                                 double flop_rate = 2e9);

}  // namespace netconst::apps
