// Compressed sparse row matrices and kernels for the CG application.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "support/rng.hpp"

namespace netconst::apps {

/// Immutable CSR matrix built from triplets.
class CsrMatrix {
 public:
  struct Triplet {
    std::size_t row = 0;
    std::size_t col = 0;
    double value = 0.0;
  };

  /// Build from triplets; duplicate (row, col) entries are summed.
  CsrMatrix(std::size_t rows, std::size_t cols,
            std::vector<Triplet> triplets);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nonzeros() const { return values_.size(); }

  /// y = A x (y is resized).
  void multiply(std::span<const double> x, std::vector<double>& y) const;

  /// True if the sparsity pattern and values are symmetric.
  bool is_symmetric(double tolerance = 1e-12) const;

  double value_at(std::size_t row, std::size_t col) const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<std::size_t> row_ptr_;
  std::vector<std::size_t> col_idx_;
  std::vector<double> values_;
};

/// 5-point Laplacian on an nx x ny grid — symmetric positive definite,
/// the canonical CG test problem.
CsrMatrix laplacian_2d(std::size_t nx, std::size_t ny);

/// Random sparse symmetric diagonally dominant (hence SPD) matrix with
/// about `offdiag_per_row` off-diagonal entries per row.
CsrMatrix random_spd(std::size_t n, std::size_t offdiag_per_row, Rng& rng);

}  // namespace netconst::apps
