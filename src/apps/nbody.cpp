#include "apps/nbody.hpp"

#include <cmath>

#include "support/error.hpp"

namespace netconst::apps {

NBodySimulation::NBodySimulation(std::vector<Body> bodies,
                                 double gravitational_constant,
                                 double softening)
    : bodies_(std::move(bodies)),
      g_(gravitational_constant),
      softening2_(softening * softening) {
  NETCONST_CHECK(!bodies_.empty(), "need at least one body");
  NETCONST_CHECK(softening > 0.0, "softening must be positive");
  for (const Body& b : bodies_) {
    NETCONST_CHECK(b.mass > 0.0, "masses must be positive");
  }
  acceleration_.assign(bodies_.size(), {0.0, 0.0, 0.0});
  compute_accelerations();
}

void NBodySimulation::compute_accelerations() {
  const std::size_t n = bodies_.size();
  for (auto& a : acceleration_) a = {0.0, 0.0, 0.0};
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dx = bodies_[j].x - bodies_[i].x;
      const double dy = bodies_[j].y - bodies_[i].y;
      const double dz = bodies_[j].z - bodies_[i].z;
      const double r2 = dx * dx + dy * dy + dz * dz + softening2_;
      const double inv_r3 = 1.0 / (r2 * std::sqrt(r2));
      const double fi = g_ * bodies_[j].mass * inv_r3;
      const double fj = g_ * bodies_[i].mass * inv_r3;
      acceleration_[i][0] += fi * dx;
      acceleration_[i][1] += fi * dy;
      acceleration_[i][2] += fi * dz;
      acceleration_[j][0] -= fj * dx;
      acceleration_[j][1] -= fj * dy;
      acceleration_[j][2] -= fj * dz;
    }
  }
}

void NBodySimulation::step(double dt) {
  NETCONST_CHECK(dt > 0.0, "time step must be positive");
  // Kick-drift-kick leapfrog: symplectic, conserves energy well.
  for (std::size_t i = 0; i < bodies_.size(); ++i) {
    bodies_[i].vx += 0.5 * dt * acceleration_[i][0];
    bodies_[i].vy += 0.5 * dt * acceleration_[i][1];
    bodies_[i].vz += 0.5 * dt * acceleration_[i][2];
    bodies_[i].x += dt * bodies_[i].vx;
    bodies_[i].y += dt * bodies_[i].vy;
    bodies_[i].z += dt * bodies_[i].vz;
  }
  compute_accelerations();
  for (std::size_t i = 0; i < bodies_.size(); ++i) {
    bodies_[i].vx += 0.5 * dt * acceleration_[i][0];
    bodies_[i].vy += 0.5 * dt * acceleration_[i][1];
    bodies_[i].vz += 0.5 * dt * acceleration_[i][2];
  }
}

void NBodySimulation::run(std::size_t steps, double dt) {
  for (std::size_t s = 0; s < steps; ++s) step(dt);
}

double NBodySimulation::total_energy() const {
  double kinetic = 0.0, potential = 0.0;
  const std::size_t n = bodies_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Body& b = bodies_[i];
    kinetic += 0.5 * b.mass *
               (b.vx * b.vx + b.vy * b.vy + b.vz * b.vz);
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dx = bodies_[j].x - b.x;
      const double dy = bodies_[j].y - b.y;
      const double dz = bodies_[j].z - b.z;
      const double r =
          std::sqrt(dx * dx + dy * dy + dz * dz + softening2_);
      potential -= g_ * b.mass * bodies_[j].mass / r;
    }
  }
  return kinetic + potential;
}

std::array<double, 3> NBodySimulation::total_momentum() const {
  std::array<double, 3> p{0.0, 0.0, 0.0};
  for (const Body& b : bodies_) {
    p[0] += b.mass * b.vx;
    p[1] += b.mass * b.vy;
    p[2] += b.mass * b.vz;
  }
  return p;
}

std::vector<Body> random_bodies(std::size_t count, Rng& rng) {
  std::vector<Body> bodies(count);
  for (Body& b : bodies) {
    b.x = rng.normal(0.0, 1.0);
    b.y = rng.normal(0.0, 1.0);
    b.z = rng.normal(0.0, 1.0);
    b.vx = rng.normal(0.0, 0.1);
    b.vy = rng.normal(0.0, 0.1);
    b.vz = rng.normal(0.0, 0.1);
    b.mass = rng.uniform(0.5, 1.5);
  }
  return bodies;
}

DistributedProfile nbody_profile(std::size_t bodies, std::size_t steps,
                                 std::uint64_t message_bytes,
                                 std::size_t instances, double flop_rate) {
  NETCONST_CHECK(instances >= 1, "need at least one instance");
  NETCONST_CHECK(flop_rate > 0.0, "flop rate must be positive");
  DistributedProfile profile;
  profile.instances = instances;
  profile.rounds = steps;
  profile.bytes_per_member = message_bytes;
  // ~20 flops per pair interaction, pairs split across instances.
  const double flops_per_round =
      20.0 * static_cast<double>(bodies) * static_cast<double>(bodies);
  profile.compute_seconds_per_round =
      flops_per_round / static_cast<double>(instances) / flop_rate;
  return profile;
}

}  // namespace netconst::apps
