#include "apps/cg.hpp"

#include <cmath>

#include "support/error.hpp"

namespace netconst::apps {
namespace {

double dot(std::span<const double> a, std::span<const double> b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

}  // namespace

CgResult conjugate_gradient(const CsrMatrix& a, std::span<const double> b,
                            const CgOptions& options) {
  NETCONST_CHECK(a.rows() == a.cols(), "CG needs a square matrix");
  NETCONST_CHECK(a.rows() == b.size(), "CG dimension mismatch");
  const std::size_t n = a.rows();

  CgResult result;
  result.solution.assign(n, 0.0);
  std::vector<double> r(b.begin(), b.end());  // r = b - A*0
  std::vector<double> p = r;
  std::vector<double> ap;

  const double g0 = std::sqrt(dot(r, r));
  if (g0 == 0.0) {
    result.converged = true;
    return result;
  }
  const double stop = options.rel_tolerance * g0;

  double rr = g0 * g0;
  for (std::size_t k = 0; k < options.max_iterations; ++k) {
    a.multiply(p, ap);
    const double pap = dot(p, ap);
    NETCONST_CHECK(pap > 0.0, "matrix is not positive definite");
    const double alpha = rr / pap;
    for (std::size_t i = 0; i < n; ++i) {
      result.solution[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
    }
    const double rr_next = dot(r, r);
    result.iterations = k + 1;
    if (std::sqrt(rr_next) <= stop) {
      result.converged = true;
      rr = rr_next;
      break;
    }
    const double beta = rr_next / rr;
    for (std::size_t i = 0; i < n; ++i) p[i] = r[i] + beta * p[i];
    rr = rr_next;
  }
  result.final_residual_norm = std::sqrt(rr);
  return result;
}

DistributedProfile cg_profile(const CsrMatrix& a, std::span<const double> b,
                              std::size_t instances, double flop_rate,
                              const CgOptions& options) {
  NETCONST_CHECK(instances >= 1, "need at least one instance");
  NETCONST_CHECK(flop_rate > 0.0, "flop rate must be positive");
  const CgResult solve = conjugate_gradient(a, b, options);

  DistributedProfile profile;
  profile.instances = instances;
  profile.rounds = solve.iterations;
  profile.bytes_per_member = static_cast<std::uint64_t>(
      a.rows() * sizeof(double) / instances + 1);
  const double flops_per_round =
      2.0 * static_cast<double>(a.nonzeros()) +
      10.0 * static_cast<double>(a.rows());
  profile.compute_seconds_per_round =
      flops_per_round / static_cast<double>(instances) / flop_rate;
  return profile;
}

}  // namespace netconst::apps
