// Flow-level discrete-event network simulator (the ns-2 substitute).
//
// Transfers are fluid flows routed over the topology; concurrently active
// flows share each directed link by max-min fairness (progressive
// filling), recomputed at every arrival/completion event. A flow's
// lifetime is: injection -> path propagation latency -> fluid transfer at
// the time-varying fair rate -> completion. This reproduces the quantity
// the paper's ns-2 experiments extract — per-transfer elapsed time under
// background contention — without per-packet machinery (see DESIGN.md,
// substitutions).
//
// Background traffic follows the paper's setup: for each chosen
// (src, dst) pair, messages of a fixed size are sent with random waiting
// time between sends, exponentially distributed with mean lambda (the
// natural Poisson-process reading of "waiting time satisfies poisson
// distribution with expected value lambda").
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <vector>

#include "simnet/topology.hpp"
#include "support/rng.hpp"

namespace netconst::simnet {

using FlowId = std::uint64_t;

/// Completed-flow bookkeeping.
struct FlowRecord {
  NodeId src = 0;
  NodeId dst = 0;
  std::uint64_t bytes = 0;
  double injected_at = 0.0;
  double completed_at = -1.0;  // < 0 while in flight
  bool tracked = true;         // false for background flows

  bool finished() const { return completed_at >= 0.0; }
  double elapsed() const { return completed_at - injected_at; }
};

/// Open-loop background source: sends `bytes` from src to dst, waits an
/// Exp(mean_wait) interval, repeats.
struct BackgroundSource {
  NodeId src = 0;
  NodeId dst = 0;
  std::uint64_t bytes = 0;
  double mean_wait = 1.0;  // seconds between completions of send calls
};

class FlowSimulator {
 public:
  /// `rng` seeds the background arrival processes.
  explicit FlowSimulator(Topology topology, Rng rng = Rng(42));

  double now() const { return now_; }
  const Topology& topology() const { return topology_; }

  /// Inject a flow at the current time. Returns its id.
  FlowId inject(NodeId src, NodeId dst, std::uint64_t bytes,
                bool tracked = true);

  /// Register a background source; its first send happens after one
  /// waiting interval from the current time.
  void add_background_source(const BackgroundSource& source);

  /// Advance the simulation until `id` completes; returns its elapsed
  /// time (completion - injection). The flow must exist and be unfinished
  /// or already finished (then returns immediately).
  double run_until_complete(FlowId id);

  /// Advance until no tracked flows remain in flight.
  void run_until_idle();

  /// Advance the clock to `t`, processing all events up to it.
  void advance_to(double t);

  /// Convenience: inject + run_until_complete.
  double measure_transfer(NodeId src, NodeId dst, std::uint64_t bytes);

  /// Inject all pairs at once, run until all complete, return elapsed
  /// times in order. This is how concurrent calibration steps and tree
  /// rounds are timed under mutual interference.
  std::vector<double> measure_concurrent(
      const std::vector<std::pair<NodeId, NodeId>>& pairs,
      std::uint64_t bytes);

  /// Callback invoked when a *tracked* flow completes; may inject new
  /// flows (used by the collective executor to chain tree rounds).
  void set_completion_callback(std::function<void(FlowId, double)> cb) {
    completion_callback_ = std::move(cb);
  }

  const FlowRecord& record(FlowId id) const;
  std::size_t active_flow_count() const { return active_.size(); }
  std::size_t tracked_in_flight() const { return tracked_in_flight_; }

  /// Hypothetical max-min rate (bytes/s) a new src->dst flow would get
  /// against the currently transferring flows — an analytic probe that
  /// does not perturb the simulation. Used as the "oracle" instantaneous
  /// bandwidth for trace generation.
  double probe_rate(NodeId src, NodeId dst) const;

 private:
  struct ActiveFlow {
    FlowId id = 0;
    double remaining = 0.0;    // bytes left once transferring
    double rate = 0.0;         // bytes/s from the last rate computation
    double activate_at = 0.0;  // injection + path latency
    bool transferring = false;
    std::vector<std::size_t> directed_links;  // link*2 + direction
  };

  struct PendingArrival {
    double time = 0.0;
    std::size_t source_index = 0;  // background source
    bool operator>(const PendingArrival& other) const {
      return time > other.time;
    }
  };

  void recompute_rates();
  /// Earliest upcoming event time (activation, completion, background
  /// arrival); infinity if none.
  double next_event_time() const;
  /// Process everything scheduled at exactly the next event time and
  /// advance the clock there. Returns false if there was no event.
  bool step();
  void transfer_elapsed(double dt);
  void schedule_next_arrival(std::size_t source_index);

  Topology topology_;
  Rng rng_;
  double now_ = 0.0;
  std::vector<FlowRecord> records_;
  std::vector<ActiveFlow> active_;
  std::size_t tracked_in_flight_ = 0;
  bool rates_dirty_ = true;

  std::vector<BackgroundSource> sources_;
  std::priority_queue<PendingArrival, std::vector<PendingArrival>,
                      std::greater<PendingArrival>>
      arrivals_;

  std::function<void(FlowId, double)> completion_callback_;
};

}  // namespace netconst::simnet
