#include "simnet/topology.hpp"

#include <algorithm>
#include <deque>
#include <limits>

#include "support/error.hpp"

namespace netconst::simnet {

NodeId Topology::add_node(NodeKind kind, std::string name) {
  nodes_.push_back({kind, std::move(name)});
  adjacency_.emplace_back();
  routes_ready_.assign(nodes_.size(), false);  // invalidate route cache
  routes_.clear();
  routes_.resize(nodes_.size());
  return nodes_.size() - 1;
}

LinkId Topology::add_link(NodeId a, NodeId b, double capacity,
                          double latency) {
  NETCONST_CHECK(a < nodes_.size() && b < nodes_.size(),
                 "link endpoint out of range");
  NETCONST_CHECK(a != b, "self-links are not allowed");
  NETCONST_CHECK(capacity > 0.0, "link capacity must be positive");
  NETCONST_CHECK(latency >= 0.0, "link latency must be non-negative");
  links_.push_back({a, b, capacity, latency});
  const LinkId id = links_.size() - 1;
  adjacency_[a].emplace_back(b, id);
  adjacency_[b].emplace_back(a, id);
  std::fill(routes_ready_.begin(), routes_ready_.end(), false);
  return id;
}

const Node& Topology::node(NodeId id) const {
  NETCONST_CHECK(id < nodes_.size(), "node id out of range");
  return nodes_[id];
}

const Link& Topology::link(LinkId id) const {
  NETCONST_CHECK(id < links_.size(), "link id out of range");
  return links_[id];
}

std::vector<NodeId> Topology::hosts() const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].kind == NodeKind::Host) out.push_back(id);
  }
  return out;
}

void Topology::compute_routes_from(NodeId src) const {
  // BFS from src; reconstruct hop lists for every destination.
  constexpr auto kUnreached = std::numeric_limits<NodeId>::max();
  std::vector<NodeId> parent(nodes_.size(), kUnreached);
  std::vector<LinkId> via(nodes_.size(), 0);
  std::deque<NodeId> queue{src};
  parent[src] = src;
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (const auto& [v, l] : adjacency_[u]) {
      if (parent[v] != kUnreached) continue;
      parent[v] = u;
      via[v] = l;
      queue.push_back(v);
    }
  }
  auto& table = routes_[src];
  table.assign(nodes_.size(), {});
  for (NodeId dst = 0; dst < nodes_.size(); ++dst) {
    if (dst == src || parent[dst] == kUnreached) continue;
    std::vector<Hop> hops;
    for (NodeId v = dst; v != src; v = parent[v]) {
      const Link& l = links_[via[v]];
      hops.push_back({via[v], l.b == v});
    }
    std::reverse(hops.begin(), hops.end());
    table[dst] = std::move(hops);
  }
  routes_ready_[src] = true;
}

const std::vector<Hop>& Topology::route(NodeId src, NodeId dst) const {
  NETCONST_CHECK(src < nodes_.size() && dst < nodes_.size(),
                 "route endpoint out of range");
  NETCONST_CHECK(src != dst, "route to self");
  if (routes_.size() != nodes_.size()) routes_.resize(nodes_.size());
  if (!routes_ready_[src]) compute_routes_from(src);
  const auto& hops = routes_[src][dst];
  NETCONST_CHECK(!hops.empty(), "nodes are disconnected");
  return hops;
}

double Topology::path_latency(NodeId src, NodeId dst) const {
  if (src == dst) return 0.0;
  double total = 0.0;
  for (const Hop& h : route(src, dst)) total += links_[h.link].latency;
  return total;
}

double Topology::path_capacity(NodeId src, NodeId dst) const {
  NETCONST_CHECK(src != dst, "path capacity to self");
  double cap = std::numeric_limits<double>::infinity();
  for (const Hop& h : route(src, dst)) {
    cap = std::min(cap, links_[h.link].capacity);
  }
  return cap;
}

Topology make_tree_topology(const TreeSpec& spec) {
  NETCONST_CHECK(spec.racks > 0 && spec.servers_per_rack > 0,
                 "tree must have at least one rack and server");
  Topology topo;
  std::vector<NodeId> hosts;
  hosts.reserve(spec.racks * spec.servers_per_rack);
  for (std::size_t r = 0; r < spec.racks; ++r) {
    for (std::size_t s = 0; s < spec.servers_per_rack; ++s) {
      hosts.push_back(topo.add_node(
          NodeKind::Host,
          "host-r" + std::to_string(r) + "-s" + std::to_string(s)));
    }
  }
  std::vector<NodeId> rack_switches;
  for (std::size_t r = 0; r < spec.racks; ++r) {
    rack_switches.push_back(
        topo.add_node(NodeKind::Switch, "tor-" + std::to_string(r)));
  }
  const NodeId core = topo.add_node(NodeKind::Switch, "core");
  for (std::size_t r = 0; r < spec.racks; ++r) {
    for (std::size_t s = 0; s < spec.servers_per_rack; ++s) {
      topo.add_link(hosts[r * spec.servers_per_rack + s], rack_switches[r],
                    spec.host_link_bytes_per_s, spec.host_link_latency_s);
    }
    topo.add_link(rack_switches[r], core, spec.uplink_bytes_per_s,
                  spec.uplink_latency_s);
  }
  return topo;
}

std::size_t tree_rack_of(const TreeSpec& spec, NodeId host) {
  NETCONST_CHECK(host < spec.racks * spec.servers_per_rack,
                 "host id out of range for the tree spec");
  return host / spec.servers_per_rack;
}

}  // namespace netconst::simnet
