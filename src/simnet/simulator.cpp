#include "simnet/simulator.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace netconst::simnet {
namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();
// Times within this of each other are treated as simultaneous, absorbing
// floating-point drift in event ordering.
constexpr double kTimeEps = 1e-12;
// A flow with fewer than this many bytes left is complete. The fluid
// update `remaining -= rate * dt` leaves O(ulp(bytes)) residue (~1e-9 B
// for an 8 MiB transfer); with a too-small epsilon the next completion
// event lands within one double ulp of `now` and simulated time stops
// advancing. 1e-4 bytes is far above fp noise for any transfer below
// ~1 TB and far below a meaningful payload.
constexpr double kByteEps = 1e-4;

}  // namespace

FlowSimulator::FlowSimulator(Topology topology, Rng rng)
    : topology_(std::move(topology)), rng_(rng) {}

FlowId FlowSimulator::inject(NodeId src, NodeId dst, std::uint64_t bytes,
                             bool tracked) {
  NETCONST_CHECK(src != dst, "flow to self");
  const FlowId id = records_.size();
  FlowRecord rec;
  rec.src = src;
  rec.dst = dst;
  rec.bytes = bytes;
  rec.injected_at = now_;
  rec.tracked = tracked;
  records_.push_back(rec);

  ActiveFlow flow;
  flow.id = id;
  flow.remaining = static_cast<double>(bytes);
  flow.activate_at = now_ + topology_.path_latency(src, dst);
  for (const Hop& h : topology_.route(src, dst)) {
    flow.directed_links.push_back(h.link * 2 + (h.forward ? 0 : 1));
  }
  active_.push_back(std::move(flow));
  if (tracked) ++tracked_in_flight_;
  rates_dirty_ = true;
  return id;
}

void FlowSimulator::add_background_source(const BackgroundSource& source) {
  NETCONST_CHECK(source.src != source.dst, "background flow to self");
  NETCONST_CHECK(source.mean_wait > 0.0, "mean wait must be positive");
  NETCONST_CHECK(source.bytes > 0, "background message must be non-empty");
  sources_.push_back(source);
  schedule_next_arrival(sources_.size() - 1);
}

void FlowSimulator::schedule_next_arrival(std::size_t source_index) {
  const BackgroundSource& s = sources_[source_index];
  arrivals_.push({now_ + rng_.exponential(s.mean_wait), source_index});
}

void FlowSimulator::recompute_rates() {
  // Progressive filling max-min fairness over directed link capacities.
  const std::size_t directed = topology_.link_count() * 2;
  std::vector<double> remaining_cap(directed);
  for (LinkId l = 0; l < topology_.link_count(); ++l) {
    remaining_cap[l * 2] = topology_.link(l).capacity;
    remaining_cap[l * 2 + 1] = topology_.link(l).capacity;
  }
  std::vector<std::size_t> unfrozen_count(directed, 0);
  std::vector<bool> frozen(active_.size(), false);
  std::size_t unfrozen_flows = 0;
  for (std::size_t f = 0; f < active_.size(); ++f) {
    if (!active_[f].transferring) {
      frozen[f] = true;  // latency phase: no bandwidth consumed
      active_[f].rate = 0.0;
      continue;
    }
    ++unfrozen_flows;
    for (std::size_t dl : active_[f].directed_links) ++unfrozen_count[dl];
  }

  while (unfrozen_flows > 0) {
    // Bottleneck share across links that still carry unfrozen flows.
    double bottleneck = kInfinity;
    for (std::size_t dl = 0; dl < directed; ++dl) {
      if (unfrozen_count[dl] == 0) continue;
      const double share =
          remaining_cap[dl] / static_cast<double>(unfrozen_count[dl]);
      bottleneck = std::min(bottleneck, share);
    }
    NETCONST_ASSERT(bottleneck < kInfinity);
    // Freeze every unfrozen flow crossing a bottleneck link.
    const double threshold = bottleneck * (1.0 + 1e-12);
    bool froze_any = false;
    for (std::size_t f = 0; f < active_.size(); ++f) {
      if (frozen[f]) continue;
      bool at_bottleneck = false;
      for (std::size_t dl : active_[f].directed_links) {
        const double share =
            remaining_cap[dl] / static_cast<double>(unfrozen_count[dl]);
        if (share <= threshold) {
          at_bottleneck = true;
          break;
        }
      }
      if (!at_bottleneck) continue;
      frozen[f] = true;
      froze_any = true;
      --unfrozen_flows;
      active_[f].rate = bottleneck;
      for (std::size_t dl : active_[f].directed_links) {
        remaining_cap[dl] = std::max(remaining_cap[dl] - bottleneck, 0.0);
        --unfrozen_count[dl];
      }
    }
    NETCONST_ASSERT(froze_any);
  }
  rates_dirty_ = false;
}

double FlowSimulator::next_event_time() const {
  double t = kInfinity;
  for (const ActiveFlow& f : active_) {
    if (!f.transferring) {
      t = std::min(t, f.activate_at);
    } else if (f.rate > 0.0) {
      t = std::min(t, now_ + f.remaining / f.rate);
    }
  }
  if (!arrivals_.empty()) t = std::min(t, arrivals_.top().time);
  return t;
}

void FlowSimulator::transfer_elapsed(double dt) {
  if (dt <= 0.0) return;
  for (ActiveFlow& f : active_) {
    if (f.transferring) {
      f.remaining = std::max(f.remaining - f.rate * dt, 0.0);
    }
  }
}

bool FlowSimulator::step() {
  if (rates_dirty_) recompute_rates();
  const double t = next_event_time();
  if (t == kInfinity) return false;
  transfer_elapsed(t - now_);
  now_ = std::max(now_, t);

  // Background arrivals due now.
  while (!arrivals_.empty() && arrivals_.top().time <= now_ + kTimeEps) {
    const auto arrival = arrivals_.top();
    arrivals_.pop();
    const BackgroundSource& s = sources_[arrival.source_index];
    inject(s.src, s.dst, s.bytes, /*tracked=*/false);
    schedule_next_arrival(arrival.source_index);
  }

  // Activations due now (latency phase over, transfer starts).
  for (ActiveFlow& f : active_) {
    if (!f.transferring && f.activate_at <= now_ + kTimeEps) {
      f.transferring = true;
      rates_dirty_ = true;
    }
  }

  // Completions: flows fully drained.
  std::vector<FlowId> completed;
  for (std::size_t i = 0; i < active_.size();) {
    ActiveFlow& f = active_[i];
    // Complete when drained, or when the residual transfer time is below
    // a nanosecond — at large simulated times such a completion event
    // would not advance the double-precision clock at all.
    const bool drained =
        f.transferring &&
        (f.remaining <= kByteEps ||
         (f.rate > 0.0 && f.remaining / f.rate <= 1e-9));
    if (drained) {
      completed.push_back(f.id);
      active_[i] = std::move(active_.back());
      active_.pop_back();
      rates_dirty_ = true;
    } else {
      ++i;
    }
  }
  for (FlowId id : completed) {
    records_[id].completed_at = now_;
    if (records_[id].tracked) {
      NETCONST_ASSERT(tracked_in_flight_ > 0);
      --tracked_in_flight_;
      if (completion_callback_) completion_callback_(id, now_);
    }
  }
  return true;
}

double FlowSimulator::run_until_complete(FlowId id) {
  NETCONST_CHECK(id < records_.size(), "unknown flow id");
  while (!records_[id].finished()) {
    NETCONST_CHECK(step(), "simulation ran out of events before the flow "
                           "completed");
  }
  return records_[id].elapsed();
}

void FlowSimulator::run_until_idle() {
  while (tracked_in_flight_ > 0) {
    NETCONST_CHECK(step(), "simulation ran out of events with tracked "
                           "flows in flight");
  }
}

void FlowSimulator::advance_to(double t) {
  NETCONST_CHECK(t >= now_, "cannot advance backwards");
  for (;;) {
    if (rates_dirty_) recompute_rates();
    const double next = next_event_time();
    if (next > t) break;
    step();
  }
  transfer_elapsed(t - now_);
  now_ = t;
}

double FlowSimulator::measure_transfer(NodeId src, NodeId dst,
                                       std::uint64_t bytes) {
  return run_until_complete(inject(src, dst, bytes));
}

std::vector<double> FlowSimulator::measure_concurrent(
    const std::vector<std::pair<NodeId, NodeId>>& pairs,
    std::uint64_t bytes) {
  std::vector<FlowId> ids;
  ids.reserve(pairs.size());
  for (const auto& [src, dst] : pairs) ids.push_back(inject(src, dst, bytes));
  std::vector<double> elapsed;
  elapsed.reserve(ids.size());
  for (FlowId id : ids) elapsed.push_back(run_until_complete(id));
  return elapsed;
}

double FlowSimulator::probe_rate(NodeId src, NodeId dst) const {
  // Max-min progressive filling over the transferring flows plus one
  // phantom flow on route(src, dst). Mirrors recompute_rates but leaves
  // the simulator untouched.
  const std::size_t directed = topology_.link_count() * 2;
  std::vector<double> remaining_cap(directed);
  for (LinkId l = 0; l < topology_.link_count(); ++l) {
    remaining_cap[l * 2] = topology_.link(l).capacity;
    remaining_cap[l * 2 + 1] = topology_.link(l).capacity;
  }

  std::vector<std::vector<std::size_t>> flows;
  for (const ActiveFlow& f : active_) {
    if (f.transferring) flows.push_back(f.directed_links);
  }
  std::vector<std::size_t> phantom;
  for (const Hop& h : topology_.route(src, dst)) {
    phantom.push_back(h.link * 2 + (h.forward ? 0 : 1));
  }
  const std::size_t phantom_index = flows.size();
  flows.push_back(phantom);

  std::vector<std::size_t> unfrozen_count(directed, 0);
  std::vector<bool> frozen(flows.size(), false);
  std::vector<double> rates(flows.size(), 0.0);
  std::size_t unfrozen_flows = flows.size();
  for (const auto& links : flows) {
    for (std::size_t dl : links) ++unfrozen_count[dl];
  }
  while (unfrozen_flows > 0) {
    double bottleneck = kInfinity;
    for (std::size_t dl = 0; dl < directed; ++dl) {
      if (unfrozen_count[dl] == 0) continue;
      bottleneck = std::min(
          bottleneck,
          remaining_cap[dl] / static_cast<double>(unfrozen_count[dl]));
    }
    NETCONST_ASSERT(bottleneck < kInfinity);
    const double threshold = bottleneck * (1.0 + 1e-12);
    for (std::size_t f = 0; f < flows.size(); ++f) {
      if (frozen[f]) continue;
      bool at_bottleneck = false;
      for (std::size_t dl : flows[f]) {
        if (remaining_cap[dl] / static_cast<double>(unfrozen_count[dl]) <=
            threshold) {
          at_bottleneck = true;
          break;
        }
      }
      if (!at_bottleneck) continue;
      frozen[f] = true;
      --unfrozen_flows;
      rates[f] = bottleneck;
      for (std::size_t dl : flows[f]) {
        remaining_cap[dl] = std::max(remaining_cap[dl] - bottleneck, 0.0);
        --unfrozen_count[dl];
      }
      // The caller only needs the phantom's rate; stop once it's fixed.
      if (f == phantom_index) return rates[phantom_index];
    }
  }
  return rates[phantom_index];
}

const FlowRecord& FlowSimulator::record(FlowId id) const {
  NETCONST_CHECK(id < records_.size(), "unknown flow id");
  return records_[id];
}

}  // namespace netconst::simnet
