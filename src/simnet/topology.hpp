// Physical network topology for the simulator substrate.
//
// Nodes are hosts or switches connected by full-duplex links with a
// capacity (bytes/s) and a propagation latency (s). Routing is shortest
// path (BFS, cached per source). The canonical instance is the paper's
// tree: 32 racks x 32 servers, host links 1 Gb/s inside the rack and
// 10 Gb/s rack uplinks to a single core switch (Figure 3).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace netconst::simnet {

using NodeId = std::size_t;
using LinkId = std::size_t;

enum class NodeKind { Host, Switch };

struct Node {
  NodeKind kind = NodeKind::Host;
  std::string name;
};

/// Full-duplex link; each direction has the full capacity.
struct Link {
  NodeId a = 0;
  NodeId b = 0;
  double capacity = 0.0;  // bytes per second, per direction
  double latency = 0.0;   // seconds, per traversal
};

/// One direction of a link along a route.
struct Hop {
  LinkId link = 0;
  bool forward = true;  // true: a->b direction, false: b->a
};

class Topology {
 public:
  NodeId add_node(NodeKind kind, std::string name);
  LinkId add_link(NodeId a, NodeId b, double capacity_bytes_per_s,
                  double latency_s);

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t link_count() const { return links_.size(); }
  const Node& node(NodeId id) const;
  const Link& link(LinkId id) const;

  /// All host node ids in creation order.
  std::vector<NodeId> hosts() const;

  /// Shortest path (fewest hops) from src to dst as directed hops.
  /// Throws Error if the nodes are disconnected. Results are cached.
  const std::vector<Hop>& route(NodeId src, NodeId dst) const;

  /// Sum of link latencies along route(src, dst).
  double path_latency(NodeId src, NodeId dst) const;

  /// Minimum link capacity along route(src, dst).
  double path_capacity(NodeId src, NodeId dst) const;

 private:
  void compute_routes_from(NodeId src) const;

  std::vector<Node> nodes_;
  std::vector<Link> links_;
  std::vector<std::vector<std::pair<NodeId, LinkId>>> adjacency_;
  // routes_[src][dst]; lazily filled per source.
  mutable std::vector<std::vector<std::vector<Hop>>> routes_;
  mutable std::vector<bool> routes_ready_;
};

/// Parameters of the paper's two-level tree (Figure 3).
struct TreeSpec {
  std::size_t racks = 32;
  std::size_t servers_per_rack = 32;
  double host_link_bytes_per_s = 1e9 / 8.0;    // 1 Gb/s inside the rack
  double uplink_bytes_per_s = 10e9 / 8.0;      // 10 Gb/s rack uplink
  double host_link_latency_s = 50e-6;
  double uplink_latency_s = 100e-6;
};

/// Build the tree: hosts -> rack switch -> core switch. Host ids are
/// 0..racks*servers_per_rack-1 in rack-major order.
Topology make_tree_topology(const TreeSpec& spec = {});

/// Rack index of a host in a tree built by make_tree_topology.
std::size_t tree_rack_of(const TreeSpec& spec, NodeId host);

}  // namespace netconst::simnet
