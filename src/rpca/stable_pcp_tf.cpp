#include "rpca/stable_pcp_tf.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "linalg/fused.hpp"
#include "linalg/norms.hpp"
#include "obs/convergence.hpp"
#include "rpca/stable_pcp.hpp"
#include "rpca/svd_path.hpp"
#include "rpca/workspace.hpp"
#include "support/error.hpp"
#include "support/stopwatch.hpp"

namespace netconst::rpca {
namespace {

constexpr double kPi = 3.14159265358979323846;

/// Build (or reuse) the cached DCT-II basis for a `rows`-snapshot
/// window. The basis depends only on the window length, so a workspace
/// that has served this length once never recomputes or reallocates it.
const linalg::Matrix& cached_dct_basis(std::size_t rows,
                                       SolverWorkspace& ws) {
  if (ws.dct.basis_rows != rows) {
    temporal_dct_basis_into(rows, ws.dct.basis);
    ws.dct.basis_rows = rows;
  }
  return ws.dct.basis;
}

/// One time-frequency proximal step on `d` through the workspace's
/// coefficient panel: forward DCT along time, shrink above the
/// passband, transform back.
void tf_prox_step(linalg::Matrix& d, std::size_t keep_rows,
                  double threshold, SolverWorkspace& ws) {
  const linalg::Matrix& basis = cached_dct_basis(d.rows(), ws);
  temporal_dct_forward(basis, d, ws.dct.coeffs);
  shrink_high_frequencies(ws.dct.coeffs, keep_rows, threshold);
  temporal_dct_inverse(basis, ws.dct.coeffs, d);
}

}  // namespace

std::size_t tf_passband_rows(std::size_t rows, double passband_fraction) {
  NETCONST_CHECK(rows > 0, "passband of an empty window");
  const double kept =
      std::floor(passband_fraction * static_cast<double>(rows) + 0.5);
  if (kept < 1.0) return 1;
  if (kept >= static_cast<double>(rows)) return rows;
  return static_cast<std::size_t>(kept);
}

void temporal_dct_basis_into(std::size_t rows, linalg::Matrix& basis) {
  NETCONST_CHECK(rows > 0, "DCT basis of an empty window");
  basis.resize(rows, rows);
  const double m = static_cast<double>(rows);
  const double dc_scale = std::sqrt(1.0 / m);
  const double ac_scale = std::sqrt(2.0 / m);
  for (std::size_t k = 0; k < rows; ++k) {
    const double scale = k == 0 ? dc_scale : ac_scale;
    for (std::size_t i = 0; i < rows; ++i) {
      basis(k, i) =
          scale * std::cos(kPi * (static_cast<double>(i) + 0.5) *
                           static_cast<double>(k) / m);
    }
  }
}

void temporal_dct_forward(const linalg::Matrix& basis,
                          const linalg::Matrix& x, linalg::Matrix& coeffs) {
  NETCONST_CHECK(basis.rows() == x.rows() && basis.rows() == basis.cols(),
                 "DCT basis / panel shape mismatch");
  coeffs.resize(x.rows(), x.cols());
  for (std::size_t k = 0; k < basis.rows(); ++k) {
    for (std::size_t j = 0; j < x.cols(); ++j) {
      double sum = 0.0;
      for (std::size_t i = 0; i < x.rows(); ++i) {
        sum += basis(k, i) * x(i, j);
      }
      coeffs(k, j) = sum;
    }
  }
}

void temporal_dct_inverse(const linalg::Matrix& basis,
                          const linalg::Matrix& coeffs, linalg::Matrix& x) {
  NETCONST_CHECK(basis.rows() == coeffs.rows() &&
                     basis.rows() == basis.cols(),
                 "DCT basis / panel shape mismatch");
  x.resize(coeffs.rows(), coeffs.cols());
  for (std::size_t i = 0; i < coeffs.rows(); ++i) {
    for (std::size_t j = 0; j < coeffs.cols(); ++j) {
      double sum = 0.0;
      for (std::size_t k = 0; k < coeffs.rows(); ++k) {
        sum += basis(k, i) * coeffs(k, j);
      }
      x(i, j) = sum;
    }
  }
}

void shrink_high_frequencies(linalg::Matrix& coeffs, std::size_t keep_rows,
                             double threshold) {
  for (std::size_t k = keep_rows; k < coeffs.rows(); ++k) {
    for (std::size_t j = 0; j < coeffs.cols(); ++j) {
      const double v = coeffs(k, j);
      const double mag = std::abs(v) - threshold;
      coeffs(k, j) = mag > 0.0 ? (v > 0.0 ? mag : -mag) : 0.0;
    }
  }
}

Result solve_stable_pcp_tf(const linalg::Matrix& a,
                           const StablePcpTfOptions& options) {
  NETCONST_CHECK(!a.empty(), "TF stable PCP of an empty matrix");
  const double lambda = options.base.lambda > 0.0
                            ? options.base.lambda
                            : default_lambda(a.rows(), a.cols());
  SolverWorkspace ws;
  Result result;
  solve_stable_pcp_tf(a, options.base, lambda, options.noise_sigma,
                      options.passband_fraction, options.tf_weight, ws,
                      result);
  return result;
}

void solve_stable_pcp_tf(const linalg::Matrix& a, const Options& base,
                         double lambda, double noise_sigma,
                         double passband_fraction, double tf_weight,
                         SolverWorkspace& ws, Result& result) {
  NETCONST_CHECK(!a.empty(), "TF stable PCP of an empty matrix");
  NETCONST_CHECK(lambda > 0.0, "TF stable PCP requires lambda > 0");
  NETCONST_CHECK(tf_weight >= 0.0, "TF weight must be non-negative");
  const Stopwatch clock;
  reset_result(result);
  ++ws.stats.solves;
  double sigma = noise_sigma;
  if (sigma <= 0.0) sigma = estimate_noise_sigma(a, ws);
  NETCONST_CHECK(sigma >= 0.0, "noise sigma must be non-negative");

  const double a_fro = linalg::frobenius_norm(a);
  NETCONST_CHECK(a_fro > 0.0, "TF stable PCP of an all-zero matrix");
  // Stable PCP's Lagrangian weight; the TF shrink reuses its scale.
  const double mu =
      std::sqrt(2.0 * static_cast<double>(std::max(a.rows(), a.cols()))) *
      std::max(sigma, 1e-12 * linalg::max_abs(a));
  const double inv_lf = 0.5;  // gradient Lipschitz constant is 2
  const std::size_t keep_rows = tf_passband_rows(a.rows(), passband_fraction);
  const double tf_threshold = tf_weight * mu * inv_lf;

  ws.d.resize(a.rows(), a.cols());
  ws.d.fill(0.0);
  ws.e.resize(a.rows(), a.cols());
  ws.e.fill(0.0);
  ws.d_prev = ws.d;
  ws.e_prev = ws.e;
  double t = 1.0, t_prev = 1.0;

  for (int k = 0; k < base.max_iterations; ++k) {
    const double momentum = (t_prev - 1.0) / t;
    linalg::gradient_step(ws.d, ws.d_prev, ws.e, ws.e_prev, a, momentum,
                          inv_lf, lambda * mu * inv_lf, ws.gd, ws.ge);

    ws.d.swap(ws.d_prev);
    ws.e.swap(ws.e_prev);
    ws.e.swap(ws.ge);
    const auto svt = svt_step(ws.gd, mu * inv_lf, base, ws, ws.d);
    if (!svt.used_scratch) ++ws.stats.svt_fallbacks;
    result.rank = svt.rank;
    // The extra proximal step that distinguishes this solver: band-limit
    // D along the time axis before the next gradient evaluation.
    if (tf_threshold > 0.0 && keep_rows < a.rows()) {
      tf_prox_step(ws.d, keep_rows, tf_threshold, ws);
    }

    t_prev = t;
    t = 0.5 * (1.0 + std::sqrt(4.0 * t * t + 1.0));
    result.iterations = k + 1;

    double change = 0.0, scale = 0.0;
    linalg::iterate_change_norms(ws.d, ws.d_prev, ws.e, ws.e_prev, change,
                                 scale);
    if (base.probe != nullptr) {
      // Read-only diagnostics of the live iterates; ws.residual is
      // scratch here (recomputed from the final iterates after the
      // loop), so probing never perturbs the solve.
      obs::IterationStats stats;
      stats.iteration = k + 1;
      linalg::sub_sub(a, ws.d, ws.e, ws.residual);
      stats.residual = linalg::frobenius_norm(ws.residual) / a_fro;
      const double misfit = stats.residual * a_fro;
      const double e_l1 = linalg::l1_norm(ws.e);
      stats.objective = misfit * misfit / (2.0 * mu) + lambda * e_l1;
      stats.rank = result.rank;
      stats.sparsity =
          static_cast<double>(linalg::l0_count(ws.e, 0.0)) /
          static_cast<double>(a.rows() * a.cols());
      stats.mu = mu;
      stats.step = std::sqrt(change) / std::max(std::sqrt(scale), 1.0);
      base.probe->on_iteration(stats);
    }
    if (std::sqrt(change) <=
        base.tolerance * std::max(std::sqrt(scale), 1.0)) {
      result.converged = true;
      break;
    }
  }

  // Debias exactly like stable PCP, then re-impose the band limit once:
  // the rank-r refit is taken from data that still contains the
  // high-frequency noise the constraint is meant to exclude.
  if (result.rank > 0) {
    linalg::sub(a, ws.e, ws.target);
    low_rank_step(ws.target, result.rank, base, ws, ws.d);
    if (tf_threshold > 0.0 && keep_rows < a.rows()) {
      tf_prox_step(ws.d, keep_rows, tf_threshold, ws);
    }
  }

  linalg::sub_sub(a, ws.d, ws.e, ws.residual);
  result.residual = linalg::frobenius_norm(ws.residual) / a_fro;
  result.low_rank.swap(ws.d);
  result.sparse.swap(ws.e);
  result.solve_seconds = clock.seconds();
}

}  // namespace netconst::rpca
