// Rank-1 constrained robust decomposition.
//
// The paper's problem statement constrains the TC-matrix to rank exactly
// one (all calibration rows share the same constant component). This
// solver enforces that directly by alternating
//   D <- best rank-1 approximation of (A - E)      (power iteration)
//   E <- soft-threshold of (A - D)                 (prox of lambda||.||_1)
// which is a projected block-coordinate descent on the nonconvex set
// {rank(D) <= 1}. It is cheap (no full SVD) and serves as the ablation
// for "nuclear-norm surrogate vs hard rank-1 constraint".
#pragma once

#include "rpca/rpca.hpp"

namespace netconst::rpca {

/// See rpca::solve with Solver::RankOne. `options.lambda` is the sparse
/// weight; the effective elementwise threshold is scaled by the mean
/// absolute value of `a` so that lambda is comparable across solvers.
Result solve_rank1(const linalg::Matrix& a, const Options& options);

/// Workspace variant (see solve_apg's workspace overload for the
/// conventions). Numerically identical to reference::solve_rank1.
void solve_rank1(const linalg::Matrix& a, const Options& options,
                 double lambda, SolverWorkspace& ws, Result& result);

/// Best rank-1 approximation sigma * u * v^T of `a` via power iteration.
/// Returns the approximation as a matrix.
linalg::Matrix rank1_approximation(const linalg::Matrix& a,
                                   int max_iterations = 200,
                                   double tolerance = 1e-12);

/// rank1_approximation into caller-owned output and power-iteration
/// scratch; numerically identical and allocation-free once `scratch` and
/// `out` carry capacity.
void rank1_approximation_into(const linalg::Matrix& a, Rank1Scratch& scratch,
                              linalg::Matrix& out, int max_iterations = 200,
                              double tolerance = 1e-12);

/// Rank-1 polish: refine `result`'s (D, E) in place by the solve_rank1
/// alternation (D <- rank-1 of A - E, E <- soft-threshold of A - D)
/// until the relative iterate change drops below `tolerance` or
/// `max_iterations` is hit. The alternation's fixed point depends only
/// on (A, lambda), not on the starting factors, as long as they lie in
/// its attraction basin — so two solves that agree to ~1% (e.g. a
/// warm-started and a cold APG run) polish to identical answers.
/// Updates low_rank/sparse/rank/residual and the polish_* diagnostics;
/// leaves iterations/converged/solver_residual describing the original
/// solve. `lambda` must be > 0 (each iteration is power-iteration
/// matvecs, far cheaper than the solvers' full SVDs).
void polish_rank1(const linalg::Matrix& a, Result& result, double lambda,
                  int max_iterations, double tolerance);

/// Workspace variant of the polish: the alternation's temporaries come
/// from `ws`, so the online refresh loop polishes without allocating.
void polish_rank1(const linalg::Matrix& a, Result& result, double lambda,
                  int max_iterations, double tolerance, SolverWorkspace& ws);

}  // namespace netconst::rpca
