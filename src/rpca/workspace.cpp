#include "rpca/workspace.hpp"

#include <algorithm>

namespace netconst::rpca {

void SolverWorkspace::reserve(std::size_t rows, std::size_t cols) {
  for (linalg::Matrix* p :
       {&d, &e, &d_prev, &e_prev, &residual, &gd, &ge, &y, &target}) {
    p->resize(rows, cols);
  }
  const std::size_t small = std::min(rows, cols);
  const std::size_t large = std::max(rows, cols);
  // Gram fast-path working set (engaged for wide inputs; harmless
  // over-reserve otherwise).
  svt.gram.resize(small, small);
  svt.eig_scratch.work.resize(small, small);
  svt.eig_scratch.rotations.resize(small, small);
  svt.eig_scratch.order.reserve(small);
  svt.eig_scratch.diagonal.reserve(small);
  svt.eig.eigenvalues.reserve(small);
  svt.eig.eigenvectors.resize(small, small);
  svt.singular_values.reserve(small);
  svt.shrunk.reserve(small);
  svt.v.resize(small, large);
  svt.u_kept.resize(small, small);
  spectral.x.reserve(small);
  spectral.y.reserve(small);
  spectral.t.reserve(large);
  rank1.u.reserve(rows);
  rank1.v.reserve(cols);
  rank1.w.reserve(cols);
  magnitudes.reserve(rows * cols);
  dct.basis.resize(rows, rows);
  dct.coeffs.resize(rows, cols);
}

void SolverWorkspace::reserve_randomized(std::size_t rows, std::size_t cols,
                                         const RandomizedSvdPolicy& policy) {
  randomized.scratch.reserve(rows, cols,
                             policy.max_rank + policy.oversampling);
}

void reset_result(Result& result) {
  result.iterations = 0;
  result.converged = false;
  result.rank = 0;
  result.residual = 0.0;
  result.solve_seconds = 0.0;
  result.warm_started = false;
  result.warm_start_ignored = false;
  result.final_mu = 0.0;
  result.mu_floor = 0.0;
  result.solver_residual = 0.0;
  result.polished = false;
  result.polish_iterations = 0;
  result.polish_converged = true;
}

}  // namespace netconst::rpca
