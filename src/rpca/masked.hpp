// Partial-observation (masked) front-end for the RPCA solvers.
//
// The solvers require fully observed data; on a degraded cloud some
// TP-matrix entries are missing (calibration probes timed out and the
// retries ran dry). Feeding NaN into a solver poisons every factor, so
// the masked path repairs holes *before* the solve by imputing each
// missing entry from the best available estimate of the constant:
//
//   1. the matching entry of the current rank-1 constant row (the
//      previous refresh's low-rank component) when one is supplied —
//      the model's own belief about the link, exactly what the entry
//      would decompose to if it had been observed clean;
//   2. else the mean of the observed entries in the same column (the
//      same link seen in other snapshots of the window);
//   3. else the global mean of all observed entries (a whole-window
//      outage of one link — the imputation is honest filler and the
//      entry will surface in E once real observations return).
//
// Because imputed entries equal (an estimate of) the constant, they
// carry ~zero sparse error and do not corrupt N_D; the documented
// recovery tolerance under masking is verified by tests/chaos.
#pragma once

#include <cstddef>

#include "linalg/matrix.hpp"

namespace netconst::rpca {

struct ImputeStats {
  std::size_t missing = 0;        // non-finite entries found
  std::size_t from_constant = 0;  // repaired from the constant row
  std::size_t from_column = 0;    // repaired from the column mean
  std::size_t from_global = 0;    // repaired from the global mean
  bool any() const { return missing > 0; }
};

/// Number of non-finite entries in `data`.
std::size_t count_missing(const linalg::Matrix& data);

/// Repair every non-finite entry of `data` in place using the priority
/// order documented above. `constant_row`, when non-null, must be a
/// 1 x data.cols() matrix (a rank-1 constant row); non-finite entries
/// of the constant row are skipped, falling through to the column mean.
/// A fully unobserved matrix degrades to zeros (stats.from_global
/// counts them against a 0.0 global mean).
ImputeStats impute_missing(linalg::Matrix& data,
                           const linalg::Matrix* constant_row = nullptr);

/// Relative Frobenius residual ||A - D - E||_F / ||A||_F restricted to
/// the observed (finite) entries of `a` — the reconstruction invariant
/// that must survive masking: the decomposition has to explain every
/// entry that was actually measured. Returns 0 when nothing is
/// observed or the observed part of `a` is exactly zero.
double masked_relative_residual(const linalg::Matrix& a,
                                const linalg::Matrix& d,
                                const linalg::Matrix& e);

}  // namespace netconst::rpca
