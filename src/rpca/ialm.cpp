#include "rpca/ialm.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/fused.hpp"
#include "linalg/norms.hpp"
#include "linalg/shrinkage.hpp"
#include "rpca/svd_path.hpp"
#include "rpca/workspace.hpp"
#include "support/error.hpp"
#include "support/stopwatch.hpp"

namespace netconst::rpca {

Result solve_ialm(const linalg::Matrix& a, const Options& options) {
  SolverWorkspace ws;
  Result result;
  solve_ialm(a, options, options.lambda, ws, result);
  return result;
}

void solve_ialm(const linalg::Matrix& a, const Options& options,
                double lambda, SolverWorkspace& ws, Result& result) {
  NETCONST_CHECK(lambda > 0.0, "IALM requires lambda > 0");
  const Stopwatch clock;
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  const double a_fro = linalg::frobenius_norm(a);
  NETCONST_CHECK(a_fro > 0.0, "IALM of an all-zero matrix is trivial");
  reset_result(result);
  ++ws.stats.solves;

  ++ws.stats.spectral_norm_evals;
  const double a_spec =
      std::max(linalg::spectral_norm(a, ws.spectral), 1e-300);
  // Multiplier initialization of the reference IALM implementation:
  // Y = A / max(||A||_2, ||A||_inf / lambda).
  const double dual_scale =
      std::max(a_spec, linalg::max_abs(a) / lambda);
  ws.y = a;
  ws.y *= 1.0 / dual_scale;

  double mu = 1.25 / a_spec;
  const double mu_max = mu * 1e7;
  const double rho = 1.5;

  ws.d.resize(m, n);
  ws.d.fill(0.0);
  ws.e.resize(m, n);
  ws.e.fill(0.0);

  for (int k = 0; k < options.max_iterations; ++k) {
    // D-step: SVT of A - E + Y/mu at threshold 1/mu.
    linalg::sub_add_scaled(a, ws.e, 1.0 / mu, ws.y, ws.target);
    const auto svt = svt_step(ws.target, 1.0 / mu, options, ws, ws.d);
    if (!svt.used_scratch) ++ws.stats.svt_fallbacks;
    result.rank = svt.rank;

    // E-step: soft threshold of A - D + Y/mu at lambda/mu.
    linalg::sub_add_scaled(a, ws.d, 1.0 / mu, ws.y, ws.target);
    linalg::soft_threshold_into(ws.target, lambda / mu, ws.e);

    // Multiplier update on the primal residual.
    linalg::sub_sub(a, ws.d, ws.e, ws.residual);
    linalg::add_scaled(mu, ws.residual, ws.y);
    mu = std::min(mu * rho, mu_max);
    result.iterations = k + 1;

    result.residual = linalg::frobenius_norm(ws.residual) / a_fro;
    if (result.residual <= options.tolerance) {
      result.converged = true;
      break;
    }
  }

  result.low_rank.swap(ws.d);
  result.sparse.swap(ws.e);
  result.solve_seconds = clock.seconds();
}

}  // namespace netconst::rpca
