#include "rpca/ialm.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/norms.hpp"
#include "linalg/shrinkage.hpp"
#include "support/error.hpp"
#include "support/stopwatch.hpp"

namespace netconst::rpca {

Result solve_ialm(const linalg::Matrix& a, const Options& options) {
  NETCONST_CHECK(options.lambda > 0.0, "IALM requires lambda > 0");
  const Stopwatch clock;
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  const double lambda = options.lambda;
  const double a_fro = linalg::frobenius_norm(a);
  NETCONST_CHECK(a_fro > 0.0, "IALM of an all-zero matrix is trivial");

  const double a_spec = std::max(linalg::spectral_norm(a), 1e-300);
  // Multiplier initialization of the reference IALM implementation:
  // Y = A / max(||A||_2, ||A||_inf / lambda).
  const double dual_scale =
      std::max(a_spec, linalg::max_abs(a) / lambda);
  linalg::Matrix y = a;
  y *= 1.0 / dual_scale;

  double mu = 1.25 / a_spec;
  const double mu_max = mu * 1e7;
  const double rho = 1.5;

  linalg::Matrix d(m, n);
  linalg::Matrix e(m, n);

  Result result;
  for (int k = 0; k < options.max_iterations; ++k) {
    // D-step: SVT of A - E + Y/mu at threshold 1/mu.
    linalg::Matrix target = a;
    target -= e;
    {
      linalg::Matrix yscaled = y;
      yscaled *= 1.0 / mu;
      target += yscaled;
    }
    const auto svt =
        linalg::singular_value_threshold(target, 1.0 / mu, options.svd);
    d = svt.value;
    result.rank = svt.rank;

    // E-step: soft threshold of A - D + Y/mu at lambda/mu.
    linalg::Matrix etarget = a;
    etarget -= d;
    {
      linalg::Matrix yscaled = y;
      yscaled *= 1.0 / mu;
      etarget += yscaled;
    }
    e = linalg::soft_threshold(etarget, lambda / mu);

    // Multiplier update on the primal residual.
    linalg::Matrix residual = a;
    residual -= d;
    residual -= e;
    {
      linalg::Matrix scaled = residual;
      scaled *= mu;
      y += scaled;
    }
    mu = std::min(mu * rho, mu_max);
    result.iterations = k + 1;

    result.residual = linalg::frobenius_norm(residual) / a_fro;
    if (result.residual <= options.tolerance) {
      result.converged = true;
      break;
    }
  }

  result.low_rank = std::move(d);
  result.sparse = std::move(e);
  result.solve_seconds = clock.seconds();
  return result;
}

}  // namespace netconst::rpca
