#include "rpca/rpca.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/norms.hpp"
#include "obs/trace.hpp"
#include "rpca/apg.hpp"
#include "rpca/ialm.hpp"
#include "rpca/rank1.hpp"
#include "rpca/stable_pcp.hpp"
#include "rpca/stable_pcp_tf.hpp"
#include "rpca/workspace.hpp"
#include "support/error.hpp"
#include "support/stopwatch.hpp"

namespace netconst::rpca {

std::string solver_name(Solver solver) {
  switch (solver) {
    case Solver::Apg:
      return "APG";
    case Solver::Ialm:
      return "IALM";
    case Solver::RankOne:
      return "Rank1";
    case Solver::StablePcp:
      return "StablePCP";
    case Solver::StablePcpTf:
      return "StablePCP-TF";
  }
  return "unknown";
}

double default_lambda(std::size_t rows, std::size_t cols) {
  NETCONST_CHECK(rows > 0 && cols > 0, "lambda of an empty matrix");
  return 1.0 / std::sqrt(static_cast<double>(std::max(rows, cols)));
}

Result solve(const linalg::Matrix& a, Solver solver,
             const Options& options) {
  SolverWorkspace workspace;
  Result result;
  solve(a, solver, options, workspace, result);
  return result;
}

namespace {

const char* solve_span_name(Solver solver) {
  switch (solver) {
    case Solver::Apg:
      return "rpca.solve.apg";
    case Solver::Ialm:
      return "rpca.solve.ialm";
    case Solver::RankOne:
      return "rpca.solve.rank1";
    case Solver::StablePcp:
      return "rpca.solve.stable_pcp";
    case Solver::StablePcpTf:
      return "rpca.solve.stable_pcp_tf";
  }
  return "rpca.solve";
}

}  // namespace

void solve(const linalg::Matrix& a, Solver solver, const Options& options,
           SolverWorkspace& workspace, Result& result) {
  NETCONST_CHECK(!a.empty(), "RPCA of an empty matrix");
  obs::Span solve_span(solve_span_name(solver));
  // Resolve the default lambda without copying Options (a copy would
  // duplicate any warm-start factors, defeating the workspace).
  const double lambda = options.lambda > 0.0
                            ? options.lambda
                            : default_lambda(a.rows(), a.cols());
  switch (solver) {
    case Solver::Apg:
      solve_apg(a, options, lambda, workspace, result);
      break;
    case Solver::Ialm:
      solve_ialm(a, options, lambda, workspace, result);
      break;
    case Solver::RankOne:
      solve_rank1(a, options, lambda, workspace, result);
      break;
    case Solver::StablePcp:
      solve_stable_pcp(a, options, lambda, /*noise_sigma=*/0.0, workspace,
                       result);
      break;
    case Solver::StablePcpTf:
      solve_stable_pcp_tf(a, options, lambda, /*noise_sigma=*/0.0,
                          kDefaultTfPassband, kDefaultTfWeight, workspace,
                          result);
      break;
    default:
      throw Error("unknown RPCA solver");
  }
  // A supplied seed must never be dropped silently: solvers without
  // warm-start support report the cold solve through the diagnostics.
  if (!options.warm_start.empty() && !result.warm_started) {
    result.warm_start_ignored = true;
  }
  result.solver_residual = result.residual;
  if (options.polish_iterations > 0) {
    obs::Span polish_span("rpca.polish");
    const Stopwatch polish_clock;
    polish_rank1(a, result, lambda, options.polish_iterations,
                 options.polish_tolerance, workspace);
    result.solve_seconds += polish_clock.seconds();
    polish_span.set_value(result.polish_iterations);
  }
  solve_span.set_value(result.iterations);
}

double relative_l0(const linalg::Matrix& e, const linalg::Matrix& a,
                   double rel_tol) {
  NETCONST_CHECK(e.same_shape(a), "relative_l0 shape mismatch");
  const double cutoff = rel_tol * linalg::max_abs(a);
  const auto e_count = linalg::l0_count(e, cutoff);
  const auto a_count = linalg::l0_count(a, cutoff);
  if (a_count == 0) return 0.0;
  const double ratio =
      static_cast<double>(e_count) / static_cast<double>(a_count);
  return std::clamp(ratio, 0.0, 1.0);
}

}  // namespace netconst::rpca
