#include "rpca/rpca.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/norms.hpp"
#include "rpca/apg.hpp"
#include "rpca/ialm.hpp"
#include "rpca/rank1.hpp"
#include "rpca/stable_pcp.hpp"
#include "support/error.hpp"
#include "support/stopwatch.hpp"

namespace netconst::rpca {

std::string solver_name(Solver solver) {
  switch (solver) {
    case Solver::Apg:
      return "APG";
    case Solver::Ialm:
      return "IALM";
    case Solver::RankOne:
      return "Rank1";
    case Solver::StablePcp:
      return "StablePCP";
  }
  return "unknown";
}

double default_lambda(std::size_t rows, std::size_t cols) {
  NETCONST_CHECK(rows > 0 && cols > 0, "lambda of an empty matrix");
  return 1.0 / std::sqrt(static_cast<double>(std::max(rows, cols)));
}

Result solve(const linalg::Matrix& a, Solver solver,
             const Options& options) {
  NETCONST_CHECK(!a.empty(), "RPCA of an empty matrix");
  Options opts = options;
  if (opts.lambda <= 0.0) opts.lambda = default_lambda(a.rows(), a.cols());
  auto dispatch = [&]() -> Result {
    switch (solver) {
      case Solver::Apg:
        return solve_apg(a, opts);
      case Solver::Ialm:
        return solve_ialm(a, opts);
      case Solver::RankOne:
        return solve_rank1(a, opts);
      case Solver::StablePcp: {
        StablePcpOptions stable;
        stable.base = opts;
        return solve_stable_pcp(a, stable);
      }
    }
    throw Error("unknown RPCA solver");
  };
  Result result = dispatch();
  // A supplied seed must never be dropped silently: solvers without
  // warm-start support report the cold solve through the diagnostics.
  if (!opts.warm_start.empty() && !result.warm_started) {
    result.warm_start_ignored = true;
  }
  result.solver_residual = result.residual;
  if (opts.polish_iterations > 0) {
    const Stopwatch polish_clock;
    polish_rank1(a, result, opts.lambda, opts.polish_iterations,
                 opts.polish_tolerance);
    result.solve_seconds += polish_clock.seconds();
  }
  return result;
}

double relative_l0(const linalg::Matrix& e, const linalg::Matrix& a,
                   double rel_tol) {
  NETCONST_CHECK(e.same_shape(a), "relative_l0 shape mismatch");
  const double cutoff = rel_tol * linalg::max_abs(a);
  const auto e_count = linalg::l0_count(e, cutoff);
  const auto a_count = linalg::l0_count(a, cutoff);
  if (a_count == 0) return 0.0;
  const double ratio =
      static_cast<double>(e_count) / static_cast<double>(a_count);
  return std::clamp(ratio, 0.0, 1.0);
}

}  // namespace netconst::rpca
