// Frozen pre-workspace solver implementations.
//
// These are the original allocation-per-expression RPCA solvers, kept
// verbatim for two jobs:
//
//  * equivalence testing — the workspace solvers in apg/ialm/rank1/
//    stable_pcp must reproduce these bit for bit (the fused kernels and
//    scratch SVD paths preserve floating-point operation order; see
//    tests/rpca/workspace_equivalence_test.cpp);
//  * the perf baseline — bench/perf_regression.cpp reports workspace
//    speedup against exactly this code, so the comparison cannot drift
//    as the production solvers evolve.
//
// Do not "optimize" anything in reference.cpp; its slowness is the point.
#pragma once

#include "rpca/rpca.hpp"
#include "rpca/stable_pcp.hpp"
#include "rpca/stable_pcp_tf.hpp"

namespace netconst::rpca::reference {

/// Replica of the original rpca::solve dispatch, including default
/// lambda, warm-start bookkeeping, and the allocating rank-1 polish.
Result solve(const linalg::Matrix& a, Solver solver,
             const Options& options = {});

Result solve_apg(const linalg::Matrix& a, const Options& options);
Result solve_ialm(const linalg::Matrix& a, const Options& options);
Result solve_rank1(const linalg::Matrix& a, const Options& options);
Result solve_stable_pcp(const linalg::Matrix& a,
                        const StablePcpOptions& options = {});
// The TF-constrained variant's transform kernels (basis build, panel
// products, coefficient shrink) are sequential scalar loops shared with
// the production solver — sharing them is what makes the equivalence
// structural rather than a rewrite that has to be re-validated.
Result solve_stable_pcp_tf(const linalg::Matrix& a,
                           const StablePcpTfOptions& options = {});

}  // namespace netconst::rpca::reference
