#include "rpca/masked.hpp"

#include <cmath>
#include <vector>

#include "support/error.hpp"

namespace netconst::rpca {

std::size_t count_missing(const linalg::Matrix& data) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < data.rows(); ++i) {
    for (std::size_t j = 0; j < data.cols(); ++j) {
      if (!std::isfinite(data(i, j))) ++count;
    }
  }
  return count;
}

ImputeStats impute_missing(linalg::Matrix& data,
                           const linalg::Matrix* constant_row) {
  if (constant_row != nullptr) {
    NETCONST_CHECK(constant_row->rows() == 1 &&
                       constant_row->cols() == data.cols(),
                   "constant row must be 1 x data.cols()");
  }
  ImputeStats stats;
  const std::size_t rows = data.rows();
  const std::size_t cols = data.cols();

  // One pass for the observed column means and the global mean.
  std::vector<double> column_sum(cols, 0.0);
  std::vector<std::size_t> column_count(cols, 0);
  double global_sum = 0.0;
  std::size_t global_count = 0;
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      const double v = data(i, j);
      if (std::isfinite(v)) {
        column_sum[j] += v;
        ++column_count[j];
        global_sum += v;
        ++global_count;
      } else {
        ++stats.missing;
      }
    }
  }
  if (stats.missing == 0) return stats;
  const double global_mean =
      global_count == 0 ? 0.0
                        : global_sum / static_cast<double>(global_count);

  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      if (std::isfinite(data(i, j))) continue;
      if (constant_row != nullptr &&
          std::isfinite((*constant_row)(0, j))) {
        data(i, j) = (*constant_row)(0, j);
        ++stats.from_constant;
      } else if (column_count[j] > 0) {
        data(i, j) =
            column_sum[j] / static_cast<double>(column_count[j]);
        ++stats.from_column;
      } else {
        data(i, j) = global_mean;
        ++stats.from_global;
      }
    }
  }
  return stats;
}

double masked_relative_residual(const linalg::Matrix& a,
                                const linalg::Matrix& d,
                                const linalg::Matrix& e) {
  NETCONST_CHECK(a.same_shape(d) && a.same_shape(e),
                 "masked residual shape mismatch");
  double residual_sq = 0.0;
  double observed_sq = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      const double v = a(i, j);
      if (!std::isfinite(v)) continue;
      const double r = v - d(i, j) - e(i, j);
      residual_sq += r * r;
      observed_sq += v * v;
    }
  }
  if (observed_sq == 0.0) return 0.0;
  return std::sqrt(residual_sq) / std::sqrt(observed_sq);
}

}  // namespace netconst::rpca
