#include "rpca/incremental.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/norms.hpp"
#include "support/error.hpp"

namespace netconst::rpca {
namespace {

constexpr double kTiny = 1e-30;

double row_abs_sum(const double* row, std::size_t n) {
  double sum = 0.0;
  for (std::size_t j = 0; j < n; ++j) sum += std::abs(row[j]);
  return sum;
}

std::size_t row_l0(const double* row, std::size_t n, double cutoff) {
  std::size_t count = 0;
  for (std::size_t j = 0; j < n; ++j) {
    if (std::abs(row[j]) > cutoff) ++count;
  }
  return count;
}

double soft(double x, double tau) {
  if (x > tau) return x - tau;
  if (x < -tau) return x + tau;
  return 0.0;
}

}  // namespace

void IncrementalTracker::reset() {
  ready_ = false;
  updates_ = 0;
  lambda_ = 0.0;
  cutoff_ = 0.0;
  anchor_mu_ = 0.0;
  anchor_mu_floor_ = 0.0;
  drift_ = DriftStats{};
}

void IncrementalTracker::anchor(const linalg::Matrix& data, const Result& full,
                                double l0_rel_tolerance) {
  NETCONST_CHECK(!data.empty(), "incremental anchor on an empty window");
  NETCONST_CHECK(full.low_rank.same_shape(data) &&
                     full.sparse.same_shape(data),
                 "incremental anchor: result/window shape mismatch");
  const std::size_t m = data.rows();
  const std::size_t n = data.cols();

  reset();
  lambda_ =
      options_.lambda > 0.0 ? options_.lambda : default_lambda(m, n);

  // Frozen direction: the column-mean row of the solved constant
  // component (same reduction core/constant_finder uses), normalized.
  q_.resize(1, n);
  double* q = q_.row(0).data();
  const double inv_m = 1.0 / static_cast<double>(m);
  for (std::size_t j = 0; j < n; ++j) q[j] = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    const double* d = full.low_rank.row(i).data();
    for (std::size_t j = 0; j < n; ++j) q[j] += d[j];
  }
  double norm2 = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    q[j] *= inv_m;
    norm2 += q[j] * q[j];
  }
  const double norm = std::sqrt(norm2);
  if (!(norm > 0.0)) return;  // zero constant: nothing to track
  const double inv_norm = 1.0 / norm;
  for (std::size_t j = 0; j < n; ++j) q[j] *= inv_norm;

  e_ = full.sparse;
  c_.resize(m);
  row_l1_.resize(m);
  row_l0_e_.resize(m);
  row_l0_a_.resize(m);

  cutoff_ = l0_rel_tolerance * linalg::max_abs(data);
  double support = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    const double* d = full.low_rank.row(i).data();
    double c = 0.0;
    for (std::size_t j = 0; j < n; ++j) c += d[j] * q[j];
    c_[i] = c;
    const double* a = data.row(i).data();
    row_l1_[i] = row_abs_sum(a, n);
    row_l0_a_[i] = row_l0(a, n, cutoff_);
    row_l0_e_[i] = row_l0(e_.row(i).data(), n, cutoff_);
    support += static_cast<double>(row_l0_e_[i]);
  }
  // EWMA baseline: the anchor's own mean per-row E support, so the
  // smoothed statistic starts at the window's genuine sparsity level
  // instead of ramping from zero.
  drift_.ewma =
      support / (static_cast<double>(m) * static_cast<double>(n));
  anchor_mu_ = full.final_mu;
  anchor_mu_floor_ = full.mu_floor;
  ready_ = true;
}

DriftStats IncrementalTracker::update(const linalg::Matrix& data,
                                      std::size_t slot) {
  NETCONST_CHECK(ready_, "incremental update before anchor");
  NETCONST_CHECK(data.same_shape(e_),
                 "incremental update: window shape changed");
  NETCONST_CHECK(slot < data.rows(), "incremental update: slot out of range");
  const std::size_t n = data.cols();
  const double* a = data.row(slot).data();
  const double* q = q_.row(0).data();
  double* e = e_.row(slot).data();

  // tau tracks the *current* window: refresh the replaced row's l1 sum
  // before deriving lambda * mean|A| from the cached per-row sums.
  row_l1_[slot] = row_abs_sum(a, n);
  double l1 = 0.0;
  for (const double v : row_l1_) l1 += v;
  const double tau =
      lambda_ * l1 /
      (static_cast<double>(data.rows()) * static_cast<double>(n));

  // Alternate the two exact single-row prox steps from a clean slate
  // (stale E from the evicted row must not bias the fit).
  for (std::size_t j = 0; j < n; ++j) e[j] = 0.0;
  double c = 0.0;
  const int sweeps = std::max(options_.update_sweeps, 1);
  for (int s = 0; s < sweeps; ++s) {
    c = 0.0;
    for (std::size_t j = 0; j < n; ++j) c += (a[j] - e[j]) * q[j];
    for (std::size_t j = 0; j < n; ++j) e[j] = soft(a[j] - c * q[j], tau);
  }
  c_[slot] = c;

  row_l0_a_[slot] = row_l0(a, n, cutoff_);
  row_l0_e_[slot] = row_l0(e, n, cutoff_);

  // Drift: the fraction of this row the frozen subspace pushed into E
  // (support at the prox's own threshold — entries are exactly zero or
  // shrunk), plus the advisory sub-threshold residual ratio.
  std::size_t unexplained = 0;
  double res2 = 0.0;
  double a2 = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    if (e[j] != 0.0) ++unexplained;
    const double r = a[j] - c * q[j] - e[j];
    res2 += r * r;
    a2 += a[j] * a[j];
  }
  drift_.instant =
      static_cast<double>(unexplained) / static_cast<double>(n);
  drift_.ewma = options_.ewma_alpha * drift_.instant +
                (1.0 - options_.ewma_alpha) * drift_.ewma;
  drift_.novelty = std::sqrt(res2 / std::max(a2, kTiny));
  drift_.breach = drift_.instant > options_.drift_threshold ||
                  drift_.ewma > options_.ewma_threshold;
  ++updates_;
  return drift_;
}

void IncrementalTracker::materialize_low_rank(linalg::Matrix& out) const {
  NETCONST_CHECK(ready_, "materialize_low_rank before anchor");
  const std::size_t m = e_.rows();
  const std::size_t n = e_.cols();
  out.resize(m, n);
  const double* q = q_.row(0).data();
  for (std::size_t i = 0; i < m; ++i) {
    double* row = out.row(i).data();
    const double c = c_[i];
    for (std::size_t j = 0; j < n; ++j) row[j] = c * q[j];
  }
}

void IncrementalTracker::constant_row_into(linalg::Matrix& out) const {
  NETCONST_CHECK(ready_, "constant_row_into before anchor");
  const std::size_t n = e_.cols();
  out.resize(1, n);
  double mean_c = 0.0;
  for (const double c : c_) mean_c += c;
  mean_c /= static_cast<double>(c_.size());
  double* row = out.row(0).data();
  const double* q = q_.row(0).data();
  for (std::size_t j = 0; j < n; ++j) row[j] = mean_c * q[j];
}

double IncrementalTracker::error_norm() const {
  NETCONST_CHECK(ready_, "error_norm before anchor");
  std::size_t e_count = 0;
  std::size_t a_count = 0;
  for (std::size_t i = 0; i < row_l0_e_.size(); ++i) {
    e_count += row_l0_e_[i];
    a_count += row_l0_a_[i];
  }
  if (a_count == 0) return 0.0;
  const double ratio =
      static_cast<double>(e_count) / static_cast<double>(a_count);
  return std::clamp(ratio, 0.0, 1.0);
}

void IncrementalTracker::seed_warm_start(WarmStart& seed) const {
  NETCONST_CHECK(ready_, "seed_warm_start before anchor");
  materialize_low_rank(seed.low_rank);
  seed.sparse = e_;
  seed.mu = anchor_mu_;
  seed.mu_floor = anchor_mu_floor_;
}

}  // namespace netconst::rpca
