#include "rpca/apg.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/fused.hpp"
#include "linalg/norms.hpp"
#include "linalg/shrinkage.hpp"
#include "obs/convergence.hpp"
#include "obs/trace.hpp"
#include "rpca/svd_path.hpp"
#include "rpca/workspace.hpp"
#include "support/error.hpp"
#include "support/stopwatch.hpp"

namespace netconst::rpca {

Result solve_apg(const linalg::Matrix& a, const Options& options) {
  SolverWorkspace ws;
  Result result;
  solve_apg(a, options, options.lambda, ws, result);
  return result;
}

void solve_apg(const linalg::Matrix& a, const Options& options,
               double lambda, SolverWorkspace& ws, Result& result) {
  NETCONST_CHECK(lambda > 0.0, "APG requires lambda > 0");
  const Stopwatch clock;
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  const double a_norm = linalg::frobenius_norm(a);
  NETCONST_CHECK(a_norm > 0.0, "APG of an all-zero matrix is trivial");

  const WarmStart& seed = options.warm_start;
  const bool warm = !seed.empty();
  if (warm) {
    NETCONST_CHECK(seed.low_rank.rows() == m && seed.low_rank.cols() == n &&
                       seed.sparse.rows() == m && seed.sparse.cols() == n,
                   "warm-start seed shape does not match the data");
  }
  reset_result(result);
  ++ws.stats.solves;

  // Continuation schedule: mu starts near the spectral norm and decays to
  // mu_bar. A warm seed carrying its continuation value resumes there; a
  // seed without a floor gets the same 1e-9 ratio applied to the carried
  // mu, so a resumed solve never pays for a spectral-norm estimate whose
  // result it would discard.
  double mu, mu_bar;
  if (warm && seed.mu > 0.0) {
    mu_bar = seed.mu_floor > 0.0 ? seed.mu_floor : 1e-9 * seed.mu;
    mu = std::max(seed.mu, mu_bar);
  } else {
    ++ws.stats.spectral_norm_evals;
    mu = 0.99 * linalg::spectral_norm(a, ws.spectral);
    if (mu <= 0.0) mu = 1.0;
    mu_bar = 1e-9 * mu;
  }
  const double eta = 0.9;
  // Lipschitz constant of the smooth part's gradient is 2 (two blocks).
  const double inv_lf = 0.5;

  if (warm) {
    ws.d = seed.low_rank;
    ws.e = seed.sparse;
  } else {
    ws.d.resize(m, n);
    ws.d.fill(0.0);
    ws.e.resize(m, n);
    ws.e.fill(0.0);
  }
  ws.d_prev = ws.d;
  ws.e_prev = ws.e;
  double t = 1.0, t_prev = 1.0;

  result.warm_started = warm;
  for (int k = 0; k < options.max_iterations; ++k) {
    obs::Span iteration_span("rpca.apg.iteration");
    const double momentum = (t_prev - 1.0) / t;
    // Extrapolated points Y_D, Y_E, the shared residual Y_D + Y_E - A of
    // the smooth term, both proximal gradient steps, and the sparse
    // block's soft-threshold prox, all in one pass: ws.ge receives the
    // next E iterate directly.
    linalg::gradient_step(ws.d, ws.d_prev, ws.e, ws.e_prev, a, momentum,
                          inv_lf, lambda * mu * inv_lf, ws.gd, ws.ge);

    ws.d.swap(ws.d_prev);
    ws.e.swap(ws.e_prev);
    ws.e.swap(ws.ge);
    const auto svt = svt_step(ws.gd, mu * inv_lf, options, ws, ws.d);
    if (!svt.used_scratch) ++ws.stats.svt_fallbacks;
    result.rank = svt.rank;

    t_prev = t;
    t = 0.5 * (1.0 + std::sqrt(4.0 * t * t + 1.0));
    mu = std::max(eta * mu, mu_bar);
    result.iterations = k + 1;

    // Convergence: relative change of the stacked iterate (D, E).
    double change = 0.0, scale = 0.0;
    linalg::iterate_change_norms(ws.d, ws.d_prev, ws.e, ws.e_prev, change,
                                 scale);
    iteration_span.set_value(static_cast<double>(k + 1));
    if (options.probe != nullptr) {
      // Read-only diagnostics of the live iterates; ws.residual is
      // scratch here (it is recomputed from the final iterates after
      // the loop), so probing never perturbs the solve.
      obs::IterationStats stats;
      stats.iteration = k + 1;
      linalg::sub_sub(a, ws.d, ws.e, ws.residual);
      stats.residual = linalg::frobenius_norm(ws.residual) / a_norm;
      const double misfit = stats.residual * a_norm;
      const double e_l1 = linalg::l1_norm(ws.e);
      stats.objective = misfit * misfit / (2.0 * mu) + lambda * e_l1;
      stats.rank = result.rank;
      stats.sparsity = static_cast<double>(linalg::l0_count(ws.e, 0.0)) /
                       static_cast<double>(m * n);
      stats.mu = mu;
      stats.step = std::sqrt(change) / std::max(std::sqrt(scale), 1.0);
      options.probe->on_iteration(stats);
    }
    if (std::sqrt(change) <=
        options.tolerance * std::max(std::sqrt(scale), 1.0)) {
      result.converged = true;
      break;
    }
  }

  linalg::sub_sub(a, ws.d, ws.e, ws.residual);
  result.residual = linalg::frobenius_norm(ws.residual) / a_norm;
  result.low_rank.swap(ws.d);
  result.sparse.swap(ws.e);
  result.final_mu = mu;
  result.mu_floor = mu_bar;
  result.solve_seconds = clock.seconds();
}

}  // namespace netconst::rpca
