#include "rpca/apg.hpp"

#include <cmath>

#include "linalg/blas.hpp"
#include "linalg/norms.hpp"
#include "linalg/shrinkage.hpp"
#include "support/error.hpp"
#include "support/stopwatch.hpp"

namespace netconst::rpca {

Result solve_apg(const linalg::Matrix& a, const Options& options) {
  NETCONST_CHECK(options.lambda > 0.0, "APG requires lambda > 0");
  const Stopwatch clock;
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  const double lambda = options.lambda;
  const double a_norm = linalg::frobenius_norm(a);
  NETCONST_CHECK(a_norm > 0.0, "APG of an all-zero matrix is trivial");

  const WarmStart& seed = options.warm_start;
  const bool warm = !seed.empty();
  if (warm) {
    NETCONST_CHECK(seed.low_rank.rows() == m && seed.low_rank.cols() == n &&
                       seed.sparse.rows() == m && seed.sparse.cols() == n,
                   "warm-start seed shape does not match the data");
  }

  // Continuation schedule: mu starts near the spectral norm and decays to
  // mu_bar (values follow the reference APG implementation). A warm start
  // resumes the previous solve's continuation state, skipping both the
  // spectral-norm estimate and the decay phase.
  double mu, mu_bar;
  if (warm && seed.mu > 0.0 && seed.mu_floor > 0.0) {
    mu_bar = seed.mu_floor;
    mu = std::max(seed.mu, mu_bar);
  } else {
    mu = 0.99 * linalg::spectral_norm(a);
    if (mu <= 0.0) mu = 1.0;
    mu_bar = 1e-9 * mu;
  }
  const double eta = 0.9;
  // Lipschitz constant of the smooth part's gradient is 2 (two blocks).
  const double inv_lf = 0.5;

  linalg::Matrix d = warm ? seed.low_rank : linalg::Matrix(m, n);
  linalg::Matrix e = warm ? seed.sparse : linalg::Matrix(m, n);
  linalg::Matrix d_prev = d;
  linalg::Matrix e_prev = e;
  double t = 1.0, t_prev = 1.0;

  Result result;
  result.warm_started = warm;
  for (int k = 0; k < options.max_iterations; ++k) {
    const double momentum = (t_prev - 1.0) / t;
    // Extrapolated points Y_D, Y_E.
    linalg::Matrix yd = d;
    {
      linalg::Matrix diff = d;
      diff -= d_prev;
      diff *= momentum;
      yd += diff;
    }
    linalg::Matrix ye = e;
    {
      linalg::Matrix diff = e;
      diff -= e_prev;
      diff *= momentum;
      ye += diff;
    }

    // Shared residual Y_D + Y_E - A of the smooth term.
    linalg::Matrix residual = yd;
    residual += ye;
    residual -= a;

    // Proximal gradient steps on each block.
    linalg::Matrix gd = yd;
    {
      linalg::Matrix step = residual;
      step *= inv_lf;
      gd -= step;
    }
    linalg::Matrix ge = ye;
    {
      linalg::Matrix step = residual;
      step *= inv_lf;
      ge -= step;
    }

    d_prev = std::move(d);
    e_prev = std::move(e);
    const auto svt =
        linalg::singular_value_threshold(gd, mu * inv_lf, options.svd);
    d = svt.value;
    result.rank = svt.rank;
    e = linalg::soft_threshold(ge, lambda * mu * inv_lf);

    t_prev = t;
    t = 0.5 * (1.0 + std::sqrt(4.0 * t * t + 1.0));
    mu = std::max(eta * mu, mu_bar);
    result.iterations = k + 1;

    // Convergence: relative change of the stacked iterate (D, E).
    double change = 0.0, scale = 0.0;
    for (std::size_t idx = 0; idx < d.data().size(); ++idx) {
      const double dd = d.data()[idx] - d_prev.data()[idx];
      const double de = e.data()[idx] - e_prev.data()[idx];
      change += dd * dd + de * de;
      scale += d.data()[idx] * d.data()[idx] +
               e.data()[idx] * e.data()[idx];
    }
    if (std::sqrt(change) <=
        options.tolerance * std::max(std::sqrt(scale), 1.0)) {
      result.converged = true;
      break;
    }
  }

  {
    linalg::Matrix res = a;
    res -= d;
    res -= e;
    result.residual = linalg::frobenius_norm(res) / a_norm;
  }
  result.low_rank = std::move(d);
  result.sparse = std::move(e);
  result.final_mu = mu;
  result.mu_floor = mu_bar;
  result.solve_seconds = clock.seconds();
  return result;
}

}  // namespace netconst::rpca
