// Synthetic low-rank + sparse problem generation and recovery metrics,
// used by the RPCA property tests and the solver-ablation bench.
#pragma once

#include <cstddef>

#include "linalg/matrix.hpp"
#include "support/rng.hpp"

namespace netconst::rpca {

/// A generated A = D* + E* instance with ground truth.
struct SyntheticProblem {
  linalg::Matrix data;       // A
  linalg::Matrix low_rank;   // D* (exact rank `rank`)
  linalg::Matrix sparse;     // E* (exact support fraction `sparsity`)
};

struct SyntheticSpec {
  std::size_t rows = 40;
  std::size_t cols = 40;
  std::size_t rank = 2;
  double sparsity = 0.05;          // fraction of corrupted entries
  double low_rank_scale = 1.0;     // stddev of the rank factors
  double sparse_magnitude = 5.0;   // |E*| entries uniform in +-magnitude
};

/// Generate a random instance. Deterministic given `rng` state.
SyntheticProblem make_synthetic(const SyntheticSpec& spec, Rng& rng);

/// Recovery quality of an estimate against the ground truth.
struct RecoveryError {
  double low_rank_error = 0.0;  // ||D - D*||_F / ||D*||_F
  double sparse_error = 0.0;    // ||E - E*||_F / max(||E*||_F, 1)
  double support_f1 = 0.0;      // F1 of the recovered sparse support
};

RecoveryError measure_recovery(const SyntheticProblem& truth,
                               const linalg::Matrix& low_rank,
                               const linalg::Matrix& sparse,
                               double support_tol = 1e-3);

}  // namespace netconst::rpca
