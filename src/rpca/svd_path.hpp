// SVT-step dispatch for the batch solvers: one entry point that routes
// each proximal step either through the exact decomposition
// (linalg::singular_value_threshold_into — Gram fast path or the
// allocating Jacobi SVD) or through the verified randomized sketch
// (linalg::randomized_svt_into) according to Options::randomized.
//
// The randomized route is rank-adaptive (the target rank follows the
// rank the previous step kept, +1 headroom), grows the sketch once
// in-call on a reject, and falls back to the exact path when the
// truncation-error bound still trips — so enabling the policy can never
// change what a solve converges to beyond the documented inexact-prox
// budget. All sketches draw from the workspace's seeded stream:
// identical call sequences reproduce bit-identically across thread
// counts and SIMD levels (see linalg/randomized_svd.hpp).
#pragma once

#include "linalg/shrinkage.hpp"
#include "rpca/rpca.hpp"
#include "rpca/workspace.hpp"

namespace netconst::rpca {

/// One SVT proximal step out = D_tau(a), dispatched per the options'
/// randomized policy. Semantics and diagnostics match
/// linalg::singular_value_threshold_into; used_scratch is true whenever
/// the step ran allocation-free (Gram fast path or accepted sketch).
linalg::SvtInfo svt_step(const linalg::Matrix& a, double tau,
                         const Options& options, SolverWorkspace& ws,
                         linalg::Matrix& out);

/// Best rank-k cut of `a` into `out` (stable PCP's debias step) through
/// the same dispatch.
void low_rank_step(const linalg::Matrix& a, std::size_t k,
                   const Options& options, SolverWorkspace& ws,
                   linalg::Matrix& out);

}  // namespace netconst::rpca
