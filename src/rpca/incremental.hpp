// Incremental subspace tracking for the streaming refresh hot path.
//
// The paper's central observation is that the constant component of a
// TP-matrix window moves slowly: consecutive windows differ by one
// replaced row (ring-buffer slide), and between placement changes the
// constant subspace of that row is the same rank-1 direction the last
// full solve found. An IncrementalTracker exploits this: it freezes the
// unit constant direction q at the last accepted full solve (the
// *anchor*) and, per slide, re-fits only the replaced row's coefficient
// and sparse part by alternating the two exact single-row prox steps
//
//   c_r   = <a_r - e_r, q>
//   e_r   = soft_threshold(a_r - c_r * q, tau),   tau = lambda * mean|A|
//
// which is precisely rank1.cpp's polish restricted to one row with the
// basis held fixed — O(n) per slide instead of a full O(iters * m * n)
// re-solve. tau tracks the *current* window exactly through cached
// per-row l1 sums.
//
// Validity is watched by a drift statistic: the fraction of the replaced
// row the frozen subspace cannot explain (the support fraction of its
// sparse part — a per-row Norm(N_E) at threshold tau). Sparse outliers
// keep it near the window's sparsity; a placement change makes it jump
// because the row's new constant lands wholesale in E. On breach the
// caller runs a warm full solve seeded from the tracker
// (seed_warm_start) and re-anchors — so the fallback path reuses the
// exact machinery whose bit-exactness is pinned against
// rpca::reference.
//
// Determinism: every update is sequential scalar arithmetic in fixed
// order — no parallelism, no SIMD-variant kernels — so tracked state is
// bit-identical across thread counts and SIMD levels. After anchor()
// has seen a shape, update() performs zero heap allocations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "linalg/matrix.hpp"
#include "rpca/rpca.hpp"

namespace netconst::rpca {

struct IncrementalOptions {
  /// Sparsity weight for the row prox; <= 0 selects
  /// default_lambda(rows, cols), matching the full solvers.
  double lambda = 0.0;
  /// Alternation sweeps per replaced row. The row subproblem is a
  /// 2-block coordinate descent that contracts geometrically; 3 sweeps
  /// land within soft-threshold resolution of its fixed point.
  int update_sweeps = 3;
  /// Breach when the replaced row's unexplained fraction exceeds this.
  /// Window sparsity (~5% synthetic, less on real traces) sets the
  /// baseline; 0.30 means "most of this row is new structure".
  double drift_threshold = 0.30;
  /// EWMA smoothing of the same statistic, and its breach threshold —
  /// catches gradual drift that never trips the instantaneous bound.
  double ewma_alpha = 0.2;
  double ewma_threshold = 0.15;
};

/// Drift report for one update. `instant` is the replaced row's
/// unexplained fraction (support of its sparse part / n); `ewma` its
/// smoothed history seeded from the anchor's own E support; `novelty`
/// the sub-threshold orthogonal residual ratio ||a - cq - e|| / ||a||
/// (advisory — bounded by tau*sqrt(n) on clean data and not part of the
/// breach decision).
struct DriftStats {
  double instant = 0.0;
  double ewma = 0.0;
  double novelty = 0.0;
  bool breach = false;
};

class IncrementalTracker {
 public:
  IncrementalTracker() = default;
  explicit IncrementalTracker(const IncrementalOptions& options)
      : options_(options) {}

  const IncrementalOptions& options() const { return options_; }

  /// True once anchored on a window with a nonzero constant direction.
  bool ready() const { return ready_; }

  /// Adopt an accepted full solve of `data` as the new anchor: freeze
  /// the unit constant direction from `full.low_rank`'s column means,
  /// project per-row coefficients, copy E, and cache the per-row stats
  /// (l1 sums, l0 counts at cutoff = l0_rel_tolerance * max|data|,
  /// frozen until the next anchor). A zero low-rank component leaves
  /// the tracker not ready (nothing to track).
  void anchor(const linalg::Matrix& data, const Result& full,
              double l0_rel_tolerance);

  /// Row `slot` of `data` was replaced since the last anchor/update;
  /// re-fit its coefficient and sparse part against the frozen basis
  /// and report drift. Requires ready() and the anchored shape.
  DriftStats update(const linalg::Matrix& data, std::size_t slot);

  const DriftStats& drift() const { return drift_; }
  std::uint64_t updates() const { return updates_; }

  /// Tracked sparse component (m x n, maintained in place).
  const linalg::Matrix& sparse() const { return e_; }
  /// Tracked rank (1 once ready — the tracker follows one direction).
  std::size_t rank() const { return ready_ ? 1 : 0; }
  /// Materialize the tracked low-rank component D = c (outer) q.
  void materialize_low_rank(linalg::Matrix& out) const;
  /// 1 x n constant row mean(c) * q — the tracker's equivalent of
  /// constant_row(low_rank, 1).
  void constant_row_into(linalg::Matrix& out) const;
  /// Norm(N_E) equivalent from the cached counts: l0(E)/l0(A) at the
  /// anchor-frozen cutoff, clamped to [0, 1] like relative_l0. Exact at
  /// every anchor; between anchors the cutoff lags max|A| by design
  /// (recounting A at a moving cutoff would cost O(m n) per slide).
  double error_norm() const;

  /// Seed a warm full solve from the tracked state: D = c (outer) q,
  /// E as tracked, and the anchor solve's continuation state so APG
  /// resumes where the anchor left off.
  void seed_warm_start(WarmStart& seed) const;

  void reset();

 private:
  IncrementalOptions options_;
  bool ready_ = false;
  std::uint64_t updates_ = 0;
  double lambda_ = 0.0;
  double cutoff_ = 0.0;        // frozen l0 cutoff from the anchor
  double anchor_mu_ = 0.0;     // anchor solve's continuation state
  double anchor_mu_floor_ = 0.0;
  linalg::Matrix q_;           // 1 x n unit constant direction
  linalg::Matrix e_;           // m x n tracked sparse component
  std::vector<double> c_;      // m coefficients onto q
  std::vector<double> row_l1_;           // per-row sum|a_ij| (tau upkeep)
  std::vector<std::size_t> row_l0_e_;    // per-row l0(E) at cutoff_
  std::vector<std::size_t> row_l0_a_;    // per-row l0(A) at cutoff_
  DriftStats drift_;
};

}  // namespace netconst::rpca
