// Time-frequency constrained stable PCP (Hu, Wang, Yin):
//   min mu ||D||_* + mu lambda ||E||_1 + 1/2 ||A - D - E||_F^2
//   s.t.  D is band-limited along the time axis,
// the stable-PCP variant for windows whose low-rank component carries a
// slow temporal structure (diurnal load cycles, baseline drift) that
// plain nuclear-norm shrinkage either absorbs into E or blurs away.
//
// The time-frequency constraint is enforced as an extra proximal step:
// each iteration's SVT output is transformed along the window (row/time)
// axis with an orthonormal DCT-II, the coefficients above the passband
// are soft-thresholded, and the panel is transformed back. Low-frequency
// structure — the constant component plus its diurnal modulation —
// passes through untouched; high-frequency energy in D is pushed into
// the residual/E where the detector can see it.
//
// Every kernel specific to this solver (basis build, panel transforms,
// the coefficient shrink) is a sequential scalar loop shared verbatim
// with rpca::reference, so the solver is bit-identical across SIMD
// levels and thread counts by construction.
#pragma once

#include "rpca/rpca.hpp"

namespace netconst::rpca {

/// Fraction of the lowest temporal frequencies kept untouched when the
/// dispatch (rpca::solve with Solver::StablePcpTf) supplies no explicit
/// TF options.
inline constexpr double kDefaultTfPassband = 0.25;
/// Default weight of the high-frequency soft-threshold relative to the
/// sparse component's lambda * mu threshold scale.
inline constexpr double kDefaultTfWeight = 1.0;

struct StablePcpTfOptions {
  Options base;
  /// Standard deviation of the dense noise. <= 0 = estimate from the
  /// data via the median absolute deviation of the rank-1 residual.
  double noise_sigma = 0.0;
  /// Fraction of temporal frequencies (lowest first) exempt from the
  /// high-frequency shrink; clamped so at least the DC atom survives.
  double passband_fraction = kDefaultTfPassband;
  /// Scale of the high-frequency soft-threshold, in units of mu / 2
  /// (the same scale the L1 prox on E uses). 0 disables the TF step,
  /// reducing the solver to stable PCP up to the debias pass.
  double tf_weight = kDefaultTfWeight;
};

/// Time-frequency stable PCP decomposition; `result.residual` reports
/// the dense-noise part ||A - D - E||_F / ||A||_F as with stable PCP.
Result solve_stable_pcp_tf(const linalg::Matrix& a,
                           const StablePcpTfOptions& options = {});

/// Workspace variant (see solve_apg's workspace overload for the
/// conventions). `lambda` must be pre-resolved (> 0); `noise_sigma <= 0`
/// estimates it from the data. Honors `base.probe`. Numerically
/// identical to reference::solve_stable_pcp_tf.
void solve_stable_pcp_tf(const linalg::Matrix& a, const Options& base,
                         double lambda, double noise_sigma,
                         double passband_fraction, double tf_weight,
                         SolverWorkspace& ws, Result& result);

/// Number of low-frequency DCT atoms the passband keeps for a window of
/// `rows` snapshots: round(passband_fraction * rows), clamped to
/// [1, rows]. Exposed so tests can pin the boundary exactly.
std::size_t tf_passband_rows(std::size_t rows, double passband_fraction);

/// Fill `basis` with the `rows` x `rows` orthonormal DCT-II matrix
/// (row k = frequency-k atom). Sequential scalar loops.
void temporal_dct_basis_into(std::size_t rows, linalg::Matrix& basis);

/// coeffs = basis * x — forward transform of every column of `x` along
/// the time axis. Sequential scalar loops; `coeffs` is resized.
void temporal_dct_forward(const linalg::Matrix& basis,
                          const linalg::Matrix& x, linalg::Matrix& coeffs);

/// x = basis^T * coeffs — inverse of temporal_dct_forward. Sequential
/// scalar loops; `x` is resized.
void temporal_dct_inverse(const linalg::Matrix& basis,
                          const linalg::Matrix& coeffs, linalg::Matrix& x);

/// Soft-threshold all coefficient rows with frequency index >= keep_rows
/// by `threshold`, in place. Sequential scalar loops.
void shrink_high_frequencies(linalg::Matrix& coeffs, std::size_t keep_rows,
                             double threshold);

}  // namespace netconst::rpca
