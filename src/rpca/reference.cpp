// Verbatim copies of the pre-workspace solvers. See reference.hpp for
// why these must not be modernized.
#include "rpca/reference.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "linalg/blas.hpp"
#include "linalg/norms.hpp"
#include "linalg/shrinkage.hpp"
#include "support/error.hpp"
#include "support/stopwatch.hpp"

namespace netconst::rpca::reference {
namespace {

linalg::Matrix rank1_approximation(const linalg::Matrix& a,
                                   int max_iterations = 200,
                                   double tolerance = 1e-12) {
  NETCONST_CHECK(!a.empty(), "rank-1 approximation of an empty matrix");
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();

  // Power iteration on A^T A for the dominant right singular vector.
  std::vector<double> v(n, 1.0 / std::sqrt(static_cast<double>(n)));
  double sigma_prev = 0.0;
  for (int it = 0; it < max_iterations; ++it) {
    std::vector<double> u = linalg::multiply(a, v);   // A v
    const double unorm = linalg::norm2(u);
    if (unorm == 0.0) return linalg::Matrix(m, n);    // A is zero
    linalg::scale(1.0 / unorm, u);
    std::vector<double> w = linalg::multiply_transposed(a, u);  // A^T u
    const double sigma = linalg::norm2(w);
    if (sigma == 0.0) return linalg::Matrix(m, n);
    for (std::size_t j = 0; j < n; ++j) v[j] = w[j] / sigma;
    if (std::abs(sigma - sigma_prev) <=
        tolerance * std::max(sigma, 1.0)) {
      break;
    }
    sigma_prev = sigma;
  }

  const std::vector<double> u = linalg::multiply(a, v);  // = sigma * u_hat
  linalg::Matrix d(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) d(i, j) = u[i] * v[j];
  }
  return d;
}

double estimate_noise_sigma(const linalg::Matrix& a) {
  NETCONST_CHECK(!a.empty(), "noise estimate of an empty matrix");
  linalg::Matrix residual = a;
  residual -= reference::rank1_approximation(a);
  std::vector<double> magnitudes;
  magnitudes.reserve(residual.size());
  for (double v : residual.data()) magnitudes.push_back(std::abs(v));
  const std::size_t mid = magnitudes.size() / 2;
  std::nth_element(magnitudes.begin(), magnitudes.begin() + mid,
                   magnitudes.end());
  // MAD -> sigma for Gaussian noise.
  return 1.4826 * magnitudes[mid];
}

void polish_rank1(const linalg::Matrix& a, Result& result, double lambda,
                  int max_iterations, double tolerance) {
  NETCONST_CHECK(lambda > 0.0, "polish requires lambda > 0");
  NETCONST_CHECK(max_iterations > 0 && tolerance > 0.0,
                 "polish needs positive iteration budget and tolerance");
  NETCONST_CHECK(result.low_rank.same_shape(a) && result.sparse.same_shape(a),
                 "polish factors do not match the data shape");
  const double a_fro = linalg::frobenius_norm(a);
  NETCONST_CHECK(a_fro > 0.0, "polish of an all-zero matrix");
  // Same threshold scaling as solve_rank1, so a polished convex solve
  // and a plain Rank1 solve describe the same fixed point.
  const double mean_abs =
      linalg::l1_norm(a) / static_cast<double>(a.size());
  const double tau = lambda * mean_abs;

  linalg::Matrix d = std::move(result.low_rank);
  linalg::Matrix e = std::move(result.sparse);
  result.polished = true;
  result.polish_converged = false;
  for (int k = 0; k < max_iterations; ++k) {
    linalg::Matrix target = a;
    target -= e;
    linalg::Matrix d_next = reference::rank1_approximation(target);

    linalg::Matrix e_target = a;
    e_target -= d_next;
    linalg::Matrix e_next = linalg::soft_threshold(e_target, tau);

    double change = 0.0, scale = 0.0;
    for (std::size_t idx = 0; idx < d.data().size(); ++idx) {
      const double dd = d_next.data()[idx] - d.data()[idx];
      const double de = e_next.data()[idx] - e.data()[idx];
      change += dd * dd + de * de;
      scale += d_next.data()[idx] * d_next.data()[idx] +
               e_next.data()[idx] * e_next.data()[idx];
    }
    d = std::move(d_next);
    e = std::move(e_next);
    result.polish_iterations = k + 1;
    if (std::sqrt(change) <= tolerance * std::sqrt(scale)) {
      result.polish_converged = true;
      break;
    }
  }

  linalg::Matrix residual = a;
  residual -= d;
  residual -= e;
  result.residual = linalg::frobenius_norm(residual) / a_fro;
  result.rank = 1;
  result.low_rank = std::move(d);
  result.sparse = std::move(e);
}

}  // namespace

Result solve_apg(const linalg::Matrix& a, const Options& options) {
  NETCONST_CHECK(options.lambda > 0.0, "APG requires lambda > 0");
  const Stopwatch clock;
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  const double lambda = options.lambda;
  const double a_norm = linalg::frobenius_norm(a);
  NETCONST_CHECK(a_norm > 0.0, "APG of an all-zero matrix is trivial");

  const WarmStart& seed = options.warm_start;
  const bool warm = !seed.empty();
  if (warm) {
    NETCONST_CHECK(seed.low_rank.rows() == m && seed.low_rank.cols() == n &&
                       seed.sparse.rows() == m && seed.sparse.cols() == n,
                   "warm-start seed shape does not match the data");
  }

  // Continuation schedule: mu starts near the spectral norm and decays to
  // mu_bar (values follow the reference APG implementation). A warm start
  // resumes the previous solve's continuation state, skipping both the
  // spectral-norm estimate and the decay phase.
  double mu, mu_bar;
  if (warm && seed.mu > 0.0 && seed.mu_floor > 0.0) {
    mu_bar = seed.mu_floor;
    mu = std::max(seed.mu, mu_bar);
  } else {
    mu = 0.99 * linalg::spectral_norm(a);
    if (mu <= 0.0) mu = 1.0;
    mu_bar = 1e-9 * mu;
  }
  const double eta = 0.9;
  // Lipschitz constant of the smooth part's gradient is 2 (two blocks).
  const double inv_lf = 0.5;

  linalg::Matrix d = warm ? seed.low_rank : linalg::Matrix(m, n);
  linalg::Matrix e = warm ? seed.sparse : linalg::Matrix(m, n);
  linalg::Matrix d_prev = d;
  linalg::Matrix e_prev = e;
  double t = 1.0, t_prev = 1.0;

  Result result;
  result.warm_started = warm;
  for (int k = 0; k < options.max_iterations; ++k) {
    const double momentum = (t_prev - 1.0) / t;
    // Extrapolated points Y_D, Y_E.
    linalg::Matrix yd = d;
    {
      linalg::Matrix diff = d;
      diff -= d_prev;
      diff *= momentum;
      yd += diff;
    }
    linalg::Matrix ye = e;
    {
      linalg::Matrix diff = e;
      diff -= e_prev;
      diff *= momentum;
      ye += diff;
    }

    // Shared residual Y_D + Y_E - A of the smooth term.
    linalg::Matrix residual = yd;
    residual += ye;
    residual -= a;

    // Proximal gradient steps on each block.
    linalg::Matrix gd = yd;
    {
      linalg::Matrix step = residual;
      step *= inv_lf;
      gd -= step;
    }
    linalg::Matrix ge = ye;
    {
      linalg::Matrix step = residual;
      step *= inv_lf;
      ge -= step;
    }

    d_prev = std::move(d);
    e_prev = std::move(e);
    const auto svt =
        linalg::singular_value_threshold(gd, mu * inv_lf, options.svd);
    d = svt.value;
    result.rank = svt.rank;
    e = linalg::soft_threshold(ge, lambda * mu * inv_lf);

    t_prev = t;
    t = 0.5 * (1.0 + std::sqrt(4.0 * t * t + 1.0));
    mu = std::max(eta * mu, mu_bar);
    result.iterations = k + 1;

    // Convergence: relative change of the stacked iterate (D, E).
    double change = 0.0, scale = 0.0;
    for (std::size_t idx = 0; idx < d.data().size(); ++idx) {
      const double dd = d.data()[idx] - d_prev.data()[idx];
      const double de = e.data()[idx] - e_prev.data()[idx];
      change += dd * dd + de * de;
      scale += d.data()[idx] * d.data()[idx] +
               e.data()[idx] * e.data()[idx];
    }
    if (std::sqrt(change) <=
        options.tolerance * std::max(std::sqrt(scale), 1.0)) {
      result.converged = true;
      break;
    }
  }

  {
    linalg::Matrix res = a;
    res -= d;
    res -= e;
    result.residual = linalg::frobenius_norm(res) / a_norm;
  }
  result.low_rank = std::move(d);
  result.sparse = std::move(e);
  result.final_mu = mu;
  result.mu_floor = mu_bar;
  result.solve_seconds = clock.seconds();
  return result;
}

Result solve_ialm(const linalg::Matrix& a, const Options& options) {
  NETCONST_CHECK(options.lambda > 0.0, "IALM requires lambda > 0");
  const Stopwatch clock;
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  const double lambda = options.lambda;
  const double a_fro = linalg::frobenius_norm(a);
  NETCONST_CHECK(a_fro > 0.0, "IALM of an all-zero matrix is trivial");

  const double a_spec = std::max(linalg::spectral_norm(a), 1e-300);
  // Multiplier initialization of the reference IALM implementation:
  // Y = A / max(||A||_2, ||A||_inf / lambda).
  const double dual_scale =
      std::max(a_spec, linalg::max_abs(a) / lambda);
  linalg::Matrix y = a;
  y *= 1.0 / dual_scale;

  double mu = 1.25 / a_spec;
  const double mu_max = mu * 1e7;
  const double rho = 1.5;

  linalg::Matrix d(m, n);
  linalg::Matrix e(m, n);

  Result result;
  for (int k = 0; k < options.max_iterations; ++k) {
    // D-step: SVT of A - E + Y/mu at threshold 1/mu.
    linalg::Matrix target = a;
    target -= e;
    {
      linalg::Matrix yscaled = y;
      yscaled *= 1.0 / mu;
      target += yscaled;
    }
    const auto svt =
        linalg::singular_value_threshold(target, 1.0 / mu, options.svd);
    d = svt.value;
    result.rank = svt.rank;

    // E-step: soft threshold of A - D + Y/mu at lambda/mu.
    linalg::Matrix etarget = a;
    etarget -= d;
    {
      linalg::Matrix yscaled = y;
      yscaled *= 1.0 / mu;
      etarget += yscaled;
    }
    e = linalg::soft_threshold(etarget, lambda / mu);

    // Multiplier update on the primal residual.
    linalg::Matrix residual = a;
    residual -= d;
    residual -= e;
    {
      linalg::Matrix scaled = residual;
      scaled *= mu;
      y += scaled;
    }
    mu = std::min(mu * rho, mu_max);
    result.iterations = k + 1;

    result.residual = linalg::frobenius_norm(residual) / a_fro;
    if (result.residual <= options.tolerance) {
      result.converged = true;
      break;
    }
  }

  result.low_rank = std::move(d);
  result.sparse = std::move(e);
  result.solve_seconds = clock.seconds();
  return result;
}

Result solve_rank1(const linalg::Matrix& a, const Options& options) {
  NETCONST_CHECK(options.lambda > 0.0, "rank-1 solver requires lambda > 0");
  const Stopwatch clock;
  const double a_fro = linalg::frobenius_norm(a);
  NETCONST_CHECK(a_fro > 0.0, "rank-1 RPCA of an all-zero matrix");

  // Threshold scaled to the data so lambda is comparable to the convex
  // solvers (their effective thresholds also scale with ||A||).
  const double mean_abs =
      linalg::l1_norm(a) / static_cast<double>(a.size());
  const double tau = options.lambda * mean_abs;

  linalg::Matrix e(a.rows(), a.cols());
  linalg::Matrix d;
  Result result;
  double prev_residual = std::numeric_limits<double>::infinity();
  for (int k = 0; k < options.max_iterations; ++k) {
    linalg::Matrix target = a;
    target -= e;
    d = reference::rank1_approximation(target);

    linalg::Matrix etarget = a;
    etarget -= d;
    e = linalg::soft_threshold(etarget, tau);

    linalg::Matrix residual = a;
    residual -= d;
    residual -= e;
    result.residual = linalg::frobenius_norm(residual) / a_fro;
    result.iterations = k + 1;
    // The soft threshold leaves a floor of magnitude-tau residual, so
    // converge on the *change* of the residual rather than its value.
    if (std::abs(prev_residual - result.residual) <= options.tolerance) {
      result.converged = true;
      break;
    }
    prev_residual = result.residual;
  }

  result.rank = 1;
  result.low_rank = std::move(d);
  result.sparse = std::move(e);
  result.solve_seconds = clock.seconds();
  return result;
}

Result solve_stable_pcp(const linalg::Matrix& a,
                        const StablePcpOptions& options) {
  NETCONST_CHECK(!a.empty(), "stable PCP of an empty matrix");
  const Stopwatch clock;
  Options opts = options.base;
  if (opts.lambda <= 0.0) opts.lambda = default_lambda(a.rows(), a.cols());
  double sigma = options.noise_sigma;
  if (sigma <= 0.0) sigma = reference::estimate_noise_sigma(a);
  NETCONST_CHECK(sigma >= 0.0, "noise sigma must be non-negative");

  const double a_fro = linalg::frobenius_norm(a);
  NETCONST_CHECK(a_fro > 0.0, "stable PCP of an all-zero matrix");
  // Zhou et al.'s recommended Lagrangian weight.
  const double mu =
      std::sqrt(2.0 * static_cast<double>(std::max(a.rows(), a.cols()))) *
      std::max(sigma, 1e-12 * linalg::max_abs(a));
  const double inv_lf = 0.5;  // gradient Lipschitz constant is 2

  linalg::Matrix d(a.rows(), a.cols()), d_prev = d;
  linalg::Matrix e(a.rows(), a.cols()), e_prev = e;
  double t = 1.0, t_prev = 1.0;

  Result result;
  for (int k = 0; k < opts.max_iterations; ++k) {
    const double momentum = (t_prev - 1.0) / t;
    linalg::Matrix yd = d;
    {
      linalg::Matrix diff = d;
      diff -= d_prev;
      diff *= momentum;
      yd += diff;
    }
    linalg::Matrix ye = e;
    {
      linalg::Matrix diff = e;
      diff -= e_prev;
      diff *= momentum;
      ye += diff;
    }
    linalg::Matrix residual = yd;
    residual += ye;
    residual -= a;
    residual *= inv_lf;

    linalg::Matrix gd = yd;
    gd -= residual;
    linalg::Matrix ge = ye;
    ge -= residual;

    d_prev = std::move(d);
    e_prev = std::move(e);
    const auto svt =
        linalg::singular_value_threshold(gd, mu * inv_lf, opts.svd);
    d = svt.value;
    result.rank = svt.rank;
    e = linalg::soft_threshold(ge, opts.lambda * mu * inv_lf);

    t_prev = t;
    t = 0.5 * (1.0 + std::sqrt(4.0 * t * t + 1.0));
    result.iterations = k + 1;

    double change = 0.0, scale = 0.0;
    for (std::size_t idx = 0; idx < d.data().size(); ++idx) {
      const double dd = d.data()[idx] - d_prev.data()[idx];
      const double de = e.data()[idx] - e_prev.data()[idx];
      change += dd * dd + de * de;
      scale += d.data()[idx] * d.data()[idx] +
               e.data()[idx] * e.data()[idx];
    }
    if (std::sqrt(change) <=
        opts.tolerance * std::max(std::sqrt(scale), 1.0)) {
      result.converged = true;
      break;
    }
  }

  // Debias: the nuclear-norm prox shrinks every kept singular value by
  // ~mu/2; refit D as the exact rank-r projection of A - E with the
  // discovered rank (standard post-processing for stable PCP).
  if (result.rank > 0) {
    linalg::Matrix target = a;
    target -= e;
    d = linalg::low_rank_approximation(target, result.rank, opts.svd);
  }

  {
    linalg::Matrix res = a;
    res -= d;
    res -= e;
    result.residual = linalg::frobenius_norm(res) / a_fro;
  }
  result.low_rank = std::move(d);
  result.sparse = std::move(e);
  result.solve_seconds = clock.seconds();
  return result;
}

Result solve_stable_pcp_tf(const linalg::Matrix& a,
                           const StablePcpTfOptions& options) {
  NETCONST_CHECK(!a.empty(), "TF stable PCP of an empty matrix");
  const Stopwatch clock;
  Options opts = options.base;
  if (opts.lambda <= 0.0) opts.lambda = default_lambda(a.rows(), a.cols());
  double sigma = options.noise_sigma;
  if (sigma <= 0.0) sigma = reference::estimate_noise_sigma(a);
  NETCONST_CHECK(sigma >= 0.0, "noise sigma must be non-negative");

  const double a_fro = linalg::frobenius_norm(a);
  NETCONST_CHECK(a_fro > 0.0, "TF stable PCP of an all-zero matrix");
  // Stable PCP's Lagrangian weight; the TF shrink reuses its scale.
  const double mu =
      std::sqrt(2.0 * static_cast<double>(std::max(a.rows(), a.cols()))) *
      std::max(sigma, 1e-12 * linalg::max_abs(a));
  const double inv_lf = 0.5;  // gradient Lipschitz constant is 2
  const std::size_t keep_rows =
      rpca::tf_passband_rows(a.rows(), options.passband_fraction);
  const double tf_threshold = options.tf_weight * mu * inv_lf;

  // The transform kernels are the production solver's sequential scalar
  // loops (see reference.hpp); only the surrounding iterate algebra is
  // the frozen allocation-per-expression style.
  linalg::Matrix basis;
  rpca::temporal_dct_basis_into(a.rows(), basis);
  linalg::Matrix coeffs;
  const auto tf_prox = [&](linalg::Matrix& panel) {
    rpca::temporal_dct_forward(basis, panel, coeffs);
    rpca::shrink_high_frequencies(coeffs, keep_rows, tf_threshold);
    rpca::temporal_dct_inverse(basis, coeffs, panel);
  };

  linalg::Matrix d(a.rows(), a.cols()), d_prev = d;
  linalg::Matrix e(a.rows(), a.cols()), e_prev = e;
  double t = 1.0, t_prev = 1.0;

  Result result;
  for (int k = 0; k < opts.max_iterations; ++k) {
    const double momentum = (t_prev - 1.0) / t;
    linalg::Matrix yd = d;
    {
      linalg::Matrix diff = d;
      diff -= d_prev;
      diff *= momentum;
      yd += diff;
    }
    linalg::Matrix ye = e;
    {
      linalg::Matrix diff = e;
      diff -= e_prev;
      diff *= momentum;
      ye += diff;
    }
    linalg::Matrix residual = yd;
    residual += ye;
    residual -= a;
    residual *= inv_lf;

    linalg::Matrix gd = yd;
    gd -= residual;
    linalg::Matrix ge = ye;
    ge -= residual;

    d_prev = std::move(d);
    e_prev = std::move(e);
    const auto svt =
        linalg::singular_value_threshold(gd, mu * inv_lf, opts.svd);
    d = svt.value;
    result.rank = svt.rank;
    if (tf_threshold > 0.0 && keep_rows < a.rows()) tf_prox(d);
    e = linalg::soft_threshold(ge, opts.lambda * mu * inv_lf);

    t_prev = t;
    t = 0.5 * (1.0 + std::sqrt(4.0 * t * t + 1.0));
    result.iterations = k + 1;

    double change = 0.0, scale = 0.0;
    for (std::size_t idx = 0; idx < d.data().size(); ++idx) {
      const double dd = d.data()[idx] - d_prev.data()[idx];
      const double de = e.data()[idx] - e_prev.data()[idx];
      change += dd * dd + de * de;
      scale += d.data()[idx] * d.data()[idx] +
               e.data()[idx] * e.data()[idx];
    }
    if (std::sqrt(change) <=
        opts.tolerance * std::max(std::sqrt(scale), 1.0)) {
      result.converged = true;
      break;
    }
  }

  // Debias exactly like stable PCP, then re-impose the band limit once
  // (the refit reintroduces high-frequency energy from A - E).
  if (result.rank > 0) {
    linalg::Matrix target = a;
    target -= e;
    d = linalg::low_rank_approximation(target, result.rank, opts.svd);
    if (tf_threshold > 0.0 && keep_rows < a.rows()) tf_prox(d);
  }

  {
    linalg::Matrix res = a;
    res -= d;
    res -= e;
    result.residual = linalg::frobenius_norm(res) / a_fro;
  }
  result.low_rank = std::move(d);
  result.sparse = std::move(e);
  result.solve_seconds = clock.seconds();
  return result;
}

Result solve(const linalg::Matrix& a, Solver solver,
             const Options& options) {
  NETCONST_CHECK(!a.empty(), "RPCA of an empty matrix");
  Options opts = options;
  if (opts.lambda <= 0.0) opts.lambda = default_lambda(a.rows(), a.cols());
  // Qualified calls: argument-dependent lookup would otherwise make the
  // production rpca:: overloads ambiguous with these.
  auto dispatch = [&]() -> Result {
    switch (solver) {
      case Solver::Apg:
        return reference::solve_apg(a, opts);
      case Solver::Ialm:
        return reference::solve_ialm(a, opts);
      case Solver::RankOne:
        return reference::solve_rank1(a, opts);
      case Solver::StablePcp: {
        StablePcpOptions stable;
        stable.base = opts;
        return reference::solve_stable_pcp(a, stable);
      }
      case Solver::StablePcpTf: {
        StablePcpTfOptions stable;
        stable.base = opts;
        return reference::solve_stable_pcp_tf(a, stable);
      }
    }
    throw Error("unknown RPCA solver");
  };
  Result result = dispatch();
  // A supplied seed must never be dropped silently: solvers without
  // warm-start support report the cold solve through the diagnostics.
  if (!opts.warm_start.empty() && !result.warm_started) {
    result.warm_start_ignored = true;
  }
  result.solver_residual = result.residual;
  if (opts.polish_iterations > 0) {
    const Stopwatch polish_clock;
    reference::polish_rank1(a, result, opts.lambda, opts.polish_iterations,
                 opts.polish_tolerance);
    result.solve_seconds += polish_clock.seconds();
  }
  return result;
}

}  // namespace netconst::rpca::reference
