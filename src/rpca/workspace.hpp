// Reusable solver storage: every iterate, panel, and factorization
// scratch the RPCA solvers touch, owned by the caller and recycled
// across solves.
//
// The solvers were originally written allocation-per-expression: each
// iteration built ~10 fresh m x n temporaries (plus the SVD's internal
// working set), which at paper shapes means hundreds of kilobytes of
// mmap/zero-fault traffic per iteration. A SolverWorkspace threaded
// through rpca::solve() turns all of that into capacity-reusing resizes:
// after the first iteration of the first solve, the steady state performs
// zero heap allocations (verified by bench/perf_regression.cpp with an
// instrumented allocator). The online WindowRefresher keeps one workspace
// alive for the lifetime of the stream, so warm-start re-solves are
// allocation-free end to end.
//
// Numerically, workspace solves are identical to the frozen baselines in
// rpca/reference.hpp — the fused kernels replicate the original
// floating-point operation order exactly (see linalg/fused.hpp and
// tests/rpca/workspace_equivalence_test.cpp).
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/norms.hpp"
#include "linalg/randomized_svd.hpp"
#include "linalg/shrinkage.hpp"
#include "rpca/rpca.hpp"
#include "support/rng.hpp"

namespace netconst::rpca {

/// Counters a workspace accumulates across the solves it serves; used by
/// tests (spectral-norm gating) and the bench harness (fast-path
/// coverage). Never reset by the solvers — callers sample deltas.
struct WorkspaceStats {
  /// Solver entries (one per solve_* call through this workspace).
  std::size_t solves = 0;
  /// Spectral-norm power iterations run to derive a continuation
  /// schedule. Warm APG solves carrying seed.mu skip this entirely.
  std::size_t spectral_norm_evals = 0;
  /// SVT calls that fell off the allocation-free Gram fast path onto the
  /// general (allocating) SVD. Zero for paper-shaped (wide) data.
  std::size_t svt_fallbacks = 0;
  /// Randomized-SVT dispatch accounting (Options::randomized; all zero
  /// while the policy is off). attempts = sketches computed (including
  /// growth retries); accepts = steps whose truncation bound passed;
  /// retries = in-call sketch growths after a reject; fallbacks =
  /// steps redone through the exact decomposition.
  std::size_t randomized_attempts = 0;
  std::size_t randomized_accepts = 0;
  std::size_t randomized_retries = 0;
  std::size_t randomized_fallbacks = 0;
};

/// Randomized-SVT state threaded through the solvers: the sketch/QR
/// scratch, the workspace's deterministic sketch stream, and the
/// adaptive rank target carried between SVT steps. The stream is
/// reseeded from RandomizedSvdPolicy::seed on first use, so a fresh
/// workspace replays the same sketches for the same call sequence.
struct RandomizedSvtState {
  linalg::RandomizedSvdScratch scratch;
  Rng rng;
  bool seeded = false;
  /// Next SVT step's target rank (0 = start from the policy minimum);
  /// updated to last kept rank + 1 after every accepted step.
  std::size_t next_rank = 0;
};

/// Power-iteration vectors for rank1_approximation_into.
struct Rank1Scratch {
  std::vector<double> u;  // left iterate, length m
  std::vector<double> v;  // right iterate, length n
  std::vector<double> w;  // A^T u intermediate, length n
};

/// Temporal-DCT working set for the time-frequency stable PCP solver:
/// the orthonormal DCT-II basis, cached per window length so repeated
/// solves of the same shape never rebuild it, and the coefficient panel
/// the band-limiting prox step shrinks in.
struct TemporalDctScratch {
  linalg::Matrix basis;        // basis_rows x basis_rows frequency atoms
  linalg::Matrix coeffs;       // rows x cols coefficient panel
  std::size_t basis_rows = 0;  // window length `basis` was built for
};

/// The full working set of one solver instance. Matrices are rotated
/// with Matrix::swap (O(1), no copies) and reshaped with Matrix::resize
/// (capacity-reusing), so a workspace that has seen a problem shape once
/// never allocates for it again.
struct SolverWorkspace {
  // Iterate pair; the solvers swap (d, d_prev) instead of copying.
  linalg::Matrix d, e, d_prev, e_prev;
  // Decomposition residual and the two proximal gradient steps (the
  // extrapolated points and the smooth-term residual are never
  // materialized — linalg::gradient_step computes them on the fly).
  linalg::Matrix residual, gd, ge;
  // IALM's Lagrange multiplier / generic shrinkage target.
  linalg::Matrix y, target;
  // Gram-path SVT working set (Gram matrix, Jacobi scratch, V panel).
  linalg::GramSvtScratch svt;
  // Power-iteration vectors for continuation-schedule estimates.
  linalg::SpectralNormScratch spectral;
  // rank-1 approximation / polish power-iteration vectors.
  Rank1Scratch rank1;
  // Randomized-SVT scratch, stream and adaptive rank state (sized on
  // demand; reserve_randomized front-loads it).
  RandomizedSvtState randomized;
  // |residual| magnitudes for stable PCP's MAD noise estimate.
  std::vector<double> magnitudes;
  // Temporal-DCT basis and coefficient panel for TF stable PCP.
  TemporalDctScratch dct;

  WorkspaceStats stats;

  /// Pre-size the working set for rows x cols problems so even the first
  /// solve's iterations run allocation-free. Optional — solvers size
  /// everything on demand; this just front-loads the cost.
  void reserve(std::size_t rows, std::size_t cols);

  /// Additionally pre-size the randomized-SVT sketch/QR scratch for the
  /// given policy (sketch widths up to max_rank + oversampling). Kept
  /// separate from reserve(): the sketch panel is rows-of-width-cols and
  /// would be dead weight for the default exact path.
  void reserve_randomized(std::size_t rows, std::size_t cols,
                          const RandomizedSvdPolicy& policy);
};

/// Reset every scalar/diagnostic field of `result` to its default while
/// keeping the low_rank/sparse buffers (their capacity is what makes
/// repeated solves into the same Result allocation-free).
void reset_result(Result& result);

}  // namespace netconst::rpca
