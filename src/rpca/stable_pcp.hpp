// Stable Principal Component Pursuit (Zhou, Li, Wright, Candès, Ma):
//   min ||D||_* + lambda ||E||_1   s.t.  ||A - D - E||_F <= delta,
// the RPCA variant for data that carries dense small noise in ADDITION
// to the sparse corruption — exactly the structure of calibrated
// network measurements (volatility band + interference spikes).
//
// Solved in its Lagrangian form
//   min mu ||D||_* + mu lambda ||E||_1 + 1/2 ||A - D - E||_F^2
// by proximal gradient with a FIXED mu matched to the noise level
// (mu = sqrt(2 max(m, n)) * sigma), instead of APG's continuation of
// mu -> 0. The residual A - D - E then absorbs the dense noise rather
// than being forced into E.
#pragma once

#include "rpca/rpca.hpp"

namespace netconst::rpca {

struct StablePcpOptions {
  Options base;
  /// Standard deviation of the dense noise. <= 0 = estimate from the
  /// data via the median absolute deviation of the rank-1 residual.
  double noise_sigma = 0.0;
};

/// Stable PCP decomposition; `result.residual` reports the dense-noise
/// part ||A - D - E||_F / ||A||_F, which is *expected* to be nonzero.
Result solve_stable_pcp(const linalg::Matrix& a,
                        const StablePcpOptions& options = {});

/// Workspace variant (see solve_apg's workspace overload for the
/// conventions). `lambda` must be pre-resolved (> 0); `noise_sigma <= 0`
/// estimates it from the data. Numerically identical to
/// reference::solve_stable_pcp.
void solve_stable_pcp(const linalg::Matrix& a, const Options& base,
                      double lambda, double noise_sigma, SolverWorkspace& ws,
                      Result& result);

/// Robust noise-level estimate: 1.4826 * MAD of the entries of
/// A - rank1(A). Suitable when the low-rank component is (near) rank-1.
double estimate_noise_sigma(const linalg::Matrix& a);

/// estimate_noise_sigma through workspace scratch (allocation-free once
/// the workspace is warm).
double estimate_noise_sigma(const linalg::Matrix& a, SolverWorkspace& ws);

}  // namespace netconst::rpca
