// Inexact augmented Lagrange multiplier RPCA solver (Lin, Chen & Ma).
//
// Solves  min ||D||_* + lambda ||E||_1  s.t. A = D + E  by alternating
// the two proximal updates against the augmented Lagrangian and updating
// the multiplier Y. Typically converges in far fewer SVDs than APG; kept
// as an ablation target for the paper's solver choice.
#pragma once

#include "rpca/rpca.hpp"

namespace netconst::rpca {

/// See rpca::solve with Solver::Ialm. `options.lambda` must be positive.
Result solve_ialm(const linalg::Matrix& a, const Options& options);

/// Workspace variant (see solve_apg's workspace overload for the
/// conventions). Numerically identical to reference::solve_ialm.
void solve_ialm(const linalg::Matrix& a, const Options& options,
                double lambda, SolverWorkspace& ws, Result& result);

}  // namespace netconst::rpca
