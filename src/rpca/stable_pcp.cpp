#include "rpca/stable_pcp.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/norms.hpp"
#include "linalg/shrinkage.hpp"
#include "rpca/rank1.hpp"
#include "support/error.hpp"
#include "support/stopwatch.hpp"

namespace netconst::rpca {

double estimate_noise_sigma(const linalg::Matrix& a) {
  NETCONST_CHECK(!a.empty(), "noise estimate of an empty matrix");
  linalg::Matrix residual = a;
  residual -= rank1_approximation(a);
  std::vector<double> magnitudes;
  magnitudes.reserve(residual.size());
  for (double v : residual.data()) magnitudes.push_back(std::abs(v));
  const std::size_t mid = magnitudes.size() / 2;
  std::nth_element(magnitudes.begin(), magnitudes.begin() + mid,
                   magnitudes.end());
  // MAD -> sigma for Gaussian noise.
  return 1.4826 * magnitudes[mid];
}

Result solve_stable_pcp(const linalg::Matrix& a,
                        const StablePcpOptions& options) {
  NETCONST_CHECK(!a.empty(), "stable PCP of an empty matrix");
  const Stopwatch clock;
  Options opts = options.base;
  if (opts.lambda <= 0.0) opts.lambda = default_lambda(a.rows(), a.cols());
  double sigma = options.noise_sigma;
  if (sigma <= 0.0) sigma = estimate_noise_sigma(a);
  NETCONST_CHECK(sigma >= 0.0, "noise sigma must be non-negative");

  const double a_fro = linalg::frobenius_norm(a);
  NETCONST_CHECK(a_fro > 0.0, "stable PCP of an all-zero matrix");
  // Zhou et al.'s recommended Lagrangian weight.
  const double mu =
      std::sqrt(2.0 * static_cast<double>(std::max(a.rows(), a.cols()))) *
      std::max(sigma, 1e-12 * linalg::max_abs(a));
  const double inv_lf = 0.5;  // gradient Lipschitz constant is 2

  linalg::Matrix d(a.rows(), a.cols()), d_prev = d;
  linalg::Matrix e(a.rows(), a.cols()), e_prev = e;
  double t = 1.0, t_prev = 1.0;

  Result result;
  for (int k = 0; k < opts.max_iterations; ++k) {
    const double momentum = (t_prev - 1.0) / t;
    linalg::Matrix yd = d;
    {
      linalg::Matrix diff = d;
      diff -= d_prev;
      diff *= momentum;
      yd += diff;
    }
    linalg::Matrix ye = e;
    {
      linalg::Matrix diff = e;
      diff -= e_prev;
      diff *= momentum;
      ye += diff;
    }
    linalg::Matrix residual = yd;
    residual += ye;
    residual -= a;
    residual *= inv_lf;

    linalg::Matrix gd = yd;
    gd -= residual;
    linalg::Matrix ge = ye;
    ge -= residual;

    d_prev = std::move(d);
    e_prev = std::move(e);
    const auto svt =
        linalg::singular_value_threshold(gd, mu * inv_lf, opts.svd);
    d = svt.value;
    result.rank = svt.rank;
    e = linalg::soft_threshold(ge, opts.lambda * mu * inv_lf);

    t_prev = t;
    t = 0.5 * (1.0 + std::sqrt(4.0 * t * t + 1.0));
    result.iterations = k + 1;

    double change = 0.0, scale = 0.0;
    for (std::size_t idx = 0; idx < d.data().size(); ++idx) {
      const double dd = d.data()[idx] - d_prev.data()[idx];
      const double de = e.data()[idx] - e_prev.data()[idx];
      change += dd * dd + de * de;
      scale += d.data()[idx] * d.data()[idx] +
               e.data()[idx] * e.data()[idx];
    }
    if (std::sqrt(change) <=
        opts.tolerance * std::max(std::sqrt(scale), 1.0)) {
      result.converged = true;
      break;
    }
  }

  // Debias: the nuclear-norm prox shrinks every kept singular value by
  // ~mu/2; refit D as the exact rank-r projection of A - E with the
  // discovered rank (standard post-processing for stable PCP).
  if (result.rank > 0) {
    linalg::Matrix target = a;
    target -= e;
    d = linalg::low_rank_approximation(target, result.rank, opts.svd);
  }

  {
    linalg::Matrix res = a;
    res -= d;
    res -= e;
    result.residual = linalg::frobenius_norm(res) / a_fro;
  }
  result.low_rank = std::move(d);
  result.sparse = std::move(e);
  result.solve_seconds = clock.seconds();
  return result;
}

}  // namespace netconst::rpca
