#include "rpca/stable_pcp.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/fused.hpp"
#include "linalg/norms.hpp"
#include "linalg/shrinkage.hpp"
#include "rpca/rank1.hpp"
#include "rpca/svd_path.hpp"
#include "rpca/workspace.hpp"
#include "support/error.hpp"
#include "support/stopwatch.hpp"

namespace netconst::rpca {

double estimate_noise_sigma(const linalg::Matrix& a) {
  SolverWorkspace ws;
  return estimate_noise_sigma(a, ws);
}

double estimate_noise_sigma(const linalg::Matrix& a, SolverWorkspace& ws) {
  NETCONST_CHECK(!a.empty(), "noise estimate of an empty matrix");
  rank1_approximation_into(a, ws.rank1, ws.target);
  linalg::sub(a, ws.target, ws.residual);
  const auto rs = ws.residual.data();
  ws.magnitudes.resize(rs.size());
  for (std::size_t i = 0; i < rs.size(); ++i) {
    ws.magnitudes[i] = std::abs(rs[i]);
  }
  const std::size_t mid = ws.magnitudes.size() / 2;
  std::nth_element(ws.magnitudes.begin(), ws.magnitudes.begin() + mid,
                   ws.magnitudes.end());
  // MAD -> sigma for Gaussian noise.
  return 1.4826 * ws.magnitudes[mid];
}

Result solve_stable_pcp(const linalg::Matrix& a,
                        const StablePcpOptions& options) {
  NETCONST_CHECK(!a.empty(), "stable PCP of an empty matrix");
  const double lambda = options.base.lambda > 0.0
                            ? options.base.lambda
                            : default_lambda(a.rows(), a.cols());
  SolverWorkspace ws;
  Result result;
  solve_stable_pcp(a, options.base, lambda, options.noise_sigma, ws, result);
  return result;
}

void solve_stable_pcp(const linalg::Matrix& a, const Options& base,
                      double lambda, double noise_sigma, SolverWorkspace& ws,
                      Result& result) {
  NETCONST_CHECK(!a.empty(), "stable PCP of an empty matrix");
  NETCONST_CHECK(lambda > 0.0, "stable PCP requires lambda > 0");
  const Stopwatch clock;
  reset_result(result);
  ++ws.stats.solves;
  double sigma = noise_sigma;
  if (sigma <= 0.0) sigma = estimate_noise_sigma(a, ws);
  NETCONST_CHECK(sigma >= 0.0, "noise sigma must be non-negative");

  const double a_fro = linalg::frobenius_norm(a);
  NETCONST_CHECK(a_fro > 0.0, "stable PCP of an all-zero matrix");
  // Zhou et al.'s recommended Lagrangian weight.
  const double mu =
      std::sqrt(2.0 * static_cast<double>(std::max(a.rows(), a.cols()))) *
      std::max(sigma, 1e-12 * linalg::max_abs(a));
  const double inv_lf = 0.5;  // gradient Lipschitz constant is 2

  ws.d.resize(a.rows(), a.cols());
  ws.d.fill(0.0);
  ws.e.resize(a.rows(), a.cols());
  ws.e.fill(0.0);
  ws.d_prev = ws.d;
  ws.e_prev = ws.e;
  double t = 1.0, t_prev = 1.0;

  for (int k = 0; k < base.max_iterations; ++k) {
    const double momentum = (t_prev - 1.0) / t;
    linalg::gradient_step(ws.d, ws.d_prev, ws.e, ws.e_prev, a, momentum,
                          inv_lf, lambda * mu * inv_lf, ws.gd, ws.ge);

    ws.d.swap(ws.d_prev);
    ws.e.swap(ws.e_prev);
    ws.e.swap(ws.ge);
    const auto svt = svt_step(ws.gd, mu * inv_lf, base, ws, ws.d);
    if (!svt.used_scratch) ++ws.stats.svt_fallbacks;
    result.rank = svt.rank;

    t_prev = t;
    t = 0.5 * (1.0 + std::sqrt(4.0 * t * t + 1.0));
    result.iterations = k + 1;

    double change = 0.0, scale = 0.0;
    linalg::iterate_change_norms(ws.d, ws.d_prev, ws.e, ws.e_prev, change,
                                 scale);
    if (std::sqrt(change) <=
        base.tolerance * std::max(std::sqrt(scale), 1.0)) {
      result.converged = true;
      break;
    }
  }

  // Debias: the nuclear-norm prox shrinks every kept singular value by
  // ~mu/2; refit D as the exact rank-r projection of A - E with the
  // discovered rank (standard post-processing for stable PCP).
  if (result.rank > 0) {
    linalg::sub(a, ws.e, ws.target);
    low_rank_step(ws.target, result.rank, base, ws, ws.d);
  }

  linalg::sub_sub(a, ws.d, ws.e, ws.residual);
  result.residual = linalg::frobenius_norm(ws.residual) / a_fro;
  result.low_rank.swap(ws.d);
  result.sparse.swap(ws.e);
  result.solve_seconds = clock.seconds();
}

}  // namespace netconst::rpca
