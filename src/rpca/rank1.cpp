#include "rpca/rank1.hpp"

#include <cmath>
#include <limits>

#include "linalg/blas.hpp"
#include "linalg/fused.hpp"
#include "linalg/norms.hpp"
#include "linalg/shrinkage.hpp"
#include "rpca/workspace.hpp"
#include "support/error.hpp"
#include "support/stopwatch.hpp"

namespace netconst::rpca {

void rank1_approximation_into(const linalg::Matrix& a, Rank1Scratch& scratch,
                              linalg::Matrix& out, int max_iterations,
                              double tolerance) {
  NETCONST_CHECK(!a.empty(), "rank-1 approximation of an empty matrix");
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();

  // Power iteration on A^T A for the dominant right singular vector.
  std::vector<double>& u = scratch.u;
  std::vector<double>& v = scratch.v;
  std::vector<double>& w = scratch.w;
  v.assign(n, 1.0 / std::sqrt(static_cast<double>(n)));
  u.resize(m);
  w.resize(n);
  double sigma_prev = 0.0;
  for (int it = 0; it < max_iterations; ++it) {
    linalg::multiply_into(a, v, u);  // A v
    const double unorm = linalg::norm2(u);
    if (unorm == 0.0) {  // A is zero
      out.resize(m, n);
      out.fill(0.0);
      return;
    }
    linalg::scale(1.0 / unorm, u);
    linalg::multiply_transposed_into(a, u, w);  // A^T u
    const double sigma = linalg::norm2(w);
    if (sigma == 0.0) {
      out.resize(m, n);
      out.fill(0.0);
      return;
    }
    for (std::size_t j = 0; j < n; ++j) v[j] = w[j] / sigma;
    if (std::abs(sigma - sigma_prev) <=
        tolerance * std::max(sigma, 1.0)) {
      break;
    }
    sigma_prev = sigma;
  }

  linalg::multiply_into(a, v, u);  // = sigma * u_hat
  out.resize(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) out(i, j) = u[i] * v[j];
  }
}

linalg::Matrix rank1_approximation(const linalg::Matrix& a,
                                   int max_iterations, double tolerance) {
  Rank1Scratch scratch;
  linalg::Matrix out;
  rank1_approximation_into(a, scratch, out, max_iterations, tolerance);
  return out;
}

Result solve_rank1(const linalg::Matrix& a, const Options& options) {
  SolverWorkspace ws;
  Result result;
  solve_rank1(a, options, options.lambda, ws, result);
  return result;
}

void solve_rank1(const linalg::Matrix& a, const Options& options,
                 double lambda, SolverWorkspace& ws, Result& result) {
  NETCONST_CHECK(lambda > 0.0, "rank-1 solver requires lambda > 0");
  const Stopwatch clock;
  const double a_fro = linalg::frobenius_norm(a);
  NETCONST_CHECK(a_fro > 0.0, "rank-1 RPCA of an all-zero matrix");
  reset_result(result);
  ++ws.stats.solves;

  // Threshold scaled to the data so lambda is comparable to the convex
  // solvers (their effective thresholds also scale with ||A||).
  const double mean_abs =
      linalg::l1_norm(a) / static_cast<double>(a.size());
  const double tau = lambda * mean_abs;

  ws.e.resize(a.rows(), a.cols());
  ws.e.fill(0.0);
  double prev_residual = std::numeric_limits<double>::infinity();
  for (int k = 0; k < options.max_iterations; ++k) {
    linalg::sub(a, ws.e, ws.target);
    rank1_approximation_into(ws.target, ws.rank1, ws.d);

    linalg::sub(a, ws.d, ws.target);
    linalg::soft_threshold_into(ws.target, tau, ws.e);

    linalg::sub_sub(a, ws.d, ws.e, ws.residual);
    result.residual = linalg::frobenius_norm(ws.residual) / a_fro;
    result.iterations = k + 1;
    // The soft threshold leaves a floor of magnitude-tau residual, so
    // converge on the *change* of the residual rather than its value.
    if (std::abs(prev_residual - result.residual) <= options.tolerance) {
      result.converged = true;
      break;
    }
    prev_residual = result.residual;
  }

  result.rank = 1;
  result.low_rank.swap(ws.d);
  result.sparse.swap(ws.e);
  result.solve_seconds = clock.seconds();
}

void polish_rank1(const linalg::Matrix& a, Result& result, double lambda,
                  int max_iterations, double tolerance) {
  SolverWorkspace ws;
  polish_rank1(a, result, lambda, max_iterations, tolerance, ws);
}

void polish_rank1(const linalg::Matrix& a, Result& result, double lambda,
                  int max_iterations, double tolerance, SolverWorkspace& ws) {
  NETCONST_CHECK(lambda > 0.0, "polish requires lambda > 0");
  NETCONST_CHECK(max_iterations > 0 && tolerance > 0.0,
                 "polish needs positive iteration budget and tolerance");
  NETCONST_CHECK(result.low_rank.same_shape(a) && result.sparse.same_shape(a),
                 "polish factors do not match the data shape");
  const double a_fro = linalg::frobenius_norm(a);
  NETCONST_CHECK(a_fro > 0.0, "polish of an all-zero matrix");
  // Same threshold scaling as solve_rank1, so a polished convex solve
  // and a plain Rank1 solve describe the same fixed point.
  const double mean_abs =
      linalg::l1_norm(a) / static_cast<double>(a.size());
  const double tau = lambda * mean_abs;

  result.polished = true;
  result.polish_converged = false;
  for (int k = 0; k < max_iterations; ++k) {
    // Next iterates into ws.d / ws.e; current ones stay in the result
    // until the swap below, so the change metric sees both.
    linalg::sub(a, result.sparse, ws.target);
    rank1_approximation_into(ws.target, ws.rank1, ws.d);

    linalg::sub(a, ws.d, ws.target);
    linalg::soft_threshold_into(ws.target, tau, ws.e);

    double change = 0.0, scale = 0.0;
    const auto dn = ws.d.data();
    const auto dc = result.low_rank.data();
    const auto en = ws.e.data();
    const auto ec = result.sparse.data();
    for (std::size_t idx = 0; idx < dn.size(); ++idx) {
      const double dd = dn[idx] - dc[idx];
      const double de = en[idx] - ec[idx];
      change += dd * dd + de * de;
      scale += dn[idx] * dn[idx] + en[idx] * en[idx];
    }
    result.low_rank.swap(ws.d);
    result.sparse.swap(ws.e);
    result.polish_iterations = k + 1;
    if (std::sqrt(change) <= tolerance * std::sqrt(scale)) {
      result.polish_converged = true;
      break;
    }
  }

  linalg::sub_sub(a, result.low_rank, result.sparse, ws.residual);
  result.residual = linalg::frobenius_norm(ws.residual) / a_fro;
  result.rank = 1;
}

}  // namespace netconst::rpca
