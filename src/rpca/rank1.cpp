#include "rpca/rank1.hpp"

#include <cmath>
#include <limits>

#include "linalg/blas.hpp"
#include "linalg/norms.hpp"
#include "linalg/shrinkage.hpp"
#include "support/error.hpp"
#include "support/stopwatch.hpp"

namespace netconst::rpca {

linalg::Matrix rank1_approximation(const linalg::Matrix& a,
                                   int max_iterations, double tolerance) {
  NETCONST_CHECK(!a.empty(), "rank-1 approximation of an empty matrix");
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();

  // Power iteration on A^T A for the dominant right singular vector.
  std::vector<double> v(n, 1.0 / std::sqrt(static_cast<double>(n)));
  double sigma_prev = 0.0;
  for (int it = 0; it < max_iterations; ++it) {
    std::vector<double> u = linalg::multiply(a, v);   // A v
    const double unorm = linalg::norm2(u);
    if (unorm == 0.0) return linalg::Matrix(m, n);    // A is zero
    linalg::scale(1.0 / unorm, u);
    std::vector<double> w = linalg::multiply_transposed(a, u);  // A^T u
    const double sigma = linalg::norm2(w);
    if (sigma == 0.0) return linalg::Matrix(m, n);
    for (std::size_t j = 0; j < n; ++j) v[j] = w[j] / sigma;
    if (std::abs(sigma - sigma_prev) <=
        tolerance * std::max(sigma, 1.0)) {
      break;
    }
    sigma_prev = sigma;
  }

  const std::vector<double> u = linalg::multiply(a, v);  // = sigma * u_hat
  linalg::Matrix d(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) d(i, j) = u[i] * v[j];
  }
  return d;
}

Result solve_rank1(const linalg::Matrix& a, const Options& options) {
  NETCONST_CHECK(options.lambda > 0.0, "rank-1 solver requires lambda > 0");
  const Stopwatch clock;
  const double a_fro = linalg::frobenius_norm(a);
  NETCONST_CHECK(a_fro > 0.0, "rank-1 RPCA of an all-zero matrix");

  // Threshold scaled to the data so lambda is comparable to the convex
  // solvers (their effective thresholds also scale with ||A||).
  const double mean_abs =
      linalg::l1_norm(a) / static_cast<double>(a.size());
  const double tau = options.lambda * mean_abs;

  linalg::Matrix e(a.rows(), a.cols());
  linalg::Matrix d;
  Result result;
  double prev_residual = std::numeric_limits<double>::infinity();
  for (int k = 0; k < options.max_iterations; ++k) {
    linalg::Matrix target = a;
    target -= e;
    d = rank1_approximation(target);

    linalg::Matrix etarget = a;
    etarget -= d;
    e = linalg::soft_threshold(etarget, tau);

    linalg::Matrix residual = a;
    residual -= d;
    residual -= e;
    result.residual = linalg::frobenius_norm(residual) / a_fro;
    result.iterations = k + 1;
    // The soft threshold leaves a floor of magnitude-tau residual, so
    // converge on the *change* of the residual rather than its value.
    if (std::abs(prev_residual - result.residual) <= options.tolerance) {
      result.converged = true;
      break;
    }
    prev_residual = result.residual;
  }

  result.rank = 1;
  result.low_rank = std::move(d);
  result.sparse = std::move(e);
  result.solve_seconds = clock.seconds();
  return result;
}

void polish_rank1(const linalg::Matrix& a, Result& result, double lambda,
                  int max_iterations, double tolerance) {
  NETCONST_CHECK(lambda > 0.0, "polish requires lambda > 0");
  NETCONST_CHECK(max_iterations > 0 && tolerance > 0.0,
                 "polish needs positive iteration budget and tolerance");
  NETCONST_CHECK(result.low_rank.same_shape(a) && result.sparse.same_shape(a),
                 "polish factors do not match the data shape");
  const double a_fro = linalg::frobenius_norm(a);
  NETCONST_CHECK(a_fro > 0.0, "polish of an all-zero matrix");
  // Same threshold scaling as solve_rank1, so a polished convex solve
  // and a plain Rank1 solve describe the same fixed point.
  const double mean_abs =
      linalg::l1_norm(a) / static_cast<double>(a.size());
  const double tau = lambda * mean_abs;

  linalg::Matrix d = std::move(result.low_rank);
  linalg::Matrix e = std::move(result.sparse);
  result.polished = true;
  result.polish_converged = false;
  for (int k = 0; k < max_iterations; ++k) {
    linalg::Matrix target = a;
    target -= e;
    linalg::Matrix d_next = rank1_approximation(target);

    linalg::Matrix e_target = a;
    e_target -= d_next;
    linalg::Matrix e_next = linalg::soft_threshold(e_target, tau);

    double change = 0.0, scale = 0.0;
    for (std::size_t idx = 0; idx < d.data().size(); ++idx) {
      const double dd = d_next.data()[idx] - d.data()[idx];
      const double de = e_next.data()[idx] - e.data()[idx];
      change += dd * dd + de * de;
      scale += d_next.data()[idx] * d_next.data()[idx] +
               e_next.data()[idx] * e_next.data()[idx];
    }
    d = std::move(d_next);
    e = std::move(e_next);
    result.polish_iterations = k + 1;
    if (std::sqrt(change) <= tolerance * std::sqrt(scale)) {
      result.polish_converged = true;
      break;
    }
  }

  linalg::Matrix residual = a;
  residual -= d;
  residual -= e;
  result.residual = linalg::frobenius_norm(residual) / a_fro;
  result.rank = 1;
  result.low_rank = std::move(d);
  result.sparse = std::move(e);
}

}  // namespace netconst::rpca
