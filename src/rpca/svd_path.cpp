#include "rpca/svd_path.hpp"

#include <algorithm>

#include "linalg/randomized_svd.hpp"

namespace netconst::rpca {
namespace {

// The sketch only pays off where the exact path would hit the
// allocating general SVD: wide-enough inputs the Gram fast path cannot
// serve. `always` overrides for A/B tests.
bool randomized_eligible(const linalg::Matrix& a, const Options& options) {
  const RandomizedSvdPolicy& policy = options.randomized;
  if (!policy.enabled) return false;
  if (a.rows() > a.cols()) return false;
  if (policy.always) return true;
  return !linalg::gram_fast_path_applies(a, options.svd);
}

linalg::RandomizedSvdOptions sketch_options(
    const RandomizedSvdPolicy& policy) {
  linalg::RandomizedSvdOptions opt;
  opt.oversampling = policy.oversampling;
  opt.power_iterations = policy.power_iterations;
  return opt;
}

// Clamp the adaptive target and seed the workspace stream on first use.
std::size_t prepare_target(const linalg::Matrix& a,
                           const RandomizedSvdPolicy& policy,
                           SolverWorkspace& ws) {
  RandomizedSvtState& state = ws.randomized;
  if (!state.seeded) {
    state.rng.reseed(policy.seed);
    state.seeded = true;
  }
  const std::size_t cap =
      std::min(std::max<std::size_t>(policy.max_rank, 1), a.rows());
  const std::size_t start =
      state.next_rank > 0 ? state.next_rank : policy.min_rank;
  return std::clamp<std::size_t>(start, 1, cap);
}

}  // namespace

linalg::SvtInfo svt_step(const linalg::Matrix& a, double tau,
                         const Options& options, SolverWorkspace& ws,
                         linalg::Matrix& out) {
  if (randomized_eligible(a, options)) {
    const RandomizedSvdPolicy& policy = options.randomized;
    RandomizedSvtState& state = ws.randomized;
    const std::size_t cap =
        std::min(std::max<std::size_t>(policy.max_rank, 1), a.rows());
    std::size_t target = prepare_target(a, policy, ws);
    const linalg::RandomizedSvdOptions opt = sketch_options(policy);

    ++ws.stats.randomized_attempts;
    linalg::RandomizedSvdInfo info = linalg::randomized_svt_into(
        a, tau, target, state.rng, opt, policy.tau_safety * tau,
        policy.error_budget_rel, state.scratch, out);
    if (!info.accepted && target < cap && info.sketch < a.rows()) {
      // One in-call growth: double the rank budget before giving up on
      // the sketch for this step.
      target = std::min(cap, std::max(target * 2, target + 4));
      ++ws.stats.randomized_retries;
      ++ws.stats.randomized_attempts;
      info = linalg::randomized_svt_into(
          a, tau, target, state.rng, opt, policy.tau_safety * tau,
          policy.error_budget_rel, state.scratch, out);
    }
    if (info.accepted) {
      ++ws.stats.randomized_accepts;
      state.next_rank = std::clamp<std::size_t>(
          std::max(info.rank + 1, policy.min_rank), 1, cap);
      linalg::SvtInfo result;
      result.rank = info.rank;
      result.top_singular_value = info.top_singular_value;
      result.used_scratch = true;
      return result;
    }
    ++ws.stats.randomized_fallbacks;
    // Remember the reject: the next step starts from the grown target
    // rather than re-learning it.
    state.next_rank = target;
  }
  return linalg::singular_value_threshold_into(a, tau, options.svd, ws.svt,
                                               out);
}

void low_rank_step(const linalg::Matrix& a, std::size_t k,
                   const Options& options, SolverWorkspace& ws,
                   linalg::Matrix& out) {
  if (k >= 1 && randomized_eligible(a, options)) {
    const RandomizedSvdPolicy& policy = options.randomized;
    RandomizedSvtState& state = ws.randomized;
    prepare_target(a, policy, ws);
    ++ws.stats.randomized_attempts;
    const linalg::RandomizedSvdInfo info = linalg::randomized_low_rank_into(
        a, k, state.rng, sketch_options(policy), 0.0,
        policy.error_budget_rel, state.scratch, out);
    if (info.accepted) {
      ++ws.stats.randomized_accepts;
      return;
    }
    ++ws.stats.randomized_fallbacks;
  }
  linalg::low_rank_approximation_into(a, k, options.svd, ws.svt, out);
}

}  // namespace netconst::rpca
