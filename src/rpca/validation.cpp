#include "rpca/validation.hpp"

#include <cmath>

#include "linalg/blas.hpp"
#include "linalg/norms.hpp"
#include "support/error.hpp"

namespace netconst::rpca {

SyntheticProblem make_synthetic(const SyntheticSpec& spec, Rng& rng) {
  NETCONST_CHECK(spec.rank > 0 && spec.rank <= std::min(spec.rows, spec.cols),
                 "synthetic rank out of range");
  NETCONST_CHECK(spec.sparsity >= 0.0 && spec.sparsity <= 1.0,
                 "synthetic sparsity out of range");
  SyntheticProblem problem;

  // D* = L R^T with Gaussian factors; this yields exact rank `rank`
  // almost surely.
  linalg::Matrix left(spec.rows, spec.rank);
  linalg::Matrix right(spec.cols, spec.rank);
  for (auto& v : left.data()) v = rng.normal(0.0, spec.low_rank_scale);
  for (auto& v : right.data()) v = rng.normal(0.0, spec.low_rank_scale);
  problem.low_rank = linalg::multiply(left, right.transposed());

  // E*: uniformly random support, entries uniform in +-sparse_magnitude.
  problem.sparse = linalg::Matrix(spec.rows, spec.cols);
  const std::size_t total = spec.rows * spec.cols;
  const auto corrupted = static_cast<std::size_t>(
      std::llround(spec.sparsity * static_cast<double>(total)));
  for (std::size_t idx : rng.sample_without_replacement(total, corrupted)) {
    double value = rng.uniform(-spec.sparse_magnitude, spec.sparse_magnitude);
    // Keep corruption away from zero so the support is well defined.
    if (std::abs(value) < 0.1 * spec.sparse_magnitude) {
      value = (value >= 0.0 ? 1.0 : -1.0) * 0.1 * spec.sparse_magnitude;
    }
    problem.sparse.data()[idx] = value;
  }

  problem.data = problem.low_rank;
  problem.data += problem.sparse;
  return problem;
}

RecoveryError measure_recovery(const SyntheticProblem& truth,
                               const linalg::Matrix& low_rank,
                               const linalg::Matrix& sparse,
                               double support_tol) {
  NETCONST_CHECK(low_rank.same_shape(truth.low_rank),
                 "recovery shape mismatch (low rank)");
  NETCONST_CHECK(sparse.same_shape(truth.sparse),
                 "recovery shape mismatch (sparse)");
  RecoveryError err;

  linalg::Matrix dd = low_rank;
  dd -= truth.low_rank;
  const double dstar = linalg::frobenius_norm(truth.low_rank);
  err.low_rank_error =
      dstar > 0.0 ? linalg::frobenius_norm(dd) / dstar
                  : linalg::frobenius_norm(dd);

  linalg::Matrix de = sparse;
  de -= truth.sparse;
  err.sparse_error = linalg::frobenius_norm(de) /
                     std::max(linalg::frobenius_norm(truth.sparse), 1.0);

  // Support F1 at a tolerance relative to the data scale.
  const double cutoff = support_tol * std::max(linalg::max_abs(truth.data),
                                               1e-300);
  std::size_t tp = 0, fp = 0, fn = 0;
  for (std::size_t k = 0; k < sparse.data().size(); ++k) {
    const bool est = std::abs(sparse.data()[k]) > cutoff;
    const bool real = std::abs(truth.sparse.data()[k]) > cutoff;
    if (est && real) ++tp;
    if (est && !real) ++fp;
    if (!est && real) ++fn;
  }
  const double denom = static_cast<double>(2 * tp + fp + fn);
  err.support_f1 = denom > 0.0 ? 2.0 * static_cast<double>(tp) / denom : 1.0;
  return err;
}

}  // namespace netconst::rpca
