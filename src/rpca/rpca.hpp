// Robust Principal Component Analysis: A = D + E with D low-rank and E
// sparse, solved through the convex surrogate
//     minimize ||D||_* + lambda ||E||_1   s.t.  A = D + E.
//
// This is the mathematical core of the paper: the TP-matrix of a virtual
// cluster is decomposed into the rank-one constant component (TC-matrix)
// and the sparse error component (TE-matrix). Three solvers are provided:
//
//  * Apg     — accelerated proximal gradient (Ji & Ye), the paper's choice;
//  * Ialm    — inexact augmented Lagrange multipliers, a faster alternative
//              used as an ablation;
//  * RankOne — alternating projection with a hard rank-1 constraint,
//              matching the paper's problem statement (rank(N_D) = 1)
//              exactly rather than through the nuclear-norm surrogate;
//  * StablePcp — stable principal component pursuit, which additionally
//              tolerates dense small noise (the volatility band) in the
//              residual instead of forcing it into E;
//  * StablePcpTf — time-frequency constrained stable PCP (Hu/Wang/Yin),
//              which further band-limits D along the time axis so slow
//              diurnal/baseline structure stays in the constant
//              component while fast churn is pushed out of it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "linalg/matrix.hpp"
#include "linalg/svd.hpp"

namespace netconst::obs {
class SolverProbe;  // per-iteration convergence observer (obs/convergence.hpp)
}

namespace netconst::rpca {

enum class Solver { Apg, Ialm, RankOne, StablePcp, StablePcpTf };

// Defined in workspace.hpp; forward-declared so the workspace-based
// solve overloads below don't force every client through that header.
struct SolverWorkspace;
struct Rank1Scratch;

/// Human-readable solver name (for bench output).
std::string solver_name(Solver solver);

/// Seed for warm-starting a solve from the factors of a previous solve
/// of a nearby problem (e.g. the same sliding window shifted by one
/// row). `mu`/`mu_floor` carry the continuation state of the previous
/// APG solve so the warm solve can skip the mu-decay phase (a seed with
/// `mu > 0` never pays for a spectral-norm estimate; when `mu_floor` is
/// unset the solver derives it as 1e-9 * mu). Leave both at 0 to let the
/// solver re-derive its schedule.
struct WarmStart {
  linalg::Matrix low_rank;  // previous D, must match the data shape
  linalg::Matrix sparse;    // previous E, must match the data shape
  double mu = 0.0;          // continuation value the previous solve ended at
  double mu_floor = 0.0;    // the mu_bar it was decaying toward

  bool empty() const { return low_rank.empty() && sparse.empty(); }
};

/// Policy for routing the solvers' SVT steps through the randomized
/// sketch (linalg/randomized_svd.hpp) instead of a full decomposition.
/// Off by default: the exact path is what the bit-exact equivalence
/// against rpca::reference is pinned to, and the Gram fast path already
/// serves paper-shaped windows (<= 64 snapshot rows) allocation-free.
/// Enable for long windows, where the exact path would fall back to the
/// allocating Jacobi SVD every iteration. Every randomized application
/// is verified: the truncation-error bound ||A - Q Q^T A||_F must stay
/// within max(tau_safety * tau, error_budget_rel * ||A||_F) or the step
/// is redone exactly (WorkspaceStats::randomized_fallbacks counts the
/// trips). See docs/ALGORITHMS.md "Incremental RPCA & randomized SVD".
struct RandomizedSvdPolicy {
  bool enabled = false;
  /// Also sketch on shapes the Gram fast path serves (A/B tests and
  /// ablations; never a win in production).
  bool always = false;
  /// Seed of the workspace's sketch stream. Fixed default so identical
  /// call sequences through fresh workspaces reproduce bit-identically
  /// at any thread count and SIMD level.
  std::uint64_t seed = 0x6e6574636f6e7374ULL;
  std::size_t oversampling = 4;
  int power_iterations = 1;
  /// Initial / floor target rank; the dispatch adapts upward from the
  /// rank the previous SVT step kept (+1 headroom).
  std::size_t min_rank = 2;
  /// Hard cap on the adaptive target rank. One in-call growth retry is
  /// attempted before falling back to the exact decomposition.
  std::size_t max_rank = 96;
  /// Accept when the truncation bound is below this fraction of the
  /// threshold: every singular value the sketch missed would have been
  /// shrunk to (near) zero anyway.
  double tau_safety = 0.5;
  /// Extra relative budget: also accept when the bound is below this
  /// fraction of ||A||_F — an inexact proximal step whose perturbation
  /// sits orders of magnitude under the solver tolerance. The floor is
  /// set by the bound's own arithmetic: ||A||_F^2 - ||B||_F^2 carries
  /// ~sqrt(size * eps) * ||A||_F of cancellation noise (~5e-7 relative
  /// at paper shapes), so budgets below ~1e-6 reject perfect sketches.
  double error_budget_rel = 1e-6;
};

struct Options {
  /// Sparsity weight. <= 0 selects the standard 1/sqrt(max(m, n)).
  double lambda = 0.0;
  int max_iterations = 500;
  /// Relative convergence tolerance on ||A - D - E||_F / ||A||_F
  /// (Ialm/RankOne) or on the iterate change (Apg).
  double tolerance = 1e-7;
  linalg::SvdOptions svd;
  /// Randomized-SVT routing policy (default off = exact solves).
  RandomizedSvdPolicy randomized;
  /// Optional warm-start seed. Currently honored by Apg; solvers that
  /// do not support seeding run cold and report it via
  /// Result::warm_start_ignored (never silently).
  WarmStart warm_start;
  /// > 0 runs the rank-1 polish after the solver (see polish_rank1):
  /// alternating hard rank-1 projection and soft-thresholding from the
  /// solver's (D, E) until the iterate change drops below
  /// polish_tolerance or this many iterations. The alternation has a
  /// strongly attracting fixed point determined by the data alone, so
  /// polished solves land on the same answer regardless of the path the
  /// solver took to the basin — this is what makes a warm-started solve
  /// exactly reproducible against a cold one. 0 = off (default).
  int polish_iterations = 0;
  /// Relative iterate-change tolerance of the polish alternation.
  double polish_tolerance = 1e-10;
  /// Optional convergence observer, called once per solver iteration
  /// with read-only diagnostics of the live iterates (currently honored
  /// by Apg, the online path's solver). Null — the default — costs the
  /// solver one branch per iteration and computes nothing extra.
  /// Observation never alters an iterate: outputs are byte-identical
  /// with and without a probe.
  obs::SolverProbe* probe = nullptr;
};

struct Result {
  linalg::Matrix low_rank;  // D
  linalg::Matrix sparse;    // E
  int iterations = 0;
  bool converged = false;
  std::size_t rank = 0;          // numerical rank of D
  double residual = 0.0;         // ||A - D - E||_F / ||A||_F
  double solve_seconds = 0.0;    // wall-clock time of the solve
  /// True when the solver seeded its iterates from options.warm_start.
  bool warm_started = false;
  /// True when a seed was supplied but this solver cannot use one (the
  /// solve ran cold).
  bool warm_start_ignored = false;
  /// Continuation state at exit (Apg); feed into the next WarmStart.
  double final_mu = 0.0;
  double mu_floor = 0.0;
  /// Residual of the raw solver output, before any polish. Equals
  /// `residual` when the polish is off. This is the health signal for
  /// warm-start divergence checks (the polished residual carries the
  /// soft-threshold floor and says nothing about the solve itself).
  double solver_residual = 0.0;
  /// True when the rank-1 polish ran on this result.
  bool polished = false;
  /// Iterations the polish used (0 when it did not run).
  int polish_iterations = 0;
  /// True when the polish reached its tolerance (also true when the
  /// polish is off, so gating on !polish_converged only fires when the
  /// polish actually failed to settle).
  bool polish_converged = true;
};

/// Decompose `a` with the chosen solver. Throws ContractViolation on an
/// empty input.
Result solve(const linalg::Matrix& a, Solver solver,
             const Options& options = {});

/// Workspace-based solve: every iterate, panel, and factorization
/// scratch comes from `workspace`, and the factors land in `result`'s
/// existing buffers. Repeated calls with a warm workspace perform zero
/// steady-state heap allocations (see docs/PERFORMANCE.md); `options` is
/// read in place, never copied. Numerically identical to the allocating
/// overload, which routes through this one.
void solve(const linalg::Matrix& a, Solver solver, const Options& options,
           SolverWorkspace& workspace, Result& result);

/// Standard lambda = 1 / sqrt(max(m, n)).
double default_lambda(std::size_t rows, std::size_t cols);

/// The paper's effectiveness metric Norm(E) = ||E||_0 / ||A||_0 with the
/// zero-count taken at `rel_tol * max|A|` (exact zero tests are
/// meaningless in floating point). Result is clamped to [0, 1].
double relative_l0(const linalg::Matrix& e, const linalg::Matrix& a,
                   double rel_tol = 1e-3);

}  // namespace netconst::rpca
