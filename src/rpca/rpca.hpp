// Robust Principal Component Analysis: A = D + E with D low-rank and E
// sparse, solved through the convex surrogate
//     minimize ||D||_* + lambda ||E||_1   s.t.  A = D + E.
//
// This is the mathematical core of the paper: the TP-matrix of a virtual
// cluster is decomposed into the rank-one constant component (TC-matrix)
// and the sparse error component (TE-matrix). Three solvers are provided:
//
//  * Apg     — accelerated proximal gradient (Ji & Ye), the paper's choice;
//  * Ialm    — inexact augmented Lagrange multipliers, a faster alternative
//              used as an ablation;
//  * RankOne — alternating projection with a hard rank-1 constraint,
//              matching the paper's problem statement (rank(N_D) = 1)
//              exactly rather than through the nuclear-norm surrogate;
//  * StablePcp — stable principal component pursuit, which additionally
//              tolerates dense small noise (the volatility band) in the
//              residual instead of forcing it into E.
#pragma once

#include <cstddef>
#include <string>

#include "linalg/matrix.hpp"
#include "linalg/svd.hpp"

namespace netconst::rpca {

enum class Solver { Apg, Ialm, RankOne, StablePcp };

/// Human-readable solver name (for bench output).
std::string solver_name(Solver solver);

struct Options {
  /// Sparsity weight. <= 0 selects the standard 1/sqrt(max(m, n)).
  double lambda = 0.0;
  int max_iterations = 500;
  /// Relative convergence tolerance on ||A - D - E||_F / ||A||_F
  /// (Ialm/RankOne) or on the iterate change (Apg).
  double tolerance = 1e-7;
  linalg::SvdOptions svd;
};

struct Result {
  linalg::Matrix low_rank;  // D
  linalg::Matrix sparse;    // E
  int iterations = 0;
  bool converged = false;
  std::size_t rank = 0;          // numerical rank of D
  double residual = 0.0;         // ||A - D - E||_F / ||A||_F
  double solve_seconds = 0.0;    // wall-clock time of the solve
};

/// Decompose `a` with the chosen solver. Throws ContractViolation on an
/// empty input.
Result solve(const linalg::Matrix& a, Solver solver,
             const Options& options = {});

/// Standard lambda = 1 / sqrt(max(m, n)).
double default_lambda(std::size_t rows, std::size_t cols);

/// The paper's effectiveness metric Norm(E) = ||E||_0 / ||A||_0 with the
/// zero-count taken at `rel_tol * max|A|` (exact zero tests are
/// meaningless in floating point). Result is clamped to [0, 1].
double relative_l0(const linalg::Matrix& e, const linalg::Matrix& a,
                   double rel_tol = 1e-3);

}  // namespace netconst::rpca
