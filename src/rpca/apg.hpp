// Accelerated proximal gradient RPCA solver (Ji & Ye's accelerated
// gradient method for trace-norm minimization, the algorithm the paper
// uses via the reference APG sample code).
//
// Solves the relaxed problem
//   min_{D,E}  mu ||D||_* + mu lambda ||E||_1 + 1/2 ||A - D - E||_F^2
// with Nesterov acceleration and a continuation schedule mu_k -> mu_bar.
#pragma once

#include "rpca/rpca.hpp"

namespace netconst::rpca {

/// See rpca::solve with Solver::Apg. `options.lambda` must be positive.
Result solve_apg(const linalg::Matrix& a, const Options& options);

/// Workspace variant: all iterates and factorization scratch live in
/// `ws`, so repeated solves of same-shaped problems allocate nothing.
/// `lambda` is pre-resolved by the caller (must be > 0); options.lambda
/// is ignored so the dispatcher never has to copy Options. Numerically
/// identical to reference::solve_apg, except that a warm seed carrying
/// `mu > 0` always resumes its continuation (deriving the floor as
/// 1e-9 * mu when the seed has none) instead of re-estimating the
/// spectral norm only to discard it.
void solve_apg(const linalg::Matrix& a, const Options& options,
               double lambda, SolverWorkspace& ws, Result& result);

}  // namespace netconst::rpca
