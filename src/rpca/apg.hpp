// Accelerated proximal gradient RPCA solver (Ji & Ye's accelerated
// gradient method for trace-norm minimization, the algorithm the paper
// uses via the reference APG sample code).
//
// Solves the relaxed problem
//   min_{D,E}  mu ||D||_* + mu lambda ||E||_1 + 1/2 ||A - D - E||_F^2
// with Nesterov acceleration and a continuation schedule mu_k -> mu_bar.
#pragma once

#include "rpca/rpca.hpp"

namespace netconst::rpca {

/// See rpca::solve with Solver::Apg. `options.lambda` must be positive.
Result solve_apg(const linalg::Matrix& a, const Options& options);

}  // namespace netconst::rpca
