// Collective operation cost evaluation and execution.
//
// Two evaluators share the tree abstractions:
//  * alpha-beta estimation against a PerformanceMatrix — the model the
//    paper uses both to predict performance (Algorithm 1's expected time
//    t') and to score trace-replay experiments;
//  * execution inside the flow simulator — transfers actually contend
//    with background traffic on the simulated topology (Section V-E).
//
// Reduce and gather are evaluated as the duals of broadcast and scatter
// (reversed link directions), matching the paper's observation that the
// dual operations behave identically.
#pragma once

#include <cstdint>

#include "collective/comm_tree.hpp"
#include "netmodel/perf_matrix.hpp"
#include "simnet/simulator.hpp"

namespace netconst::collective {

enum class Collective { Broadcast, Scatter, Reduce, Gather };

const char* collective_name(Collective op);

/// Estimated completion time of the collective over `tree` with per-node
/// payload `bytes`, under the alpha-beta model of `performance`. Sends
/// from one node are sequential in stored child order; scatter/gather
/// edges carry subtree_size * bytes.
double collective_time(const CommTree& tree,
                       const netmodel::PerformanceMatrix& performance,
                       Collective op, std::uint64_t bytes);

/// All-to-all implemented as a gather followed by a broadcast of the
/// aggregate (the MPICH2-style composite both real-world applications
/// use). `bytes` is the per-member contribution; the broadcast carries
/// size * bytes.
double all_to_all_time(const CommTree& tree,
                       const netmodel::PerformanceMatrix& performance,
                       std::uint64_t bytes);

/// Execute the collective inside the simulator: tree member k runs on
/// host `hosts[k]`. Transfers contend with background traffic. Returns
/// the elapsed simulated time. The simulator clock advances.
double run_collective_sim(simnet::FlowSimulator& simulator,
                          const std::vector<simnet::NodeId>& hosts,
                          const CommTree& tree, Collective op,
                          std::uint64_t bytes);

}  // namespace netconst::collective
