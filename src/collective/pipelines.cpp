#include "collective/pipelines.hpp"

#include <algorithm>
#include <limits>

#include "collective/collective_ops.hpp"
#include "support/error.hpp"

namespace netconst::collective {

Chain rank_order_chain(std::size_t size, std::size_t root) {
  NETCONST_CHECK(size >= 1, "chain needs at least one member");
  NETCONST_CHECK(root < size, "root out of range");
  Chain chain(size);
  for (std::size_t k = 0; k < size; ++k) chain[k] = (root + k) % size;
  return chain;
}

Chain greedy_chain(const linalg::Matrix& weights, std::size_t root) {
  NETCONST_CHECK(weights.rows() == weights.cols(),
                 "weight matrix must be square");
  const std::size_t n = weights.rows();
  NETCONST_CHECK(root < n, "root out of range");
  Chain chain{root};
  std::vector<bool> used(n, false);
  used[root] = true;
  while (chain.size() < n) {
    const std::size_t tail = chain.back();
    std::size_t best = n;
    double best_weight = std::numeric_limits<double>::infinity();
    for (std::size_t v = 0; v < n; ++v) {
      if (used[v]) continue;
      if (weights(tail, v) < best_weight) {
        best_weight = weights(tail, v);
        best = v;
      }
    }
    NETCONST_ASSERT(best < n);
    used[best] = true;
    chain.push_back(best);
  }
  return chain;
}

bool is_valid_chain(const Chain& chain, std::size_t size,
                    std::size_t root) {
  if (chain.size() != size || size == 0 || chain.front() != root) {
    return false;
  }
  std::vector<bool> seen(size, false);
  for (std::size_t v : chain) {
    if (v >= size || seen[v]) return false;
    seen[v] = true;
  }
  return true;
}

double pipeline_broadcast_time(const Chain& chain,
                               const netmodel::PerformanceMatrix& performance,
                               std::uint64_t bytes, std::size_t segments) {
  NETCONST_CHECK(is_valid_chain(chain, performance.size(), chain.empty()
                                                               ? 0
                                                               : chain[0]),
                 "invalid chain");
  NETCONST_CHECK(segments >= 1, "need at least one segment");
  if (chain.size() <= 1) return 0.0;
  const std::uint64_t segment_bytes =
      (bytes + segments - 1) / segments;  // last segment padded up

  // Fill phase: the first segment traverses every hop; steady state: the
  // remaining segments drain through the slowest hop.
  double fill = 0.0;
  double slowest_hop = 0.0;
  for (std::size_t k = 0; k + 1 < chain.size(); ++k) {
    const double hop =
        performance.transfer_time(chain[k], chain[k + 1], segment_bytes);
    fill += hop;
    slowest_hop = std::max(slowest_hop, hop);
  }
  return fill + static_cast<double>(segments - 1) * slowest_hop;
}

double ring_allgather_time(const Chain& ring,
                           const netmodel::PerformanceMatrix& performance,
                           std::uint64_t bytes) {
  NETCONST_CHECK(
      is_valid_chain(ring, performance.size(), ring.empty() ? 0 : ring[0]),
      "invalid ring");
  const std::size_t n = ring.size();
  if (n <= 1) return 0.0;
  // Every round all members forward concurrently; the round is gated by
  // the slowest ring link (including the closing edge).
  double slowest = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    slowest = std::max(
        slowest,
        performance.transfer_time(ring[k], ring[(k + 1) % n], bytes));
  }
  return static_cast<double>(n - 1) * slowest;
}

double ring_allreduce_time(const Chain& ring,
                           const netmodel::PerformanceMatrix& performance,
                           std::uint64_t bytes) {
  NETCONST_CHECK(
      is_valid_chain(ring, performance.size(), ring.empty() ? 0 : ring[0]),
      "invalid ring");
  const std::size_t n = ring.size();
  if (n <= 1) return 0.0;
  const std::uint64_t block =
      (bytes + n - 1) / static_cast<std::uint64_t>(n);
  double slowest = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    slowest = std::max(
        slowest,
        performance.transfer_time(ring[k], ring[(k + 1) % n], block));
  }
  // Reduce-scatter: N-1 rounds; allgather: N-1 rounds.
  return 2.0 * static_cast<double>(n - 1) * slowest;
}

double tree_allreduce_time(const CommTree& tree,
                           const netmodel::PerformanceMatrix& performance,
                           std::uint64_t bytes) {
  return collective_time(tree, performance, Collective::Reduce, bytes) +
         collective_time(tree, performance, Collective::Broadcast, bytes);
}

double scatter_allgather_broadcast_time(
    const CommTree& tree, const Chain& ring,
    const netmodel::PerformanceMatrix& performance, std::uint64_t bytes) {
  NETCONST_CHECK(tree.size() == performance.size(),
                 "tree size does not match the performance matrix");
  const std::uint64_t piece =
      (bytes + tree.size() - 1) / static_cast<std::uint64_t>(tree.size());
  const double scatter =
      collective_time(tree, performance, Collective::Scatter, piece);
  return scatter + ring_allgather_time(ring, performance, piece);
}

std::size_t best_segment_count(const Chain& chain,
                               const netmodel::PerformanceMatrix& performance,
                               std::uint64_t bytes,
                               std::size_t max_segments) {
  NETCONST_CHECK(max_segments >= 1, "need at least one segment");
  std::size_t best = 1;
  double best_time = pipeline_broadcast_time(chain, performance, bytes, 1);
  for (std::size_t s = 2; s <= max_segments; ++s) {
    const double t = pipeline_broadcast_time(chain, performance, bytes, s);
    if (t < best_time) {
      best_time = t;
      best = s;
    }
  }
  return best;
}

}  // namespace netconst::collective
