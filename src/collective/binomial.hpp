// Rank-order binomial tree — the MPICH2 default used as the paper's
// Baseline. Peers are chosen by rank arithmetic only; network
// performance plays no role.
#pragma once

#include "collective/comm_tree.hpp"

namespace netconst::collective {

/// Binomial tree over `size` members rooted at `root` using the MPICH
/// construction: relative rank r receives from r - 2^k where 2^k is the
/// highest power of two in r; sends go to r + 2^k in decreasing subtree
/// order (largest subtree first).
CommTree binomial_tree(std::size_t size, std::size_t root);

}  // namespace netconst::collective
