// Fastest-Node-First communication tree (Banikazemi, Moorthy & Panda).
//
// Given a pair-wise weight matrix (smaller = better link, e.g. predicted
// transfer time), FNF grows a binomial-shaped tree: in every iteration
// each already-selected machine, in selection order, grabs the
// best-performing link to a not-yet-selected machine. This is the
// network-performance-aware optimization the paper drives with the
// RPCA constant component.
#pragma once

#include "collective/comm_tree.hpp"
#include "linalg/matrix.hpp"

namespace netconst::collective {

/// Build the FNF tree from an n x n weight matrix (weights(i, j) is the
/// cost of the link i -> j; the diagonal is ignored).
CommTree fnf_tree(const linalg::Matrix& weights, std::size_t root);

/// Exhaustive-search optimal tree for tiny clusters (n <= 8): minimizes
/// the alpha-beta completion time of a broadcast of `bytes`. Used by the
/// property tests as the near-optimality reference for FNF.
CommTree optimal_broadcast_tree(const linalg::Matrix& weights,
                                std::size_t root);

}  // namespace netconst::collective
