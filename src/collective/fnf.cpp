#include "collective/fnf.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "support/error.hpp"

namespace netconst::collective {

CommTree fnf_tree(const linalg::Matrix& weights, std::size_t root) {
  NETCONST_CHECK(weights.rows() == weights.cols(),
                 "weight matrix must be square");
  const std::size_t n = weights.rows();
  NETCONST_CHECK(root < n, "root out of range");
  CommTree tree(n, root);

  std::vector<std::size_t> selected{root};  // S, in selection order
  std::vector<bool> in_tree(n, false);
  in_tree[root] = true;
  std::size_t remaining = n - 1;  // |U|

  while (remaining > 0) {
    // One iteration: every machine currently in S picks one receiver.
    std::vector<std::size_t> added_this_iteration;
    const std::size_t senders = selected.size();
    for (std::size_t s_idx = 0; s_idx < senders && remaining > 0; ++s_idx) {
      const std::size_t sender = selected[s_idx];
      std::size_t best = n;
      double best_weight = std::numeric_limits<double>::infinity();
      for (std::size_t u = 0; u < n; ++u) {
        if (in_tree[u]) continue;
        if (weights(sender, u) < best_weight) {
          best_weight = weights(sender, u);
          best = u;
        }
      }
      NETCONST_ASSERT(best < n);
      tree.add_edge(sender, best);
      in_tree[best] = true;  // removed from U immediately
      added_this_iteration.push_back(best);
      --remaining;
    }
    // New receivers join S after the iteration.
    selected.insert(selected.end(), added_this_iteration.begin(),
                    added_this_iteration.end());
  }
  NETCONST_ASSERT(tree.complete());
  return tree;
}

namespace {

// Optimal-order broadcast completion for a tree given as children lists:
// for a fixed shape, sending to the child with the larger remaining
// subtree completion first is optimal (exchange argument), so this value
// is the true optimum over all send orders of the shape.
double children_list_cost(const std::vector<std::vector<std::size_t>>& kids,
                          const linalg::Matrix& weights, std::size_t node) {
  if (kids[node].empty()) return 0.0;
  std::vector<std::pair<double, double>> costs;  // {downstream, transfer}
  costs.reserve(kids[node].size());
  for (std::size_t child : kids[node]) {
    costs.push_back({children_list_cost(kids, weights, child),
                     weights(node, child)});
  }
  std::sort(costs.begin(), costs.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  double send_start = 0.0, completion = 0.0;
  for (const auto& [downstream, transfer] : costs) {
    send_start += transfer;
    completion = std::max(completion, send_start + downstream);
  }
  return completion;
}

}  // namespace

namespace {

// Rebuild a children-list shape into a CommTree with every node's
// children attached in the optimal send order (descending downstream
// completion), so the stored order realizes the optimized cost.
void attach_in_optimal_order(
    const std::vector<std::vector<std::size_t>>& kids,
    const linalg::Matrix& weights, std::size_t node, CommTree& out) {
  std::vector<std::pair<double, std::size_t>> order;
  for (std::size_t child : kids[node]) {
    order.push_back({children_list_cost(kids, weights, child), child});
  }
  std::sort(order.begin(), order.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (const auto& [completion, child] : order) {
    out.add_edge(node, child);
    attach_in_optimal_order(kids, weights, child, out);
  }
}

}  // namespace

CommTree optimal_broadcast_tree(const linalg::Matrix& weights,
                                std::size_t root) {
  NETCONST_CHECK(weights.rows() == weights.cols(),
                 "weight matrix must be square");
  const std::size_t n = weights.rows();
  NETCONST_CHECK(root < n, "root out of range");
  NETCONST_CHECK(n <= 8, "exhaustive search is limited to n <= 8");
  NETCONST_ASSERT(n >= 1);

  // Enumerate every parent vector (each non-root node picks any other
  // node as its parent: (n-1)^(n-1) candidates, <= 7^7 for n = 8) and
  // keep the acyclic ones — a genuinely exhaustive sweep over rooted
  // spanning trees.
  std::vector<std::size_t> non_root;
  for (std::size_t v = 0; v < n; ++v) {
    if (v != root) non_root.push_back(v);
  }
  std::vector<std::size_t> parent(n, n);
  std::vector<std::size_t> choice(non_root.size(), 0);
  std::vector<std::vector<std::size_t>> kids(n);
  std::vector<std::vector<std::size_t>> best_kids(n);
  double best_cost = std::numeric_limits<double>::infinity();

  for (;;) {
    // Decode choices into a parent assignment.
    for (std::size_t k = 0; k < non_root.size(); ++k) {
      const std::size_t v = non_root[k];
      std::size_t p = choice[k];
      if (p >= v) ++p;  // skip self
      parent[v] = p;
    }
    // Validity: every node must reach the root (no cycles).
    bool valid = true;
    for (std::size_t v = 0; v < n && valid; ++v) {
      std::size_t cursor = v;
      std::size_t steps = 0;
      while (cursor != root && steps++ <= n) cursor = parent[cursor];
      valid = cursor == root;
    }
    if (valid) {
      for (auto& k : kids) k.clear();
      for (std::size_t v : non_root) kids[parent[v]].push_back(v);
      const double cost = children_list_cost(kids, weights, root);
      if (cost < best_cost) {
        best_cost = cost;
        best_kids = kids;
      }
    }
    // Advance the mixed-radix counter.
    std::size_t k = 0;
    while (k < choice.size() && ++choice[k] == n - 1) choice[k++] = 0;
    if (k == choice.size()) break;
    if (choice.empty()) break;
  }

  CommTree ordered(n, root);
  if (n > 1) attach_in_optimal_order(best_kids, weights, root, ordered);
  return ordered;
}

}  // namespace netconst::collective
