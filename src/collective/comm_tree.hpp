// Communication tree: the rooted spanning tree over cluster members that
// drives an MPI collective (who sends to whom, and in which order).
// Children order matters — a node performs its sends sequentially in the
// stored order, which is the standard alpha-beta cost model for
// tree-based collectives.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

namespace netconst::collective {

class CommTree {
 public:
  /// Tree over `size` members rooted at `root`; starts with only the
  /// root attached.
  CommTree(std::size_t size, std::size_t root);

  std::size_t size() const { return children_.size(); }
  std::size_t root() const { return root_; }

  /// Attach `child` (not yet attached) under `parent` (already attached).
  /// The child is appended to the parent's send order.
  void add_edge(std::size_t parent, std::size_t child);

  bool attached(std::size_t node) const;
  /// Parent of a node; nullopt for the root. Node must be attached.
  std::optional<std::size_t> parent(std::size_t node) const;
  const std::vector<std::size_t>& children(std::size_t node) const;

  /// True when every member is attached (spanning).
  bool complete() const { return attached_count_ == size(); }
  std::size_t attached_count() const { return attached_count_; }

  /// Nodes in the subtree rooted at `node`, including itself.
  std::size_t subtree_size(std::size_t node) const;

  /// Maximum edge depth from the root.
  std::size_t depth() const;

 private:
  std::size_t root_;
  std::vector<std::vector<std::size_t>> children_;
  std::vector<std::optional<std::size_t>> parent_;
  std::vector<bool> attached_;
  std::size_t attached_count_ = 0;
};

}  // namespace netconst::collective
