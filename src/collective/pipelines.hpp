// Non-tree collective algorithms under the alpha-beta model, as
// network-performance-aware extensions of the paper's framework:
//
//  * pipeline (chain) broadcast — the message is cut into segments that
//    stream down a Hamiltonian chain; for large messages this approaches
//    the bandwidth bound instead of the binomial's log(N) factor;
//  * ring allgather — the classic bandwidth-optimal allgather;
//  * scatter-allgather broadcast (van de Geijn) — scatter down a tree,
//    then ring-allgather the pieces.
//
// Each has a performance-aware planner (chain/ring order chosen greedily
// from a guidance matrix) and a rank-order baseline, mirroring the
// FNF-vs-binomial pairing for trees.
#pragma once

#include <cstdint>
#include <vector>

#include "collective/comm_tree.hpp"
#include "linalg/matrix.hpp"
#include "netmodel/perf_matrix.hpp"

namespace netconst::collective {

/// A visit order of all members; order[0] is the chain head / ring
/// start.
using Chain = std::vector<std::size_t>;

/// Rank-order chain starting at `root` (the baseline).
Chain rank_order_chain(std::size_t size, std::size_t root);

/// Greedy nearest-neighbour chain on a weight matrix (smaller = better),
/// starting at `root` — the network-aware planner.
Chain greedy_chain(const linalg::Matrix& weights, std::size_t root);

/// True if `chain` visits every member of [0, size) exactly once and
/// starts at `root`.
bool is_valid_chain(const Chain& chain, std::size_t size,
                    std::size_t root);

/// Pipelined broadcast of `bytes` cut into `segments` equal parts down
/// the chain: the last node finishes after the full pipe fill plus the
/// remaining segments through the slowest hop.
double pipeline_broadcast_time(const Chain& chain,
                               const netmodel::PerformanceMatrix& performance,
                               std::uint64_t bytes, std::size_t segments);

/// Ring allgather: N-1 rounds, each member forwarding `bytes` to its
/// ring successor; every round is gated by the slowest ring link.
double ring_allgather_time(const Chain& ring,
                           const netmodel::PerformanceMatrix& performance,
                           std::uint64_t bytes);

/// Ring allreduce (reduce-scatter + allgather): 2(N-1) rounds of
/// bytes/N blocks, each gated by the slowest ring link — the
/// bandwidth-optimal allreduce that modern frameworks use.
double ring_allreduce_time(const Chain& ring,
                           const netmodel::PerformanceMatrix& performance,
                           std::uint64_t bytes);

/// Tree allreduce: reduce to the root then broadcast back over the same
/// tree (the latency-optimal small-message variant).
double tree_allreduce_time(const CommTree& tree,
                           const netmodel::PerformanceMatrix& performance,
                           std::uint64_t bytes);

/// van de Geijn broadcast: scatter `bytes` down `tree` (1/N each), then
/// ring-allgather the pieces along `ring`.
double scatter_allgather_broadcast_time(
    const CommTree& tree, const Chain& ring,
    const netmodel::PerformanceMatrix& performance, std::uint64_t bytes);

/// Segment count minimizing the pipeline time for the given chain
/// (scans 1..max_segments).
std::size_t best_segment_count(const Chain& chain,
                               const netmodel::PerformanceMatrix& performance,
                               std::uint64_t bytes,
                               std::size_t max_segments = 64);

}  // namespace netconst::collective
