#include "collective/binomial.hpp"

#include <functional>

#include "support/error.hpp"

namespace netconst::collective {

CommTree binomial_tree(std::size_t size, std::size_t root) {
  NETCONST_CHECK(size >= 1, "tree needs at least one member");
  NETCONST_CHECK(root < size, "root out of range");
  CommTree tree(size, root);
  if (size == 1) return tree;

  // Highest power of two < size (the root's first send offset).
  std::size_t top = 1;
  while (top * 2 < size) top *= 2;

  // MPICH convention: relative rank r receives from r - lowbit(r); the
  // children of p are p + m for powers of two m below p's own receive
  // offset (below 2*top for the root), attached in decreasing order —
  // the largest subtree is sent to first.
  const std::function<void(std::size_t, std::size_t)> attach =
      [&](std::size_t p, std::size_t max_offset) {
        for (std::size_t m = max_offset; m >= 1; m /= 2) {
          if (p + m < size) {
            tree.add_edge((p + root) % size, (p + m + root) % size);
            attach(p + m, m / 2);
          }
          if (m == 1) break;
        }
      };
  attach(0, top);
  NETCONST_ASSERT(tree.complete());
  return tree;
}

}  // namespace netconst::collective
