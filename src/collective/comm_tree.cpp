#include "collective/comm_tree.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace netconst::collective {

CommTree::CommTree(std::size_t size, std::size_t root)
    : root_(root),
      children_(size),
      parent_(size),
      attached_(size, false) {
  NETCONST_CHECK(size >= 1, "tree needs at least one member");
  NETCONST_CHECK(root < size, "root out of range");
  attached_[root] = true;
  attached_count_ = 1;
}

void CommTree::add_edge(std::size_t parent, std::size_t child) {
  NETCONST_CHECK(parent < size() && child < size(),
                 "tree edge endpoint out of range");
  NETCONST_CHECK(attached_[parent], "parent is not attached yet");
  NETCONST_CHECK(!attached_[child], "child is already attached");
  children_[parent].push_back(child);
  parent_[child] = parent;
  attached_[child] = true;
  ++attached_count_;
}

bool CommTree::attached(std::size_t node) const {
  NETCONST_CHECK(node < size(), "node out of range");
  return attached_[node];
}

std::optional<std::size_t> CommTree::parent(std::size_t node) const {
  NETCONST_CHECK(node < size(), "node out of range");
  NETCONST_CHECK(attached_[node], "node is not attached");
  return parent_[node];
}

const std::vector<std::size_t>& CommTree::children(std::size_t node) const {
  NETCONST_CHECK(node < size(), "node out of range");
  return children_[node];
}

std::size_t CommTree::subtree_size(std::size_t node) const {
  NETCONST_CHECK(node < size(), "node out of range");
  std::size_t total = 1;
  for (std::size_t child : children_[node]) total += subtree_size(child);
  return total;
}

std::size_t CommTree::depth() const {
  // Iterative DFS carrying depth.
  std::size_t max_depth = 0;
  std::vector<std::pair<std::size_t, std::size_t>> stack{{root_, 0}};
  while (!stack.empty()) {
    const auto [node, d] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, d);
    for (std::size_t child : children_[node]) {
      stack.push_back({child, d + 1});
    }
  }
  return max_depth;
}

}  // namespace netconst::collective
