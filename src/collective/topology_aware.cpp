#include "collective/topology_aware.hpp"

#include <algorithm>
#include <functional>
#include <map>

#include "support/error.hpp"

namespace netconst::collective {

namespace {

std::size_t subtree_size_of(
    const std::vector<std::vector<std::size_t>>& kids, std::size_t node) {
  std::size_t total = 1;
  for (std::size_t child : kids[node]) {
    total += subtree_size_of(kids, child);
  }
  return total;
}

// Attach children largest-subtree-first so intra-rack and inter-rack
// sends interleave by importance — without this, rack members queued
// after every inter-rack send serialize the critical path.
void attach_largest_first(const std::vector<std::vector<std::size_t>>& kids,
                          std::size_t node, CommTree& out) {
  std::vector<std::pair<std::size_t, std::size_t>> order;  // {size, child}
  for (std::size_t child : kids[node]) {
    order.push_back({subtree_size_of(kids, child), child});
  }
  std::sort(order.begin(), order.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (const auto& [size, child] : order) {
    out.add_edge(node, child);
    attach_largest_first(kids, child, out);
  }
}

}  // namespace

CommTree topology_aware_tree(const std::vector<std::size_t>& racks,
                             std::size_t root) {
  const std::size_t n = racks.size();
  NETCONST_CHECK(n >= 1, "tree needs at least one member");
  NETCONST_CHECK(root < n, "root out of range");

  // Members per rack, root's rack first so the inter-rack phase starts
  // at the root.
  std::map<std::size_t, std::vector<std::size_t>> by_rack;
  for (std::size_t k = 0; k < n; ++k) by_rack[racks[k]].push_back(k);

  // Representative of each rack: the root for its own rack, otherwise
  // the lowest-index member.
  std::vector<std::size_t> reps;
  reps.push_back(root);
  for (auto& [rack, members] : by_rack) {
    if (rack == racks[root]) continue;
    reps.push_back(members.front());
  }

  // Build the edge set as children lists; the final send order is
  // decided globally (largest subtree first) at the end.
  std::vector<std::vector<std::size_t>> kids(n);
  // MPICH-style binomial over an ordered list: element i's parent is
  // element i - lowbit(i).
  const auto binomial_edges = [&kids](const std::vector<std::size_t>& list) {
    for (std::size_t i = 1; i < list.size(); ++i) {
      const std::size_t low = i & (~i + 1);
      kids[list[i - low]].push_back(list[i]);
    }
  };

  // Phase 1: binomial over rack representatives (reps[0] == root).
  binomial_edges(reps);

  // Phase 2: binomial within each rack rooted at the representative.
  for (auto& [rack, members] : by_rack) {
    const std::size_t rep = rack == racks[root] ? root : members.front();
    std::vector<std::size_t> ordered{rep};
    for (std::size_t member : members) {
      if (member != rep) ordered.push_back(member);
    }
    binomial_edges(ordered);
  }

  CommTree tree(n, root);
  attach_largest_first(kids, root, tree);
  NETCONST_ASSERT(tree.complete());
  return tree;
}

}  // namespace netconst::collective
