#include "collective/collective_ops.hpp"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "support/error.hpp"

namespace netconst::collective {
namespace {

bool is_down_direction(Collective op) {
  return op == Collective::Broadcast || op == Collective::Scatter;
}

bool is_per_subtree_payload(Collective op) {
  return op == Collective::Scatter || op == Collective::Gather;
}

// Edge payload for the (parent -> child) tree edge.
std::uint64_t edge_bytes(const CommTree& tree, std::size_t child,
                         Collective op, std::uint64_t bytes) {
  if (!is_per_subtree_payload(op)) return bytes;
  return bytes * static_cast<std::uint64_t>(tree.subtree_size(child));
}

// Directed transfer time of a tree edge under the collective's data-flow
// direction (down the tree for broadcast/scatter, up for reduce/gather).
double edge_time(const CommTree& tree,
                 const netmodel::PerformanceMatrix& performance,
                 std::size_t parent, std::size_t child, Collective op,
                 std::uint64_t bytes) {
  const std::uint64_t payload = edge_bytes(tree, child, op, bytes);
  return is_down_direction(op)
             ? performance.transfer_time(parent, child, payload)
             : performance.transfer_time(child, parent, payload);
}

// Completion of the downward phase rooted at `node`, which starts when
// `node` has the data at `ready`.
double down_completion(const CommTree& tree,
                       const netmodel::PerformanceMatrix& performance,
                       std::size_t node, double ready, Collective op,
                       std::uint64_t bytes) {
  double completion = ready;
  double send_start = ready;
  for (std::size_t child : tree.children(node)) {
    const double cost = edge_time(tree, performance, node, child, op, bytes);
    send_start += cost;  // sequential sends in stored order
    completion = std::max(
        completion,
        down_completion(tree, performance, child, send_start, op, bytes));
  }
  return completion;
}

// Time at which `node` has finished receiving its whole subtree's data
// in the upward phase (reduce/gather). Children transmit as soon as
// their own subtrees are done; the parent receives them sequentially in
// the REVERSE of the downward send order — the exact time-mirror of the
// broadcast/scatter schedule, which makes the dual operations cost the
// same on a symmetric network.
double up_completion(const CommTree& tree,
                     const netmodel::PerformanceMatrix& performance,
                     std::size_t node, Collective op, std::uint64_t bytes) {
  double receive_free_at = 0.0;  // parent's receive port availability
  double done = 0.0;
  const auto& kids = tree.children(node);
  for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
    const std::size_t child = *it;
    const double child_done =
        up_completion(tree, performance, child, op, bytes);
    const double cost = edge_time(tree, performance, node, child, op, bytes);
    const double start = std::max(receive_free_at, child_done);
    receive_free_at = start + cost;
    done = std::max(done, start + cost);
  }
  return done;
}

}  // namespace

const char* collective_name(Collective op) {
  switch (op) {
    case Collective::Broadcast:
      return "broadcast";
    case Collective::Scatter:
      return "scatter";
    case Collective::Reduce:
      return "reduce";
    case Collective::Gather:
      return "gather";
  }
  return "unknown";
}

double collective_time(const CommTree& tree,
                       const netmodel::PerformanceMatrix& performance,
                       Collective op, std::uint64_t bytes) {
  NETCONST_CHECK(tree.complete(), "collective over an incomplete tree");
  NETCONST_CHECK(tree.size() == performance.size(),
                 "tree size does not match the performance matrix");
  if (is_down_direction(op)) {
    return down_completion(tree, performance, tree.root(), 0.0, op, bytes);
  }
  return up_completion(tree, performance, tree.root(), op, bytes);
}

double all_to_all_time(const CommTree& tree,
                       const netmodel::PerformanceMatrix& performance,
                       std::uint64_t bytes) {
  const double gather =
      collective_time(tree, performance, Collective::Gather, bytes);
  const double broadcast =
      collective_time(tree, performance, Collective::Broadcast,
                      bytes * static_cast<std::uint64_t>(tree.size()));
  return gather + broadcast;
}

double run_collective_sim(simnet::FlowSimulator& simulator,
                          const std::vector<simnet::NodeId>& hosts,
                          const CommTree& tree, Collective op,
                          std::uint64_t bytes) {
  NETCONST_CHECK(tree.complete(), "collective over an incomplete tree");
  NETCONST_CHECK(tree.size() == hosts.size(),
                 "tree size does not match the host list");
  const double start = simulator.now();

  // Per-node outgoing send queues in stored child order.
  struct Send {
    std::size_t from = 0;
    std::size_t to = 0;
    std::uint64_t payload = 0;
  };
  std::vector<std::vector<Send>> queue(tree.size());
  std::vector<std::size_t> next_send(tree.size(), 0);
  std::unordered_map<simnet::FlowId, Send> in_flight;

  if (is_down_direction(op)) {
    for (std::size_t node = 0; node < tree.size(); ++node) {
      for (std::size_t child : tree.children(node)) {
        queue[node].push_back(
            {node, child, edge_bytes(tree, child, op, bytes)});
      }
    }
    auto launch_next = [&](std::size_t node) {
      if (next_send[node] >= queue[node].size()) return;
      const Send send = queue[node][next_send[node]++];
      const simnet::FlowId id =
          simulator.inject(hosts[send.from], hosts[send.to], send.payload);
      in_flight.emplace(id, send);
    };
    simulator.set_completion_callback(
        [&](simnet::FlowId id, double /*time*/) {
          const auto it = in_flight.find(id);
          if (it == in_flight.end()) return;  // not one of ours
          const Send done = it->second;
          in_flight.erase(it);
          launch_next(done.from);  // sender proceeds to its next child
          launch_next(done.to);    // receiver starts forwarding
        });
    launch_next(tree.root());
    // Drain while launch_next and the queues are still in scope: the
    // callback holds references to them.
    simulator.run_until_idle();
    simulator.set_completion_callback({});
  } else {
    // Upward phase: a node sends to its parent once all of its children
    // have delivered. Leaves start immediately.
    std::vector<std::size_t> waiting(tree.size(), 0);
    for (std::size_t node = 0; node < tree.size(); ++node) {
      waiting[node] = tree.children(node).size();
    }
    auto launch_up = [&](std::size_t node) {
      if (node == tree.root()) return;
      const std::size_t parent = *tree.parent(node);
      const Send send{node, parent, edge_bytes(tree, node, op, bytes)};
      const simnet::FlowId id =
          simulator.inject(hosts[send.from], hosts[send.to], send.payload);
      in_flight.emplace(id, send);
    };
    simulator.set_completion_callback(
        [&](simnet::FlowId id, double /*time*/) {
          const auto it = in_flight.find(id);
          if (it == in_flight.end()) return;
          const Send done = it->second;
          in_flight.erase(it);
          NETCONST_ASSERT(waiting[done.to] > 0);
          if (--waiting[done.to] == 0) launch_up(done.to);
        });
    for (std::size_t node = 0; node < tree.size(); ++node) {
      if (waiting[node] == 0) launch_up(node);
    }
    // Drain while waiting/launch_up are still in scope (see above).
    simulator.run_until_idle();
    simulator.set_completion_callback({});
  }

  return simulator.now() - start;
}

}  // namespace netconst::collective
