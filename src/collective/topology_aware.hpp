// Topology-aware communication tree (Kandalla et al. / Subramoni et al.
// style): exploits known rack membership by broadcasting across racks
// first (one representative per rack) and then within each rack. Used by
// the simulator comparison (Figure 13) where the physical topology is
// known; on the opaque cloud this knowledge is unavailable — which is
// the paper's point.
#pragma once

#include <cstddef>
#include <vector>

#include "collective/comm_tree.hpp"

namespace netconst::collective {

/// Build a hierarchical tree: binomial over rack representatives (the
/// lowest-index member of each rack; the root's rack is represented by
/// the root itself), then binomial within each rack. `racks[k]` is the
/// rack of member k.
CommTree topology_aware_tree(const std::vector<std::size_t>& racks,
                             std::size_t root);

}  // namespace netconst::collective
