#include "netmodel/perf_matrix.hpp"

#include "support/error.hpp"

namespace netconst::netmodel {
namespace {

// Self-links are free; this bandwidth makes n/beta vanish for any
// realistic message while keeping the matrices finite for RPCA.
constexpr double kSelfBandwidth = 1e18;

}  // namespace

PerformanceMatrix::PerformanceMatrix(std::size_t size, LinkParams defaults)
    : size_(size), latency_(size, size), bandwidth_(size, size) {
  NETCONST_CHECK(defaults.alpha >= 0.0 && defaults.beta > 0.0,
                 "invalid default link parameters");
  for (std::size_t i = 0; i < size; ++i) {
    for (std::size_t j = 0; j < size; ++j) {
      if (i == j) {
        latency_(i, j) = 0.0;
        bandwidth_(i, j) = kSelfBandwidth;
      } else {
        latency_(i, j) = defaults.alpha;
        bandwidth_(i, j) = defaults.beta;
      }
    }
  }
}

LinkParams PerformanceMatrix::link(std::size_t i, std::size_t j) const {
  NETCONST_CHECK(i < size_ && j < size_, "link index out of range");
  return {latency_(i, j), bandwidth_(i, j)};
}

void PerformanceMatrix::set_link(std::size_t i, std::size_t j,
                                 LinkParams params) {
  NETCONST_CHECK(i < size_ && j < size_, "link index out of range");
  NETCONST_CHECK(i != j, "self-links are fixed");
  NETCONST_CHECK(params.alpha >= 0.0 && params.beta > 0.0,
                 "invalid link parameters");
  latency_(i, j) = params.alpha;
  bandwidth_(i, j) = params.beta;
}

void PerformanceMatrix::mark_link_missing(std::size_t i, std::size_t j) {
  NETCONST_CHECK(i < size_ && j < size_, "link index out of range");
  NETCONST_CHECK(i != j, "self-links are fixed");
  const LinkParams missing = missing_link();
  latency_(i, j) = missing.alpha;
  bandwidth_(i, j) = missing.beta;
}

bool PerformanceMatrix::link_missing(std::size_t i, std::size_t j) const {
  return is_missing(link(i, j));
}

std::size_t PerformanceMatrix::missing_links() const {
  std::size_t count = 0;
  for (std::size_t i = 0; i < size_; ++i) {
    for (std::size_t j = 0; j < size_; ++j) {
      if (i != j && is_missing({latency_(i, j), bandwidth_(i, j)})) ++count;
    }
  }
  return count;
}

double PerformanceMatrix::transfer_time(std::size_t i, std::size_t j,
                                        std::uint64_t bytes) const {
  if (i == j) return 0.0;
  return link(i, j).transfer_time(bytes);
}

linalg::Matrix PerformanceMatrix::weight_matrix(std::uint64_t bytes) const {
  linalg::Matrix w(size_, size_);
  for (std::size_t i = 0; i < size_; ++i) {
    for (std::size_t j = 0; j < size_; ++j) {
      w(i, j) = i == j ? 0.0 : transfer_time(i, j, bytes);
    }
  }
  return w;
}

PerformanceMatrix PerformanceMatrix::restrict_to(
    const std::vector<std::size_t>& members) const {
  PerformanceMatrix sub(members.size());
  for (std::size_t a = 0; a < members.size(); ++a) {
    NETCONST_CHECK(members[a] < size_, "sub-cluster member out of range");
    for (std::size_t b = 0; b < members.size(); ++b) {
      if (a == b) continue;
      sub.set_link(a, b, link(members[a], members[b]));
    }
  }
  return sub;
}

bool PerformanceMatrix::is_valid() const {
  for (std::size_t i = 0; i < size_; ++i) {
    for (std::size_t j = 0; j < size_; ++j) {
      // The NaN missing-link sentinel must not pass: !(NaN >= 0) holds,
      // so test the accepting ranges, not the rejecting ones.
      if (!(latency_(i, j) >= 0.0) || !(bandwidth_(i, j) > 0.0)) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace netconst::netmodel
