#include "netmodel/alpha_beta.hpp"

#include <cmath>
#include <limits>

#include "support/error.hpp"

namespace netconst::netmodel {

LinkParams missing_link() {
  constexpr double nan = std::numeric_limits<double>::quiet_NaN();
  return {nan, nan};
}

bool is_missing(const LinkParams& params) {
  return std::isnan(params.alpha) || std::isnan(params.beta);
}

double transfer_time(double alpha, double beta, std::uint64_t bytes) {
  NETCONST_CHECK(beta > 0.0, "bandwidth must be positive");
  return alpha + static_cast<double>(bytes) / beta;
}

LinkParams fit_alpha_beta(double t_small, std::uint64_t small_bytes,
                          double t_large, std::uint64_t large_bytes) {
  NETCONST_CHECK(t_small > 0.0 && t_large > 0.0,
                 "calibration times must be positive");
  NETCONST_CHECK(large_bytes > small_bytes,
                 "large message must be larger than the small one");
  NETCONST_CHECK(t_large > t_small,
                 "large-message time must exceed small-message time");
  LinkParams p;
  p.alpha = t_small;  // n/beta is negligible for the tiny message
  p.beta = static_cast<double>(large_bytes - small_bytes) /
           (t_large - t_small);
  return p;
}

}  // namespace netconst::netmodel
