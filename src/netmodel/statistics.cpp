#include "netmodel/statistics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/error.hpp"

namespace netconst::netmodel {
namespace {

template <typename Getter>
LinkSpread spread_of(const PerformanceMatrix& performance, Getter get) {
  const std::size_t n = performance.size();
  NETCONST_CHECK(n >= 2, "spread needs at least two members");
  LinkSpread spread;
  spread.min = std::numeric_limits<double>::infinity();
  spread.max = 0.0;
  double sum = 0.0, sum2 = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const double value = get(performance.link(i, j));
      sum += value;
      sum2 += value * value;
      spread.min = std::min(spread.min, value);
      spread.max = std::max(spread.max, value);
      ++count;
    }
  }
  spread.mean = sum / static_cast<double>(count);
  const double variance =
      std::max(sum2 / static_cast<double>(count) -
                   spread.mean * spread.mean,
               0.0);
  spread.coefficient_of_variation =
      spread.mean > 0.0 ? std::sqrt(variance) / spread.mean : 0.0;
  spread.dispersion_ratio =
      spread.min > 0.0 ? spread.max / spread.min : 0.0;
  return spread;
}

}  // namespace

LinkSpread bandwidth_spread(const PerformanceMatrix& performance) {
  return spread_of(performance,
                   [](const LinkParams& link) { return link.beta; });
}

LinkSpread latency_spread(const PerformanceMatrix& performance) {
  return spread_of(performance,
                   [](const LinkParams& link) { return link.alpha; });
}

double link_bandwidth_variability(const TemporalPerformance& series,
                                  std::size_t i, std::size_t j) {
  NETCONST_CHECK(!series.empty(), "variability of an empty series");
  NETCONST_CHECK(i != j, "self-links have no variability");
  NETCONST_CHECK(i < series.cluster_size() && j < series.cluster_size(),
                 "link out of range");
  double sum = 0.0, sum2 = 0.0;
  const std::size_t rows = series.row_count();
  for (std::size_t r = 0; r < rows; ++r) {
    const double beta = series.snapshot(r).link(i, j).beta;
    sum += beta;
    sum2 += beta * beta;
  }
  const double mean = sum / static_cast<double>(rows);
  if (mean <= 0.0) return 0.0;
  const double variance = std::max(
      sum2 / static_cast<double>(rows) - mean * mean, 0.0);
  return std::sqrt(variance) / mean;
}

double mean_bandwidth_variability(const TemporalPerformance& series) {
  NETCONST_CHECK(!series.empty(), "variability of an empty series");
  const std::size_t n = series.cluster_size();
  NETCONST_CHECK(n >= 2, "variability needs at least two members");
  double total = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      total += link_bandwidth_variability(series, i, j);
      ++count;
    }
  }
  return total / static_cast<double>(count);
}

}  // namespace netconst::netmodel
