// Temporal performance matrices.
//
// A TemporalPerformance object is the paper's TP-matrix N_A[T0, T1]: a
// time-ordered series of PerformanceMatrix snapshots. For RPCA each
// snapshot's chosen layer (latency, bandwidth, or alpha-beta transfer
// time at a reference size) is flattened row-major into one row of an
// n x N^2 linalg::Matrix.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"
#include "netmodel/perf_matrix.hpp"

namespace netconst::netmodel {

/// Which per-link scalar is flattened into the RPCA data matrix.
enum class Field {
  Latency,       // alpha (seconds)
  Bandwidth,     // beta (bytes/second)
  TransferTime,  // alpha + bytes/beta at a reference message size
};

class TemporalPerformance {
 public:
  TemporalPerformance() = default;

  /// Append a snapshot taken at `time` (seconds; must be non-decreasing).
  /// All snapshots must share the same cluster size.
  void append(double time, PerformanceMatrix snapshot);

  std::size_t row_count() const { return snapshots_.size(); }
  std::size_t cluster_size() const;
  bool empty() const { return snapshots_.empty(); }

  double time_at(std::size_t row) const;
  const PerformanceMatrix& snapshot(std::size_t row) const;

  /// Snapshot in effect at time `t`: the latest snapshot with
  /// time_at <= t (the first one if t precedes all). Requires non-empty.
  const PerformanceMatrix& at_time(double t) const;

  /// Flatten to the n x N^2 RPCA input. `reference_bytes` only matters
  /// for Field::TransferTime.
  linalg::Matrix flatten(Field field,
                         std::uint64_t reference_bytes = kEightMiB) const;

  /// Flatten ONE snapshot into a pre-sized N^2 row (the per-row kernel
  /// of flatten(), exposed so the online sliding window can update a
  /// single ring row without re-flattening its whole window). Diagonal
  /// entries are zeroed exactly as flatten() does.
  static void flatten_snapshot(const PerformanceMatrix& snapshot, Field field,
                               std::span<double> out,
                               std::uint64_t reference_bytes = kEightMiB);

  /// Rebuild an N x N matrix from one flattened row (inverse of the
  /// row-major layout used by flatten). The diagonal entries are restored
  /// as self-link values for the given field.
  static linalg::Matrix unflatten_row(const linalg::Matrix& flat,
                                      std::size_t row,
                                      std::size_t cluster_size);

  /// Keep only the last `rows` snapshots (used by sliding calibration).
  void keep_last(std::size_t rows);

 private:
  std::vector<double> times_;
  std::vector<PerformanceMatrix> snapshots_;
};

/// Build a PerformanceMatrix from constant-component rows of latency and
/// bandwidth (each a flattened 1 x N^2 row or an N x N matrix). Values
/// are clamped to physical ranges (alpha >= 0, beta > 0) since RPCA's
/// low-rank output can slightly undershoot.
PerformanceMatrix matrices_to_performance(const linalg::Matrix& latency,
                                          const linalg::Matrix& bandwidth);

}  // namespace netconst::netmodel
