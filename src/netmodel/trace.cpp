#include "netmodel/trace.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "support/csv.hpp"
#include "support/error.hpp"

namespace netconst::netmodel {
namespace {

/// Parse a VM index cell defensively: a fractional, negative, non-finite
/// or absurdly large value means a corrupt file, not a big cluster — a
/// raw static_cast would silently truncate (or wrap a negative into a
/// huge index and allocate gigabytes for the matrices). A trace with R
/// data rows can mention at most 2R distinct VMs, which bounds any
/// legitimate index without a magic constant.
std::size_t parse_vm_index(const CsvTable& table, std::size_t row,
                           std::size_t col, double limit) {
  const double v = table.number(row, col);
  if (!(v >= 0.0) || v != std::floor(v) || v > limit) {
    throw Error("trace row " + std::to_string(row) +
                ": invalid VM index '" + format_double(v) + "'");
  }
  return static_cast<std::size_t>(v);
}

}  // namespace

double Trace::duration() const {
  if (series_.row_count() < 2) return 0.0;
  return series_.time_at(series_.row_count() - 1) - series_.time_at(0);
}

void Trace::save_csv(const std::string& path) const {
  CsvTable table;
  table.header = {"time", "i", "j", "alpha", "beta"};
  const std::size_t n = cluster_size();
  for (std::size_t r = 0; r < series_.row_count(); ++r) {
    const auto& snap = series_.snapshot(r);
    const std::string time = format_double(series_.time_at(r));
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (i == j) continue;
        const LinkParams link = snap.link(i, j);
        // Missing links serialize as the literal "nan" pair and load back
        // as missing — the round trip preserves degraded snapshots.
        table.rows.push_back({time, std::to_string(i), std::to_string(j),
                              is_missing(link) ? "nan"
                                               : format_double(link.alpha),
                              is_missing(link) ? "nan"
                                               : format_double(link.beta)});
      }
    }
  }
  write_csv_file(path, table);
}

Trace Trace::load_csv(const std::string& path) {
  const CsvTable table = read_csv_file(path);
  const std::size_t ct = table.column_index("time");
  const std::size_t ci = table.column_index("i");
  const std::size_t cj = table.column_index("j");
  const std::size_t ca = table.column_index("alpha");
  const std::size_t cb = table.column_index("beta");

  if (table.row_count() == 0) {
    throw Error("trace CSV has a header but no data rows: " + path);
  }

  // Group rows by timestamp, preserving order, and find the cluster size.
  const double index_limit = 2.0 * static_cast<double>(table.row_count());
  std::size_t max_index = 0;
  for (std::size_t r = 0; r < table.row_count(); ++r) {
    max_index = std::max({max_index, parse_vm_index(table, r, ci, index_limit),
                          parse_vm_index(table, r, cj, index_limit)});
  }
  const std::size_t n = max_index + 1;

  TemporalPerformance series;
  std::size_t r = 0;
  while (r < table.row_count()) {
    const double time = table.number(r, ct);
    if (!std::isfinite(time)) {
      throw Error("trace row " + std::to_string(r) +
                  ": non-finite timestamp");
    }
    PerformanceMatrix snap(n);
    while (r < table.row_count() && table.number(r, ct) == time) {
      const auto i = parse_vm_index(table, r, ci, index_limit);
      const auto j = parse_vm_index(table, r, cj, index_limit);
      NETCONST_CHECK(i != j, "trace contains a self-link row");
      const double alpha = table.number(r, ca);
      const double beta = table.number(r, cb);
      if (!std::isfinite(alpha) || !std::isfinite(beta)) {
        // Both non-finite = the serialized missing-link sentinel; only
        // one non-finite is corruption, not a degraded measurement.
        if (std::isfinite(alpha) || std::isfinite(beta)) {
          throw Error("trace row " + std::to_string(r) +
                      ": half-missing link parameters");
        }
        snap.mark_link_missing(i, j);
      } else if (!(alpha >= 0.0) || !(beta > 0.0)) {
        throw Error("trace row " + std::to_string(r) +
                    ": invalid link parameters (alpha " +
                    format_double(alpha) + ", beta " + format_double(beta) +
                    ")");
      } else {
        snap.set_link(i, j, {alpha, beta});
      }
      ++r;
    }
    series.append(time, std::move(snap));
  }
  return Trace(std::move(series));
}

Trace Trace::window(double t0, double t1) const {
  NETCONST_CHECK(t0 <= t1, "window bounds reversed");
  TemporalPerformance out;
  for (std::size_t r = 0; r < series_.row_count(); ++r) {
    const double t = series_.time_at(r);
    if (t >= t0 && t <= t1) out.append(t, series_.snapshot(r));
  }
  return Trace(std::move(out));
}

Trace Trace::prefix(std::size_t rows) const {
  TemporalPerformance out;
  const std::size_t limit = std::min(rows, series_.row_count());
  for (std::size_t r = 0; r < limit; ++r) {
    out.append(series_.time_at(r), series_.snapshot(r));
  }
  return Trace(std::move(out));
}

ReplayCursor::ReplayCursor(const Trace& trace) : trace_(&trace) {
  NETCONST_CHECK(trace.snapshot_count() > 0, "replay of an empty trace");
  start_ = trace.series().time_at(0);
  end_ = trace.series().time_at(trace.snapshot_count() - 1);
}

const PerformanceMatrix& ReplayCursor::at(double t) const {
  return trace_->series().at_time(t);
}

}  // namespace netconst::netmodel
