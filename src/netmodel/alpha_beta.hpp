// The alpha-beta point-to-point network model (Thakur & Rabenseifner):
// sending n bytes over a link costs  alpha + n / beta  seconds, where
// alpha is the latency and beta the bandwidth. Every cost estimate in the
// library — collective schedules, mapping costs, application communication
// — goes through this model, exactly as the paper's evaluation does.
#pragma once

#include <cstdint>

namespace netconst::netmodel {

/// Parameters of one directed link.
struct LinkParams {
  double alpha = 0.0;  // latency in seconds
  double beta = 1.0;   // bandwidth in bytes per second

  /// Estimated transfer time of `bytes` over this link.
  double transfer_time(std::uint64_t bytes) const {
    return alpha + static_cast<double>(bytes) / beta;
  }
};

/// Transfer time of `bytes` given explicit parameters.
double transfer_time(double alpha, double beta, std::uint64_t bytes);

/// Sentinel for a link whose measurement was lost (probe timeouts with
/// the calibration retries exhausted): both parameters are quiet NaN.
/// Consumers must test is_missing() before using such a link; the
/// masked decomposition path (rpca::impute_missing) is what repairs
/// missing entries before they reach a solver.
LinkParams missing_link();

/// True when either parameter of `params` is NaN (the missing-link
/// sentinel, or any other poisoned measurement).
bool is_missing(const LinkParams& params);

/// Fit alpha-beta from two measurements (the SKaMPI calibration recipe):
/// alpha = time of a tiny message, beta = large_bytes / (t_large - alpha).
/// Throws ContractViolation if the measurements are inconsistent
/// (t_large <= t_small) or non-positive.
LinkParams fit_alpha_beta(double t_small_bytes, std::uint64_t small_bytes,
                          double t_large, std::uint64_t large_bytes);

/// Common message sizes used throughout the evaluation.
inline constexpr std::uint64_t kOneByte = 1;
inline constexpr std::uint64_t kOneKiB = 1024;
inline constexpr std::uint64_t kOneMiB = 1024 * 1024;
inline constexpr std::uint64_t kEightMiB = 8 * kOneMiB;

}  // namespace netconst::netmodel
