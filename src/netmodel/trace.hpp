// Trace recording and replay.
//
// The paper validates its approach by recording week-long calibration
// traces of a virtual cluster on EC2 and replaying them under different
// optimization strategies ("trace-replay approach", Section V-D3). Trace
// wraps a TemporalPerformance series with CSV persistence and a replay
// cursor, and is the exchange format between the cloud substrate and the
// experiment harnesses.
#pragma once

#include <string>

#include "netmodel/tp_matrix.hpp"

namespace netconst::netmodel {

class Trace {
 public:
  Trace() = default;
  explicit Trace(TemporalPerformance series) : series_(std::move(series)) {}

  const TemporalPerformance& series() const { return series_; }
  TemporalPerformance& series() { return series_; }

  std::size_t snapshot_count() const { return series_.row_count(); }
  std::size_t cluster_size() const { return series_.cluster_size(); }

  /// Duration covered by the trace (last time - first time; 0 for < 2
  /// snapshots).
  double duration() const;

  /// CSV persistence. Format: one row per directed link per snapshot:
  /// time,i,j,alpha,beta. Throws Error on I/O failure or malformed data.
  void save_csv(const std::string& path) const;
  static Trace load_csv(const std::string& path);

  /// Sub-trace restricted to a time window [t0, t1].
  Trace window(double t0, double t1) const;

  /// Sub-trace of the first `rows` snapshots.
  Trace prefix(std::size_t rows) const;

 private:
  TemporalPerformance series_;
};

/// Forward-only replay over a trace, used by experiment campaigns that
/// "run" an operation every 30 simulated minutes.
class ReplayCursor {
 public:
  explicit ReplayCursor(const Trace& trace);

  /// Snapshot in effect at simulated time `t`.
  const PerformanceMatrix& at(double t) const;

  double start_time() const { return start_; }
  double end_time() const { return end_; }

 private:
  const Trace* trace_;
  double start_ = 0.0;
  double end_ = 0.0;
};

}  // namespace netconst::netmodel
