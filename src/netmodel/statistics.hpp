// Descriptive statistics over performance matrices — the numbers a
// practitioner wants before deciding whether link selection can help at
// all: how heterogeneous are the links, and how much do they move over
// a calibration series?
#pragma once

#include <cstddef>

#include "netmodel/tp_matrix.hpp"

namespace netconst::netmodel {

/// Spread of the off-diagonal links of one snapshot.
struct LinkSpread {
  double mean = 0.0;
  double coefficient_of_variation = 0.0;  // stddev / mean
  double min = 0.0;
  double max = 0.0;
  /// max / min — the paper's motivation: if all links were equal, no
  /// link selection could ever help.
  double dispersion_ratio = 0.0;
};

/// Spread of the bandwidth (beta) layer. Requires size >= 2.
LinkSpread bandwidth_spread(const PerformanceMatrix& performance);

/// Spread of the latency (alpha) layer. Requires size >= 2.
LinkSpread latency_spread(const PerformanceMatrix& performance);

/// Temporal variability of one link across a series: stddev/mean of its
/// bandwidth over the rows. Requires a non-empty series and i != j.
double link_bandwidth_variability(const TemporalPerformance& series,
                                  std::size_t i, std::size_t j);

/// Mean temporal variability over all links — a cheap pre-RPCA signal
/// of how dynamic the network is.
double mean_bandwidth_variability(const TemporalPerformance& series);

}  // namespace netconst::netmodel
