#include "netmodel/tp_matrix.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace netconst::netmodel {

void TemporalPerformance::append(double time, PerformanceMatrix snapshot) {
  NETCONST_CHECK(snapshot.size() > 0, "empty snapshot");
  if (!snapshots_.empty()) {
    NETCONST_CHECK(snapshot.size() == snapshots_.front().size(),
                   "snapshot cluster size changed");
    NETCONST_CHECK(time >= times_.back(),
                   "snapshots must be appended in time order");
  }
  times_.push_back(time);
  snapshots_.push_back(std::move(snapshot));
}

std::size_t TemporalPerformance::cluster_size() const {
  return snapshots_.empty() ? 0 : snapshots_.front().size();
}

double TemporalPerformance::time_at(std::size_t row) const {
  NETCONST_CHECK(row < times_.size(), "row out of range");
  return times_[row];
}

const PerformanceMatrix& TemporalPerformance::snapshot(
    std::size_t row) const {
  NETCONST_CHECK(row < snapshots_.size(), "row out of range");
  return snapshots_[row];
}

const PerformanceMatrix& TemporalPerformance::at_time(double t) const {
  NETCONST_CHECK(!snapshots_.empty(), "at_time on empty series");
  auto it = std::upper_bound(times_.begin(), times_.end(), t);
  if (it == times_.begin()) return snapshots_.front();
  const auto idx = static_cast<std::size_t>(it - times_.begin()) - 1;
  return snapshots_[idx];
}

void TemporalPerformance::flatten_snapshot(const PerformanceMatrix& snapshot,
                                           Field field, std::span<double> out,
                                           std::uint64_t reference_bytes) {
  const std::size_t n = snapshot.size();
  NETCONST_CHECK(n > 0, "flatten of an empty snapshot");
  NETCONST_CHECK(out.size() == n * n,
                 "flatten_snapshot output span must be N^2 wide");
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) {
        // Self-links are a storage placeholder (huge bandwidth), not a
        // measurement; leaving them in would dominate the norms and
        // thresholds of everything downstream (RPCA, Norm(N_E)).
        out[i * n + j] = 0.0;
        continue;
      }
      double value = 0.0;
      switch (field) {
        case Field::Latency:
          value = snapshot.latency()(i, j);
          break;
        case Field::Bandwidth:
          value = snapshot.bandwidth()(i, j);
          break;
        case Field::TransferTime:
          value = snapshot.transfer_time(i, j, reference_bytes);
          break;
      }
      out[i * n + j] = value;
    }
  }
}

linalg::Matrix TemporalPerformance::flatten(
    Field field, std::uint64_t reference_bytes) const {
  NETCONST_CHECK(!snapshots_.empty(), "flatten of empty series");
  const std::size_t n = cluster_size();
  linalg::Matrix flat(snapshots_.size(), n * n);
  for (std::size_t r = 0; r < snapshots_.size(); ++r) {
    flatten_snapshot(snapshots_[r], field, flat.row(r), reference_bytes);
  }
  return flat;
}

linalg::Matrix TemporalPerformance::unflatten_row(const linalg::Matrix& flat,
                                                  std::size_t row,
                                                  std::size_t cluster_size) {
  NETCONST_CHECK(row < flat.rows(), "row out of range");
  NETCONST_CHECK(flat.cols() == cluster_size * cluster_size,
                 "flattened width does not match cluster size");
  linalg::Matrix m(cluster_size, cluster_size);
  const auto src = flat.row(row);
  for (std::size_t i = 0; i < cluster_size; ++i) {
    for (std::size_t j = 0; j < cluster_size; ++j) {
      m(i, j) = src[i * cluster_size + j];
    }
  }
  return m;
}

void TemporalPerformance::keep_last(std::size_t rows) {
  if (snapshots_.size() <= rows) return;
  const std::size_t drop = snapshots_.size() - rows;
  snapshots_.erase(snapshots_.begin(),
                   snapshots_.begin() + static_cast<std::ptrdiff_t>(drop));
  times_.erase(times_.begin(),
               times_.begin() + static_cast<std::ptrdiff_t>(drop));
}

PerformanceMatrix matrices_to_performance(const linalg::Matrix& latency,
                                          const linalg::Matrix& bandwidth) {
  // Accept either N x N matrices or 1 x N^2 flattened rows.
  auto reshape = [](const linalg::Matrix& m) -> linalg::Matrix {
    if (m.rows() == m.cols()) return m;
    NETCONST_CHECK(m.rows() == 1, "expected square matrix or single row");
    const auto n = static_cast<std::size_t>(
        std::llround(std::sqrt(static_cast<double>(m.cols()))));
    NETCONST_CHECK(n * n == m.cols(), "row length is not a perfect square");
    return TemporalPerformance::unflatten_row(m, 0, n);
  };
  const linalg::Matrix lat = reshape(latency);
  const linalg::Matrix bw = reshape(bandwidth);
  NETCONST_CHECK(lat.same_shape(bw), "latency/bandwidth shape mismatch");

  const std::size_t n = lat.rows();
  PerformanceMatrix p(n);
  // Clamp to physically meaningful values: RPCA's low-rank component can
  // slightly undershoot zero on latency or bandwidth.
  double min_positive_bw = 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && bw(i, j) > 0.0) {
        min_positive_bw = std::min(min_positive_bw == 1.0 ? bw(i, j)
                                                          : min_positive_bw,
                                   bw(i, j));
      }
    }
  }
  const double bw_floor = min_positive_bw * 1e-3;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      LinkParams link;
      link.alpha = std::max(lat(i, j), 0.0);
      link.beta = std::max(bw(i, j), bw_floor);
      p.set_link(i, j, link);
    }
  }
  return p;
}

}  // namespace netconst::netmodel
