// The paper's performance matrix: pair-wise alpha-beta parameters of a
// virtual cluster of N instances at one point in time. Two N x N layers
// (latency L and bandwidth B), with the diagonal defined as a free
// self-link (alpha 0, infinite-bandwidth stand-in).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "linalg/matrix.hpp"
#include "netmodel/alpha_beta.hpp"

namespace netconst::netmodel {

class PerformanceMatrix {
 public:
  PerformanceMatrix() = default;

  /// N-instance matrix with every off-diagonal link set to `defaults`.
  explicit PerformanceMatrix(std::size_t size,
                             LinkParams defaults = {1e-4, 1e8});

  std::size_t size() const { return size_; }

  /// Parameters of the directed link i -> j. i == j returns the free
  /// self-link.
  LinkParams link(std::size_t i, std::size_t j) const;
  void set_link(std::size_t i, std::size_t j, LinkParams params);

  /// Mark the directed link i -> j as missing (calibration lost it):
  /// both layers are set to the NaN sentinel. set_link() deliberately
  /// rejects non-finite parameters, so this is the only way a hole
  /// enters a matrix — it is always an explicit decision.
  void mark_link_missing(std::size_t i, std::size_t j);
  bool link_missing(std::size_t i, std::size_t j) const;
  /// Number of missing off-diagonal links.
  std::size_t missing_links() const;

  /// Transfer time of `bytes` from i to j under the alpha-beta model.
  double transfer_time(std::size_t i, std::size_t j,
                       std::uint64_t bytes) const;

  /// N x N matrix of transfer times for a given message size — this is
  /// the "weight matrix" the paper's FNF example uses (smaller weight =
  /// better link). Diagonal is zero.
  linalg::Matrix weight_matrix(std::uint64_t bytes) const;

  /// Raw layers as matrices (diagonal: alpha 0 / beta self-link value).
  const linalg::Matrix& latency() const { return latency_; }
  const linalg::Matrix& bandwidth() const { return bandwidth_; }
  linalg::Matrix& latency() { return latency_; }
  linalg::Matrix& bandwidth() { return bandwidth_; }

  /// Restriction to a sub-cluster C' (indices into this matrix, all
  /// distinct). Row/col k of the result corresponds to members[k].
  PerformanceMatrix restrict_to(const std::vector<std::size_t>& members) const;

  /// True if all latencies are >= 0 and bandwidths > 0.
  bool is_valid() const;

 private:
  std::size_t size_ = 0;
  linalg::Matrix latency_;    // seconds
  linalg::Matrix bandwidth_;  // bytes/second
};

}  // namespace netconst::netmodel
