#include "detect/detector.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace netconst::detect {

const char* verdict_kind_name(VerdictKind kind) {
  switch (kind) {
    case VerdictKind::PlacementShift:
      return "placement_shift";
    case VerdictKind::OutlierStorm:
      return "outlier_storm";
    case VerdictKind::BaselineDrift:
      return "baseline_drift";
  }
  return "unknown";
}

const char* signal_name(Signal signal) {
  switch (signal) {
    case Signal::Sparsity:
      return "sparsity";
    case Signal::Drift:
      return "drift";
    case Signal::Angle:
      return "angle";
    case Signal::Level:
      return "level";
    case Signal::Residual:
      return "residual";
  }
  return "unknown";
}

SupportStats support_stats(const linalg::Matrix& sparse,
                           std::size_t cluster_size, double cutoff) {
  NETCONST_CHECK(cluster_size >= 2, "support_stats needs >= 2 VMs");
  NETCONST_CHECK(sparse.cols() == cluster_size * cluster_size,
                 "sparse layer columns must be cluster_size^2");
  NETCONST_CHECK(cutoff >= 0.0, "support cutoff must be >= 0");
  SupportStats stats;
  std::vector<std::uint64_t> touches(cluster_size, 0);
  std::uint64_t total = 0;
  for (std::size_t r = 0; r < sparse.rows(); ++r) {
    for (std::size_t c = 0; c < sparse.cols(); ++c) {
      const std::size_t i = c / cluster_size;
      const std::size_t j = c % cluster_size;
      if (i == j) continue;  // diagonal is identically zero by layout
      if (std::abs(sparse(r, c)) <= cutoff) continue;
      ++total;
      ++touches[i];
      ++touches[j];
    }
  }
  if (total == 0) return stats;
  const std::size_t off_diag =
      sparse.rows() * cluster_size * (cluster_size - 1);
  stats.fraction =
      static_cast<double>(total) / static_cast<double>(off_diag);
  std::size_t best = 0;
  for (std::size_t v = 1; v < cluster_size; ++v) {
    if (touches[v] > touches[best]) best = v;
  }
  stats.vm = best;
  stats.concentration =
      static_cast<double>(touches[best]) / static_cast<double>(total);
  return stats;
}

ChangePointDetector::ChangePointDetector(const DetectorOptions& options)
    : options_(options) {
  NETCONST_CHECK(options_.ewma_alpha > 0.0 && options_.ewma_alpha <= 1.0,
                 "ewma_alpha must be in (0, 1]");
  NETCONST_CHECK(options_.cusum_slack >= 0.0, "cusum_slack must be >= 0");
  NETCONST_CHECK(options_.cusum_threshold > 0.0,
                 "cusum_threshold must be > 0");
  NETCONST_CHECK(options_.deviation_floor > 0.0,
                 "deviation_floor must be > 0");
  NETCONST_CHECK(options_.concentration_split >= 0.0 &&
                     options_.concentration_split <= 1.0,
                 "concentration_split must be in [0, 1]");
  NETCONST_CHECK(options_.direction_settle_ratio > 0.0 &&
                     options_.direction_settle_ratio <= 1.0,
                 "direction_settle_ratio must be in (0, 1]");
}

void ChangePointDetector::reset() {
  tracks_ = {};
  reference_.clear();
  reference_norm_ = 0.0;
  delta_concentration_ = 0.0;
  delta_vm_ = 0;
  slides_ = 0;
  cooldown_ = 0;
  sparse_cooldown_ = 0;
  pending_ = 0;
  pending_signal_ = Signal::Angle;
  pending_onset_ = 0;
  pending_peak_ = 0.0;
}

void ChangePointDetector::freeze_reference(
    const std::vector<double>& constant) {
  reference_ = constant;
  double sum = 0.0;
  for (const double v : reference_) sum += v * v;
  reference_norm_ = std::sqrt(sum);
}

void ChangePointDetector::direction_signals(
    const std::vector<double>* constant, double& angle, double& level) {
  angle = 0.0;
  level = 0.0;
  delta_concentration_ = 0.0;
  delta_vm_ = 0;
  if (constant == nullptr || reference_.empty() ||
      constant->size() != reference_.size() || reference_norm_ <= 0.0) {
    return;
  }
  double dot = 0.0;
  double norm_sq = 0.0;
  for (std::size_t k = 0; k < reference_.size(); ++k) {
    dot += (*constant)[k] * reference_[k];
    norm_sq += (*constant)[k] * (*constant)[k];
  }
  const double norm = std::sqrt(norm_sq);
  if (norm <= 0.0) return;
  const double cosine =
      std::clamp(dot / (norm * reference_norm_), -1.0, 1.0);
  angle = std::acos(cosine);
  level = std::abs(std::log(norm / reference_norm_));

  // Attribute the direction change per VM: centered log-ratios
  // d_k = log(c_k / ref_k) - mean(d) are zero for a uniform swing and
  // concentrate their energy on one VM's pairs after a placement shift
  // (the mean removal strips the global level change first).
  const auto n = static_cast<std::size_t>(
      std::lround(std::sqrt(static_cast<double>(reference_.size()))));
  if (n < 2 || n * n != reference_.size()) return;
  std::vector<double> ratios(reference_.size(), 0.0);
  double ratio_sum = 0.0;
  std::size_t valid = 0;
  for (std::size_t k = 0; k < reference_.size(); ++k) {
    if ((*constant)[k] <= 0.0 || reference_[k] <= 0.0) continue;
    ratios[k] = std::log((*constant)[k] / reference_[k]);
    ratio_sum += ratios[k];
    ++valid;
  }
  if (valid == 0) return;
  const double ratio_mean = ratio_sum / static_cast<double>(valid);
  std::vector<double> vm_energy(n, 0.0);
  double total_energy = 0.0;
  for (std::size_t k = 0; k < reference_.size(); ++k) {
    if ((*constant)[k] <= 0.0 || reference_[k] <= 0.0) continue;
    const double centered = ratios[k] - ratio_mean;
    const double energy = centered * centered;
    total_energy += energy;
    vm_energy[k / n] += energy;
    vm_energy[k % n] += energy;
  }
  if (total_energy <= 1e-12) return;  // pure level move: no direction
  std::size_t best = 0;
  for (std::size_t v = 1; v < n; ++v) {
    if (vm_energy[v] > vm_energy[best]) best = v;
  }
  delta_vm_ = best;
  delta_concentration_ = vm_energy[best] / total_energy;
}

void ChangePointDetector::advance_track(SignalTrack& track, double value,
                                        bool learn_only) {
  track.last_value = value;
  if (!track.primed) {
    track.mean = value;
    track.dev = 0.0;
    track.primed = true;
    track.last_z = 0.0;
    return;
  }
  const double innovation = value - track.mean;
  const double denom =
      std::max(track.dev, options_.deviation_floor +
                              options_.deviation_rel_floor *
                                  std::abs(track.mean));
  const double z = innovation / denom;
  track.last_z = z;
  if (!learn_only) {
    const double next =
        std::max(0.0, track.cusum + z - options_.cusum_slack);
    if (track.cusum == 0.0 && next > 0.0) track.onset = slides_;
    track.cusum = next;
    if (track.cusum == 0.0) track.onset = 0;
  }
  // An anomaly in progress must not teach the baseline that it is
  // normal; during warmup/cooldown (learn_only) everything teaches.
  // The gate is one-sided like the CUSUM: downward innovations always
  // teach, so a baseline stranded above the signal re-learns instead
  // of staying desensitized. While the CUSUM is accumulating the
  // baseline freezes entirely — a persistent step must not be chased
  // by the mean while the evidence builds toward the threshold.
  if (learn_only ||
      (track.cusum == 0.0 && z <= options_.baseline_gate_z)) {
    track.mean += options_.ewma_alpha * innovation;
    track.dev = (1.0 - options_.ewma_alpha) * track.dev +
                options_.ewma_alpha * std::abs(innovation);
  }
}

Verdict ChangePointDetector::classify(Signal breached,
                                      const RefreshSignals& signals,
                                      double angle, double level) const {
  Verdict verdict;
  verdict.signal = breached;
  verdict.time = signals.time;
  verdict.refresh = signals.refresh;
  verdict.concentration = signals.support_concentration;
  // While a direction excursion is held for confirmation the low-rank
  // estimate itself is suspect, and sparse support measured against it
  // attributes storm mass to arbitrary VMs — sparse-side breaches may
  // not claim a placement shift until the hold settles the question.
  const bool concentrated =
      pending_ == 0 &&
      signals.support_concentration >= options_.concentration_split;
  const bool sparsity_elevated =
      track(Signal::Sparsity).cusum > 0.0;
  // A placement shift, unlike the estimator's own wander, moves the
  // constant by a macroscopic amount: direction-based placement calls
  // additionally need the raw angle/level past the magnitude floor.
  const bool direction_moved =
      std::max(angle, level) >= options_.min_direction_shift &&
      delta_concentration_ >= options_.concentration_split;
  switch (breached) {
    case Signal::Sparsity:
    case Signal::Residual:
      verdict.kind = concentrated ? VerdictKind::PlacementShift
                                  : VerdictKind::OutlierStorm;
      break;
    case Signal::Drift:
      // The tracker's subspace stopped explaining new rows. Concentrated
      // support names a VM; otherwise an elevated sparsity track says
      // transient outliers, and a quiet one says the baseline moved.
      verdict.kind = concentrated          ? VerdictKind::PlacementShift
                     : sparsity_elevated   ? VerdictKind::OutlierStorm
                                           : VerdictKind::BaselineDrift;
      break;
    case Signal::Angle:
    case Signal::Level:
      // Direction breaches carry their own attribution: the per-VM
      // share of the centered log-ratio energy against the reference.
      // A one-VM shift concentrates it; a uniform (diurnal) swing has
      // no centered residual at all.
      verdict.concentration = delta_concentration_;
      if (direction_moved) {
        verdict.kind = VerdictKind::PlacementShift;
        verdict.vm = delta_vm_;
        return verdict;
      }
      verdict.kind = VerdictKind::BaselineDrift;
      break;
  }
  if (verdict.kind == VerdictKind::PlacementShift) {
    verdict.vm = signals.support_vm;
  }
  return verdict;
}

std::optional<Verdict> ChangePointDetector::observe(
    const RefreshSignals& signals) {
  ++slides_;
  double angle = 0.0;
  double level = 0.0;
  direction_signals(signals.constant, angle, level);
  const double values[kSignalCount] = {signals.sparsity, signals.drift,
                                       angle, level, signals.residual};

  const bool warming = slides_ <= options_.warmup_slides;
  const bool learn_only = warming || cooldown_ > 0;
  const bool sparse_learn_only = learn_only || sparse_cooldown_ > 0;
  for (std::size_t k = 0; k < kSignalCount; ++k) {
    const auto signal = static_cast<Signal>(k);
    const bool sparse_side = signal == Signal::Sparsity ||
                             signal == Signal::Drift ||
                             signal == Signal::Residual;
    advance_track(tracks_[k], values[k],
                  sparse_side ? sparse_learn_only : learn_only);
  }
  if (sparse_cooldown_ > 0) --sparse_cooldown_;
  if (warming) {
    // Freeze the reference on the FIRST constant so the angle/level
    // tracks spend the rest of warmup learning the estimator's own
    // convergence noise, then re-freeze on the settled estimate at
    // warmup's end — the learned deviations stay (conservatively
    // large), the elevated means decay.
    if (signals.constant != nullptr &&
        (reference_.empty() || slides_ == options_.warmup_slides)) {
      freeze_reference(*signals.constant);
    }
    return std::nullopt;
  }
  // A tenant whose warmup ended on a refresh without a constant picks
  // the reference up on the first one that has it.
  if (reference_.empty() && signals.constant != nullptr) {
    freeze_reference(*signals.constant);
  }
  if (cooldown_ > 0) {
    if (--cooldown_ == 0 && signals.constant != nullptr) {
      // The post-change regime is the new normal from here on.
      freeze_reference(*signals.constant);
    }
    return std::nullopt;
  }

  // A held direction breach re-evaluates once its confirmation window
  // ends. A placement shift keeps the constant displaced past the
  // magnitude floor and is classified on the settled attribution; a
  // transient excursion (an interference storm leaking a uniform
  // multiplier into the low-rank side) has already slid out of the
  // window, so the hold is cancelled and the stale direction evidence
  // dropped.
  if (pending_ > 0) {
    const double magnitude = std::max(angle, level);
    if (--pending_ > 0) {
      pending_peak_ = std::max(pending_peak_, magnitude);
    } else if (magnitude < options_.min_direction_shift) {
      // The excursion left the window before confirmation: transient.
      // Drop the stale direction evidence with it.
      pending_onset_ = 0;
      pending_peak_ = 0.0;
      for (const Signal s : {Signal::Angle, Signal::Level}) {
        SignalTrack& t = tracks_[static_cast<std::size_t>(s)];
        t.cusum = 0.0;
        t.onset = 0;
      }
    } else if (magnitude < options_.direction_settle_ratio * pending_peak_) {
      // Above the floor but well off its peak: a multi-snapshot storm
      // still draining out of the window. Watch another confirm window
      // before deciding.
      pending_ = options_.direction_confirm_slides;
      pending_peak_ = magnitude;
    } else {
      SignalTrack& held = tracks_[static_cast<std::size_t>(pending_signal_)];
      Verdict verdict = classify(pending_signal_, signals, angle, level);
      verdict.score = held.cusum;
      verdict.latency_slides =
          pending_onset_ > 0 ? slides_ - pending_onset_ + 1 : 1;
      pending_onset_ = 0;
      pending_peak_ = 0.0;
      for (SignalTrack& t : tracks_) {
        t.cusum = 0.0;
        t.onset = 0;
      }
      if (signals.constant != nullptr) freeze_reference(*signals.constant);
      cooldown_ = options_.cooldown_slides;
      return verdict;
    }
  }

  for (std::size_t k = 0; k < kSignalCount; ++k) {
    SignalTrack& breached = tracks_[k];
    if (breached.cusum < options_.cusum_threshold) continue;
    const auto breached_signal = static_cast<Signal>(k);
    if (breached_signal == Signal::Angle ||
        breached_signal == Signal::Level) {
      if (pending_ > 0) continue;  // a breach is already held
      if (std::max(angle, level) < options_.min_direction_shift) {
        // The direction evidence is statistically loud but physically
        // tiny — estimator wander, not a regime change. Suppress the
        // verdict but keep (halved) evidence: a real shift still
        // growing through the window crosses the floor within a slide
        // or two.
        breached.cusum *= 0.5;
        continue;
      }
      if (options_.direction_confirm_slides > 0) {
        pending_ = options_.direction_confirm_slides;
        pending_signal_ = breached_signal;
        pending_onset_ = breached.onset > 0 ? breached.onset : slides_;
        pending_peak_ = std::max(angle, level);
        continue;
      }
    }
    Verdict verdict = classify(breached_signal, signals, angle, level);
    verdict.score = breached.cusum;
    verdict.latency_slides =
        breached.onset > 0 ? slides_ - breached.onset + 1 : 1;
    if (verdict.kind == VerdictKind::OutlierStorm) {
      // Storms are transient: quiet the sparse-side tracks and let the
      // direction tracks keep their evidence — a placement shift whose
      // mixed-window phase first showed up as a sparsity surge must
      // still be callable once the constant settles on its new
      // direction.
      for (const Signal s :
           {Signal::Sparsity, Signal::Drift, Signal::Residual}) {
        SignalTrack& t = tracks_[static_cast<std::size_t>(s)];
        t.cusum = 0.0;
        t.onset = 0;
      }
      sparse_cooldown_ = options_.cooldown_slides;
      return verdict;
    }
    for (SignalTrack& t : tracks_) {
      t.cusum = 0.0;
      t.onset = 0;
    }
    pending_ = 0;
    pending_onset_ = 0;
    pending_peak_ = 0.0;
    if (signals.constant != nullptr) freeze_reference(*signals.constant);
    cooldown_ = options_.cooldown_slides;
    return verdict;
  }
  return std::nullopt;
}

}  // namespace netconst::detect
