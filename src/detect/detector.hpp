// Online change-point detection over the maintenance loop's refresh
// telemetry — finding *change* in the constant, the dual of the paper's
// constant finder.
//
// Every maintenance refresh emits a handful of cheap scalar signals:
// the sparse share Norm(N_E), the solver's pre-polish residual, the
// incremental tracker's drift statistic, and the constant component
// expressed as per-pair transfer times (direction + level). A
// ChangePointDetector keeps an EWMA baseline (mean plus mean absolute
// deviation) per signal and feeds each standardized innovation into a
// one-sided CUSUM; when a CUSUM crosses its threshold the breach is
// classified into a typed verdict:
//
//   * placement_shift — the change concentrates on the links of one VM
//     (the paper's "constant changed around one instance" event that
//     maintenance must recalibrate away). Sparsity/residual breaches
//     read concentration off the sparse support; direction breaches
//     read it off the per-VM energy of the centered log-ratio
//     log(c_k / ref_k) between the current and reference constant — a
//     uniform (diurnal) swing has zero centered residual, a one-VM
//     shift concentrates it on that VM's pairs;
//   * outlier_storm   — sparsity mass surged but spread across pairs
//     (interference bursts the dynamic component should absorb — NOT a
//     reason to recalibrate);
//   * baseline_drift  — the constant's direction or level moved without
//     concentrating anywhere (slow regime change, e.g. a diurnal load
//     cycle).
//
// Detection latency is accounted in window slides: each CUSUM records
// the slide its score left zero, and a verdict reports how many slides
// elapsed from that onset to the breach (1 = detected on the first
// slide that showed evidence).
//
// Everything here is sequential scalar arithmetic on a few doubles, so
// a detector's verdict stream is a pure function of its input stream —
// per-tenant determinism (byte-identical verdicts regardless of the
// service's thread count) holds by construction, with no SIMD or
// reduction-order caveats to manage.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "linalg/matrix.hpp"

namespace netconst::detect {

enum class VerdictKind {
  PlacementShift,  // persistent constant change around one VM
  OutlierStorm,    // diffuse sparsity surge (transient interference)
  BaselineDrift,   // constant direction/level moved without sparsity
};
inline constexpr std::size_t kVerdictKindCount = 3;

const char* verdict_kind_name(VerdictKind kind);

/// The monitored signal tracks, in breach-scan priority order.
enum class Signal {
  Sparsity,  // Norm(N_E), worst layer
  Drift,     // incremental tracker drift statistic, worst layer
  Angle,     // angle between current and reference constant direction
  Level,     // |log| magnitude ratio of current vs reference constant
  Residual,  // pre-polish solver residual, worst layer
};
inline constexpr std::size_t kSignalCount = 5;

const char* signal_name(Signal signal);

/// Sparse-support geometry of one layer's E matrix in the flattened
/// window layout (each row one snapshot, column c = directed pair
/// (c / N, c % N) of an N-VM cluster — see netmodel/tp_matrix.hpp).
struct SupportStats {
  /// Share of off-diagonal entries with |e| > cutoff, in [0, 1].
  double fraction = 0.0;
  /// Share of support entries whose pair touches the most-implicated
  /// VM, in [0, 1]. Diffuse support scores about 2/N; support confined
  /// to one VM's links scores 1.
  double concentration = 0.0;
  /// The most-implicated VM (smallest index on ties; 0 if no support).
  std::size_t vm = 0;
};

/// Scan a flattened sparse component (rows = snapshots, N^2 columns)
/// at the given absolute cutoff. Callers derive the cutoff from the
/// data scale exactly like rpca::relative_l0 does
/// (rel_tol * max_abs(data)).
SupportStats support_stats(const linalg::Matrix& sparse,
                           std::size_t cluster_size, double cutoff);

/// One refresh's worth of signals, assembled by the caller (the online
/// service) from the refresh report and the accepted component.
struct RefreshSignals {
  double time = 0.0;          // provider time of the refresh
  std::uint64_t refresh = 0;  // tenant refresh ordinal
  double sparsity = 0.0;      // Norm(N_E), worst layer
  double residual = 0.0;      // pre-polish residual, worst layer
  double drift = 0.0;         // incremental drift statistic (0 if n/a)
  double support_concentration = 0.0;
  std::size_t support_vm = 0;
  /// Flattened constant direction (e.g. per-pair transfer times);
  /// nullptr when unavailable. The detector freezes a reference copy at
  /// the end of warmup and after each verdict.
  const std::vector<double>* constant = nullptr;
};

struct Verdict {
  VerdictKind kind = VerdictKind::BaselineDrift;
  Signal signal = Signal::Sparsity;  // the track that breached
  double time = 0.0;
  std::uint64_t refresh = 0;
  /// Slides from the breached CUSUM's onset to the breach, >= 1.
  std::uint64_t latency_slides = 0;
  double score = 0.0;  // CUSUM value at the breach
  /// PlacementShift only: the implicated VM and how concentrated the
  /// sparse support was on it.
  std::size_t vm = 0;
  double concentration = 0.0;
};

struct DetectorOptions {
  /// Slides spent learning baselines before any verdict can fire. The
  /// constant reference is frozen when warmup completes.
  std::size_t warmup_slides = 6;
  /// EWMA weight of the newest observation in the mean/deviation
  /// baselines.
  double ewma_alpha = 0.2;
  /// CUSUM slack k, in deviation units: innovations below k standard
  /// deviations decay the score instead of growing it.
  double cusum_slack = 1.0;
  /// CUSUM threshold h, in accumulated deviation units.
  double cusum_threshold = 6.0;
  /// Standardization floor: z = (x - mean) / max(dev, floor + rel*|mean|).
  double deviation_floor = 1e-3;
  double deviation_rel_floor = 0.05;
  /// Baselines freeze while z exceeds this (one-sided, like the CUSUM;
  /// downward innovations always teach), so an anomaly in progress
  /// cannot teach the detector that it is normal. Baselines also freeze
  /// whenever the track's CUSUM is accumulating — a persistent step
  /// must not be chased by the mean while the evidence builds.
  double baseline_gate_z = 4.0;
  /// Support concentration at or above this reads as "one VM's links":
  /// placement shift rather than diffuse storm. 0.6 clears the 0.5 a
  /// two-VM rack event scores by construction.
  double concentration_split = 0.6;
  /// Minimum raw magnitude (radians for Angle, |log| units for Level)
  /// of max(angle, level) a direction breach needs to emit a verdict.
  /// The CUSUM standardizes magnitudes away and the attribution is
  /// scale-invariant, so without a floor the estimator's own wander
  /// (concentrated by chance) could name a VM. A sub-floor breach is
  /// suppressed — its CUSUM is halved and keeps accumulating, so a
  /// still-growing real shift fires a slide later instead of being
  /// misclassified, while bounded wander never fires at all.
  double min_direction_shift = 0.15;
  /// A direction breach that clears the magnitude floor is held this
  /// many further slides before it may emit a verdict. A transient
  /// level/direction excursion (an outlier storm leaking into the
  /// low-rank side — a uniform multiplier on a snapshot is perfectly
  /// rank-compatible) reverts once the contaminated snapshot slides out
  /// of the window and the held call is cancelled; a placement shift
  /// persists and is classified on the settled attribution. Set this to
  /// the tenant's window depth: one contaminated snapshot stays in a
  /// capacity-W window for W slides. 0 = classify immediately.
  std::size_t direction_confirm_slides = 2;
  /// At the end of a hold the excursion must have settled: if the
  /// magnitude is below this fraction of its peak during the hold it is
  /// still draining out of the window (a multi-snapshot storm), and the
  /// hold re-arms for another confirm window instead of classifying. A
  /// real shift plateaus — its resolve-time magnitude IS the peak.
  double direction_settle_ratio = 0.7;
  /// Slides after a placement/drift verdict during which no new verdict
  /// fires while the baselines re-learn the post-change regime. A storm
  /// verdict instead quiets only the sparse-side tracks (sparsity,
  /// drift, residual) and leaves the direction tracks accumulating —
  /// storms are transient and must not erase placement evidence.
  std::size_t cooldown_slides = 4;
};

/// One EWMA baseline + one-sided CUSUM (inspectable for tests).
struct SignalTrack {
  double mean = 0.0;
  double dev = 0.0;    // EWMA of |innovation|
  double cusum = 0.0;  // g_t = max(0, g_{t-1} + z_t - k)
  double last_value = 0.0;
  double last_z = 0.0;
  /// Slide ordinal when cusum last left zero; 0 = currently at zero.
  std::uint64_t onset = 0;
  bool primed = false;  // first observation seen
};

class ChangePointDetector {
 public:
  explicit ChangePointDetector(const DetectorOptions& options = {});

  /// Feed one refresh; returns a verdict when a CUSUM breaches (at most
  /// one per call — tracks are scanned in Signal declaration order and
  /// the first breach wins). Firing resets every CUSUM, re-freezes the
  /// constant reference at the current constant, and starts the
  /// cooldown.
  std::optional<Verdict> observe(const RefreshSignals& signals);

  /// Forget baselines, CUSUMs, reference and slide count.
  void reset();

  std::uint64_t slides() const { return slides_; }
  bool warmed_up() const { return slides_ >= options_.warmup_slides; }
  bool in_cooldown() const { return cooldown_ > 0; }
  /// True while a direction breach is held awaiting confirmation.
  bool confirming() const { return pending_ > 0; }
  bool has_reference() const { return !reference_.empty(); }
  const SignalTrack& track(Signal signal) const {
    return tracks_[static_cast<std::size_t>(signal)];
  }
  /// Per-VM share of the centered log-ratio energy between the latest
  /// constant and the reference (0 when no direction change), and the
  /// VM that carries it — the attribution behind direction-breach
  /// classification, exposed for diagnostics.
  double delta_concentration() const { return delta_concentration_; }
  std::size_t delta_vm() const { return delta_vm_; }
  const DetectorOptions& options() const { return options_; }

 private:
  void freeze_reference(const std::vector<double>& constant);
  /// Angle (radians) and |log| level shift of `constant` against the
  /// frozen reference; both 0 until a reference exists. Also refreshes
  /// delta_concentration_ / delta_vm_: the per-VM share of the centered
  /// log-ratio energy between `constant` and the reference (the
  /// direction-change attribution used to classify Angle/Level
  /// breaches).
  void direction_signals(const std::vector<double>* constant, double& angle,
                         double& level);
  void advance_track(SignalTrack& track, double value, bool learn_only);
  Verdict classify(Signal breached, const RefreshSignals& signals,
                   double angle, double level) const;

  DetectorOptions options_;
  std::array<SignalTrack, kSignalCount> tracks_;
  std::vector<double> reference_;
  double reference_norm_ = 0.0;
  double delta_concentration_ = 0.0;
  std::size_t delta_vm_ = 0;
  std::uint64_t slides_ = 0;
  std::uint64_t cooldown_ = 0;
  /// Storm-verdict cooldown: quiets only the sparse-side tracks.
  std::uint64_t sparse_cooldown_ = 0;
  /// Direction-breach confirmation hold: slides left before the held
  /// breach is re-evaluated (0 = no breach held).
  std::uint64_t pending_ = 0;
  Signal pending_signal_ = Signal::Angle;
  std::uint64_t pending_onset_ = 0;
  double pending_peak_ = 0.0;
};

}  // namespace netconst::detect
