#include "cloud/synthetic.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace netconst::cloud {
namespace {

// Deterministic per-pair stream: mix the seed with the pair identity and
// the placement epochs so constants change exactly when a VM migrates.
std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

}  // namespace

SyntheticCloud::SyntheticCloud(const SyntheticCloudConfig& config)
    : config_(config),
      master_rng_(config.seed),
      migration_rng_(mix(config.seed, 0xabcdefULL)) {
  NETCONST_CHECK(config_.cluster_size >= 2, "cluster needs >= 2 VMs");
  NETCONST_CHECK(config_.datacenter_racks >= 1, "need at least one rack");
  NETCONST_CHECK(config_.same_rack_bandwidth > 0.0 &&
                     config_.cross_rack_bandwidth > 0.0,
                 "bandwidth bases must be positive");
  NETCONST_CHECK(config_.mean_quiet_duration > 0.0 &&
                     config_.mean_spike_duration > 0.0,
                 "interference durations must be positive");
  NETCONST_CHECK(config_.diurnal_amplitude >= 0.0 &&
                     config_.diurnal_amplitude < 1.0,
                 "diurnal amplitude must be in [0, 1)");
  NETCONST_CHECK(config_.diurnal_amplitude == 0.0 ||
                     config_.diurnal_period > 0.0,
                 "diurnal period must be positive when the cycle is on");

  const std::size_t n = config_.cluster_size;
  placement_.resize(n);
  epoch_.assign(n, 0);
  for (std::size_t vm = 0; vm < n; ++vm) {
    placement_[vm] = static_cast<std::size_t>(master_rng_.uniform_int(
        0, static_cast<std::int64_t>(config_.datacenter_racks) - 1));
  }
  const_alpha_.assign(n * n, 0.0);
  const_beta_.assign(n * n, 1.0);
  rebuild_all_constants();

  pair_states_.reserve(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      PairState state;
      state.rng = Rng(mix(mix(config_.seed, i * n + j), 0x5eedULL));
      // Random initial phase within a quiet period.
      state.state_until =
          state.rng.exponential(config_.mean_quiet_duration);
      pair_states_.push_back(std::move(state));
    }
  }

  rack_states_.reserve(config_.datacenter_racks);
  for (std::size_t r = 0; r < config_.datacenter_racks; ++r) {
    PairState state;
    state.rng = Rng(mix(mix(config_.seed, 0x7ac5ULL), r));
    state.state_until =
        state.rng.exponential(config_.mean_rack_quiet_duration);
    rack_states_.push_back(std::move(state));
  }

  if (config_.mean_migration_interval > 0.0) {
    next_migration_ =
        migration_rng_.exponential(config_.mean_migration_interval);
  }
}

void SyntheticCloud::rebuild_constants_for(std::size_t vm) {
  const std::size_t n = config_.cluster_size;
  for (std::size_t other = 0; other < n; ++other) {
    if (other == vm) continue;
    for (const auto& [i, j] : {std::pair{vm, other}, std::pair{other, vm}}) {
      const bool same_rack = placement_[i] == placement_[j];
      Rng pair_rng(mix(mix(mix(mix(config_.seed, i), j), epoch_[i] * 131),
                       epoch_[j] * 257));
      const double base_alpha = same_rack ? config_.same_rack_latency
                                          : config_.cross_rack_latency;
      const double base_beta = same_rack ? config_.same_rack_bandwidth
                                         : config_.cross_rack_bandwidth;
      const_alpha_[pair_index(i, j)] =
          base_alpha *
          std::exp(config_.latency_heterogeneity * pair_rng.normal());
      const_beta_[pair_index(i, j)] =
          base_beta *
          std::exp(config_.bandwidth_heterogeneity * pair_rng.normal());
    }
  }
}

void SyntheticCloud::rebuild_all_constants() {
  for (std::size_t vm = 0; vm < config_.cluster_size; ++vm) {
    rebuild_constants_for(vm);
  }
}

void SyntheticCloud::process_migrations_up_to(double t) {
  while (next_migration_ >= 0.0 && next_migration_ <= t) {
    const auto vm = static_cast<std::size_t>(migration_rng_.uniform_int(
        0, static_cast<std::int64_t>(config_.cluster_size) - 1));
    placement_[vm] = static_cast<std::size_t>(migration_rng_.uniform_int(
        0, static_cast<std::int64_t>(config_.datacenter_racks) - 1));
    ++epoch_[vm];
    ++migration_count_;
    rebuild_constants_for(vm);
    next_migration_ +=
        migration_rng_.exponential(config_.mean_migration_interval);
  }
}

void SyntheticCloud::advance(double seconds) {
  NETCONST_CHECK(seconds >= 0.0, "cannot advance backwards");
  now_ += seconds;
  process_migrations_up_to(now_);
}

namespace {

// Advance a two-state renewal process (quiet <-> congested) to time `t`.
void advance_renewal(SyntheticCloud::PairState& state, double t,
                     double mean_quiet, double mean_congested,
                     double max_bw_factor, double max_lat_factor) {
  while (state.state_until < t) {
    state.spiking = !state.spiking;
    if (state.spiking) {
      state.bw_factor = state.rng.uniform(1.5, max_bw_factor);
      state.lat_factor = state.rng.uniform(1.0, max_lat_factor);
      state.state_until += state.rng.exponential(mean_congested);
    } else {
      state.bw_factor = 1.0;
      state.lat_factor = 1.0;
      state.state_until += state.rng.exponential(mean_quiet);
    }
  }
}

}  // namespace

void SyntheticCloud::advance_pair_state(PairState& state, double t) {
  advance_renewal(state, t, config_.mean_quiet_duration,
                  config_.mean_spike_duration,
                  config_.max_spike_bandwidth_factor,
                  config_.max_spike_latency_factor);
}

double SyntheticCloud::rack_congestion_factor(std::size_t rack) {
  NETCONST_ASSERT(rack < rack_states_.size());
  PairState& state = rack_states_[rack];
  advance_renewal(state, now_, config_.mean_rack_quiet_duration,
                  config_.mean_rack_congestion_duration,
                  config_.max_rack_congestion_factor,
                  /*max_lat_factor=*/1.0);
  return state.spiking ? state.bw_factor : 1.0;
}

double SyntheticCloud::diurnal_factor(double t) const {
  if (config_.diurnal_amplitude == 0.0) return 1.0;
  return 1.0 + config_.diurnal_amplitude *
                   std::sin(2.0 * 3.14159265358979323846 * t /
                                config_.diurnal_period +
                            config_.diurnal_phase);
}

netmodel::LinkParams SyntheticCloud::sample_pair(std::size_t i,
                                                 std::size_t j) {
  PairState& state = pair_states_[pair_index(i, j)];
  advance_pair_state(state, now_);
  const double band_bw = std::exp(config_.band_sigma * state.rng.normal());
  const double band_lat = std::exp(config_.band_sigma * state.rng.normal());
  // The daily load swing scales the whole fabric together: latencies
  // stretch and bandwidths shrink by the same factor, so the constant's
  // direction survives while its level breathes.
  const double diurnal = diurnal_factor(now_);
  netmodel::LinkParams link;
  link.alpha = const_alpha_[pair_index(i, j)] * band_lat * state.lat_factor *
               diurnal;
  link.beta = const_beta_[pair_index(i, j)] * band_bw /
              (state.bw_factor * diurnal);
  // Cross-rack pairs additionally share their racks' uplinks; an ongoing
  // rack congestion event degrades every pair touching the rack.
  if (placement_[i] != placement_[j]) {
    link.beta /= std::max(rack_congestion_factor(placement_[i]),
                          rack_congestion_factor(placement_[j]));
  }
  return link;
}

netmodel::LinkParams SyntheticCloud::sample_link(std::size_t i,
                                                 std::size_t j) {
  NETCONST_CHECK(i < cluster_size() && j < cluster_size() && i != j,
                 "invalid pair");
  return sample_pair(i, j);
}

double SyntheticCloud::measure(std::size_t i, std::size_t j,
                               std::uint64_t bytes) {
  const netmodel::LinkParams link = sample_link(i, j);
  const double elapsed = link.transfer_time(bytes);
  advance(elapsed);
  return elapsed;
}

std::vector<double> SyntheticCloud::measure_concurrent(
    const std::vector<std::pair<std::size_t, std::size_t>>& pairs,
    std::uint64_t bytes) {
  // Concurrent cross-rack transfers share their racks' uplinks fairly.
  const std::size_t racks = config_.datacenter_racks;
  std::vector<std::size_t> egress(racks, 0), ingress(racks, 0);
  std::vector<netmodel::LinkParams> sampled;
  sampled.reserve(pairs.size());
  for (const auto& [i, j] : pairs) {
    NETCONST_CHECK(i < cluster_size() && j < cluster_size() && i != j,
                   "invalid pair");
    sampled.push_back(sample_pair(i, j));
    if (placement_[i] != placement_[j]) {
      ++egress[placement_[i]];
      ++ingress[placement_[j]];
    }
  }
  const double uplink_capacity =
      config_.uplink_capacity_factor * config_.cross_rack_bandwidth;
  std::vector<double> elapsed;
  elapsed.reserve(pairs.size());
  double max_elapsed = 0.0;
  for (std::size_t k = 0; k < pairs.size(); ++k) {
    const auto& [i, j] = pairs[k];
    double beta = sampled[k].beta;
    if (placement_[i] != placement_[j]) {
      const auto users = static_cast<double>(
          std::max(egress[placement_[i]], ingress[placement_[j]]));
      beta = std::min(beta, uplink_capacity / std::max(users, 1.0));
    }
    const double t = sampled[k].alpha +
                     static_cast<double>(bytes) / beta;
    elapsed.push_back(t);
    max_elapsed = std::max(max_elapsed, t);
  }
  advance(max_elapsed);
  return elapsed;
}

netmodel::PerformanceMatrix SyntheticCloud::oracle_snapshot() {
  const std::size_t n = cluster_size();
  netmodel::PerformanceMatrix snap(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      snap.set_link(i, j, sample_pair(i, j));
    }
  }
  return snap;
}

netmodel::PerformanceMatrix SyntheticCloud::ground_truth_constant() const {
  const std::size_t n = cluster_size();
  netmodel::PerformanceMatrix snap(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      snap.set_link(i, j, {const_alpha_[pair_index(i, j)],
                           const_beta_[pair_index(i, j)]});
    }
  }
  return snap;
}

}  // namespace netconst::cloud
