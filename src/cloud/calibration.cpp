#include "cloud/calibration.hpp"

#include <cmath>

#include "support/error.hpp"

namespace netconst::cloud {
namespace {

/// A usable probe value: finite and positive. Fault injection reports
/// lost values as NaN; a hostile provider could also return 0 or -inf.
bool usable(double elapsed) {
  return std::isfinite(elapsed) && elapsed > 0.0;
}

/// Fit one link from a (small, large) probe pair, retrying the pair
/// with linear backoff while either value is unusable. On success the
/// link is written into `result.matrix`; on exhaustion it is marked
/// missing. Fault accounting lands in `result`.
void fit_or_retry(NetworkProvider& provider, std::size_t i, std::size_t j,
                  double t_small, double t_large,
                  const CalibrationOptions& options,
                  CalibrationResult& result) {
  if (!usable(t_small)) ++result.failed_measurements;
  if (!usable(t_large)) ++result.failed_measurements;
  for (std::size_t attempt = 1;
       (!usable(t_small) || !usable(t_large)) &&
       attempt <= options.max_retries;
       ++attempt) {
    provider.advance(options.retry_backoff *
                     static_cast<double>(attempt));
    ++result.retries;
    t_small = provider.measure(i, j, options.pingpong.small_bytes);
    t_large = provider.measure(i, j, options.pingpong.large_bytes);
    if (!usable(t_small)) ++result.failed_measurements;
    if (!usable(t_large)) ++result.failed_measurements;
  }
  if (usable(t_small) && usable(t_large)) {
    result.matrix.set_link(i, j,
                           robust_fit(t_small, options.pingpong.small_bytes,
                                      t_large,
                                      options.pingpong.large_bytes));
  } else {
    result.matrix.mark_link_missing(i, j);
    ++result.missing_links;
  }
}

}  // namespace

std::vector<PairList> all_pairs_rounds(std::size_t n) {
  NETCONST_CHECK(n >= 2, "need at least two VMs");
  // Circle method on m participants (m = n rounded up to even; index m-1
  // is the bye when n is odd).
  const std::size_t m = n % 2 == 0 ? n : n + 1;
  std::vector<std::size_t> ring(m);
  for (std::size_t i = 0; i < m; ++i) ring[i] = i;

  std::vector<PairList> rounds;
  rounds.reserve(2 * (m - 1));
  for (std::size_t r = 0; r < m - 1; ++r) {
    PairList forward, backward;
    for (std::size_t k = 0; k < m / 2; ++k) {
      const std::size_t a = ring[k];
      const std::size_t b = ring[m - 1 - k];
      if (a >= n || b >= n) continue;  // bye slot
      forward.emplace_back(a, b);
      backward.emplace_back(b, a);
    }
    if (!forward.empty()) {
      rounds.push_back(std::move(forward));
      rounds.push_back(std::move(backward));
    }
    // Rotate all but the first element.
    std::size_t last = ring[m - 1];
    for (std::size_t i = m - 1; i > 1; --i) ring[i] = ring[i - 1];
    ring[1] = last;
  }
  return rounds;
}

CalibrationResult calibrate_snapshot(NetworkProvider& provider,
                                     const CalibrationOptions& options) {
  const std::size_t n = provider.cluster_size();
  const double start = provider.now();
  CalibrationResult result;
  result.matrix = netmodel::PerformanceMatrix(n);

  if (options.concurrent) {
    for (const PairList& round : all_pairs_rounds(n)) {
      provider.advance(options.round_setup_overhead);
      const std::vector<double> small = provider.measure_concurrent(
          round, options.pingpong.small_bytes);
      const std::vector<double> large = provider.measure_concurrent(
          round, options.pingpong.large_bytes);
      for (std::size_t k = 0; k < round.size(); ++k) {
        fit_or_retry(provider, round[k].first, round[k].second, small[k],
                     large[k], options, result);
      }
      ++result.rounds;
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (i == j) continue;
        provider.advance(options.round_setup_overhead);
        const double t_small =
            provider.measure(i, j, options.pingpong.small_bytes);
        const double t_large =
            provider.measure(i, j, options.pingpong.large_bytes);
        fit_or_retry(provider, i, j, t_small, t_large, options, result);
        ++result.rounds;
      }
    }
  }
  result.elapsed_seconds = provider.now() - start;
  return result;
}

SeriesResult calibrate_series(NetworkProvider& provider,
                              const SeriesOptions& options) {
  NETCONST_CHECK(options.time_step >= 1, "time step must be >= 1");
  const double start = provider.now();
  SeriesResult result;
  for (std::size_t row = 0; row < options.time_step; ++row) {
    if (row != 0) provider.advance(options.interval);
    CalibrationResult snap =
        calibrate_snapshot(provider, options.calibration);
    result.series.append(provider.now(), std::move(snap.matrix));
  }
  result.elapsed_seconds = provider.now() - start;
  return result;
}

}  // namespace netconst::cloud
