// TraceReplayProvider — a NetworkProvider backed by a recorded trace.
//
// This is the paper's Section V-D3 trace-replay methodology as a
// first-class provider: record a calibration trace once (on the
// synthetic cloud, the simulator, or — in the paper's case — EC2), then
// replay it deterministically under any optimization strategy. The
// network "performance" at time t is the latest recorded snapshot, so
// identical experiments can be re-run bit-for-bit against identical
// conditions.
#pragma once

#include "cloud/provider.hpp"
#include "netmodel/trace.hpp"

namespace netconst::cloud {

class TraceReplayProvider final : public NetworkProvider {
 public:
  /// Replay starts at the trace's first snapshot time. The trace must
  /// be non-empty.
  explicit TraceReplayProvider(netmodel::Trace trace);

  std::size_t cluster_size() const override;
  double now() const override { return now_; }
  void advance(double seconds) override;

  /// Transfer time straight from the snapshot in effect now; the clock
  /// advances by it. Replay never models measurement interference — the
  /// recorded trace already embodies the conditions it was taken under.
  double measure(std::size_t i, std::size_t j,
                 std::uint64_t bytes) override;
  std::vector<double> measure_concurrent(
      const std::vector<std::pair<std::size_t, std::size_t>>& pairs,
      std::uint64_t bytes) override;

  netmodel::PerformanceMatrix oracle_snapshot() override;

  /// True once the clock has passed the last recorded snapshot (replay
  /// keeps returning the final snapshot after that).
  bool exhausted() const;

  const netmodel::Trace& trace() const { return trace_; }

 private:
  netmodel::Trace trace_;
  double now_ = 0.0;
};

}  // namespace netconst::cloud
