// NetworkProvider — the abstraction behind "a virtual cluster whose
// pair-wise network performance can be measured".
//
// Everything above this interface (calibration, Algorithm 1, the
// experiment campaigns) is agnostic to whether measurements come from the
// synthetic EC2-like cloud model or from the flow-level simulator; this
// is the seam that replaces the paper's physical EC2 deployment.
//
// Time is explicit: measuring costs simulated time (the elapsed transfer
// duration), matching the paper's accounting of calibration overhead.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "netmodel/perf_matrix.hpp"

namespace netconst::cloud {

class NetworkProvider {
 public:
  virtual ~NetworkProvider() = default;

  /// Number of virtual machines in the cluster.
  virtual std::size_t cluster_size() const = 0;

  /// Current simulated time in seconds.
  virtual double now() const = 0;

  /// Let simulated time pass without measuring (application compute,
  /// waiting between experimental runs, ...).
  virtual void advance(double seconds) = 0;

  /// Send `bytes` from VM i to VM j; returns the elapsed transfer time
  /// and advances the clock by it.
  virtual double measure(std::size_t i, std::size_t j,
                         std::uint64_t bytes) = 0;

  /// Start all transfers simultaneously and wait for all of them;
  /// returns per-pair elapsed times and advances the clock by the
  /// maximum. Concurrent transfers may interfere (that is the point of
  /// the paper's N/2-pairs-per-step calibration trade-off).
  virtual std::vector<double> measure_concurrent(
      const std::vector<std::pair<std::size_t, std::size_t>>& pairs,
      std::uint64_t bytes) = 0;

  /// The instantaneous true pair-wise performance right now — the
  /// experimenter's "offline oracle" used for trace generation and
  /// accuracy studies. Does not consume simulated time.
  virtual netmodel::PerformanceMatrix oracle_snapshot() = 0;
};

}  // namespace netconst::cloud
