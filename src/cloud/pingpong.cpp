#include "cloud/pingpong.hpp"

#include "support/error.hpp"

namespace netconst::cloud {

netmodel::LinkParams robust_fit(double t_small, std::uint64_t small_bytes,
                                double t_large, std::uint64_t large_bytes) {
  NETCONST_CHECK(t_small > 0.0 && t_large > 0.0,
                 "calibration times must be positive");
  NETCONST_CHECK(large_bytes > small_bytes,
                 "large message must be larger than the small one");
  if (t_large > t_small) {
    return netmodel::fit_alpha_beta(t_small, small_bytes, t_large,
                                    large_bytes);
  }
  // Jitter swallowed the size difference; attribute everything to
  // bandwidth so the link still gets a finite, pessimistic-free estimate.
  netmodel::LinkParams p;
  p.alpha = t_small;
  p.beta = static_cast<double>(large_bytes) / t_large;
  return p;
}

netmodel::LinkParams pingpong_calibrate(NetworkProvider& provider,
                                        std::size_t i, std::size_t j,
                                        const PingpongOptions& options) {
  NETCONST_CHECK(i != j, "pingpong with self");
  const double t_small = provider.measure(i, j, options.small_bytes);
  const double t_large = provider.measure(i, j, options.large_bytes);
  return robust_fit(t_small, options.small_bytes, t_large,
                    options.large_bytes);
}

}  // namespace netconst::cloud
