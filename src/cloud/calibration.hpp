// All-link calibration of a virtual cluster.
//
// The paper's recipe (Section IV-B): measuring every ordered pair one by
// one is prohibitively expensive, so each step picks N/2 disjoint
// sender/receiver pairs measured concurrently, taking 2*N steps overall.
// The schedule here is the round-robin tournament (circle method): N-1
// rounds of N/2 disjoint unordered pairs, run once per direction — every
// ordered pair measured exactly once, in 2*(N-1) concurrent rounds.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "cloud/pingpong.hpp"
#include "cloud/provider.hpp"
#include "netmodel/trace.hpp"

namespace netconst::cloud {

using PairList = std::vector<std::pair<std::size_t, std::size_t>>;

/// Round-robin tournament rounds covering every ordered pair of
/// {0..n-1} exactly once. Each round's pairs are vertex-disjoint, so they
/// can be measured concurrently. Handles odd n (one VM idles per round).
std::vector<PairList> all_pairs_rounds(std::size_t n);

struct CalibrationOptions {
  PingpongOptions pingpong;
  /// Coordination cost charged per concurrent round (barrier + process
  /// launch), in seconds. This is what makes total calibration overhead
  /// roughly linear in N (Figure 4); 0.05 s/round reproduces the paper's
  /// ~4 min at 64 instances and ~10 min at 196 for a 10-row TP-matrix.
  double round_setup_overhead = 0.05;
  /// false = measure pairs one by one (no interference but O(N^2) cost);
  /// the paper's default is concurrent.
  bool concurrent = true;
  /// Degraded-measurement policy: a probe whose elapsed time comes back
  /// non-finite or non-positive (a timeout or a measurement dropped in
  /// flight — see faults::FaultInjectionProvider) is retried pair-wise
  /// up to `max_retries` times, idling `retry_backoff * attempt`
  /// seconds before each attempt. A link still unmeasured after the
  /// retries is marked missing (netmodel::missing_link) for the masked
  /// decomposition path to repair — a hole, never garbage.
  std::size_t max_retries = 2;
  double retry_backoff = 1.0;  // seconds; grows linearly per attempt
};

struct CalibrationResult {
  netmodel::PerformanceMatrix matrix;
  double elapsed_seconds = 0.0;  // simulated time the calibration took
  std::size_t rounds = 0;
  /// Probe values lost to faults (non-finite measurements), including
  /// retries that failed again.
  std::size_t failed_measurements = 0;
  /// Pair re-calibrations performed after a lost probe.
  std::size_t retries = 0;
  /// Links left missing after the retry budget was exhausted.
  std::size_t missing_links = 0;

  bool degraded() const { return failed_measurements > 0; }
};

/// One full all-link calibration (one TP-matrix row).
CalibrationResult calibrate_snapshot(NetworkProvider& provider,
                                     const CalibrationOptions& options = {});

struct SeriesOptions {
  /// Number of calibration rows (the paper's "time step" parameter).
  std::size_t time_step = 10;
  /// Idle time between consecutive calibrations, seconds. Rows must be
  /// spaced wider than typical interference bursts (minutes) so that a
  /// congested link shows up as a SPARSE set of corrupted cells rather
  /// than polluting the whole window — that temporal sparsity is what
  /// RPCA exploits.
  double interval = 600.0;
  CalibrationOptions calibration;
};

struct SeriesResult {
  netmodel::TemporalPerformance series;
  double elapsed_seconds = 0.0;
};

/// Calibrate `time_step` snapshots spaced by `interval` — the TP-matrix
/// N_A of Algorithm 1 line 1.
SeriesResult calibrate_series(NetworkProvider& provider,
                              const SeriesOptions& options = {});

}  // namespace netconst::cloud
