#include "cloud/trace_replay.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace netconst::cloud {

TraceReplayProvider::TraceReplayProvider(netmodel::Trace trace)
    : trace_(std::move(trace)) {
  NETCONST_CHECK(trace_.snapshot_count() > 0, "replay of an empty trace");
  now_ = trace_.series().time_at(0);
}

std::size_t TraceReplayProvider::cluster_size() const {
  return trace_.cluster_size();
}

void TraceReplayProvider::advance(double seconds) {
  NETCONST_CHECK(seconds >= 0.0, "cannot advance backwards");
  now_ += seconds;
}

double TraceReplayProvider::measure(std::size_t i, std::size_t j,
                                    std::uint64_t bytes) {
  NETCONST_CHECK(i < cluster_size() && j < cluster_size() && i != j,
                 "invalid pair");
  const double elapsed =
      trace_.series().at_time(now_).transfer_time(i, j, bytes);
  advance(elapsed);
  return elapsed;
}

std::vector<double> TraceReplayProvider::measure_concurrent(
    const std::vector<std::pair<std::size_t, std::size_t>>& pairs,
    std::uint64_t bytes) {
  const netmodel::PerformanceMatrix& snap = trace_.series().at_time(now_);
  std::vector<double> elapsed;
  elapsed.reserve(pairs.size());
  double max_elapsed = 0.0;
  for (const auto& [i, j] : pairs) {
    NETCONST_CHECK(i < cluster_size() && j < cluster_size() && i != j,
                   "invalid pair");
    const double t = snap.transfer_time(i, j, bytes);
    elapsed.push_back(t);
    max_elapsed = std::max(max_elapsed, t);
  }
  advance(max_elapsed);
  return elapsed;
}

netmodel::PerformanceMatrix TraceReplayProvider::oracle_snapshot() {
  return trace_.series().at_time(now_);
}

bool TraceReplayProvider::exhausted() const {
  return now_ >
         trace_.series().time_at(trace_.snapshot_count() - 1);
}

}  // namespace netconst::cloud
