#include "cloud/simnet_provider.hpp"

#include <unordered_set>

#include "support/error.hpp"

namespace netconst::cloud {

SimnetProvider::SimnetProvider(
    std::shared_ptr<simnet::FlowSimulator> simulator,
    std::vector<simnet::NodeId> vm_hosts)
    : simulator_(std::move(simulator)), vm_hosts_(std::move(vm_hosts)) {
  NETCONST_CHECK(simulator_ != nullptr, "null simulator");
  NETCONST_CHECK(vm_hosts_.size() >= 2, "cluster needs >= 2 VMs");
  std::unordered_set<simnet::NodeId> seen;
  for (simnet::NodeId host : vm_hosts_) {
    NETCONST_CHECK(host < simulator_->topology().node_count(),
                   "VM host out of range");
    NETCONST_CHECK(
        simulator_->topology().node(host).kind == simnet::NodeKind::Host,
        "VM mapped to a switch");
    NETCONST_CHECK(seen.insert(host).second, "duplicate VM host");
  }
}

simnet::NodeId SimnetProvider::host_of(std::size_t vm) const {
  NETCONST_CHECK(vm < vm_hosts_.size(), "VM index out of range");
  return vm_hosts_[vm];
}

void SimnetProvider::advance(double seconds) {
  NETCONST_CHECK(seconds >= 0.0, "cannot advance backwards");
  simulator_->advance_to(simulator_->now() + seconds);
}

double SimnetProvider::measure(std::size_t i, std::size_t j,
                               std::uint64_t bytes) {
  return simulator_->measure_transfer(host_of(i), host_of(j), bytes);
}

std::vector<double> SimnetProvider::measure_concurrent(
    const std::vector<std::pair<std::size_t, std::size_t>>& pairs,
    std::uint64_t bytes) {
  std::vector<std::pair<simnet::NodeId, simnet::NodeId>> host_pairs;
  host_pairs.reserve(pairs.size());
  for (const auto& [i, j] : pairs) {
    host_pairs.emplace_back(host_of(i), host_of(j));
  }
  return simulator_->measure_concurrent(host_pairs, bytes);
}

netmodel::PerformanceMatrix SimnetProvider::oracle_snapshot() {
  const std::size_t n = cluster_size();
  netmodel::PerformanceMatrix snap(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      netmodel::LinkParams link;
      link.alpha =
          simulator_->topology().path_latency(host_of(i), host_of(j));
      link.beta = simulator_->probe_rate(host_of(i), host_of(j));
      snap.set_link(i, j, link);
    }
  }
  return snap;
}

std::vector<simnet::NodeId> pick_random_hosts(
    const simnet::Topology& topology, std::size_t count, Rng& rng) {
  const std::vector<simnet::NodeId> hosts = topology.hosts();
  NETCONST_CHECK(count <= hosts.size(),
                 "requested more VMs than hosts exist");
  std::vector<simnet::NodeId> chosen;
  chosen.reserve(count);
  for (std::size_t idx :
       rng.sample_without_replacement(hosts.size(), count)) {
    chosen.push_back(hosts[idx]);
  }
  return chosen;
}

}  // namespace netconst::cloud
