// NetworkProvider backed by the flow-level simulator: a virtual cluster
// of VMs mapped onto hosts of a simulated data center with live
// background traffic. This is the counterpart of the paper's ns-2
// experiments (Section V-E).
#pragma once

#include <memory>
#include <vector>

#include "cloud/provider.hpp"
#include "simnet/simulator.hpp"

namespace netconst::cloud {

class SimnetProvider final : public NetworkProvider {
 public:
  /// `vm_hosts[k]` is the simulator host node running VM k. All entries
  /// must be distinct hosts of the simulator's topology.
  SimnetProvider(std::shared_ptr<simnet::FlowSimulator> simulator,
                 std::vector<simnet::NodeId> vm_hosts);

  std::size_t cluster_size() const override { return vm_hosts_.size(); }
  double now() const override { return simulator_->now(); }
  void advance(double seconds) override;
  double measure(std::size_t i, std::size_t j,
                 std::uint64_t bytes) override;
  std::vector<double> measure_concurrent(
      const std::vector<std::pair<std::size_t, std::size_t>>& pairs,
      std::uint64_t bytes) override;

  /// Oracle: alpha = path latency, beta = the analytic max-min probe rate
  /// against the currently active background flows.
  netmodel::PerformanceMatrix oracle_snapshot() override;

  simnet::FlowSimulator& simulator() { return *simulator_; }
  simnet::NodeId host_of(std::size_t vm) const;

 private:
  std::shared_ptr<simnet::FlowSimulator> simulator_;
  std::vector<simnet::NodeId> vm_hosts_;
};

/// Pick `count` distinct random hosts from the simulator topology
/// ("machines are randomly selected from the simulated cluster").
std::vector<simnet::NodeId> pick_random_hosts(
    const simnet::Topology& topology, std::size_t count, Rng& rng);

}  // namespace netconst::cloud
