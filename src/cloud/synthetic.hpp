// SyntheticCloud — the EC2 substitute.
//
// Models a virtual cluster placed in a large data center with exactly the
// structure the paper measures on EC2 (and that makes RPCA applicable):
//
//  * a placement-dependent CONSTANT component: per-pair alpha/beta drawn
//    once from rack-locality bases plus persistent per-pair heterogeneity
//    (machine pairs differ, as [14], [2] observed);
//  * a multiplicative volatility BAND around the constant (consecutive
//    measurements form "a clear band, almost unpredictable at a single
//    point");
//  * SPARSE interference spikes: per-pair two-state renewal process
//    (quiet / congested) with exponential holding times — rare, heavy
//    and time-correlated, exactly the sparse error RPCA strips;
//  * rare SIGNIFICANT CHANGES: Poisson VM migrations that re-place one VM
//    and permanently change its row/column constants (what Algorithm 1's
//    update maintenance must detect).
//
// All randomness is deterministic given the seed; the sample path of each
// pair's interference process does not depend on when it is observed.
#pragma once

#include <cstdint>
#include <vector>

#include "cloud/provider.hpp"
#include "support/rng.hpp"

namespace netconst::cloud {

struct SyntheticCloudConfig {
  std::size_t cluster_size = 64;
  std::size_t datacenter_racks = 32;

  // Constant component bases (bytes/s and seconds).
  double same_rack_bandwidth = 120e6;
  double cross_rack_bandwidth = 60e6;
  double same_rack_latency = 150e-6;
  double cross_rack_latency = 450e-6;
  /// Log-space sigma of the persistent per-pair heterogeneity.
  double bandwidth_heterogeneity = 0.20;
  double latency_heterogeneity = 0.15;

  // Volatility band: each sample multiplies the constant by
  // exp(N(0, band_sigma)) on bandwidth and latency independently.
  double band_sigma = 0.04;

  // Sparse interference: two-state renewal per directed pair.
  double mean_quiet_duration = 9000.0;  // seconds without congestion
  double mean_spike_duration = 300.0;   // seconds of congestion
  double max_spike_bandwidth_factor = 4.0;  // bw divided by U(1.5, max)
  double max_spike_latency_factor = 3.0;    // alpha multiplied by U(1, max)

  // Correlated interference: per-rack uplink congestion events that
  // degrade EVERY cross-rack pair touching the rack at once (tenant
  // traffic on an oversubscribed uplink). This is the error structure
  // where RPCA's joint view of all links pays off over per-link
  // summaries.
  double mean_rack_quiet_duration = 7000.0;   // per rack
  double mean_rack_congestion_duration = 300.0;
  double max_rack_congestion_factor = 4.0;    // bw divided by U(1.5, max)

  // Diurnal load cycle: a slow cluster-wide multiplicative swing with
  // the data center's daily load. At factor f(t) = 1 + amplitude *
  // sin(2 pi t / period + phase) every latency is multiplied by f and
  // every bandwidth divided by f — the whole constant scales together,
  // so its DIRECTION is preserved while its level breathes (the
  // baseline-drift regime the change-point detector must separate from
  // placement shifts). 0 amplitude disables (the default).
  double diurnal_amplitude = 0.0;   // peak fractional swing, < 1
  double diurnal_period = 86400.0;  // seconds per cycle
  double diurnal_phase = 0.0;       // radians at t = 0

  // Significant changes: mean seconds between VM migrations; 0 disables.
  double mean_migration_interval = 0.0;

  // Concurrency model for measure_concurrent: per-rack uplink capacity
  // as a multiple of cross_rack_bandwidth. Concurrent cross-rack pairs
  // share their racks' uplinks fairly.
  double uplink_capacity_factor = 8.0;

  std::uint64_t seed = 12345;
};

class SyntheticCloud final : public NetworkProvider {
 public:
  explicit SyntheticCloud(const SyntheticCloudConfig& config);

  std::size_t cluster_size() const override { return config_.cluster_size; }
  double now() const override { return now_; }
  void advance(double seconds) override;
  double measure(std::size_t i, std::size_t j,
                 std::uint64_t bytes) override;
  std::vector<double> measure_concurrent(
      const std::vector<std::pair<std::size_t, std::size_t>>& pairs,
      std::uint64_t bytes) override;
  netmodel::PerformanceMatrix oracle_snapshot() override;

  /// Ground-truth constant component (no band, no spikes) — what a
  /// perfect decomposition should recover. For tests and accuracy
  /// studies.
  netmodel::PerformanceMatrix ground_truth_constant() const;

  /// Rack of each VM under the current placement.
  const std::vector<std::size_t>& placement() const { return placement_; }

  /// Number of migrations that have occurred so far.
  std::size_t migration_count() const { return migration_count_; }

  /// The diurnal load factor at time `t` (1 when the cycle is off).
  double diurnal_factor(double t) const;

  /// Instantaneous link parameters for one pair (advances that pair's
  /// interference process to the current time). i != j.
  netmodel::LinkParams sample_link(std::size_t i, std::size_t j);

  /// Two-state renewal process state (used per pair and per rack).
  /// Public only so the implementation's helpers can operate on it.
  struct PairState {
    Rng rng;              // drives this process's renewal + band draws
    double state_until = 0.0;
    bool spiking = false;
    double bw_factor = 1.0;   // divide bandwidth while spiking
    double lat_factor = 1.0;  // multiply latency while spiking
  };

 private:

  std::size_t pair_index(std::size_t i, std::size_t j) const {
    return i * config_.cluster_size + j;
  }
  /// Congestion divisor of rack `rack` at the current time (1 = quiet).
  double rack_congestion_factor(std::size_t rack);
  void rebuild_constants_for(std::size_t vm);
  void rebuild_all_constants();
  void process_migrations_up_to(double t);
  void advance_pair_state(PairState& state, double t);
  netmodel::LinkParams sample_pair(std::size_t i, std::size_t j);

  SyntheticCloudConfig config_;
  Rng master_rng_;
  double now_ = 0.0;

  std::vector<std::size_t> placement_;  // rack per VM
  std::vector<std::size_t> epoch_;      // bumped on migration
  // Constant component caches (row-major cluster_size^2; diagonal unused).
  std::vector<double> const_alpha_;
  std::vector<double> const_beta_;
  std::vector<PairState> pair_states_;
  std::vector<PairState> rack_states_;  // per-rack congestion processes

  double next_migration_ = -1.0;  // < 0 when migrations are disabled
  Rng migration_rng_;
  std::size_t migration_count_ = 0;
};

}  // namespace netconst::cloud
