// SKaMPI-style pingpong calibration of one link: the latency alpha is the
// elapsed time of a 1-byte message and the bandwidth beta is fit from the
// elapsed time of an 8 MB transfer (Section IV-B, "Model calibration").
#pragma once

#include <cstdint>

#include "cloud/provider.hpp"
#include "netmodel/alpha_beta.hpp"

namespace netconst::cloud {

struct PingpongOptions {
  std::uint64_t small_bytes = netmodel::kOneByte;
  std::uint64_t large_bytes = netmodel::kEightMiB;
};

/// Measure one directed link and fit alpha-beta. Robust to measurement
/// noise: if the large transfer is not measurably slower than the small
/// one (possible under heavy jitter), beta falls back to
/// large_bytes / t_large with alpha = t_small.
netmodel::LinkParams pingpong_calibrate(NetworkProvider& provider,
                                        std::size_t i, std::size_t j,
                                        const PingpongOptions& options = {});

/// Fit alpha-beta from two already-measured elapsed times with the same
/// fallback behaviour.
netmodel::LinkParams robust_fit(double t_small, std::uint64_t small_bytes,
                                double t_large, std::uint64_t large_bytes);

}  // namespace netconst::cloud
