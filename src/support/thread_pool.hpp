// A fixed-size worker pool used by parallel_for, the linear-algebra
// kernels, and the online service. Two ways in:
//
//  * submit() — fire-and-forget tasks; completion is tracked per-batch by
//    the submitter, keeping the pool itself minimal. Tasks are stored in
//    a small-buffer Task type, so small recurring callables (the online
//    service's tenant drivers) never touch the heap on the submit path.
//  * run_chunked() — a synchronous fork/join "parallel region" over an
//    index range. Region state lives in a pool-owned slot table and
//    workers claim contiguous chunks with a single atomic fetch_add, so
//    dispatch performs no heap allocation and no lock on the fast path.
//    This is the path the RPCA hot loop uses: a solver iteration can fan
//    out elementwise kernels and Gram products without a single malloc
//    (see docs/PERFORMANCE.md).
//
// Unlike the original single-slot design (which executed a nested or
// concurrent region inline on the calling thread, serializing
// multi-tenant solves), the scheduler supports up to kMaxRegions
// concurrent fork/join regions: workers multiplex across every active
// region, so two tenants' solver iterations genuinely share the machine.
// Chunk partitioning is a pure function of (begin, end, chunk), so the
// set of chunks — and therefore every output element — is identical no
// matter which thread executes which chunk: parallel loops stay
// deterministic across thread counts and region interleavings.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <mutex>
#include <new>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "support/function_ref.hpp"

namespace netconst {

/// Move-only owning callable with small-buffer storage: callables up to
/// kInlineSize bytes (and nothrow-move-constructible) are stored inline;
/// larger ones fall back to the heap. The replacement for
/// std::function<void()> on the pool's submit path, where the per-task
/// heap allocation dominated the cost of small recurring tasks.
class Task {
 public:
  static constexpr std::size_t kInlineSize = 48;

  Task() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, Task> &&
                std::is_invocable_r_v<void, std::remove_cvref_t<F>&>>>
  Task(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::remove_cvref_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      vtable_ = &inline_vtable<Fn>;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      vtable_ = &heap_vtable<Fn>;
    }
  }

  Task(Task&& other) noexcept { move_from(other); }
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { reset(); }

  explicit operator bool() const { return vtable_ != nullptr; }

  void operator()() { vtable_->invoke(storage_); }

 private:
  struct VTable {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src);  // move-construct + destroy src
    void (*destroy)(void*);
  };

  template <typename Fn>
  static constexpr VTable inline_vtable = {
      [](void* p) { (*static_cast<Fn*>(p))(); },
      [](void* dst, void* src) {
        Fn* from = static_cast<Fn*>(src);
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      },
      [](void* p) { static_cast<Fn*>(p)->~Fn(); }};

  template <typename Fn>
  static constexpr VTable heap_vtable = {
      [](void* p) { (**static_cast<Fn**>(p))(); },
      [](void* dst, void* src) {
        ::new (dst) Fn*(*static_cast<Fn**>(src));
      },
      [](void* p) { delete *static_cast<Fn**>(p); }};

  void move_from(Task& other) noexcept {
    if (other.vtable_ != nullptr) {
      vtable_ = other.vtable_;
      vtable_->relocate(storage_, other.storage_);
      other.vtable_ = nullptr;
    }
  }

  void reset() noexcept {
    if (vtable_ != nullptr) {
      vtable_->destroy(storage_);
      vtable_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineSize] = {};
  const VTable* vtable_ = nullptr;
};

/// Fixed-size thread pool. Construction spawns the workers; destruction
/// drains the queue and joins them. Thread-safe for concurrent submit()
/// and run_chunked() from any number of threads.
class ThreadPool {
 public:
  /// Concurrent fork/join region slots. A run_chunked call arriving when
  /// every slot is busy executes its whole range inline on the calling
  /// thread (graceful degradation, never an error).
  static constexpr std::size_t kMaxRegions = 16;

  /// `threads == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task for execution on some worker.
  void submit(Task task);

  /// Synchronous parallel loop: invoke body(lo, hi) for contiguous chunks
  /// of size `chunk` covering [begin, end). The caller participates, so
  /// the loop makes progress even when every worker is busy. Blocks until
  /// all chunks have completed; the first exception thrown by `body`
  /// (whether on a worker or on the calling thread) is rethrown on the
  /// caller. Performs no heap allocation (except on the exceptional
  /// path). Nested and concurrent regions each get their own slot and
  /// run genuinely in parallel, up to kMaxRegions at a time.
  void run_chunked(std::size_t begin, std::size_t end, std::size_t chunk,
                   FunctionRef<void(std::size_t, std::size_t)> body);

  std::size_t thread_count() const { return workers_.size(); }

  /// Process-wide shared pool, lazily constructed. Sized to the hardware
  /// unless the NETCONST_THREADS environment variable names a positive
  /// worker count — the supported way for benches and CI to pin worker
  /// counts without code changes (see docs/PERFORMANCE.md).
  static ThreadPool& global();

  /// Worker count global() will use: NETCONST_THREADS when set to a
  /// positive integer, hardware_concurrency otherwise.
  static std::size_t configured_thread_count();

 private:
  /// Pool-owned state of one fork/join region. Slots are recycled across
  /// run_chunked calls; `state` disambiguates a free slot, a slot being
  /// set up by its owner, and an active slot workers may claim from.
  struct RegionSlot {
    enum : unsigned { kFree = 0, kSetup = 1, kActive = 2 };

    std::atomic<unsigned> state{kFree};
    /// Workers currently inspecting/claiming from this slot. The owner
    /// recycles the slot only once this drops to zero, so a worker never
    /// reads region fields that are being rewritten for the next region.
    std::atomic<unsigned> visitors{0};

    std::atomic<std::size_t> next{0};   // first unclaimed index
    std::atomic<std::size_t> unfinished{0};  // chunks not yet completed
    /// One past the last index. Atomic because idle workers peek at it
    /// from region_work_available() without pinning the slot.
    std::atomic<std::size_t> end{0};
    std::size_t chunk = 0;              // claim granularity
    const FunctionRef<void(std::size_t, std::size_t)>* body = nullptr;

    // Completion/exception channel, touched only off the fast path.
    std::mutex mutex;
    std::condition_variable done_cv;
    std::exception_ptr error;
  };

  /// Claim and run chunks of `slot` until none remain. Returns true if at
  /// least one chunk was executed.
  bool drain_region(RegionSlot& slot);
  /// One pass over all active slots; returns true if any chunk ran.
  bool work_on_regions();
  bool region_work_available() const;

  void worker_loop();

  std::array<RegionSlot, kMaxRegions> regions_;
  /// Active-region count; lets idle workers skip the slot scan entirely.
  std::atomic<std::size_t> active_regions_{0};

  /// A queued task plus its enqueue timestamp (obs clock ns; 0 when
  /// tracing was off at submit time). The stamp feeds the
  /// "pool.queue_delay" flight-recorder span — time a task sat in the
  /// queue before a worker picked it up.
  struct QueuedTask {
    Task task;
    std::int64_t enqueue_ns = 0;
  };

  std::mutex mutex_;  // guards queue_, stopping_, and worker sleep/wake
  std::condition_variable cv_;
  std::deque<QueuedTask> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace netconst
