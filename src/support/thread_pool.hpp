// A fixed-size worker pool used by parallel_for and the linear-algebra
// kernels. Tasks are plain std::function<void()>; completion is tracked
// per-batch by the submitter (see parallel_for.cpp), keeping the pool
// itself minimal and lock-contention low.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace netconst {

/// Fixed-size thread pool. Construction spawns the workers; destruction
/// drains the queue and joins them. Thread-safe for concurrent submit().
class ThreadPool {
 public:
  /// `threads == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task for execution on some worker.
  void submit(std::function<void()> task);

  std::size_t thread_count() const { return workers_.size(); }

  /// Process-wide shared pool (lazily constructed, sized to the hardware).
  static ThreadPool& global();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace netconst
