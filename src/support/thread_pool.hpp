// A fixed-size worker pool used by parallel_for and the linear-algebra
// kernels. Two ways in:
//
//  * submit() — fire-and-forget std::function tasks; completion is tracked
//    per-batch by the submitter, keeping the pool itself minimal.
//  * run_chunked() — a synchronous fork/join "parallel region" over an
//    index range. The region descriptor lives on the caller's stack and
//    workers claim contiguous chunks under the pool mutex, so dispatch
//    performs no heap allocation at all. This is the path the RPCA hot
//    loop uses: a solver iteration can fan out elementwise kernels and
//    Gram products without a single malloc (see docs/PERFORMANCE.md).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "support/function_ref.hpp"

namespace netconst {

/// Fixed-size thread pool. Construction spawns the workers; destruction
/// drains the queue and joins them. Thread-safe for concurrent submit()
/// and run_chunked().
class ThreadPool {
 public:
  /// `threads == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task for execution on some worker.
  void submit(std::function<void()> task);

  /// Synchronous parallel loop: invoke body(lo, hi) for contiguous chunks
  /// of size `chunk` covering [begin, end). The caller participates, so
  /// the loop makes progress even when every worker is busy. Blocks until
  /// all chunks have completed; the first exception thrown by `body` is
  /// rethrown. Performs no heap allocation (except on the exceptional
  /// path). Only one region runs at a time: a nested or concurrent call
  /// executes its whole range inline on the calling thread.
  void run_chunked(std::size_t begin, std::size_t end, std::size_t chunk,
                   FunctionRef<void(std::size_t, std::size_t)> body);

  std::size_t thread_count() const { return workers_.size(); }

  /// Process-wide shared pool (lazily constructed, sized to the hardware).
  static ThreadPool& global();

 private:
  /// Stack-allocated fork/join state of one run_chunked call.
  struct Region {
    std::size_t next;   // first unclaimed index
    std::size_t end;    // one past the last index
    std::size_t chunk;  // claim granularity
    std::size_t unfinished;  // chunks claimed or unclaimed, not yet done
    FunctionRef<void(std::size_t, std::size_t)> body;
    std::exception_ptr error;
    std::condition_variable done;
  };

  /// Claim and run one chunk of `region`. Called with `lock` held on
  /// mutex_; returns with it reacquired.
  void work_one_chunk(Region& region, std::unique_lock<std::mutex>& lock);

  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  Region* region_ = nullptr;  // active run_chunked region, if any
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace netconst
