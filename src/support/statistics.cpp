#include "support/statistics.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace netconst {

double mean(const std::vector<double>& samples) {
  if (samples.empty()) return 0.0;
  double sum = 0.0;
  for (double s : samples) sum += s;
  return sum / static_cast<double>(samples.size());
}

double percentile(std::vector<double> samples, double q) {
  NETCONST_CHECK(!samples.empty(), "percentile of empty sample");
  NETCONST_CHECK(q >= 0.0 && q <= 1.0, "percentile q must be in [0, 1]");
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) return samples.front();
  const double pos = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= samples.size()) return samples.back();
  return samples[lo] * (1.0 - frac) + samples[lo + 1] * frac;
}

Summary summarize(const std::vector<double>& samples) {
  Summary s;
  if (samples.empty()) return s;
  s.count = samples.size();
  s.mean = mean(samples);
  double var = 0.0;
  for (double x : samples) var += (x - s.mean) * (x - s.mean);
  s.stddev = samples.size() > 1
                 ? std::sqrt(var / static_cast<double>(samples.size() - 1))
                 : 0.0;
  auto sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  s.median = percentile(sorted, 0.5);
  s.p5 = percentile(sorted, 0.05);
  s.p95 = percentile(sorted, 0.95);
  return s;
}

std::vector<CdfPoint> empirical_cdf(std::vector<double> samples,
                                    std::size_t max_points) {
  NETCONST_CHECK(!samples.empty(), "empirical_cdf of empty sample");
  NETCONST_CHECK(max_points >= 2, "empirical_cdf needs at least 2 points");
  std::sort(samples.begin(), samples.end());
  const std::size_t n = samples.size();
  std::vector<CdfPoint> cdf;
  const std::size_t points = std::min(max_points, n);
  cdf.reserve(points);
  for (std::size_t p = 0; p < points; ++p) {
    // Evenly spaced ranks, always covering rank 0 and rank n-1.
    const std::size_t rank =
        points == 1 ? n - 1 : (p * (n - 1)) / (points - 1);
    cdf.push_back({samples[rank],
                   static_cast<double>(rank + 1) / static_cast<double>(n)});
  }
  return cdf;
}

std::vector<double> normalize_by(const std::vector<double>& samples,
                                 double reference) {
  NETCONST_CHECK(reference != 0.0, "normalize_by zero reference");
  std::vector<double> out;
  out.reserve(samples.size());
  for (double s : samples) out.push_back(s / reference);
  return out;
}

double pearson_correlation(const std::vector<double>& x,
                           const std::vector<double>& y) {
  NETCONST_CHECK(x.size() == y.size(), "correlation of unequal samples");
  NETCONST_CHECK(x.size() >= 2, "correlation needs at least 2 samples");
  const double mx = mean(x);
  const double my = mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  NETCONST_CHECK(sxx > 0.0 && syy > 0.0,
                 "correlation of a constant sample is undefined");
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace netconst
