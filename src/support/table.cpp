#include "support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/error.hpp"

namespace netconst {

ConsoleTable::ConsoleTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  NETCONST_CHECK(!header_.empty(), "table needs at least one column");
}

void ConsoleTable::add_row(std::vector<std::string> row) {
  NETCONST_CHECK(row.size() == header_.size(),
                 "table row width differs from header");
  rows_.push_back(std::move(row));
}

std::string ConsoleTable::cell(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string ConsoleTable::cell_percent(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << fraction * 100.0
     << '%';
  return os.str();
}

void ConsoleTable::print(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : "  ") << std::left
          << std::setw(static_cast<int>(widths[c])) << row[c];
    }
    out << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void print_banner(std::ostream& out, const std::string& title) {
  out << "\n== " << title << " ==\n";
}

}  // namespace netconst
