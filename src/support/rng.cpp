#include "support/rng.hpp"

#include <cmath>
#include <numbers>

#include "support/error.hpp"

namespace netconst {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  has_cached_normal_ = false;
}

Rng Rng::split() {
  // A child seeded from two draws of the parent; streams produced this way
  // are decorrelated for all practical purposes of this library.
  Rng child(next_u64() ^ rotl(next_u64(), 17));
  return child;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  NETCONST_CHECK(lo <= hi, "uniform(lo, hi) requires lo <= hi");
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  NETCONST_CHECK(lo <= hi, "uniform_int(lo, hi) requires lo <= hi");
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~0ULL - (~0ULL % range);
  std::uint64_t draw;
  do {
    draw = next_u64();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % range);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::exponential(double mean) {
  NETCONST_CHECK(mean > 0.0, "exponential mean must be positive");
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

std::uint64_t Rng::poisson(double mean) {
  NETCONST_CHECK(mean >= 0.0, "poisson mean must be non-negative");
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    const double limit = std::exp(-mean);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction for large means.
  const double draw = normal(mean, std::sqrt(mean));
  return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(draw + 0.5);
}

bool Rng::bernoulli(double p) { return uniform() < p; }

double Rng::lognormal(double median, double sigma) {
  NETCONST_CHECK(median > 0.0, "lognormal median must be positive");
  return median * std::exp(sigma * normal());
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  NETCONST_CHECK(k <= n, "cannot sample more elements than the population");
  std::vector<std::size_t> pool(n);
  for (std::size_t i = 0; i < n; ++i) pool[i] = i;
  // Partial Fisher–Yates: only the first k positions need shuffling.
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(
        uniform_int(static_cast<std::int64_t>(i),
                    static_cast<std::int64_t>(n) - 1));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

}  // namespace netconst
