// Deterministic random number generation.
//
// All stochastic components of the library (synthetic traces, background
// traffic, workload generators) draw from netconst::Rng so that every
// experiment is reproducible from a single seed. The engine is
// xoshiro256**, seeded through SplitMix64; distributions are implemented
// here rather than through <random> distributions because libstdc++
// distribution implementations are not guaranteed stable across versions.
#pragma once

#include <cstdint>
#include <vector>

namespace netconst {

/// xoshiro256** engine with convenience distributions. Copyable; copies
/// evolve independently. `split()` derives an independent child stream,
/// which is how parallel components get decorrelated randomness.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initialize the state from a 64-bit seed via SplitMix64.
  void reseed(std::uint64_t seed);

  /// Derive an independent stream (for a worker thread / component).
  Rng split();

  /// Raw 64-bit draw.
  std::uint64_t next_u64();

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next_u64(); }

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Standard normal via Box–Muller (cached second value).
  double normal();
  /// Normal with mean/stddev.
  double normal(double mean, double stddev);
  /// Exponential with given mean (inverse-CDF). Requires mean > 0.
  double exponential(double mean);
  /// Poisson with given mean (Knuth for small, normal approx for large).
  std::uint64_t poisson(double mean);
  /// Bernoulli trial.
  bool bernoulli(double p);
  /// Log-normal such that the *result* has the given median and sigma
  /// (shape) in log space.
  double lognormal(double median, double sigma);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Sample k distinct indices from [0, n). Requires k <= n.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

 private:
  std::uint64_t s_[4]{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace netconst
