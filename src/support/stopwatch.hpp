// Wall-clock stopwatch for measuring real runtime of solvers and harnesses.
#pragma once

#include <chrono>

namespace netconst {

/// Monotonic stopwatch; starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction / last restart.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace netconst
