#include "support/csv.hpp"

#include <charconv>
#include <fstream>
#include <ostream>
#include <sstream>

#include "support/error.hpp"

namespace netconst {
namespace {

std::vector<std::string> split_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  for (char c : line) {
    if (c == ',') {
      fields.push_back(field);
      field.clear();
    } else if (c != '\r') {
      field.push_back(c);
    }
  }
  fields.push_back(field);
  return fields;
}

}  // namespace

std::size_t CsvTable::column_index(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  throw Error("CSV column not found: " + name);
}

double CsvTable::number(std::size_t row, std::size_t col) const {
  NETCONST_CHECK(row < rows.size() && col < rows[row].size(),
                 "CSV cell out of range");
  const std::string& cell = rows[row][col];
  try {
    std::size_t used = 0;
    const double v = std::stod(cell, &used);
    if (used != cell.size()) throw Error("trailing characters");
    return v;
  } catch (const std::exception&) {
    throw Error("CSV cell (row " + std::to_string(row) + ", column " +
                std::to_string(col) + ") is not a number: '" + cell + "'");
  }
}

void write_csv(std::ostream& out, const CsvTable& table) {
  auto write_row = [&out](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i != 0) out << ',';
      out << row[i];
    }
    out << '\n';
  };
  write_row(table.header);
  for (const auto& row : table.rows) {
    NETCONST_CHECK(row.size() == table.header.size(),
                   "CSV row width differs from header");
    write_row(row);
  }
}

void write_csv_file(const std::string& path, const CsvTable& table) {
  std::ofstream out(path);
  if (!out) throw Error("cannot open for writing: " + path);
  write_csv(out, table);
  if (!out) throw Error("write failed: " + path);
}

CsvTable read_csv(std::istream& in) {
  CsvTable table;
  std::string line;
  bool have_header = false;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    auto fields = split_line(line);
    if (!have_header) {
      table.header = std::move(fields);
      have_header = true;
    } else {
      // A short (or long) row is how both hand truncation and a crash
      // mid-write typically present; name the line so the corrupt spot
      // is findable in a multi-megabyte file.
      if (fields.size() != table.header.size()) {
        throw Error("CSV line " + std::to_string(line_number) + " has " +
                    std::to_string(fields.size()) + " fields, header has " +
                    std::to_string(table.header.size()));
      }
      table.rows.push_back(std::move(fields));
    }
  }
  if (in.bad()) throw Error("CSV stream read error");
  if (!have_header) throw Error("CSV stream has no header row");
  return table;
}

CsvTable read_csv_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open for reading: " + path);
  return read_csv(in);
}

std::string format_double(double value) {
  std::ostringstream os;
  os.precision(17);
  os << value;
  return os.str();
}

}  // namespace netconst
