// Console table printer used by the figure-reproduction harnesses so that
// every bench binary emits the paper's rows/series in a readable form.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace netconst {

/// Accumulates rows and prints them with aligned columns.
class ConsoleTable {
 public:
  explicit ConsoleTable(std::vector<std::string> header);

  /// Append a row; must match the header width.
  void add_row(std::vector<std::string> row);

  /// Convenience: format doubles with fixed precision.
  static std::string cell(double value, int precision = 3);
  static std::string cell_percent(double fraction, int precision = 1);

  /// Render with a rule under the header.
  void print(std::ostream& out) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Print a section banner ("== Figure 7: ... ==") for bench output.
void print_banner(std::ostream& out, const std::string& title);

}  // namespace netconst
