// Data-parallel loop helper over the global thread pool.
//
// parallel_for(0, n, f) calls f(i) for every i in [0, n), partitioned into
// contiguous chunks across workers. Falls back to serial execution for
// small ranges (below `grain`) where fork/join overhead would dominate —
// the usual HPC guidance of "parallelize outer loops, keep grains coarse".
//
// Both entry points take the body as a non-owning FunctionRef and dispatch
// through ThreadPool::run_chunked, so a parallel loop performs no heap
// allocation — a requirement of the RPCA solvers' allocation-free hot path
// (see docs/PERFORMANCE.md). The body must only be referenced for the
// duration of the call, which both functions guarantee by blocking until
// every iteration has completed.
#pragma once

#include <cstddef>

#include "support/function_ref.hpp"

namespace netconst {

/// Invoke body(i) for i in [begin, end). Blocks until all iterations
/// complete. Exceptions thrown by `body` are rethrown on the caller
/// (first one wins). `grain` is the minimum chunk size per task.
void parallel_for(std::size_t begin, std::size_t end,
                  FunctionRef<void(std::size_t)> body,
                  std::size_t grain = 64);

/// Chunked variant: body(chunk_begin, chunk_end) per contiguous chunk,
/// which avoids per-index indirect-call overhead in tight kernels.
void parallel_for_chunked(std::size_t begin, std::size_t end,
                          FunctionRef<void(std::size_t, std::size_t)> body,
                          std::size_t grain = 64);

}  // namespace netconst
