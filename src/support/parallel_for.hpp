// Data-parallel loop helper over the global thread pool.
//
// parallel_for(0, n, f) calls f(i) for every i in [0, n), partitioned into
// contiguous chunks across workers. Falls back to serial execution for
// small ranges (below `grain`) where fork/join overhead would dominate —
// the usual HPC guidance of "parallelize outer loops, keep grains coarse".
#pragma once

#include <cstddef>
#include <functional>

namespace netconst {

/// Invoke body(i) for i in [begin, end). Blocks until all iterations
/// complete. Exceptions thrown by `body` are rethrown on the caller
/// (first one wins). `grain` is the minimum chunk size per task.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain = 64);

/// Chunked variant: body(chunk_begin, chunk_end) per contiguous chunk,
/// which avoids per-index std::function overhead in tight kernels.
void parallel_for_chunked(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t grain = 64);

}  // namespace netconst
