// Descriptive statistics and CDF helpers used by the experiment harnesses.
#pragma once

#include <cstddef>
#include <vector>

namespace netconst {

/// Summary statistics of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;   // sample standard deviation (n-1)
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p5 = 0.0;
  double p95 = 0.0;
};

/// Compute summary statistics. Returns a zeroed Summary for empty input.
Summary summarize(const std::vector<double>& samples);

/// Linear-interpolation percentile; q in [0, 1]. Requires non-empty input.
double percentile(std::vector<double> samples, double q);

/// One point of an empirical CDF.
struct CdfPoint {
  double value = 0.0;        // sample value
  double probability = 0.0;  // P(X <= value)
};

/// Empirical CDF reduced to at most `max_points` evenly spaced points
/// (always including the extremes). Requires non-empty input.
std::vector<CdfPoint> empirical_cdf(std::vector<double> samples,
                                    std::size_t max_points = 50);

/// Arithmetic mean; 0 for empty input.
double mean(const std::vector<double>& samples);

/// samples normalized by `reference` (element / reference). Requires
/// reference != 0.
std::vector<double> normalize_by(const std::vector<double>& samples,
                                 double reference);

/// Pearson correlation coefficient of two equal-length samples.
/// Requires size >= 2 and non-degenerate variance.
double pearson_correlation(const std::vector<double>& x,
                           const std::vector<double>& y);

}  // namespace netconst
