#include "support/parallel_for.hpp"

#include "support/thread_pool.hpp"

namespace netconst {

void parallel_for_chunked(std::size_t begin, std::size_t end,
                          FunctionRef<void(std::size_t, std::size_t)> body,
                          std::size_t grain) {
  if (begin >= end) return;
  if (grain == 0) grain = 1;
  const std::size_t n = end - begin;
  auto& pool = ThreadPool::global();
  const std::size_t max_chunks = pool.thread_count() * 4;
  std::size_t chunk = (n + max_chunks - 1) / max_chunks;
  if (chunk < grain) chunk = grain;
  if (chunk >= n) {  // not worth forking
    body(begin, end);
    return;
  }
  pool.run_chunked(begin, end, chunk, body);
}

void parallel_for(std::size_t begin, std::size_t end,
                  FunctionRef<void(std::size_t)> body, std::size_t grain) {
  parallel_for_chunked(
      begin, end,
      [&body](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      },
      grain);
}

}  // namespace netconst
