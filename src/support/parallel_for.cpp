#include "support/parallel_for.hpp"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>

#include "support/thread_pool.hpp"

namespace netconst {
namespace {

/// Fork/join barrier for one parallel_for batch.
struct Batch {
  std::mutex mutex;
  std::condition_variable cv;
  std::size_t pending = 0;
  std::exception_ptr error;

  void finish_one(std::exception_ptr e) {
    std::lock_guard<std::mutex> lock(mutex);
    if (e && !error) error = e;
    if (--pending == 0) cv.notify_one();
  }

  void wait() {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [this] { return pending == 0; });
    if (error) std::rethrow_exception(error);
  }
};

}  // namespace

void parallel_for_chunked(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t grain) {
  if (begin >= end) return;
  if (grain == 0) grain = 1;
  const std::size_t n = end - begin;
  auto& pool = ThreadPool::global();
  const std::size_t max_chunks = pool.thread_count() * 4;
  std::size_t chunk = (n + max_chunks - 1) / max_chunks;
  if (chunk < grain) chunk = grain;
  if (chunk >= n) {  // not worth forking
    body(begin, end);
    return;
  }

  Batch batch;
  const std::size_t chunks = (n + chunk - 1) / chunk;
  batch.pending = chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk;
    const std::size_t hi = lo + chunk < end ? lo + chunk : end;
    pool.submit([&batch, &body, lo, hi] {
      std::exception_ptr e;
      try {
        body(lo, hi);
      } catch (...) {
        e = std::current_exception();
      }
      batch.finish_one(e);
    });
  }
  batch.wait();
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain) {
  parallel_for_chunked(
      begin, end,
      [&body](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      },
      grain);
}

}  // namespace netconst
