#include "support/thread_pool.hpp"

#include <cstdlib>

#include "obs/trace.hpp"

namespace netconst {

// Memory-ordering notes for the region scheduler
// ----------------------------------------------
// Publish: the owner writes every region field, then state.store(kActive,
// seq_cst). Workers read fields only after observing kActive, so the
// store/load pair publishes them.
//
// Retire: the owner must not recycle a slot while a worker still reads
// its fields. Workers pin a slot (visitors.fetch_add) BEFORE re-checking
// state; the owner stores a non-active state BEFORE reading visitors.
// Both edges are seq_cst, making this a classic store-then-load (Dekker)
// handshake: either the worker sees the retired state and leaves without
// touching fields, or the owner sees the worker's pin and waits for it.
//
// Completion: every chunk executor decrements `unfinished` with acq_rel.
// The decrements form a release sequence, so the owner's acquire load
// that observes zero synchronizes with every executor — all writes made
// by chunk bodies are visible to the owner when run_chunked returns.

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(Task task) {
  // Stamp outside the lock; 0 (tracing off) suppresses the span at
  // dequeue even if tracing turns on while the task is queued.
  const std::int64_t enqueue_ns =
      obs::trace_enabled() ? obs::FlightRecorder::now_ns() : 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back({std::move(task), enqueue_ns});
  }
  cv_.notify_one();
}

bool ThreadPool::drain_region(RegionSlot& slot) {
  // Safe to read once the caller has either published the slot (owner)
  // or pinned it and re-checked kActive (worker): the owner never
  // rewrites these while the region is active.
  const std::size_t end = slot.end.load(std::memory_order_relaxed);
  const std::size_t chunk = slot.chunk;
  const auto* body = slot.body;
  bool did_work = false;
  const std::int64_t drain_start_ns =
      obs::trace_enabled() ? obs::FlightRecorder::now_ns() : 0;
  std::size_t chunks_run = 0;
  for (;;) {
    // The pre-check keeps exhausted regions from inflating `next`
    // forever; the fetch_add may still overshoot once per visitor, which
    // is harmless (claims at or past `end` are abandoned).
    if (slot.next.load(std::memory_order_relaxed) >= end) break;
    const std::size_t lo =
        slot.next.fetch_add(chunk, std::memory_order_relaxed);
    if (lo >= end) break;
    const std::size_t hi = lo + chunk < end ? lo + chunk : end;
    did_work = true;
    ++chunks_run;
    std::exception_ptr error;
    try {
      (*body)(lo, hi);
    } catch (...) {
      error = std::current_exception();
    }
    if (error) {
      std::lock_guard<std::mutex> lock(slot.mutex);
      if (!slot.error) slot.error = error;
    }
    // The error (if any) is recorded before this decrement, so
    // unfinished == 0 implies no pending error writes.
    if (slot.unfinished.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(slot.mutex);
      slot.done_cv.notify_all();
    }
  }
  if (did_work && drain_start_ns != 0) {
    // One span per participation in a region: the busy intervals of
    // each worker, i.e. its utilization as seen in the trace viewer.
    obs::FlightRecorder::instance().record_interval(
        "pool.region_drain", drain_start_ns, obs::FlightRecorder::now_ns(),
        static_cast<double>(chunks_run));
  }
  return did_work;
}

bool ThreadPool::work_on_regions() {
  if (active_regions_.load(std::memory_order_relaxed) == 0) return false;
  bool did_work = false;
  for (auto& slot : regions_) {
    if (slot.state.load(std::memory_order_relaxed) != RegionSlot::kActive) {
      continue;
    }
    slot.visitors.fetch_add(1, std::memory_order_seq_cst);
    if (slot.state.load(std::memory_order_seq_cst) == RegionSlot::kActive) {
      did_work |= drain_region(slot);
    }
    slot.visitors.fetch_sub(1, std::memory_order_release);
  }
  return did_work;
}

bool ThreadPool::region_work_available() const {
  if (active_regions_.load(std::memory_order_relaxed) == 0) return false;
  for (const auto& slot : regions_) {
    if (slot.state.load(std::memory_order_acquire) == RegionSlot::kActive &&
        slot.next.load(std::memory_order_relaxed) <
            slot.end.load(std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

void ThreadPool::run_chunked(
    std::size_t begin, std::size_t end, std::size_t chunk,
    FunctionRef<void(std::size_t, std::size_t)> body) {
  if (begin >= end) return;
  if (chunk == 0) chunk = 1;
  obs::Span region_span("pool.region");
  region_span.set_value(static_cast<double>(end - begin));

  // Acquire a free slot; when all kMaxRegions are busy, degrade to
  // inline execution (still allocation-free, still correct).
  RegionSlot* slot = nullptr;
  for (auto& candidate : regions_) {
    unsigned expected = RegionSlot::kFree;
    if (candidate.state.compare_exchange_strong(
            expected, RegionSlot::kSetup, std::memory_order_acquire)) {
      slot = &candidate;
      break;
    }
  }
  if (slot == nullptr) {
    body(begin, end);
    return;
  }

  const std::size_t nchunks = (end - begin + chunk - 1) / chunk;
  slot->next.store(begin, std::memory_order_relaxed);
  slot->unfinished.store(nchunks, std::memory_order_relaxed);
  slot->end.store(end, std::memory_order_relaxed);
  slot->chunk = chunk;
  slot->body = &body;
  slot->error = nullptr;
  active_regions_.fetch_add(1, std::memory_order_relaxed);
  slot->state.store(RegionSlot::kActive, std::memory_order_seq_cst);
  {
    // Empty critical section: orders the publication above against the
    // predicate check of a worker about to sleep, so the notify cannot
    // be lost.
    std::lock_guard<std::mutex> lock(mutex_);
  }
  cv_.notify_all();

  // Participate: the caller is always one of the chunk workers, so the
  // region completes even with zero free pool workers.
  drain_region(*slot);
  {
    std::unique_lock<std::mutex> lock(slot->mutex);
    slot->done_cv.wait(lock, [slot] {
      return slot->unfinished.load(std::memory_order_acquire) == 0;
    });
  }
  std::exception_ptr error = std::move(slot->error);

  // Retire the slot: hide it from new visitors, then wait for pinned
  // ones to leave before it can be recycled (see the notes above).
  active_regions_.fetch_sub(1, std::memory_order_relaxed);
  slot->state.store(RegionSlot::kSetup, std::memory_order_seq_cst);
  while (slot->visitors.load(std::memory_order_seq_cst) != 0) {
    std::this_thread::yield();
  }
  slot->body = nullptr;
  slot->state.store(RegionSlot::kFree, std::memory_order_release);

  if (error) std::rethrow_exception(error);
}

void ThreadPool::worker_loop() {
  for (;;) {
    // Fork/join regions first: they are synchronous and latency-bound,
    // while queued tasks are fire-and-forget.
    if (work_on_regions()) continue;
    QueuedTask task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] {
        return stopping_ || !queue_.empty() || region_work_available();
      });
      if (!queue_.empty()) {
        task = std::move(queue_.front());
        queue_.pop_front();
      } else if (region_work_available()) {
        continue;  // drop the lock, claim chunks lock-free
      } else if (stopping_) {
        return;  // queue drained, no region work
      } else {
        // The wait predicate saw region work, but chunks are claimed
        // lock-free, so another thread can drain the region before we
        // re-check here. Losing that race must not kill the worker —
        // go back to sleep instead of permanently shrinking the pool.
        continue;
      }
    }
    if (task.enqueue_ns != 0 && obs::trace_enabled()) {
      obs::FlightRecorder::instance().record_interval(
          "pool.queue_delay", task.enqueue_ns,
          obs::FlightRecorder::now_ns());
    }
    obs::Span task_span("pool.task");
    task.task();
  }
}

std::size_t ThreadPool::configured_thread_count() {
  if (const char* env = std::getenv("NETCONST_THREADS")) {
    char* parse_end = nullptr;
    const unsigned long value = std::strtoul(env, &parse_end, 10);
    if (parse_end != env && *parse_end == '\0' && value > 0 &&
        value <= 4096) {
      return static_cast<std::size_t>(value);
    }
  }
  const std::size_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(configured_thread_count());
  return pool;
}

}  // namespace netconst
