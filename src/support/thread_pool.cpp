#include "support/thread_pool.hpp"

#include <utility>

namespace netconst {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::work_one_chunk(Region& region,
                                std::unique_lock<std::mutex>& lock) {
  const std::size_t lo = region.next;
  const std::size_t hi =
      lo + region.chunk < region.end ? lo + region.chunk : region.end;
  region.next = hi;
  lock.unlock();
  std::exception_ptr error;
  try {
    region.body(lo, hi);
  } catch (...) {
    error = std::current_exception();
  }
  lock.lock();
  if (error && !region.error) region.error = error;
  if (--region.unfinished == 0) region.done.notify_all();
}

void ThreadPool::run_chunked(
    std::size_t begin, std::size_t end, std::size_t chunk,
    FunctionRef<void(std::size_t, std::size_t)> body) {
  if (begin >= end) return;
  if (chunk == 0) chunk = 1;

  Region region{begin, end, chunk,
                /*unfinished=*/(end - begin + chunk - 1) / chunk, body,
                /*error=*/nullptr, /*done=*/{}};
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (region_ != nullptr) {
      // A region is already running (nested parallelism or a concurrent
      // caller). Run inline: the claiming protocol has a single slot, and
      // inline execution keeps nested parallel_for calls deadlock-free.
      lock.unlock();
      body(begin, end);
      return;
    }
    region_ = &region;
  }
  cv_.notify_all();

  // Participate: the caller is always one of the chunk workers, so the
  // region completes even with zero free pool workers.
  std::unique_lock<std::mutex> lock(mutex_);
  while (region.next < region.end) work_one_chunk(region, lock);
  region.done.wait(lock, [&region] { return region.unfinished == 0; });
  region_ = nullptr;
  lock.unlock();
  // Wake workers parked on the "region active" predicate so they re-check
  // the queue (and future regions).
  if (region.error) std::rethrow_exception(region.error);
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    cv_.wait(lock, [this] {
      return stopping_ || !queue_.empty() ||
             (region_ != nullptr && region_->next < region_->end);
    });
    if (region_ != nullptr && region_->next < region_->end) {
      work_one_chunk(*region_, lock);
      continue;
    }
    if (!queue_.empty()) {
      std::function<void()> task = std::move(queue_.front());
      queue_.pop_front();
      lock.unlock();
      task();
      lock.lock();
      continue;
    }
    if (stopping_) return;  // queue drained, no region work
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace netconst
