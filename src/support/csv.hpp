// Minimal CSV reader/writer for traces and experiment outputs.
//
// The dialect is deliberately simple: comma separator, no quoting needed by
// our numeric data, '#'-prefixed comment lines skipped on read.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace netconst {

/// A CSV table: a header row plus data rows of equal width.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  std::size_t column_count() const { return header.size(); }
  std::size_t row_count() const { return rows.size(); }

  /// Index of a header column. Throws Error if absent.
  std::size_t column_index(const std::string& name) const;

  /// Cell parsed as double. Throws Error on parse failure.
  double number(std::size_t row, std::size_t col) const;
};

/// Serialize to a stream. Values are written verbatim.
void write_csv(std::ostream& out, const CsvTable& table);

/// Write to a file path; creates/overwrites. Throws Error on I/O failure.
void write_csv_file(const std::string& path, const CsvTable& table);

/// Parse from a stream. First non-comment line is the header.
CsvTable read_csv(std::istream& in);

/// Read from a file path. Throws Error on I/O failure.
CsvTable read_csv_file(const std::string& path);

/// Format a double with enough digits to round-trip.
std::string format_double(double value);

}  // namespace netconst
