// Non-owning callable reference, the allocation-free alternative to
// std::function for synchronous fork/join callbacks. A FunctionRef is two
// words (object pointer + trampoline) and never touches the heap, which is
// what lets parallel_for dispatch work to the pool from inside the RPCA
// iteration loop without breaking the solvers' zero-allocation guarantee.
//
// The referenced callable must outlive every invocation; FunctionRef is
// only safe for immediately-consumed callbacks (parallel_for blocks until
// the loop completes, so stack lambdas are fine).
#pragma once

#include <type_traits>
#include <utility>

namespace netconst {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  FunctionRef(F&& f) noexcept  // NOLINT(google-explicit-constructor)
      : object_(const_cast<void*>(
            static_cast<const void*>(std::addressof(f)))),
        invoke_([](void* object, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(object))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return invoke_(object_, std::forward<Args>(args)...);
  }

 private:
  void* object_;
  R (*invoke_)(void*, Args...);
};

}  // namespace netconst
