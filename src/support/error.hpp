// Contract checking and error reporting used across the netconst library.
//
// The library is exception-based: violated preconditions throw
// netconst::ContractViolation, runtime failures throw netconst::Error.
// Hot inner loops use NETCONST_ASSERT which compiles out in release
// builds with NETCONST_DISABLE_ASSERTS defined.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace netconst {

/// Base class for all errors thrown by the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a documented precondition of a public API is violated.
class ContractViolation : public Error {
 public:
  explicit ContractViolation(const std::string& what) : Error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_contract_violation(std::string_view expr,
                                                  std::string_view file,
                                                  int line,
                                                  std::string_view msg) {
  std::ostringstream os;
  os << "contract violation: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractViolation(os.str());
}

}  // namespace detail
}  // namespace netconst

/// Precondition check that is always on. `msg` may use stream syntax pieces
/// already formatted into a string.
#define NETCONST_CHECK(expr, msg)                                          \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::netconst::detail::throw_contract_violation(#expr, __FILE__,        \
                                                   __LINE__, (msg));       \
    }                                                                      \
  } while (false)

/// Cheap internal invariant check; disabled with NETCONST_DISABLE_ASSERTS.
#ifdef NETCONST_DISABLE_ASSERTS
#define NETCONST_ASSERT(expr) ((void)0)
#else
#define NETCONST_ASSERT(expr) NETCONST_CHECK(expr, "internal invariant")
#endif
