#include "core/heuristics.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace netconst::core {

const char* heuristic_name(HeuristicKind kind) {
  switch (kind) {
    case HeuristicKind::Mean:
      return "mean";
    case HeuristicKind::Min:
      return "min";
    case HeuristicKind::Ewa:
      return "ewa";
    case HeuristicKind::LastValue:
      return "last";
  }
  return "unknown";
}

netmodel::PerformanceMatrix heuristic_matrix(
    const netmodel::TemporalPerformance& series, HeuristicKind kind,
    double ewa_alpha) {
  NETCONST_CHECK(!series.empty(), "empty series");
  NETCONST_CHECK(ewa_alpha > 0.0 && ewa_alpha <= 1.0,
                 "ewa_alpha must be in (0, 1]");
  const std::size_t n = series.cluster_size();
  const std::size_t rows = series.row_count();
  netmodel::PerformanceMatrix out(n);

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      netmodel::LinkParams link;
      switch (kind) {
        case HeuristicKind::Mean: {
          double alpha = 0.0, beta = 0.0;
          for (std::size_t r = 0; r < rows; ++r) {
            const auto p = series.snapshot(r).link(i, j);
            alpha += p.alpha;
            beta += p.beta;
          }
          link.alpha = alpha / static_cast<double>(rows);
          link.beta = beta / static_cast<double>(rows);
          break;
        }
        case HeuristicKind::Min: {
          // "Best observed": smallest latency, largest bandwidth.
          link = series.snapshot(0).link(i, j);
          for (std::size_t r = 1; r < rows; ++r) {
            const auto p = series.snapshot(r).link(i, j);
            link.alpha = std::min(link.alpha, p.alpha);
            link.beta = std::max(link.beta, p.beta);
          }
          break;
        }
        case HeuristicKind::Ewa: {
          link = series.snapshot(0).link(i, j);
          for (std::size_t r = 1; r < rows; ++r) {
            const auto p = series.snapshot(r).link(i, j);
            link.alpha = (1.0 - ewa_alpha) * link.alpha + ewa_alpha * p.alpha;
            link.beta = (1.0 - ewa_alpha) * link.beta + ewa_alpha * p.beta;
          }
          break;
        }
        case HeuristicKind::LastValue:
          link = series.snapshot(rows - 1).link(i, j);
          break;
      }
      out.set_link(i, j, link);
    }
  }
  return out;
}

}  // namespace netconst::core
