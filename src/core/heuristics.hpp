// The paper's "Heuristics" comparison: direct use of the raw calibration
// measurements, summarizing each link independently (per-column mean of
// the TP-matrix by default; minimum and exponentially weighted average
// behave similarly per the paper and are provided for the ablation).
// Unlike RPCA, these treat every link separately and cannot exploit the
// joint low-rank structure.
#pragma once

#include "netmodel/tp_matrix.hpp"

namespace netconst::core {

enum class HeuristicKind {
  Mean,       // per-link arithmetic mean over the calibration rows
  Min,        // per-link best observed value (max bandwidth, min latency)
  Ewa,        // exponentially weighted average, newest row heaviest
  LastValue,  // most recent snapshot only (pure ad-hoc measurement)
};

const char* heuristic_name(HeuristicKind kind);

/// Summarize the series into one PerformanceMatrix. `ewa_alpha` is the
/// smoothing factor for HeuristicKind::Ewa (weight of the newest row).
netmodel::PerformanceMatrix heuristic_matrix(
    const netmodel::TemporalPerformance& series, HeuristicKind kind,
    double ewa_alpha = 0.3);

}  // namespace netconst::core
