// Algorithm 1: the adaptive RPCA-based guide.
//
//  1. Calibrate a TP-matrix N_A on the virtual cluster.
//  2. Run RPCA -> N_D (constant component), N_E (error).
//  3. Plan the network communication operation with N_D.
//  4. Measure the real performance t; compare with the expected t'
//     estimated from N_D via the alpha-beta model.
//  5. If |t - t'| / t' >= threshold -> significant change: re-calibrate
//     (go to 1); otherwise keep using the same N_D.
#pragma once

#include <cstdint>
#include <functional>

#include "cloud/calibration.hpp"
#include "collective/collective_ops.hpp"
#include "core/constant_finder.hpp"

namespace netconst::core {

struct GuideOptions {
  /// Calibration series parameters (the time step lives here).
  cloud::SeriesOptions series;
  ConstantFinderOptions finder;
  /// Maintenance threshold on |t - t'| / t'; the paper's default is 100%.
  double threshold = 1.0;
};

/// Measures the real elapsed time of running the planned operation; the
/// campaign code supplies either an oracle-model evaluator (trace
/// replay) or a simulator executor.
using OperationExecutor =
    std::function<double(const collective::CommTree& tree)>;

class RpcaGuide {
 public:
  /// Calibrates immediately (Algorithm 1 line 1-2), consuming provider
  /// time.
  RpcaGuide(cloud::NetworkProvider& provider, GuideOptions options);

  const ConstantComponent& component() const { return component_; }
  const netmodel::PerformanceMatrix& constant() const {
    return component_.constant;
  }
  double error_norm() const { return component_.error_norm; }

  /// Cumulative provider time spent calibrating + solving (the
  /// "update maintenance overhead" of Figure 6b).
  double maintenance_seconds() const { return maintenance_seconds_; }
  std::size_t calibration_count() const { return calibration_count_; }

  struct OperationReport {
    double real_seconds = 0.0;
    double expected_seconds = 0.0;
    bool recalibrated = false;
    double maintenance_seconds = 0.0;  // spent by this operation's check
  };

  /// Lines 3-9 for one collective operation: plan with N_D, execute,
  /// compare against the expectation, re-calibrate when the deviation
  /// crosses the threshold.
  OperationReport run_operation(collective::Collective op, std::size_t root,
                                std::uint64_t bytes,
                                const OperationExecutor& executor);

  /// Force a re-calibration (line 1); returns its provider-time cost.
  double recalibrate();

 private:
  cloud::NetworkProvider& provider_;
  GuideOptions options_;
  ConstantComponent component_;
  double maintenance_seconds_ = 0.0;
  std::size_t calibration_count_ = 0;
};

}  // namespace netconst::core
