#include "core/strategy.hpp"

#include "collective/binomial.hpp"
#include "collective/fnf.hpp"
#include "collective/topology_aware.hpp"
#include "support/error.hpp"

namespace netconst::core {

const char* strategy_name(Strategy strategy) {
  switch (strategy) {
    case Strategy::Baseline:
      return "Baseline";
    case Strategy::Heuristics:
      return "Heuristics";
    case Strategy::Rpca:
      return "RPCA";
    case Strategy::TopologyAware:
      return "Topology-aware";
    case Strategy::Oracle:
      return "Oracle";
  }
  return "unknown";
}

collective::CommTree plan_tree(Strategy strategy, std::size_t size,
                               std::size_t root,
                               const PlanContext& context) {
  switch (strategy) {
    case Strategy::Baseline:
      return collective::binomial_tree(size, root);
    case Strategy::TopologyAware:
      NETCONST_CHECK(context.racks != nullptr,
                     "TopologyAware planning needs rack information");
      NETCONST_CHECK(context.racks->size() == size,
                     "rack list size mismatch");
      return collective::topology_aware_tree(*context.racks, root);
    case Strategy::Heuristics:
    case Strategy::Rpca:
    case Strategy::Oracle: {
      NETCONST_CHECK(context.guidance != nullptr,
                     "performance-aware planning needs a guidance matrix");
      NETCONST_CHECK(context.guidance->size() == size,
                     "guidance matrix size mismatch");
      return collective::fnf_tree(
          context.guidance->weight_matrix(context.bytes), root);
    }
  }
  throw Error("unknown strategy");
}

mapping::Mapping plan_mapping(Strategy strategy,
                              const mapping::TaskGraph& tasks,
                              const PlanContext& context) {
  switch (strategy) {
    case Strategy::Baseline:
      return mapping::ring_mapping(tasks.size());
    case Strategy::TopologyAware: {
      NETCONST_CHECK(context.racks != nullptr,
                     "TopologyAware mapping needs rack information");
      NETCONST_CHECK(context.racks->size() == tasks.size(),
                     "rack list size mismatch");
      // Synthetic machine graph: strong intra-rack links, weak
      // cross-rack links; the greedy heuristic then packs heavy task
      // neighbourhoods into racks.
      mapping::MachineGraph machines(tasks.size());
      for (std::size_t i = 0; i < tasks.size(); ++i) {
        for (std::size_t j = 0; j < tasks.size(); ++j) {
          if (i == j) continue;
          const bool same =
              (*context.racks)[i] == (*context.racks)[j];
          machines.set_bandwidth(i, j, same ? 1e9 : 1e8);
        }
      }
      return mapping::greedy_mapping(tasks, machines);
    }
    case Strategy::Heuristics:
    case Strategy::Rpca:
    case Strategy::Oracle: {
      NETCONST_CHECK(context.guidance != nullptr,
                     "performance-aware mapping needs a guidance matrix");
      NETCONST_CHECK(context.guidance->size() == tasks.size(),
                     "guidance matrix size mismatch");
      return mapping::greedy_mapping(
          tasks, mapping::MachineGraph::from_performance(*context.guidance));
    }
  }
  throw Error("unknown strategy");
}

}  // namespace netconst::core
