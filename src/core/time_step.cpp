#include "core/time_step.hpp"

#include <cmath>

#include "linalg/norms.hpp"
#include "support/error.hpp"

namespace netconst::core {
namespace {

netmodel::TemporalPerformance prefix(
    const netmodel::TemporalPerformance& full, std::size_t rows) {
  netmodel::TemporalPerformance out;
  for (std::size_t r = 0; r < rows; ++r) {
    out.append(full.time_at(r), full.snapshot(r));
  }
  return out;
}

}  // namespace

TimeStepDifference long_term_difference(
    const netmodel::TemporalPerformance& full, std::size_t time_step,
    const TimeStepOptions& options) {
  NETCONST_CHECK(time_step >= 2, "time step must be >= 2");
  NETCONST_CHECK(time_step <= full.row_count(),
                 "time step exceeds the trace length");

  const ConstantComponent estimate =
      find_constant(prefix(full, time_step), options.finder);
  const ConstantComponent oracle = find_constant(full, options.finder);

  // Compare the bandwidth constant (the layer Norm(N_E) is defined on).
  const std::size_t n = full.cluster_size();
  std::size_t different = 0, total = 0;
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const double est = estimate.constant.link(i, j).beta;
      const double ref = oracle.constant.link(i, j).beta;
      ++total;
      if (std::abs(est - ref) > options.rel_entry_tolerance * std::abs(ref)) {
        ++different;
      }
      num += (est - ref) * (est - ref);
      den += ref * ref;
    }
  }
  TimeStepDifference diff;
  diff.l0_difference =
      total == 0 ? 0.0
                 : static_cast<double>(different) / static_cast<double>(total);
  diff.frobenius_difference = den == 0.0 ? 0.0 : std::sqrt(num / den);
  return diff;
}

std::size_t select_time_step(const netmodel::TemporalPerformance& full,
                             std::size_t max_time_step, double target,
                             const TimeStepOptions& options) {
  NETCONST_CHECK(max_time_step >= 2, "max time step must be >= 2");
  const std::size_t limit = std::min(max_time_step, full.row_count());
  for (std::size_t step = 2; step <= limit; ++step) {
    if (long_term_difference(full, step, options).l0_difference <= target) {
      return step;
    }
  }
  return limit;
}

}  // namespace netconst::core
