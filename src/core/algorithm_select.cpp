#include "core/algorithm_select.hpp"

#include "collective/binomial.hpp"
#include "collective/collective_ops.hpp"
#include "collective/fnf.hpp"
#include "support/error.hpp"

namespace netconst::core {

const char* broadcast_algorithm_name(BroadcastAlgorithm algorithm) {
  switch (algorithm) {
    case BroadcastAlgorithm::Binomial:
      return "binomial";
    case BroadcastAlgorithm::FnfTree:
      return "fnf-tree";
    case BroadcastAlgorithm::Pipeline:
      return "pipeline";
    case BroadcastAlgorithm::ScatterAllgather:
      return "scatter-allgather";
  }
  return "unknown";
}

BroadcastPlan plan_broadcast(const netmodel::PerformanceMatrix& guidance,
                             std::size_t root, std::uint64_t bytes,
                             std::size_t max_segments) {
  const std::size_t n = guidance.size();
  NETCONST_CHECK(n >= 1, "empty cluster");
  NETCONST_CHECK(root < n, "root out of range");
  const auto weights = guidance.weight_matrix(bytes);

  BroadcastPlan best;
  best.algorithm = BroadcastAlgorithm::Binomial;
  best.tree = collective::binomial_tree(n, root);
  best.predicted_seconds = collective::collective_time(
      best.tree, guidance, collective::Collective::Broadcast, bytes);

  auto consider = [&best](BroadcastPlan candidate) {
    if (candidate.predicted_seconds < best.predicted_seconds) {
      best = std::move(candidate);
    }
  };

  {
    BroadcastPlan fnf;
    fnf.algorithm = BroadcastAlgorithm::FnfTree;
    fnf.tree = collective::fnf_tree(weights, root);
    fnf.predicted_seconds = collective::collective_time(
        fnf.tree, guidance, collective::Collective::Broadcast, bytes);
    consider(std::move(fnf));
  }
  if (n >= 2) {
    BroadcastPlan pipe;
    pipe.algorithm = BroadcastAlgorithm::Pipeline;
    pipe.tree = collective::binomial_tree(n, root);  // unused placeholder
    pipe.chain = collective::greedy_chain(weights, root);
    pipe.segments = collective::best_segment_count(pipe.chain, guidance,
                                                   bytes, max_segments);
    pipe.predicted_seconds = collective::pipeline_broadcast_time(
        pipe.chain, guidance, bytes, pipe.segments);
    consider(std::move(pipe));

    BroadcastPlan vdg;
    vdg.algorithm = BroadcastAlgorithm::ScatterAllgather;
    vdg.tree = collective::fnf_tree(weights, root);
    vdg.chain = collective::greedy_chain(weights, root);
    vdg.predicted_seconds = collective::scatter_allgather_broadcast_time(
        vdg.tree, vdg.chain, guidance, bytes);
    consider(std::move(vdg));
  }
  return best;
}

double broadcast_plan_time(const BroadcastPlan& plan,
                           const netmodel::PerformanceMatrix& performance,
                           std::uint64_t bytes) {
  switch (plan.algorithm) {
    case BroadcastAlgorithm::Binomial:
    case BroadcastAlgorithm::FnfTree:
      return collective::collective_time(
          plan.tree, performance, collective::Collective::Broadcast,
          bytes);
    case BroadcastAlgorithm::Pipeline:
      return collective::pipeline_broadcast_time(plan.chain, performance,
                                                 bytes, plan.segments);
    case BroadcastAlgorithm::ScatterAllgather:
      return collective::scatter_allgather_broadcast_time(
          plan.tree, plan.chain, performance, bytes);
  }
  throw Error("unknown broadcast algorithm");
}

}  // namespace netconst::core
