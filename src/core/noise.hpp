// Noise injection for the Norm(N_E) impact studies (Figures 10 and 11):
// perturb a calibration series until RPCA measures a target Norm(N_E).
// Follows the paper's recipe — repeatedly apply random perturbations to
// the trace and re-run RPCA until the predefined norm is reached — but
// with a secant-style adjustment of the perturbed fraction so the target
// is hit in a handful of RPCA solves.
#pragma once

#include "core/constant_finder.hpp"
#include "support/rng.hpp"

namespace netconst::core {

struct NoiseInjectionResult {
  netmodel::TemporalPerformance series;
  double achieved_norm = 0.0;
  int rpca_evaluations = 0;
};

struct NoiseOptions {
  /// Multiplicative severity of a perturbed entry: the bandwidth is
  /// scaled by a factor uniform in [min_factor, max_factor].
  double min_factor = 2.0;
  double max_factor = 5.0;
  /// Paper's recipe perturbs in both directions ("increase or
  /// decrease"): each perturbed cell is degraded or boosted with equal
  /// probability. Optimistic corruption is what makes naive per-link
  /// summaries pick links that are actually slow.
  bool symmetric = true;
  /// Acceptable |achieved - target| before stopping.
  double tolerance = 0.02;
  int max_evaluations = 8;
  ConstantFinderOptions finder;
};

/// Return a perturbed copy of `series` whose RPCA bandwidth-layer
/// Norm(N_E) is approximately `target_norm` (in [0, 0.9]).
NoiseInjectionResult inject_noise_to_norm(
    const netmodel::TemporalPerformance& series, double target_norm,
    Rng& rng, const NoiseOptions& options = {});

}  // namespace netconst::core
