#include "core/guide.hpp"

#include <cmath>

#include "collective/fnf.hpp"
#include "support/error.hpp"

namespace netconst::core {

RpcaGuide::RpcaGuide(cloud::NetworkProvider& provider, GuideOptions options)
    : provider_(provider), options_(std::move(options)) {
  NETCONST_CHECK(options_.threshold > 0.0, "threshold must be positive");
  recalibrate();
}

double RpcaGuide::recalibrate() {
  const cloud::SeriesResult series =
      cloud::calibrate_series(provider_, options_.series);
  component_ = find_constant(series.series, options_.finder);
  // RPCA runs on the user's machine but still costs wall-clock time that
  // the provider clock should reflect.
  provider_.advance(component_.solve_seconds);
  const double cost = series.elapsed_seconds + component_.solve_seconds;
  maintenance_seconds_ += cost;
  ++calibration_count_;
  return cost;
}

RpcaGuide::OperationReport RpcaGuide::run_operation(
    collective::Collective op, std::size_t root, std::uint64_t bytes,
    const OperationExecutor& executor) {
  OperationReport report;
  const collective::CommTree tree = collective::fnf_tree(
      component_.constant.weight_matrix(bytes), root);
  report.expected_seconds =
      collective::collective_time(tree, component_.constant, op, bytes);
  report.real_seconds = executor(tree);
  NETCONST_CHECK(report.expected_seconds > 0.0,
                 "expected operation time must be positive");

  const double deviation =
      std::abs(report.real_seconds - report.expected_seconds) /
      report.expected_seconds;
  if (deviation >= options_.threshold) {
    report.recalibrated = true;
    report.maintenance_seconds = recalibrate();
  }
  return report;
}

}  // namespace netconst::core
