#include "core/constant_finder.hpp"

#include "support/error.hpp"
#include "support/stopwatch.hpp"

namespace netconst::core {

linalg::Matrix constant_row(const linalg::Matrix& low_rank,
                            std::size_t cluster_size) {
  NETCONST_CHECK(low_rank.cols() == cluster_size * cluster_size,
                 "low-rank width does not match the cluster size");
  NETCONST_CHECK(low_rank.rows() >= 1, "empty low-rank component");
  linalg::Matrix row(1, low_rank.cols());
  for (std::size_t j = 0; j < low_rank.cols(); ++j) {
    double sum = 0.0;
    for (std::size_t i = 0; i < low_rank.rows(); ++i) sum += low_rank(i, j);
    row(0, j) = sum / static_cast<double>(low_rank.rows());
  }
  return netmodel::TemporalPerformance::unflatten_row(row, 0, cluster_size);
}

ConstantComponent find_constant(const netmodel::TemporalPerformance& series,
                                const ConstantFinderOptions& options) {
  NETCONST_CHECK(series.row_count() >= 2,
                 "need at least two calibration rows");
  const std::size_t n = series.cluster_size();
  const Stopwatch clock;

  const linalg::Matrix lat_data =
      series.flatten(netmodel::Field::Latency);
  const linalg::Matrix bw_data =
      series.flatten(netmodel::Field::Bandwidth);

  const rpca::Result lat =
      rpca::solve(lat_data, options.solver, options.rpca);
  const rpca::Result bw = rpca::solve(bw_data, options.solver, options.rpca);

  ConstantComponent component;
  component.solve_seconds = clock.seconds();
  component.latency_rank = lat.rank;
  component.bandwidth_rank = bw.rank;
  component.latency_error_norm =
      rpca::relative_l0(lat.sparse, lat_data, options.l0_rel_tolerance);
  component.error_norm =
      rpca::relative_l0(bw.sparse, bw_data, options.l0_rel_tolerance);
  component.constant = netmodel::matrices_to_performance(
      constant_row(lat.low_rank, n), constant_row(bw.low_rank, n));
  return component;
}

}  // namespace netconst::core
