#include "core/constant_finder.hpp"

#include "support/error.hpp"
#include "support/stopwatch.hpp"

namespace netconst::core {

linalg::Matrix constant_row(const linalg::Matrix& low_rank,
                            std::size_t cluster_size) {
  NETCONST_CHECK(low_rank.cols() == cluster_size * cluster_size,
                 "low-rank width does not match the cluster size");
  NETCONST_CHECK(low_rank.rows() >= 1, "empty low-rank component");
  linalg::Matrix row(1, low_rank.cols());
  for (std::size_t j = 0; j < low_rank.cols(); ++j) {
    double sum = 0.0;
    for (std::size_t i = 0; i < low_rank.rows(); ++i) sum += low_rank(i, j);
    row(0, j) = sum / static_cast<double>(low_rank.rows());
  }
  return netmodel::TemporalPerformance::unflatten_row(row, 0, cluster_size);
}

ConstantComponent assemble_component(const linalg::Matrix& latency_data,
                                     const rpca::Result& latency,
                                     const linalg::Matrix& bandwidth_data,
                                     const rpca::Result& bandwidth,
                                     std::size_t cluster_size,
                                     double l0_rel_tolerance) {
  ConstantComponent component;
  component.solve_seconds = latency.solve_seconds + bandwidth.solve_seconds;
  component.latency_rank = latency.rank;
  component.bandwidth_rank = bandwidth.rank;
  component.latency_error_norm =
      rpca::relative_l0(latency.sparse, latency_data, l0_rel_tolerance);
  component.error_norm =
      rpca::relative_l0(bandwidth.sparse, bandwidth_data, l0_rel_tolerance);
  component.constant = netmodel::matrices_to_performance(
      constant_row(latency.low_rank, cluster_size),
      constant_row(bandwidth.low_rank, cluster_size));
  return component;
}

ConstantComponent find_constant(const netmodel::TemporalPerformance& series,
                                const ConstantFinderOptions& options) {
  NETCONST_CHECK(series.row_count() >= 2,
                 "need at least two calibration rows");
  const std::size_t n = series.cluster_size();
  const Stopwatch clock;

  const linalg::Matrix lat_data =
      series.flatten(netmodel::Field::Latency);
  const linalg::Matrix bw_data =
      series.flatten(netmodel::Field::Bandwidth);

  const rpca::Result lat =
      rpca::solve(lat_data, options.solver, options.rpca);
  const rpca::Result bw = rpca::solve(bw_data, options.solver, options.rpca);

  ConstantComponent component = assemble_component(
      lat_data, lat, bw_data, bw, n, options.l0_rel_tolerance);
  // Keep the historical meaning: wall-clock of this whole decomposition
  // step (flatten + the two solves).
  component.solve_seconds = clock.seconds();
  return component;
}

}  // namespace netconst::core
