// Effectiveness advisor — the paper's "determining the effectiveness of
// optimizations" turned into an API: map the measured Norm(N_E) to an
// actionable recommendation, with hysteresis so a campaign does not
// flap between strategies on boundary noise.
//
// The bands follow the paper's findings (Section V-D3): below ~0.1 the
// network is "relatively stable" and network-aware optimization pays
// off fully (>40% improvement observed); between ~0.1 and ~0.2 gains
// shrink but RPCA still clearly beats direct measurement use; beyond
// ~0.5 "the improvement of network performance aware optimizations
// becomes marginal".
#pragma once

#include <string>

namespace netconst::core {

enum class Effectiveness {
  Stable,    // Norm(N_E) small: optimize aggressively, long recalibration
  Moderate,  // gains reduced; RPCA's robustness matters most here
  Dynamic,   // optimization barely pays; consider baseline algorithms
};

const char* effectiveness_name(Effectiveness level);

struct AdvisorOptions {
  double stable_threshold = 0.12;   // below: Stable
  double dynamic_threshold = 0.45;  // above: Dynamic
  /// Hysteresis margin: a level only changes when the norm crosses the
  /// boundary by this much, so boundary noise cannot flap the advice.
  double hysteresis = 0.03;
};

/// Stateful advisor fed with successive Norm(N_E) observations.
class EffectivenessAdvisor {
 public:
  explicit EffectivenessAdvisor(const AdvisorOptions& options = {});

  /// Feed a new Norm(N_E) in [0, 1]; returns the (possibly unchanged)
  /// level.
  Effectiveness observe(double norm);

  Effectiveness level() const { return level_; }
  double last_norm() const { return last_norm_; }

  /// Human-readable advice for the current level.
  std::string advice() const;

  /// Suggested recalibration interval scale: stable networks can hold a
  /// constant component much longer (multiplier on the base interval).
  double recalibration_interval_factor() const;

 private:
  AdvisorOptions options_;
  Effectiveness level_ = Effectiveness::Stable;
  double last_norm_ = 0.0;
  bool seeded_ = false;
};

}  // namespace netconst::core
