// Experiment campaigns: the machinery behind every figure harness.
//
// A campaign mirrors the paper's EC2 methodology: calibrate once, then
// run the operation under every compared strategy at regular intervals
// (one experimental run every 30 minutes for a week), scoring each run
// against the *instantaneous* network state — either through the
// alpha-beta model on the oracle snapshot (trace replay) or by executing
// inside the flow simulator. RPCA performs Algorithm 1 maintenance along
// the way.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "apps/cg.hpp"
#include "cloud/calibration.hpp"
#include "collective/collective_ops.hpp"
#include "core/constant_finder.hpp"
#include "core/heuristics.hpp"
#include "core/strategy.hpp"
#include "support/rng.hpp"

namespace netconst::core {

/// Scores a planned tree against the current network. The default
/// (model) evaluator computes the alpha-beta time on the oracle
/// snapshot; the simulator evaluator executes the tree for real.
using TreeTimer = std::function<double(
    const collective::CommTree& tree,
    const netmodel::PerformanceMatrix& oracle)>;

struct CampaignOptions {
  std::vector<Strategy> strategies = {Strategy::Baseline,
                                      Strategy::Heuristics, Strategy::Rpca};
  collective::Collective op = collective::Collective::Broadcast;
  std::uint64_t bytes = 8ull * 1024 * 1024;
  std::size_t repeats = 100;
  /// Simulated seconds between experimental runs (paper: 30 minutes).
  double interval_seconds = 1800.0;
  cloud::SeriesOptions calibration;
  ConstantFinderOptions finder;
  HeuristicKind heuristic = HeuristicKind::Mean;
  /// Algorithm 1 maintenance threshold (1.0 = the paper's 100%).
  double maintenance_threshold = 1.0;
  std::uint64_t seed = 7;
  /// Rack of each member — enables Strategy::TopologyAware.
  const std::vector<std::size_t>* racks = nullptr;
  /// Non-default evaluator (e.g. simulator execution). Null = model.
  TreeTimer timer;
};

struct CampaignResult {
  std::map<Strategy, std::vector<double>> times;  // per-repeat seconds
  double error_norm = 0.0;             // Norm(N_E) of the last calibration
  double calibration_seconds = 0.0;    // initial calibration cost
  double rpca_solve_seconds = 0.0;     // initial RPCA cost
  std::size_t recalibrations = 0;      // maintenance-triggered
  double maintenance_seconds = 0.0;    // total re-calibration cost

  /// Mean time of one strategy. Throws if absent/empty.
  double mean_time(Strategy strategy) const;
  /// mean(strategy) / mean(reference).
  double normalized_mean(Strategy strategy, Strategy reference) const;
  /// 1 - mean(strategy) / mean(reference): the paper's "improvement
  /// over" metric.
  double improvement_over(Strategy strategy, Strategy reference) const;
};

/// Collective-operation campaign (Figures 6, 7, 8, 10, 11, 13).
CampaignResult run_collective_campaign(cloud::NetworkProvider& provider,
                                       const CampaignOptions& options);

struct MappingCampaignOptions {
  std::vector<Strategy> strategies = {Strategy::Baseline,
                                      Strategy::Heuristics, Strategy::Rpca};
  std::size_t repeats = 100;
  double interval_seconds = 1800.0;
  /// Task-graph volumes (paper: uniform 5-10 MB).
  double min_volume = 5.0 * 1024 * 1024;
  double max_volume = 10.0 * 1024 * 1024;
  /// Fraction of ordered task pairs that communicate. On a complete
  /// graph every machine talks to every machine and no placement can
  /// help; sparse graphs are where mapping matters.
  double density = 0.2;
  cloud::SeriesOptions calibration;
  ConstantFinderOptions finder;
  HeuristicKind heuristic = HeuristicKind::Mean;
  std::uint64_t seed = 7;
  const std::vector<std::size_t>* racks = nullptr;
};

/// Topology-mapping campaign (Figures 7, 13).
CampaignResult run_mapping_campaign(cloud::NetworkProvider& provider,
                                    const MappingCampaignOptions& options);

/// Compute/communication/overhead breakdown of one distributed
/// application run (Figure 9).
struct AppBreakdown {
  double compute_seconds = 0.0;
  double communication_seconds = 0.0;
  double overhead_seconds = 0.0;  // calibration + RPCA solve

  double total() const {
    return compute_seconds + communication_seconds + overhead_seconds;
  }
};

struct AppCampaignOptions {
  std::vector<Strategy> strategies = {Strategy::Baseline,
                                      Strategy::Heuristics, Strategy::Rpca};
  cloud::SeriesOptions calibration;
  ConstantFinderOptions finder;
  HeuristicKind heuristic = HeuristicKind::Mean;
  std::uint64_t seed = 7;
  /// Re-sample the oracle every this many rounds (the network drifts
  /// slowly relative to one round).
  std::size_t oracle_refresh_rounds = 16;
};

/// Run a distributed application profile (N-body / CG) under each
/// strategy. All-to-all = gather + broadcast per round; Baseline needs
/// no calibration, performance-aware strategies pay it as overhead.
std::map<Strategy, AppBreakdown> run_app_campaign(
    cloud::NetworkProvider& provider, const apps::DistributedProfile& profile,
    const AppCampaignOptions& options);

}  // namespace netconst::core
