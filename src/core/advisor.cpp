#include "core/advisor.hpp"

#include "support/error.hpp"

namespace netconst::core {

const char* effectiveness_name(Effectiveness level) {
  switch (level) {
    case Effectiveness::Stable:
      return "stable";
    case Effectiveness::Moderate:
      return "moderate";
    case Effectiveness::Dynamic:
      return "dynamic";
  }
  return "unknown";
}

EffectivenessAdvisor::EffectivenessAdvisor(const AdvisorOptions& options)
    : options_(options) {
  NETCONST_CHECK(options_.stable_threshold > 0.0 &&
                     options_.stable_threshold <
                         options_.dynamic_threshold &&
                     options_.dynamic_threshold < 1.0,
                 "advisor thresholds must be ordered in (0, 1)");
  NETCONST_CHECK(options_.hysteresis >= 0.0 &&
                     options_.hysteresis <
                         options_.dynamic_threshold -
                             options_.stable_threshold,
                 "hysteresis too large for the threshold gap");
}

Effectiveness EffectivenessAdvisor::observe(double norm) {
  NETCONST_CHECK(norm >= 0.0 && norm <= 1.0, "norm out of range");
  last_norm_ = norm;
  if (!seeded_) {
    // First observation: classify without hysteresis.
    seeded_ = true;
    if (norm < options_.stable_threshold) {
      level_ = Effectiveness::Stable;
    } else if (norm < options_.dynamic_threshold) {
      level_ = Effectiveness::Moderate;
    } else {
      level_ = Effectiveness::Dynamic;
    }
    return level_;
  }
  const double h = options_.hysteresis;
  switch (level_) {
    case Effectiveness::Stable:
      if (norm >= options_.dynamic_threshold + h) {
        level_ = Effectiveness::Dynamic;
      } else if (norm >= options_.stable_threshold + h) {
        level_ = Effectiveness::Moderate;
      }
      break;
    case Effectiveness::Moderate:
      if (norm < options_.stable_threshold - h) {
        level_ = Effectiveness::Stable;
      } else if (norm >= options_.dynamic_threshold + h) {
        level_ = Effectiveness::Dynamic;
      }
      break;
    case Effectiveness::Dynamic:
      if (norm < options_.stable_threshold - h) {
        level_ = Effectiveness::Stable;
      } else if (norm < options_.dynamic_threshold - h) {
        level_ = Effectiveness::Moderate;
      }
      break;
  }
  return level_;
}

std::string EffectivenessAdvisor::advice() const {
  switch (level_) {
    case Effectiveness::Stable:
      return "network is relatively stable: apply network-aware "
             "optimizations; the constant component will hold for long "
             "periods";
    case Effectiveness::Moderate:
      return "network is moderately dynamic: keep optimizing but expect "
             "reduced gains; RPCA's robustness over direct measurements "
             "matters most in this regime";
    case Effectiveness::Dynamic:
      return "network is highly dynamic: network-aware optimization "
             "gains are marginal; prefer baseline algorithms and "
             "re-examine later";
  }
  return "unknown";
}

double EffectivenessAdvisor::recalibration_interval_factor() const {
  switch (level_) {
    case Effectiveness::Stable:
      return 4.0;
    case Effectiveness::Moderate:
      return 1.0;
    case Effectiveness::Dynamic:
      return 0.25;
  }
  return 1.0;
}

}  // namespace netconst::core
