#include "core/economics.hpp"

#include <cmath>
#include <limits>

#include "support/error.hpp"

namespace netconst::core {

double occupancy_cost(const PricingModel& pricing, std::size_t instances,
                      double seconds) {
  NETCONST_CHECK(pricing.price_per_instance_hour >= 0.0,
                 "price must be non-negative");
  NETCONST_CHECK(pricing.billing_granularity_seconds > 0.0,
                 "billing granularity must be positive");
  NETCONST_CHECK(seconds >= 0.0, "duration must be non-negative");
  const double billed =
      std::ceil(seconds / pricing.billing_granularity_seconds) *
      pricing.billing_granularity_seconds;
  return static_cast<double>(instances) * billed / 3600.0 *
         pricing.price_per_instance_hour;
}

CostReport application_cost(const PricingModel& pricing,
                            std::size_t instances,
                            const AppBreakdown& breakdown) {
  CostReport report;
  report.runtime_cost = occupancy_cost(
      pricing, instances,
      breakdown.compute_seconds + breakdown.communication_seconds);
  report.overhead_cost =
      occupancy_cost(pricing, instances, breakdown.overhead_seconds);
  return report;
}

BreakEven break_even(const PricingModel& pricing, std::size_t instances,
                     double baseline_seconds, double optimized_seconds,
                     double overhead_seconds) {
  NETCONST_CHECK(baseline_seconds >= 0.0 && optimized_seconds >= 0.0 &&
                     overhead_seconds >= 0.0,
                 "durations must be non-negative");
  BreakEven result;
  result.saving_per_run =
      occupancy_cost(pricing, instances, baseline_seconds) -
      occupancy_cost(pricing, instances, optimized_seconds);
  result.investment = occupancy_cost(pricing, instances, overhead_seconds);
  result.runs_to_break_even =
      result.saving_per_run > 0.0
          ? result.investment / result.saving_per_run
          : std::numeric_limits<double>::infinity();
  return result;
}

}  // namespace netconst::core
