// Time-step accuracy study (Figure 5): how close is the constant
// component estimated from the first `time_step` calibration rows to the
// oracle constant component computed from the whole trace?
//
// The paper's metric is Norm(P_D) = ||P_D - P'_D||_0 / ||P'_D||_0. In
// floating point an exact zero-count is meaningless, so an entry counts
// as "different" when it deviates from the oracle by more than
// `rel_entry_tolerance` of the oracle value (default 5%); the relative
// Frobenius distance is reported alongside as a smooth cross-check.
#pragma once

#include "core/constant_finder.hpp"

namespace netconst::core {

struct TimeStepDifference {
  double l0_difference = 0.0;         // the paper's Norm(P_D)
  double frobenius_difference = 0.0;  // smooth cross-check
};

struct TimeStepOptions {
  double rel_entry_tolerance = 0.05;
  ConstantFinderOptions finder;
};

/// Compare the constant component from the first `time_step` rows of
/// `full` against the one from all rows. Requires
/// 2 <= time_step <= full.row_count().
TimeStepDifference long_term_difference(
    const netmodel::TemporalPerformance& full, std::size_t time_step,
    const TimeStepOptions& options = {});

/// The paper's selection rule: the smallest time step whose difference
/// is within `target` (10% by default). Scans 2..max_time_step.
std::size_t select_time_step(const netmodel::TemporalPerformance& full,
                             std::size_t max_time_step,
                             double target = 0.10,
                             const TimeStepOptions& options = {});

}  // namespace netconst::core
