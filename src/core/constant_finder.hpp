// ConstantFinder — the heart of the paper: decompose a TP-matrix into
// the rank-one constant component (TC-matrix) and the sparse error
// component (TE-matrix) with RPCA, and derive from them
//  * a PerformanceMatrix of long-term link parameters for guiding
//    network-performance-aware optimizations, and
//  * the effectiveness metric Norm(N_E) = ||N_E||_0 / ||N_A||_0.
//
// Latency and bandwidth layers are decomposed independently (the paper
// maintains two N x N performance matrices L and B); Norm(N_E) is
// reported for the bandwidth layer, which dominates the 8 MB-class
// messages of the evaluation, with the latency norm kept alongside.
#pragma once

#include <cstdint>

#include "netmodel/tp_matrix.hpp"
#include "rpca/rpca.hpp"

namespace netconst::core {

struct ConstantFinderOptions {
  rpca::Solver solver = rpca::Solver::Apg;
  rpca::Options rpca;
  /// Tolerance for the l0 counts in Norm(N_E), relative to max|A|: an
  /// error entry below this fraction of the largest link value is not
  /// "significant". 5% sits above the volatility band (~1% deviations,
  /// which should NOT count as error) and far below interference spikes
  /// (30-75% deviations, which must count).
  double l0_rel_tolerance = 0.05;
};

struct ConstantComponent {
  /// Long-term link parameters (the row of the TC-matrix, reshaped).
  netmodel::PerformanceMatrix constant;
  /// Norm(N_E) of the bandwidth layer — the paper's headline metric.
  double error_norm = 0.0;
  /// Norm(N_E) of the latency layer.
  double latency_error_norm = 0.0;
  /// Numerical rank of the recovered low-rank components.
  std::size_t bandwidth_rank = 0;
  std::size_t latency_rank = 0;
  /// Wall-clock cost of the two RPCA solves.
  double solve_seconds = 0.0;
};

/// Run RPCA on both layers of the series and assemble the result.
/// Requires at least 2 snapshots.
ConstantComponent find_constant(const netmodel::TemporalPerformance& series,
                                const ConstantFinderOptions& options = {});

/// Assemble a ConstantComponent from per-layer RPCA solves of
/// already-flattened data. The rows of the data matrices may be any
/// permutation of the snapshots (everything derived here — the mean
/// constant row, Norm(N_E), ranks — is row-permutation invariant), which
/// is what lets the online sliding window hand its ring-ordered buffers
/// straight to the solver. Shared by find_constant and online::WindowRefresher.
ConstantComponent assemble_component(const linalg::Matrix& latency_data,
                                     const rpca::Result& latency,
                                     const linalg::Matrix& bandwidth_data,
                                     const rpca::Result& bandwidth,
                                     std::size_t cluster_size,
                                     double l0_rel_tolerance);

/// The row of the TC-matrix as an N x N matrix for one flattened layer:
/// the mean row of the low-rank component (its rows are equal up to
/// numerical noise; averaging is the consistent estimator for all three
/// solvers).
linalg::Matrix constant_row(const linalg::Matrix& low_rank,
                            std::size_t cluster_size);

}  // namespace netconst::core
