// Broadcast algorithm selection — an extension of the paper's framework:
// once the constant component is known, don't just pick the best LINKS
// for a fixed algorithm, pick the best ALGORITHM too. The alpha-beta
// model predicts every candidate's completion time on N_D; the planner
// returns the winner and the fully-planned schedule.
//
// Candidates: FNF tree (latency regime), segmented greedy-chain pipeline
// and van de Geijn scatter-allgather (bandwidth regime), and the plain
// binomial (degenerate guidance).
#pragma once

#include <cstdint>
#include <string>

#include "collective/comm_tree.hpp"
#include "collective/pipelines.hpp"
#include "netmodel/perf_matrix.hpp"

namespace netconst::core {

enum class BroadcastAlgorithm {
  Binomial,
  FnfTree,
  Pipeline,
  ScatterAllgather,
};

const char* broadcast_algorithm_name(BroadcastAlgorithm algorithm);

/// A fully planned broadcast: the winning algorithm plus whatever
/// structure it needs (tree and/or chain), and its predicted time on
/// the guidance matrix.
struct BroadcastPlan {
  BroadcastAlgorithm algorithm = BroadcastAlgorithm::Binomial;
  collective::CommTree tree{1, 0};
  collective::Chain chain;
  std::size_t segments = 1;  // pipeline only
  double predicted_seconds = 0.0;
};

/// Plan the fastest broadcast of `bytes` from `root` according to
/// `guidance` (typically the RPCA constant component).
BroadcastPlan plan_broadcast(const netmodel::PerformanceMatrix& guidance,
                             std::size_t root, std::uint64_t bytes,
                             std::size_t max_segments = 128);

/// Evaluate a plan's completion time on an arbitrary (e.g. oracle)
/// performance matrix.
double broadcast_plan_time(const BroadcastPlan& plan,
                           const netmodel::PerformanceMatrix& performance,
                           std::uint64_t bytes);

}  // namespace netconst::core
