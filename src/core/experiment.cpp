#include "core/experiment.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"
#include "support/statistics.hpp"

namespace netconst::core {
namespace {

bool needs_guidance(Strategy s) {
  return s == Strategy::Heuristics || s == Strategy::Rpca ||
         s == Strategy::Oracle;
}

}  // namespace

double CampaignResult::mean_time(Strategy strategy) const {
  const auto it = times.find(strategy);
  NETCONST_CHECK(it != times.end() && !it->second.empty(),
                 "no samples for the requested strategy");
  return mean(it->second);
}

double CampaignResult::normalized_mean(Strategy strategy,
                                       Strategy reference) const {
  return mean_time(strategy) / mean_time(reference);
}

double CampaignResult::improvement_over(Strategy strategy,
                                        Strategy reference) const {
  return 1.0 - normalized_mean(strategy, reference);
}

CampaignResult run_collective_campaign(cloud::NetworkProvider& provider,
                                       const CampaignOptions& options) {
  NETCONST_CHECK(!options.strategies.empty(), "no strategies to compare");
  NETCONST_CHECK(options.repeats >= 1, "need at least one repeat");
  const std::size_t n = provider.cluster_size();
  Rng rng(options.seed);
  CampaignResult result;

  // Initial calibration shared by the measurement-driven strategies.
  const cloud::SeriesResult initial =
      cloud::calibrate_series(provider, options.calibration);
  result.calibration_seconds = initial.elapsed_seconds;
  ConstantComponent component = find_constant(initial.series, options.finder);
  provider.advance(component.solve_seconds);
  result.rpca_solve_seconds = component.solve_seconds;
  result.error_norm = component.error_norm;
  netmodel::PerformanceMatrix heuristic =
      heuristic_matrix(initial.series, options.heuristic);

  const TreeTimer model_timer =
      [&options](const collective::CommTree& tree,
                 const netmodel::PerformanceMatrix& oracle) {
        return collective::collective_time(tree, oracle, options.op,
                                           options.bytes);
      };
  const TreeTimer& timer = options.timer ? options.timer : model_timer;

  for (std::size_t repeat = 0; repeat < options.repeats; ++repeat) {
    const auto root = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    const netmodel::PerformanceMatrix oracle = provider.oracle_snapshot();

    double rpca_expected = 0.0, rpca_real = 0.0;
    for (Strategy strategy : options.strategies) {
      PlanContext context;
      context.bytes = options.bytes;
      context.racks = options.racks;
      if (strategy == Strategy::Rpca) {
        context.guidance = &component.constant;
      } else if (strategy == Strategy::Heuristics) {
        context.guidance = &heuristic;
      } else if (strategy == Strategy::Oracle) {
        context.guidance = &oracle;
      }
      NETCONST_CHECK(!needs_guidance(strategy) || context.guidance,
                     "missing guidance for strategy");
      const collective::CommTree tree =
          plan_tree(strategy, n, root, context);
      const double elapsed = timer(tree, oracle);
      result.times[strategy].push_back(elapsed);
      if (strategy == Strategy::Rpca) {
        rpca_real = elapsed;
        rpca_expected = collective::collective_time(
            tree, component.constant, options.op, options.bytes);
      }
    }

    // Algorithm 1 lines 4-9: maintenance check on the RPCA strategy.
    if (rpca_expected > 0.0) {
      const double deviation =
          std::abs(rpca_real - rpca_expected) / rpca_expected;
      if (deviation >= options.maintenance_threshold) {
        const double before = provider.now();
        const cloud::SeriesResult redo =
            cloud::calibrate_series(provider, options.calibration);
        component = find_constant(redo.series, options.finder);
        provider.advance(component.solve_seconds);
        heuristic = heuristic_matrix(redo.series, options.heuristic);
        result.error_norm = component.error_norm;
        ++result.recalibrations;
        result.maintenance_seconds += provider.now() - before;
      }
    }
    provider.advance(options.interval_seconds);
  }
  return result;
}

CampaignResult run_mapping_campaign(cloud::NetworkProvider& provider,
                                    const MappingCampaignOptions& options) {
  NETCONST_CHECK(!options.strategies.empty(), "no strategies to compare");
  NETCONST_CHECK(options.repeats >= 1, "need at least one repeat");
  const std::size_t n = provider.cluster_size();
  Rng rng(options.seed);
  CampaignResult result;

  const cloud::SeriesResult initial =
      cloud::calibrate_series(provider, options.calibration);
  result.calibration_seconds = initial.elapsed_seconds;
  ConstantComponent component = find_constant(initial.series, options.finder);
  provider.advance(component.solve_seconds);
  result.rpca_solve_seconds = component.solve_seconds;
  result.error_norm = component.error_norm;
  const netmodel::PerformanceMatrix heuristic =
      heuristic_matrix(initial.series, options.heuristic);

  for (std::size_t repeat = 0; repeat < options.repeats; ++repeat) {
    const mapping::TaskGraph tasks = mapping::random_task_graph(
        n, rng, options.min_volume, options.max_volume, options.density);
    const netmodel::PerformanceMatrix oracle = provider.oracle_snapshot();
    for (Strategy strategy : options.strategies) {
      PlanContext context;
      context.racks = options.racks;
      if (strategy == Strategy::Rpca) {
        context.guidance = &component.constant;
      } else if (strategy == Strategy::Heuristics) {
        context.guidance = &heuristic;
      } else if (strategy == Strategy::Oracle) {
        context.guidance = &oracle;
      }
      const mapping::Mapping plan =
          plan_mapping(strategy, tasks, context);
      // Scored by the total communication volume over actual bandwidth —
      // the quantity placement controls. (The per-task makespan metric
      // is dominated by each task's degree and barely moves.)
      result.times[strategy].push_back(
          mapping::mapping_volume_cost(plan, tasks, oracle));
    }
    provider.advance(options.interval_seconds);
  }
  return result;
}

std::map<Strategy, AppBreakdown> run_app_campaign(
    cloud::NetworkProvider& provider,
    const apps::DistributedProfile& profile,
    const AppCampaignOptions& options) {
  NETCONST_CHECK(profile.instances == provider.cluster_size(),
                 "profile instance count must match the provider");
  NETCONST_CHECK(profile.rounds >= 1, "profile needs at least one round");
  const std::size_t n = provider.cluster_size();
  Rng rng(options.seed);
  const auto root = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));

  // Phase 1: build every strategy's guidance from ONE calibration
  // series (as the paper's replay methodology does), so that guided
  // strategies differ only in how they summarize the same measurements.
  // The calibration + (for RPCA) solve time is the "Other Overheads" of
  // Figure 9; the paper calibrates once per application execution.
  const bool any_guided =
      std::any_of(options.strategies.begin(), options.strategies.end(),
                  [](Strategy s) {
                    return s == Strategy::Heuristics || s == Strategy::Rpca;
                  });
  cloud::SeriesResult series;
  if (any_guided) {
    series = cloud::calibrate_series(provider, options.calibration);
  }

  std::map<Strategy, AppBreakdown> out;
  std::map<Strategy, collective::CommTree> trees;
  for (Strategy strategy : options.strategies) {
    AppBreakdown breakdown;
    netmodel::PerformanceMatrix guidance;
    bool have_guidance = false;
    if (strategy == Strategy::Rpca) {
      ConstantComponent component =
          find_constant(series.series, options.finder);
      provider.advance(component.solve_seconds);
      guidance = component.constant;
      have_guidance = true;
      breakdown.overhead_seconds =
          series.elapsed_seconds + component.solve_seconds;
    } else if (strategy == Strategy::Heuristics) {
      guidance = heuristic_matrix(series.series, options.heuristic);
      have_guidance = true;
      breakdown.overhead_seconds = series.elapsed_seconds;
    } else if (strategy == Strategy::Oracle) {
      guidance = provider.oracle_snapshot();
      have_guidance = true;
    }
    PlanContext context;
    context.bytes = profile.bytes_per_member;
    if (have_guidance) context.guidance = &guidance;
    trees.emplace(strategy, plan_tree(strategy, n, root, context));
    out.emplace(strategy, breakdown);
  }

  // Phase 2: replay the rounds with every strategy scored against the
  // SAME network reality, so differences reflect the plans rather than
  // which interference events each run happened to hit. The shared
  // clock advances with the slowest strategy's round time.
  netmodel::PerformanceMatrix oracle = provider.oracle_snapshot();
  for (std::size_t round = 0; round < profile.rounds; ++round) {
    if (round % options.oracle_refresh_rounds == 0 && round != 0) {
      oracle = provider.oracle_snapshot();
    }
    double slowest = 0.0;
    for (Strategy strategy : options.strategies) {
      const double comm = collective::all_to_all_time(
          trees.at(strategy), oracle, profile.bytes_per_member);
      AppBreakdown& breakdown = out.at(strategy);
      breakdown.communication_seconds += comm;
      breakdown.compute_seconds += profile.compute_seconds_per_round;
      slowest = std::max(slowest,
                         comm + profile.compute_seconds_per_round);
    }
    provider.advance(slowest);
  }
  return out;
}

}  // namespace netconst::core
