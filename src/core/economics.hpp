// Economic impact of network-aware optimization — the paper's stated
// future work ("we plan to investigate the economic impacts [42] of our
// approach"). On a pay-as-you-go cloud the bill is instance-hours:
// every second shaved off a distributed run is money, and calibration
// overhead is money spent up front. This module turns campaign and
// application timings into dollars so the break-even point is explicit.
#pragma once

#include <cstddef>

#include "core/experiment.hpp"

namespace netconst::core {

struct PricingModel {
  /// Price of one instance-hour (the paper's m1.medium era: ~$0.12/h).
  double price_per_instance_hour = 0.12;
  /// Billing granularity in seconds (classic EC2 billed whole hours;
  /// modern clouds bill per second). Durations are rounded UP to this.
  double billing_granularity_seconds = 1.0;
};

/// Cost of occupying `instances` VMs for `seconds`.
double occupancy_cost(const PricingModel& pricing, std::size_t instances,
                      double seconds);

/// Money report for one application run under one strategy.
struct CostReport {
  double runtime_cost = 0.0;   // compute + communication occupancy
  double overhead_cost = 0.0;  // calibration + RPCA occupancy
  double total() const { return runtime_cost + overhead_cost; }
};

/// Cost of an application breakdown (Figure 9 style) on `instances` VMs.
CostReport application_cost(const PricingModel& pricing,
                            std::size_t instances,
                            const AppBreakdown& breakdown);

/// Break-even analysis: how many runs of an operation amortize the
/// one-time calibration investment?
struct BreakEven {
  double saving_per_run = 0.0;     // dollars saved per optimized run
  double investment = 0.0;         // calibration + solve cost
  /// Runs needed before the investment pays for itself; infinity when
  /// the optimized run is not actually cheaper.
  double runs_to_break_even = 0.0;
};

/// `baseline_seconds` / `optimized_seconds` are per-run durations;
/// `overhead_seconds` is the one-time calibration investment. All on
/// `instances` VMs.
BreakEven break_even(const PricingModel& pricing, std::size_t instances,
                     double baseline_seconds, double optimized_seconds,
                     double overhead_seconds);

}  // namespace netconst::core
