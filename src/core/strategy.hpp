// Optimization strategies compared throughout the evaluation, and the
// planners that turn a strategy + guidance into a communication tree or
// a topology mapping.
//
//  Baseline       — MPICH2 binomial tree / ring mapping, no network
//                   awareness;
//  Heuristics     — FNF / greedy mapping on the raw measurement average;
//  Rpca           — FNF / greedy mapping on the RPCA constant component;
//  TopologyAware  — rack-hierarchical tree (needs topology knowledge;
//                   only available in the simulator);
//  Oracle         — FNF / greedy mapping on the instantaneous true
//                   matrix (the offline upper bound).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "collective/comm_tree.hpp"
#include "mapping/mapping.hpp"
#include "netmodel/perf_matrix.hpp"

namespace netconst::core {

enum class Strategy { Baseline, Heuristics, Rpca, TopologyAware, Oracle };

const char* strategy_name(Strategy strategy);

/// Everything a planner might need; strategies use the parts they need
/// and ignore the rest.
struct PlanContext {
  /// Guidance matrix (RPCA constant / heuristic summary / oracle truth).
  /// Required for Heuristics, Rpca and Oracle.
  const netmodel::PerformanceMatrix* guidance = nullptr;
  /// Rack of each member. Required for TopologyAware.
  const std::vector<std::size_t>* racks = nullptr;
  /// Message size used to convert alpha-beta guidance into FNF weights.
  std::uint64_t bytes = 8ull * 1024 * 1024;
};

/// Communication tree for a collective rooted at `root` over `size`
/// members. Throws ContractViolation when the context lacks what the
/// strategy needs.
collective::CommTree plan_tree(Strategy strategy, std::size_t size,
                               std::size_t root, const PlanContext& context);

/// Task-to-machine mapping. TopologyAware is not defined for mapping on
/// the opaque cloud; it falls back to rack-aware greedy when racks are
/// available (tasks mapped via guidance = infinite intra-rack preference)
/// and is rejected otherwise.
mapping::Mapping plan_mapping(Strategy strategy,
                              const mapping::TaskGraph& tasks,
                              const PlanContext& context);

}  // namespace netconst::core
