#include "core/noise.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace netconst::core {
namespace {

// Perturb `fraction` of the (row, link) cells of a copy of the series.
netmodel::TemporalPerformance perturb(
    const netmodel::TemporalPerformance& series, double fraction, Rng rng,
    const NoiseOptions& options) {
  const std::size_t n = series.cluster_size();
  const std::size_t links = n * (n - 1);
  netmodel::TemporalPerformance out;
  for (std::size_t r = 0; r < series.row_count(); ++r) {
    netmodel::PerformanceMatrix snap = series.snapshot(r);
    const auto cells = static_cast<std::size_t>(
        std::llround(fraction * static_cast<double>(links)));
    for (std::size_t pick : rng.sample_without_replacement(links, cells)) {
      // pick indexes the off-diagonal cells row-major.
      const std::size_t i = pick / (n - 1);
      std::size_t j = pick % (n - 1);
      if (j >= i) ++j;
      netmodel::LinkParams link = snap.link(i, j);
      const double factor =
          rng.uniform(options.min_factor, options.max_factor);
      if (options.symmetric && rng.bernoulli(0.5)) {
        link.beta *= factor;  // transiently looks better than it is
      } else {
        link.beta /= factor;
        link.alpha *= rng.uniform(1.0, options.max_factor);
      }
      snap.set_link(i, j, link);
    }
    out.append(series.time_at(r), std::move(snap));
  }
  return out;
}

}  // namespace

NoiseInjectionResult inject_noise_to_norm(
    const netmodel::TemporalPerformance& series, double target_norm,
    Rng& rng, const NoiseOptions& options) {
  NETCONST_CHECK(target_norm >= 0.0 && target_norm <= 0.9,
                 "target norm out of range");
  NETCONST_CHECK(series.row_count() >= 2, "series too short");

  NoiseInjectionResult result;
  const ConstantComponent base = find_constant(series, options.finder);
  ++result.rpca_evaluations;
  if (base.error_norm >= target_norm - options.tolerance) {
    // Already at (or beyond) the target.
    result.series = series;
    result.achieved_norm = base.error_norm;
    return result;
  }

  // The perturbed fraction translates nearly one-to-one into Norm(N_E);
  // start there and refine with a secant step.
  double fraction =
      std::clamp(target_norm - base.error_norm, 0.0, 0.95);
  double best_gap = 1.0;
  for (int it = 0; it < options.max_evaluations; ++it) {
    const Rng attempt_rng = rng.split();
    netmodel::TemporalPerformance candidate =
        perturb(series, fraction, attempt_rng, options);
    const ConstantComponent component =
        find_constant(candidate, options.finder);
    ++result.rpca_evaluations;
    const double gap = std::abs(component.error_norm - target_norm);
    if (gap < best_gap) {
      best_gap = gap;
      result.series = std::move(candidate);
      result.achieved_norm = component.error_norm;
    }
    if (gap <= options.tolerance) break;
    // Secant-style scaling of the fraction towards the target.
    if (component.error_norm > 1e-9) {
      fraction = std::clamp(
          fraction * target_norm / component.error_norm, 0.001, 0.95);
    } else {
      fraction = std::min(fraction * 2.0, 0.95);
    }
  }
  return result;
}

}  // namespace netconst::core
