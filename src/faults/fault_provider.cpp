#include "faults/fault_provider.hpp"

#include <algorithm>
#include <limits>

#include "support/error.hpp"

namespace netconst::faults {
namespace {

constexpr double kLostValue = std::numeric_limits<double>::quiet_NaN();

}  // namespace

FaultInjectionProvider::FaultInjectionProvider(cloud::NetworkProvider& inner,
                                               const FaultPlanConfig& config)
    : inner_(inner), plan_(config) {
  for (const PlacementChange& change : config.placement_changes) {
    NETCONST_CHECK(change.vm < inner_.cluster_size(),
                   "placement change targets a VM outside the cluster");
  }
  plan_.advance_to(inner_.now());
}

void FaultInjectionProvider::advance(double seconds) {
  inner_.advance(seconds);
  plan_.advance_to(inner_.now());
}

double FaultInjectionProvider::measure(std::size_t i, std::size_t j,
                                       std::uint64_t bytes) {
  plan_.advance_to(inner_.now());
  const ProbeFault fault = plan_.next_probe(inner_.now(), i, j);
  const double true_elapsed = inner_.measure(i, j, bytes);
  if (fault.timeout) {
    // The prober waited out the full deadline before giving up.
    const double deadline = plan_.config().timeout_seconds;
    if (deadline > true_elapsed) inner_.advance(deadline - true_elapsed);
    return kLostValue;
  }
  if (fault.dropped) return kLostValue;
  const double reported = true_elapsed * fault.elapsed_factor;
  if (reported > true_elapsed) inner_.advance(reported - true_elapsed);
  return reported;
}

std::vector<double> FaultInjectionProvider::measure_concurrent(
    const std::vector<std::pair<std::size_t, std::size_t>>& pairs,
    std::uint64_t bytes) {
  plan_.advance_to(inner_.now());
  const double start = inner_.now();
  std::vector<ProbeFault> faults;
  faults.reserve(pairs.size());
  for (const auto& [i, j] : pairs) {
    faults.push_back(plan_.next_probe(start, i, j));
  }

  const std::vector<double> true_elapsed =
      inner_.measure_concurrent(pairs, bytes);
  const double inner_round = inner_.now() - start;

  std::vector<double> reported(pairs.size(), kLostValue);
  double round_elapsed = inner_round;
  for (std::size_t k = 0; k < pairs.size(); ++k) {
    if (faults[k].timeout) {
      round_elapsed =
          std::max(round_elapsed, plan_.config().timeout_seconds);
    } else if (!faults[k].dropped) {
      reported[k] = true_elapsed[k] * faults[k].elapsed_factor;
      round_elapsed = std::max(round_elapsed, reported[k]);
    }
    // Dropped probes finish with the transfer; no extra time.
  }
  if (round_elapsed > inner_round) {
    inner_.advance(round_elapsed - inner_round);
  }
  return reported;
}

netmodel::PerformanceMatrix FaultInjectionProvider::oracle_snapshot() {
  netmodel::PerformanceMatrix snapshot = inner_.oracle_snapshot();
  apply_placement_shift(snapshot);
  return snapshot;
}

void FaultInjectionProvider::apply_placement_shift(
    netmodel::PerformanceMatrix& matrix) const {
  const std::size_t n = matrix.size();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const double factor = plan_.placement_factor(i, j);
      if (factor == 1.0) continue;
      netmodel::LinkParams link = matrix.link(i, j);
      link.alpha *= factor;
      link.beta /= factor;
      matrix.set_link(i, j, link);
    }
  }
}

}  // namespace netconst::faults
