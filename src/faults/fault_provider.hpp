// FaultInjectionProvider — a cloud::NetworkProvider decorator that
// applies a FaultPlan to every probe of an inner provider.
//
// The wrapper always performs the inner measurement, even when the
// plan loses the value: the underlying cloud's stochastic sample path
// therefore evolves identically with and without fault injection, so a
// faulted run can be compared entry-for-entry against a fault-free run
// of the same seed. Lost values are reported as quiet NaN; the time
// cost of a timeout is the plan's full deadline (the prober waited).
//
// Placement-change events shift the constant component persistently:
// every probe touching the shifted VM reports `factor` times its true
// elapsed time from the event on, and oracle_snapshot() reflects the
// shift (alpha scaled, beta divided — transfer times scale exactly by
// the factor), so ground-truth comparisons stay meaningful after the
// shift.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "cloud/provider.hpp"
#include "faults/fault_plan.hpp"

namespace netconst::faults {

class FaultInjectionProvider final : public cloud::NetworkProvider {
 public:
  /// `inner` must outlive this provider and must not be probed through
  /// any other path while wrapped (the plan's probe order is the
  /// determinism contract).
  FaultInjectionProvider(cloud::NetworkProvider& inner,
                         const FaultPlanConfig& config);

  std::size_t cluster_size() const override { return inner_.cluster_size(); }
  double now() const override { return inner_.now(); }
  void advance(double seconds) override;

  /// Returns quiet NaN when the plan loses the value (timeout or drop);
  /// simulated time is always charged (deadline for timeouts, true
  /// elapsed otherwise).
  double measure(std::size_t i, std::size_t j,
                 std::uint64_t bytes) override;
  std::vector<double> measure_concurrent(
      const std::vector<std::pair<std::size_t, std::size_t>>& pairs,
      std::uint64_t bytes) override;

  netmodel::PerformanceMatrix oracle_snapshot() override;

  /// Apply the plan's current placement-shift factors to a matrix of
  /// link parameters (alpha * f, beta / f). Lets tests shift an inner
  /// provider's ground-truth constant to the post-migration truth.
  void apply_placement_shift(netmodel::PerformanceMatrix& matrix) const;

  const FaultPlan& plan() const { return plan_; }
  const FaultEventLog& fault_log() const { return plan_.log(); }
  /// Probes whose value this wrapper replaced with NaN so far.
  std::uint64_t injected_value_losses() const {
    return plan_.log().value_losses();
  }

 private:
  cloud::NetworkProvider& inner_;
  FaultPlan plan_;
};

}  // namespace netconst::faults
