// Deterministic fault planning for chaos testing the measurement path.
//
// A FaultPlan scripts what goes wrong on a virtual cluster's probe
// stream: probe timeouts, measurements dropped in flight, latency
// outlier storms inside scripted time windows, and placement-change
// events that permanently shift the constant component of every link
// touching one VM. All stochastic decisions are drawn from one seeded
// Rng consumed strictly in probe order, and every injected fault is
// recorded in an append-only FaultEventLog — so two runs of the same
// plan against the same (deterministic) provider produce byte-identical
// logs, regardless of the thread count driving them (a provider is only
// ever probed by the single driver that owns its tenant).
//
// The plan is transport-agnostic: it decides *what* to inject per probe;
// faults::FaultInjectionProvider applies those decisions to a wrapped
// cloud::NetworkProvider.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "support/csv.hpp"
#include "support/rng.hpp"

namespace netconst::faults {

enum class FaultKind {
  ProbeTimeout,        // probe hung until the deadline; value lost
  DroppedMeasurement,  // transfer ran but the result was lost
  OutlierInjected,     // elapsed time multiplied by a storm factor
  PlacementShift,      // persistent constant change around one VM
};
inline constexpr std::size_t kFaultKindCount = 4;

const char* fault_kind_name(FaultKind kind);

struct FaultEvent {
  /// Position in the plan's probe stream (PlacementShift events carry
  /// the sequence of the next probe after the shift took effect).
  std::uint64_t sequence = 0;
  double time = 0.0;  // provider time when the fault was injected
  FaultKind kind = FaultKind::DroppedMeasurement;
  /// Directed pair of the probe; for PlacementShift, `i` is the VM and
  /// `j` is unused.
  std::size_t i = 0;
  std::size_t j = 0;
  /// Kind-specific: timeout seconds, storm factor, or shift factor.
  double value = 0.0;
};

/// Append-only record of injected faults. Deliberately NOT thread-safe:
/// one log belongs to one provider, and a provider is probed
/// sequentially by the single driver that owns its tenant — which is
/// exactly why the log is reproducible byte for byte.
class FaultEventLog {
 public:
  void record(const FaultEvent& event);

  std::size_t size() const { return events_.size(); }
  const std::vector<FaultEvent>& events() const { return events_; }
  std::uint64_t count(FaultKind kind) const;
  /// Probes whose measured value was lost (timeouts + drops).
  std::uint64_t value_losses() const;

  /// CSV columns: sequence,time,kind,i,j,value.
  CsvTable to_csv() const;
  /// Canonical text form (one line per event) for byte-identity checks.
  std::string serialize() const;

 private:
  std::vector<FaultEvent> events_;
  std::array<std::uint64_t, kFaultKindCount> counts_{};
};

/// Scripted window of latency outliers: every probe with
/// start <= now < end reports `elapsed_factor` times its true elapsed
/// time (an interference burst as seen by the prober).
struct OutlierStorm {
  double start = 0.0;
  double end = 0.0;
  double elapsed_factor = 4.0;
};

/// Scripted placement change: from `time` on, every probe touching `vm`
/// takes `elapsed_factor` times longer — the persistent constant shift
/// Algorithm 1's maintenance must detect and recalibrate away.
struct PlacementChange {
  double time = 0.0;
  std::size_t vm = 0;
  double elapsed_factor = 2.0;
};

struct FaultPlanConfig {
  std::uint64_t seed = 0xFA017ULL;
  /// Per-probe probability the probe times out (value lost, and the
  /// prober is charged the full `timeout_seconds` deadline).
  double timeout_probability = 0.0;
  double timeout_seconds = 30.0;
  /// Per-probe probability the measured value is lost in flight (the
  /// transfer time is still spent).
  double drop_probability = 0.0;
  /// Scripted latency-outlier storms (may overlap; factors multiply).
  std::vector<OutlierStorm> storms;
  /// Scripted placement changes, in non-decreasing time order.
  std::vector<PlacementChange> placement_changes;
};

/// Per-probe injection decision.
struct ProbeFault {
  bool timeout = false;
  bool dropped = false;
  /// Multiplier on the true elapsed time (storms x placement shifts).
  double elapsed_factor = 1.0;

  bool value_lost() const { return timeout || dropped; }
};

/// One scripted chaos event in labeled, detector-scorable form: what a
/// change-point detector SHOULD find in a campaign driven by this plan.
/// Derived purely from the plan's config — the stochastic per-probe
/// faults (timeouts, drops) are noise, not ground truth.
struct GroundTruthEvent {
  FaultKind kind = FaultKind::OutlierInjected;
  /// Ordinal within the kind's script (index into storms /
  /// placement_changes), so detections can be matched 1:1.
  std::size_t ordinal = 0;
  double start = 0.0;  // storm start / shift effect time
  double end = 0.0;    // storm end; == start for point events
  std::size_t vm = 0;  // PlacementShift only
  double factor = 1.0;
};

class FaultPlan {
 public:
  explicit FaultPlan(const FaultPlanConfig& config);

  /// Decide the fate of one probe of directed pair (i, j) at provider
  /// time `now`. Consumes exactly one uniform draw per call when any
  /// stochastic fault is enabled (none otherwise), so the decision
  /// stream is a pure function of the seed and the probe order.
  ProbeFault next_probe(double now, std::size_t i, std::size_t j);

  /// Apply every scripted placement change with time <= now. Called by
  /// the provider whenever its clock moves.
  void advance_to(double now);

  /// Current persistent elapsed-time multiplier of the directed pair
  /// (product of the factors of both endpoint VMs).
  double placement_factor(std::size_t i, std::size_t j) const;
  /// Current persistent multiplier of one VM (1 when never shifted).
  double vm_factor(std::size_t vm) const;

  std::uint64_t probes() const { return sequence_; }
  const FaultEventLog& log() const { return log_; }
  const FaultPlanConfig& config() const { return config_; }

  /// The scripted events in labeled form, storms first then placement
  /// changes, each in script order. The precision/recall gates in
  /// tests/detect score detector verdicts against exactly this view.
  std::vector<GroundTruthEvent> ground_truth_events() const;

 private:
  double storm_factor(double now) const;

  FaultPlanConfig config_;
  Rng rng_;
  std::uint64_t sequence_ = 0;
  std::size_t next_change_ = 0;
  std::vector<double> vm_factors_;  // grown on demand
  FaultEventLog log_;
};

}  // namespace netconst::faults
