#include "faults/fault_plan.hpp"

#include <sstream>

#include "obs/trace.hpp"
#include "support/error.hpp"

namespace netconst::faults {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::ProbeTimeout:
      return "probe_timeout";
    case FaultKind::DroppedMeasurement:
      return "dropped_measurement";
    case FaultKind::OutlierInjected:
      return "outlier_injected";
    case FaultKind::PlacementShift:
      return "placement_shift";
  }
  return "unknown";
}

void FaultEventLog::record(const FaultEvent& event) {
  ++counts_[static_cast<std::size_t>(event.kind)];
  events_.push_back(event);
}

std::uint64_t FaultEventLog::count(FaultKind kind) const {
  return counts_[static_cast<std::size_t>(kind)];
}

std::uint64_t FaultEventLog::value_losses() const {
  return count(FaultKind::ProbeTimeout) +
         count(FaultKind::DroppedMeasurement);
}

CsvTable FaultEventLog::to_csv() const {
  CsvTable table;
  table.header = {"sequence", "time", "kind", "i", "j", "value"};
  table.rows.reserve(events_.size());
  for (const FaultEvent& e : events_) {
    table.rows.push_back({std::to_string(e.sequence), format_double(e.time),
                          fault_kind_name(e.kind), std::to_string(e.i),
                          std::to_string(e.j), format_double(e.value)});
  }
  return table;
}

std::string FaultEventLog::serialize() const {
  std::ostringstream out;
  for (const FaultEvent& e : events_) {
    out << e.sequence << ',' << format_double(e.time) << ','
        << fault_kind_name(e.kind) << ',' << e.i << ',' << e.j << ','
        << format_double(e.value) << '\n';
  }
  return out.str();
}

FaultPlan::FaultPlan(const FaultPlanConfig& config)
    : config_(config), rng_(config.seed) {
  NETCONST_CHECK(config_.timeout_probability >= 0.0 &&
                     config_.drop_probability >= 0.0 &&
                     config_.timeout_probability +
                             config_.drop_probability <=
                         1.0,
                 "fault probabilities must form a sub-distribution");
  NETCONST_CHECK(config_.timeout_seconds > 0.0,
                 "timeout deadline must be positive");
  for (const OutlierStorm& storm : config_.storms) {
    NETCONST_CHECK(storm.start <= storm.end && storm.elapsed_factor > 0.0,
                   "malformed outlier storm");
  }
  for (std::size_t k = 0; k < config_.placement_changes.size(); ++k) {
    const PlacementChange& change = config_.placement_changes[k];
    NETCONST_CHECK(change.elapsed_factor > 0.0,
                   "placement shift factor must be positive");
    NETCONST_CHECK(
        k == 0 || config_.placement_changes[k - 1].time <= change.time,
        "placement changes must be time-sorted");
  }
}

void FaultPlan::advance_to(double now) {
  while (next_change_ < config_.placement_changes.size() &&
         config_.placement_changes[next_change_].time <= now) {
    const PlacementChange& change = config_.placement_changes[next_change_];
    if (vm_factors_.size() <= change.vm) {
      vm_factors_.resize(change.vm + 1, 1.0);
    }
    vm_factors_[change.vm] *= change.elapsed_factor;
    log_.record({sequence_, change.time, FaultKind::PlacementShift,
                 change.vm, 0, change.elapsed_factor});
    // A placement shift is exactly the anomaly the paper's dynamic
    // component models; snapshot the flight recorder so the spans
    // leading up to it survive for post-mortem inspection.
    obs::FlightRecorder::instance().maybe_auto_dump("placement_shift");
    ++next_change_;
  }
}

double FaultPlan::vm_factor(std::size_t vm) const {
  return vm < vm_factors_.size() ? vm_factors_[vm] : 1.0;
}

double FaultPlan::placement_factor(std::size_t i, std::size_t j) const {
  return vm_factor(i) * vm_factor(j);
}

double FaultPlan::storm_factor(double now) const {
  double factor = 1.0;
  for (const OutlierStorm& storm : config_.storms) {
    if (now >= storm.start && now < storm.end) {
      factor *= storm.elapsed_factor;
    }
  }
  return factor;
}

std::vector<GroundTruthEvent> FaultPlan::ground_truth_events() const {
  std::vector<GroundTruthEvent> truth;
  truth.reserve(config_.storms.size() + config_.placement_changes.size());
  for (std::size_t k = 0; k < config_.storms.size(); ++k) {
    const OutlierStorm& storm = config_.storms[k];
    truth.push_back({FaultKind::OutlierInjected, k, storm.start, storm.end,
                     0, storm.elapsed_factor});
  }
  for (std::size_t k = 0; k < config_.placement_changes.size(); ++k) {
    const PlacementChange& change = config_.placement_changes[k];
    truth.push_back({FaultKind::PlacementShift, k, change.time, change.time,
                     change.vm, change.elapsed_factor});
  }
  return truth;
}

ProbeFault FaultPlan::next_probe(double now, std::size_t i, std::size_t j) {
  advance_to(now);
  const std::uint64_t sequence = sequence_++;
  ProbeFault fault;
  fault.elapsed_factor = placement_factor(i, j);

  if (config_.timeout_probability > 0.0 || config_.drop_probability > 0.0) {
    const double u = rng_.uniform();
    if (u < config_.timeout_probability) {
      fault.timeout = true;
      log_.record({sequence, now, FaultKind::ProbeTimeout, i, j,
                   config_.timeout_seconds});
      return fault;
    }
    if (u < config_.timeout_probability + config_.drop_probability) {
      fault.dropped = true;
      log_.record({sequence, now, FaultKind::DroppedMeasurement, i, j, 0.0});
      return fault;
    }
  }

  const double storm = storm_factor(now);
  if (storm != 1.0) {
    fault.elapsed_factor *= storm;
    log_.record({sequence, now, FaultKind::OutlierInjected, i, j, storm});
  }
  return fault;
}

}  // namespace netconst::faults
