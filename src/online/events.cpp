#include "online/events.hpp"

#include <ostream>
#include <utility>

#include "support/error.hpp"

namespace netconst::online {

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::SnapshotIngested:
      return "snapshot_ingested";
    case EventKind::Refresh:
      return "refresh";
    case EventKind::ColdSolveFallback:
      return "cold_solve_fallback";
    case EventKind::ThresholdBreach:
      return "threshold_breach";
    case EventKind::Recalibration:
      return "recalibration";
    case EventKind::RecalibrationSuppressed:
      return "recalibration_suppressed";
    case EventKind::LevelChange:
      return "level_change";
    case EventKind::ProbeDropped:
      return "probe_dropped";
    case EventKind::StaleRowReused:
      return "stale_row_reused";
    case EventKind::ForcedRecalibration:
      return "forced_recalibration";
    case EventKind::ChangeDetected:
      return "change_detected";
  }
  return "unknown";
}

EventLog::EventLog(std::size_t capacity) : capacity_(capacity) {}

void EventLog::record(Event event) {
  const auto kind_index = static_cast<std::size_t>(event.kind);
  NETCONST_CHECK(kind_index < kEventKindCount, "unknown event kind");
  std::lock_guard<std::mutex> lock(mutex_);
  ++recorded_;
  ++counts_[kind_index];
  events_.push_back(std::move(event));
  if (capacity_ > 0 && events_.size() > capacity_) events_.pop_front();
}

std::size_t EventLog::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::uint64_t EventLog::recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return recorded_;
}

std::uint64_t EventLog::count(EventKind kind) const {
  const auto kind_index = static_cast<std::size_t>(kind);
  NETCONST_CHECK(kind_index < kEventKindCount, "unknown event kind");
  std::lock_guard<std::mutex> lock(mutex_);
  return counts_[kind_index];
}

std::vector<Event> EventLog::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {events_.begin(), events_.end()};
}

CsvTable EventLog::to_csv() const {
  CsvTable table;
  table.header = {"time", "tenant", "kind", "value", "detail"};
  for (const Event& event : snapshot()) {
    table.rows.push_back({format_double(event.time), event.tenant,
                          event_kind_name(event.kind),
                          format_double(event.value), event.detail});
  }
  return table;
}

void EventLog::write_json(std::ostream& out) const {
  out << "{\"events\":[";
  bool first = true;
  for (const Event& event : snapshot()) {
    if (!first) out << ',';
    first = false;
    out << "{\"time\":" << format_double(event.time) << ",\"tenant\":\""
        << event.tenant << "\",\"kind\":\"" << event_kind_name(event.kind)
        << "\",\"value\":" << format_double(event.value) << ",\"detail\":\""
        << event.detail << "\"}";
  }
  out << "]}";
}

}  // namespace netconst::online
