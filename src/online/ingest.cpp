#include "online/ingest.hpp"

#include <utility>

#include "support/error.hpp"

namespace netconst::online {

SnapshotIngestor::SnapshotIngestor(cloud::NetworkProvider& provider,
                                   SlidingWindow& window,
                                   const IngestOptions& options)
    : provider_(provider), window_(window), options_(options) {
  NETCONST_CHECK(window.empty() ||
                     window.cluster_size() == provider.cluster_size(),
                 "window cluster size does not match the provider");
  NETCONST_CHECK(options_.max_missing_fraction >= 0.0,
                 "missing fraction must be >= 0");
}

IngestReport SnapshotIngestor::ingest_calibrated() {
  cloud::CalibrationResult result =
      cloud::calibrate_snapshot(provider_, options_.calibration);

  IngestReport report;
  report.elapsed_seconds = result.elapsed_seconds;
  report.missing_links = result.missing_links;
  report.failed_measurements = result.failed_measurements;
  report.retries = result.retries;
  failed_measurements_ += result.failed_measurements;
  retries_ += result.retries;
  missing_links_ += result.missing_links;

  const std::size_t n = provider_.cluster_size();
  const auto links = static_cast<double>(n * (n - 1));
  const double missing_fraction =
      static_cast<double>(result.missing_links) / links;
  if (missing_fraction > options_.max_missing_fraction && has_last_good_) {
    report.stale_reused = true;
    ++stale_rows_reused_;
    window_.push(provider_.now(), last_good_);
  } else {
    window_.push(provider_.now(), result.matrix);
    // Any accepted snapshot is "good enough" to stand in for a later
    // degraded one — it passed the same threshold.
    last_good_ = std::move(result.matrix);
    has_last_good_ = true;
  }
  ++ingested_;
  calibration_seconds_ += result.elapsed_seconds;
  return report;
}

void SnapshotIngestor::ingest_external(
    double time, const netmodel::PerformanceMatrix& snapshot) {
  NETCONST_CHECK(snapshot.size() == provider_.cluster_size(),
                 "external snapshot cluster size mismatch");
  window_.push(time, snapshot);
  ++ingested_;
}

double SnapshotIngestor::fill(double interval) {
  NETCONST_CHECK(interval >= 0.0, "fill interval must be >= 0");
  const double start = provider_.now();
  bool first = window_.empty();
  while (!window_.full()) {
    if (!first) provider_.advance(interval);
    first = false;
    ingest_calibrated();
  }
  return provider_.now() - start;
}

}  // namespace netconst::online
