#include "online/ingest.hpp"

#include "support/error.hpp"

namespace netconst::online {

SnapshotIngestor::SnapshotIngestor(cloud::NetworkProvider& provider,
                                   SlidingWindow& window,
                                   const IngestOptions& options)
    : provider_(provider), window_(window), options_(options) {
  NETCONST_CHECK(window.empty() ||
                     window.cluster_size() == provider.cluster_size(),
                 "window cluster size does not match the provider");
}

double SnapshotIngestor::ingest_calibrated() {
  const cloud::CalibrationResult result =
      cloud::calibrate_snapshot(provider_, options_.calibration);
  window_.push(provider_.now(), result.matrix);
  ++ingested_;
  calibration_seconds_ += result.elapsed_seconds;
  return result.elapsed_seconds;
}

void SnapshotIngestor::ingest_external(
    double time, const netmodel::PerformanceMatrix& snapshot) {
  NETCONST_CHECK(snapshot.size() == provider_.cluster_size(),
                 "external snapshot cluster size mismatch");
  window_.push(time, snapshot);
  ++ingested_;
}

double SnapshotIngestor::fill(double interval) {
  NETCONST_CHECK(interval >= 0.0, "fill interval must be >= 0");
  const double start = provider_.now();
  bool first = window_.empty();
  while (!window_.full()) {
    if (!first) provider_.advance(interval);
    first = false;
    ingest_calibrated();
  }
  return provider_.now() - start;
}

}  // namespace netconst::online
