#include "online/window.hpp"

#include <algorithm>
#include <utility>

#include "support/error.hpp"

namespace netconst::online {

SlidingWindow::SlidingWindow(std::size_t capacity) : capacity_(capacity) {
  NETCONST_CHECK(capacity >= 2,
                 "window capacity must be >= 2 (RPCA needs two rows)");
}

std::size_t SlidingWindow::cluster_size() const {
  return snapshots_.empty() ? 0 : snapshots_.front().size();
}

void SlidingWindow::push(double time,
                         const netmodel::PerformanceMatrix& snapshot) {
  NETCONST_CHECK(snapshot.size() > 0, "empty snapshot");
  if (!times_.empty()) {
    NETCONST_CHECK(snapshot.size() == snapshots_.front().size(),
                   "snapshot cluster size changed");
    NETCONST_CHECK(time >= newest_time(),
                   "snapshots must be pushed in time order");
  }
  const std::size_t n2 = snapshot.size() * snapshot.size();

  std::size_t slot;
  if (!full()) {
    // Growth phase: extend the buffers by one row (a straight copy of
    // the flat storage, not a re-flatten of the older snapshots).
    slot = times_.size();
    times_.push_back(time);
    snapshots_.push_back(snapshot);
    linalg::Matrix lat(times_.size(), n2);
    linalg::Matrix bw(times_.size(), n2);
    if (slot > 0) {
      std::copy(latency_.data().begin(), latency_.data().end(),
                lat.data().begin());
      std::copy(bandwidth_.data().begin(), bandwidth_.data().end(),
                bw.data().begin());
    }
    latency_ = std::move(lat);
    bandwidth_ = std::move(bw);
  } else {
    // Steady state: overwrite the oldest slot in place.
    slot = head_;
    head_ = (head_ + 1) % capacity_;
    times_[slot] = time;
    snapshots_[slot] = snapshot;
  }
  netmodel::TemporalPerformance::flatten_snapshot(
      snapshot, netmodel::Field::Latency, latency_.row(slot));
  netmodel::TemporalPerformance::flatten_snapshot(
      snapshot, netmodel::Field::Bandwidth, bandwidth_.row(slot));
  ++pushes_;
}

void SlidingWindow::clear() {
  times_.clear();
  snapshots_.clear();
  latency_ = linalg::Matrix();
  bandwidth_ = linalg::Matrix();
  head_ = 0;
}

double SlidingWindow::oldest_time() const {
  NETCONST_CHECK(!empty(), "oldest_time of an empty window");
  return times_[slot_of_age(0)];
}

double SlidingWindow::newest_time() const {
  NETCONST_CHECK(!empty(), "newest_time of an empty window");
  return times_[slot_of_age(times_.size() - 1)];
}

const linalg::Matrix& SlidingWindow::latency_data() const {
  NETCONST_CHECK(!empty(), "latency_data of an empty window");
  return latency_;
}

const linalg::Matrix& SlidingWindow::bandwidth_data() const {
  NETCONST_CHECK(!empty(), "bandwidth_data of an empty window");
  return bandwidth_;
}

std::size_t SlidingWindow::slot_of_age(std::size_t k) const {
  NETCONST_CHECK(k < times_.size(), "age out of range");
  if (!full()) return k;  // growth phase stores in time order
  return (head_ + k) % capacity_;
}

double SlidingWindow::time_in_slot(std::size_t slot) const {
  NETCONST_CHECK(slot < times_.size(), "slot out of range");
  return times_[slot];
}

const netmodel::PerformanceMatrix& SlidingWindow::snapshot_in_slot(
    std::size_t slot) const {
  NETCONST_CHECK(slot < snapshots_.size(), "slot out of range");
  return snapshots_[slot];
}

netmodel::TemporalPerformance SlidingWindow::to_series() const {
  netmodel::TemporalPerformance series;
  for (std::size_t k = 0; k < times_.size(); ++k) {
    const std::size_t slot = slot_of_age(k);
    series.append(times_[slot], snapshots_[slot]);
  }
  return series;
}

}  // namespace netconst::online
