#include "online/refresher.hpp"

#include <utility>

#include "support/error.hpp"
#include "support/stopwatch.hpp"

namespace netconst::online {

WindowRefresher::WindowRefresher(const RefresherOptions& options)
    : options_(options) {
  NETCONST_CHECK(options_.divergence_residual >= 0.0,
                 "divergence residual must be >= 0");
}

rpca::Result WindowRefresher::solve_layer(const linalg::Matrix& data,
                                          rpca::WarmStart& seed,
                                          LayerRefresh& info) const {
  const Stopwatch clock;
  rpca::Options opts = options_.finder.rpca;
  const bool use_seed =
      options_.warm_start && !seed.empty() &&
      seed.low_rank.rows() == data.rows() &&
      seed.low_rank.cols() == data.cols();
  if (use_seed) opts.warm_start = std::move(seed);
  info.warm_attempted = use_seed;

  rpca::Result result = rpca::solve(data, options_.finder.solver, opts);
  info.seed_ignored = result.warm_start_ignored;
  info.warm_used = result.warm_started;

  if (result.warm_started &&
      ((options_.fallback_on_nonconvergence && !result.converged) ||
       result.solver_residual > options_.divergence_residual ||
       (result.polished && !result.polish_converged))) {
    // The seed led the solve astray (window contents changed too much,
    // or the iterate stalled): discard and solve from scratch.
    info.cold_fallback = true;
    info.warm_used = false;
    result = rpca::solve(data, options_.finder.solver, options_.finder.rpca);
  }
  info.iterations = result.iterations;
  info.residual = result.solver_residual;
  info.solve_seconds = clock.seconds();
  return result;
}

RefreshReport WindowRefresher::refresh(const SlidingWindow& window) {
  NETCONST_CHECK(window.size() >= 2,
                 "refresh needs at least two snapshots in the window");
  const Stopwatch clock;
  const linalg::Matrix& lat_data = window.latency_data();
  const linalg::Matrix& bw_data = window.bandwidth_data();

  RefreshReport report;
  const rpca::Result lat =
      solve_layer(lat_data, latency_seed_, report.latency);
  const rpca::Result bw =
      solve_layer(bw_data, bandwidth_seed_, report.bandwidth);

  report.component = core::assemble_component(
      lat_data, lat, bw_data, bw, window.cluster_size(),
      options_.finder.l0_rel_tolerance);

  // The accepted factors seed the next refresh.
  latency_seed_ = {lat.low_rank, lat.sparse, lat.final_mu, lat.mu_floor};
  bandwidth_seed_ = {bw.low_rank, bw.sparse, bw.final_mu, bw.mu_floor};

  report.total_seconds = clock.seconds();
  return report;
}

void WindowRefresher::reset() {
  latency_seed_ = rpca::WarmStart{};
  bandwidth_seed_ = rpca::WarmStart{};
}

}  // namespace netconst::online
