#include "online/refresher.hpp"

#include <utility>

#include "linalg/norms.hpp"
#include "obs/trace.hpp"
#include "rpca/masked.hpp"
#include "support/error.hpp"
#include "support/stopwatch.hpp"

namespace netconst::online {
namespace {

/// Empty a WarmStart without releasing its matrix capacity (resize(0, 0)
/// keeps the buffers; assignment of a fresh WarmStart would free them).
void clear_seed(rpca::WarmStart& seed) {
  seed.low_rank.resize(0, 0);
  seed.sparse.resize(0, 0);
  seed.mu = 0.0;
  seed.mu_floor = 0.0;
}

}  // namespace

WindowRefresher::WindowRefresher(const RefresherOptions& options)
    : options_(options),
      probe_(options.convergence_trace_capacity),
      solve_opts_(options.finder.rpca) {
  NETCONST_CHECK(options_.divergence_residual >= 0.0,
                 "divergence residual must be >= 0");
}

void WindowRefresher::solve_layer(const linalg::Matrix& data,
                                  rpca::WarmStart& seed, rpca::Result& result,
                                  LayerRefresh& info) {
  const Stopwatch clock;
  if (linalg::frobenius_norm(data) == 0.0) {
    // A fully-unobserved window imputes to all zeros when no constant is
    // known yet (fresh bootstrap under total probe loss). The solvers
    // contract-check against a zero matrix, and its decomposition is
    // known anyway: D = E = 0. Synthesize it so a degraded service never
    // throws; downstream the zero constant is floored to a valid (if
    // uninformative) PerformanceMatrix.
    result = rpca::Result{};
    result.low_rank.resize(data.rows(), data.cols());
    result.sparse.resize(data.rows(), data.cols());
    result.low_rank.fill(0.0);
    result.sparse.fill(0.0);
    result.converged = true;
    clear_seed(seed);
    info.warm_attempted = false;
    info.warm_used = false;
    info.solve_seconds = clock.seconds();
    return;
  }
  const bool use_seed =
      options_.warm_start && !seed.empty() &&
      seed.low_rank.rows() == data.rows() &&
      seed.low_rank.cols() == data.cols();
  // Loan the seed's buffers to the solver: a copy into Options would
  // duplicate both factor matrices on every refresh.
  if (use_seed) {
    solve_opts_.warm_start = std::move(seed);
  } else {
    clear_seed(solve_opts_.warm_start);
  }
  info.warm_attempted = use_seed;

  // Reset the probe before every attempt so the retained trace always
  // belongs to the solve whose result is accepted.
  if (options_.collect_convergence) {
    probe_.reset();
    solve_opts_.probe = &probe_;
  } else {
    solve_opts_.probe = nullptr;
  }

  rpca::solve(data, options_.finder.solver, solve_opts_, workspace_, result);
  if (use_seed) {
    seed = std::move(solve_opts_.warm_start);
    clear_seed(solve_opts_.warm_start);
  }
  info.seed_ignored = result.warm_start_ignored;
  info.warm_used = result.warm_started;

  if (result.warm_started &&
      ((options_.fallback_on_nonconvergence && !result.converged) ||
       result.solver_residual > options_.divergence_residual ||
       (result.polished && !result.polish_converged))) {
    // The seed led the solve astray (window contents changed too much,
    // or the iterate stalled): discard and solve from scratch.
    info.cold_fallback = true;
    info.warm_used = false;
    if (options_.collect_convergence) probe_.reset();
    rpca::solve(data, options_.finder.solver, solve_opts_, workspace_,
                result);
  }
  if (options_.collect_convergence) info.trace = probe_.trace();
  info.iterations = result.iterations;
  info.residual = result.solver_residual;
  info.solve_seconds = clock.seconds();
}

const linalg::Matrix& WindowRefresher::repair_layer(
    const linalg::Matrix& data, const rpca::WarmStart& seed,
    linalg::Matrix& repaired, LayerRefresh& info) {
  if (rpca::count_missing(data) == 0) return data;

  repaired = data;  // copy-assignment reuses the scratch capacity
  const linalg::Matrix* constant = nullptr;
  if (!seed.empty() && seed.low_rank.cols() == data.cols()) {
    // The previous refresh's low-rank factor IS the current rank-1
    // constant (its rows agree up to numerical noise); its column means
    // are the model's belief about each link.
    constant_scratch_.resize(1, data.cols());
    for (std::size_t j = 0; j < data.cols(); ++j) {
      double sum = 0.0;
      for (std::size_t i = 0; i < seed.low_rank.rows(); ++i) {
        sum += seed.low_rank(i, j);
      }
      constant_scratch_(0, j) =
          sum / static_cast<double>(seed.low_rank.rows());
    }
    constant = &constant_scratch_;
  }
  const rpca::ImputeStats stats = rpca::impute_missing(repaired, constant);
  info.missing_entries = stats.missing;
  info.imputed_from_constant = stats.from_constant;
  info.imputed_from_column = stats.from_column;
  info.imputed_from_global = stats.from_global;
  return repaired;
}

RefreshReport WindowRefresher::refresh(const SlidingWindow& window) {
  NETCONST_CHECK(window.size() >= 2,
                 "refresh needs at least two snapshots in the window");
  const Stopwatch clock;
  obs::Span refresh_span("online.refresh");

  RefreshReport report;
  // Masked front-end: holes are repaired before the solver ever sees
  // the data, so a degraded window costs one extra copy per dirty
  // layer and nothing when fully observed.
  const linalg::Matrix& lat_data =
      repair_layer(window.latency_data(), latency_seed_, latency_repaired_,
                   report.latency);
  const linalg::Matrix& bw_data =
      repair_layer(window.bandwidth_data(), bandwidth_seed_,
                   bandwidth_repaired_, report.bandwidth);

  {
    obs::Span layer_span("online.refresh.latency");
    solve_layer(lat_data, latency_seed_, latency_result_, report.latency);
    layer_span.set_value(report.latency.iterations);
  }
  {
    obs::Span layer_span("online.refresh.bandwidth");
    solve_layer(bw_data, bandwidth_seed_, bandwidth_result_,
                report.bandwidth);
    layer_span.set_value(report.bandwidth.iterations);
  }

  report.component = core::assemble_component(
      lat_data, latency_result_, bw_data, bandwidth_result_,
      window.cluster_size(), options_.finder.l0_rel_tolerance);

  // The accepted factors seed the next refresh; copy-assignment reuses
  // the seeds' existing capacity (zero allocations in steady state).
  latency_seed_.low_rank = latency_result_.low_rank;
  latency_seed_.sparse = latency_result_.sparse;
  latency_seed_.mu = latency_result_.final_mu;
  latency_seed_.mu_floor = latency_result_.mu_floor;
  bandwidth_seed_.low_rank = bandwidth_result_.low_rank;
  bandwidth_seed_.sparse = bandwidth_result_.sparse;
  bandwidth_seed_.mu = bandwidth_result_.final_mu;
  bandwidth_seed_.mu_floor = bandwidth_result_.mu_floor;

  report.total_seconds = clock.seconds();
  return report;
}

void WindowRefresher::reset() {
  latency_seed_ = rpca::WarmStart{};
  bandwidth_seed_ = rpca::WarmStart{};
}

}  // namespace netconst::online
