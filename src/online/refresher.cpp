#include "online/refresher.hpp"

#include <utility>

#include "detect/detector.hpp"
#include "linalg/norms.hpp"
#include "obs/trace.hpp"
#include "rpca/masked.hpp"
#include "support/error.hpp"
#include "support/stopwatch.hpp"

namespace netconst::online {
namespace {

/// Empty a WarmStart without releasing its matrix capacity (resize(0, 0)
/// keeps the buffers; assignment of a fresh WarmStart would free them).
void clear_seed(rpca::WarmStart& seed) {
  seed.low_rank.resize(0, 0);
  seed.sparse.resize(0, 0);
  seed.mu = 0.0;
  seed.mu_floor = 0.0;
}

}  // namespace

WindowRefresher::WindowRefresher(const RefresherOptions& options)
    : options_(options),
      latency_tracker_(options.incremental_options),
      bandwidth_tracker_(options.incremental_options),
      probe_(options.convergence_trace_capacity),
      solve_opts_(options.finder.rpca) {
  NETCONST_CHECK(options_.divergence_residual >= 0.0,
                 "divergence residual must be >= 0");
}

void WindowRefresher::solve_layer(const linalg::Matrix& data,
                                  rpca::WarmStart& seed, rpca::Result& result,
                                  LayerRefresh& info) {
  const Stopwatch clock;
  const std::size_t accepts_before = workspace_.stats.randomized_accepts;
  if (linalg::frobenius_norm(data) == 0.0) {
    // A fully-unobserved window imputes to all zeros when no constant is
    // known yet (fresh bootstrap under total probe loss). The solvers
    // contract-check against a zero matrix, and its decomposition is
    // known anyway: D = E = 0. Synthesize it so a degraded service never
    // throws; downstream the zero constant is floored to a valid (if
    // uninformative) PerformanceMatrix.
    result = rpca::Result{};
    result.low_rank.resize(data.rows(), data.cols());
    result.sparse.resize(data.rows(), data.cols());
    result.low_rank.fill(0.0);
    result.sparse.fill(0.0);
    result.converged = true;
    clear_seed(seed);
    info.warm_attempted = false;
    info.warm_used = false;
    info.solve_seconds = clock.seconds();
    return;
  }
  const bool use_seed =
      options_.warm_start && !seed.empty() &&
      seed.low_rank.rows() == data.rows() &&
      seed.low_rank.cols() == data.cols();
  // Loan the seed's buffers to the solver: a copy into Options would
  // duplicate both factor matrices on every refresh.
  if (use_seed) {
    solve_opts_.warm_start = std::move(seed);
  } else {
    clear_seed(solve_opts_.warm_start);
  }
  info.warm_attempted = use_seed;

  // Reset the probe before every attempt so the retained trace always
  // belongs to the solve whose result is accepted.
  if (options_.collect_convergence) {
    probe_.reset();
    solve_opts_.probe = &probe_;
  } else {
    solve_opts_.probe = nullptr;
  }

  rpca::solve(data, options_.finder.solver, solve_opts_, workspace_, result);
  if (use_seed) {
    seed = std::move(solve_opts_.warm_start);
    clear_seed(solve_opts_.warm_start);
  }
  info.seed_ignored = result.warm_start_ignored;
  info.warm_used = result.warm_started;

  if (result.warm_started &&
      ((options_.fallback_on_nonconvergence && !result.converged) ||
       result.solver_residual > options_.divergence_residual ||
       (result.polished && !result.polish_converged))) {
    // The seed led the solve astray (window contents changed too much,
    // or the iterate stalled): discard and solve from scratch.
    info.cold_fallback = true;
    info.warm_used = false;
    if (options_.collect_convergence) probe_.reset();
    rpca::solve(data, options_.finder.solver, solve_opts_, workspace_,
                result);
  }
  if (options_.collect_convergence) info.trace = probe_.trace();
  info.iterations = result.iterations;
  info.residual = result.solver_residual;
  info.randomized_steps =
      workspace_.stats.randomized_accepts - accepts_before;
  info.solve_seconds = clock.seconds();
}

const linalg::Matrix& WindowRefresher::refresh_layer(
    const linalg::Matrix& raw, bool slide_by_one, std::size_t slot,
    rpca::WarmStart& seed, rpca::IncrementalTracker& tracker,
    rpca::Result& result, linalg::Matrix& repaired, LayerRefresh& info) {
  const bool trackable = options_.incremental && tracker.ready() &&
                         tracker.sparse().same_shape(raw);
  if (slide_by_one && trackable) {
    if (rpca::count_missing(raw) == 0) {
      const Stopwatch clock;
      const rpca::DriftStats drift = tracker.update(raw, slot);
      info.drift = drift.instant;
      if (!drift.breach) {
        // The frozen subspace still explains the replaced row: the
        // tracked factors ARE this refresh's decomposition. Result
        // buffers stay untouched; assembly reads the tracker.
        info.incremental_used = true;
        info.solve_seconds = clock.seconds();
        return raw;
      }
      info.drift_fallback = true;
    } else {
      // The imputation front-end must not write through the tracker's
      // cached row stats; holes route this refresh to the full path.
      info.incremental_masked = true;
    }
  }
  // Full path. A tracker that advanced past its anchor holds fresher
  // factors than the last full solve — seed from it instead.
  if (trackable && tracker.updates() > 0) tracker.seed_warm_start(seed);
  const linalg::Matrix& data = repair_layer(raw, seed, repaired, info);
  solve_layer(data, seed, result, info);
  // The accepted factors seed the next refresh; copy-assignment reuses
  // the seeds' existing capacity (zero allocations in steady state).
  seed.low_rank = result.low_rank;
  seed.sparse = result.sparse;
  seed.mu = result.final_mu;
  seed.mu_floor = result.mu_floor;
  if (options_.incremental) {
    tracker.anchor(data, result, options_.finder.l0_rel_tolerance);
    info.anchored = tracker.ready();
  }
  return data;
}

core::ConstantComponent WindowRefresher::assemble_mixed(
    const linalg::Matrix& lat_data, const linalg::Matrix& bw_data,
    std::size_t cluster_size, const RefreshReport& report) {
  core::ConstantComponent component;
  component.solve_seconds =
      report.latency.solve_seconds + report.bandwidth.solve_seconds;
  // The tracker's Norm(N_E) counts at the cutoff frozen at its anchor
  // (see IncrementalTracker::error_norm); a full-path layer counts at
  // the current window's cutoff exactly like assemble_component.
  if (report.latency.incremental_used) {
    component.latency_rank = latency_tracker_.rank();
    component.latency_error_norm = latency_tracker_.error_norm();
    latency_tracker_.constant_row_into(constant_scratch_);
  } else {
    component.latency_rank = latency_result_.rank;
    component.latency_error_norm = rpca::relative_l0(
        latency_result_.sparse, lat_data, options_.finder.l0_rel_tolerance);
    constant_scratch_ = core::constant_row(latency_result_.low_rank,
                                           cluster_size);
  }
  if (report.bandwidth.incremental_used) {
    component.bandwidth_rank = bandwidth_tracker_.rank();
    component.error_norm = bandwidth_tracker_.error_norm();
    bandwidth_tracker_.constant_row_into(bandwidth_constant_scratch_);
  } else {
    component.bandwidth_rank = bandwidth_result_.rank;
    component.error_norm = rpca::relative_l0(
        bandwidth_result_.sparse, bw_data, options_.finder.l0_rel_tolerance);
    bandwidth_constant_scratch_ =
        core::constant_row(bandwidth_result_.low_rank, cluster_size);
  }
  component.constant = netmodel::matrices_to_performance(
      constant_scratch_, bandwidth_constant_scratch_);
  return component;
}

const linalg::Matrix& WindowRefresher::repair_layer(
    const linalg::Matrix& data, const rpca::WarmStart& seed,
    linalg::Matrix& repaired, LayerRefresh& info) {
  if (rpca::count_missing(data) == 0) return data;

  repaired = data;  // copy-assignment reuses the scratch capacity
  const linalg::Matrix* constant = nullptr;
  if (!seed.empty() && seed.low_rank.cols() == data.cols()) {
    // The previous refresh's low-rank factor IS the current rank-1
    // constant (its rows agree up to numerical noise); its column means
    // are the model's belief about each link.
    constant_scratch_.resize(1, data.cols());
    for (std::size_t j = 0; j < data.cols(); ++j) {
      double sum = 0.0;
      for (std::size_t i = 0; i < seed.low_rank.rows(); ++i) {
        sum += seed.low_rank(i, j);
      }
      constant_scratch_(0, j) =
          sum / static_cast<double>(seed.low_rank.rows());
    }
    constant = &constant_scratch_;
  }
  const rpca::ImputeStats stats = rpca::impute_missing(repaired, constant);
  info.missing_entries = stats.missing;
  info.imputed_from_constant = stats.from_constant;
  info.imputed_from_column = stats.from_column;
  info.imputed_from_global = stats.from_global;
  return repaired;
}

RefreshReport WindowRefresher::refresh(const SlidingWindow& window) {
  NETCONST_CHECK(window.size() >= 2,
                 "refresh needs at least two snapshots in the window");
  const Stopwatch clock;
  obs::Span refresh_span("online.refresh");

  RefreshReport report;
  // "Slid by exactly one snapshot" is the incremental hot path's
  // precondition: one replaced ring slot, everything else untouched.
  const bool slide_by_one = options_.incremental && window.full() &&
                            window.pushes() == last_pushes_ + 1;
  // The push that slid the window reused the evicted snapshot's ring
  // slot, so the one changed row is the NEWEST snapshot's slot.
  const std::size_t slot =
      window.full() ? window.slot_of_age(window.size() - 1) : 0;
  last_pushes_ = window.pushes();

  // Each layer routes independently: row update, warm full solve, or
  // masked repair + solve (see refresh_layer). The masked front-end
  // runs inside the layer so a clean incremental refresh never copies.
  const linalg::Matrix* lat_data = nullptr;
  const linalg::Matrix* bw_data = nullptr;
  {
    obs::Span layer_span("online.refresh.latency");
    lat_data = &refresh_layer(window.latency_data(), slide_by_one, slot,
                              latency_seed_, latency_tracker_,
                              latency_result_, latency_repaired_,
                              report.latency);
    layer_span.set_value(report.latency.iterations);
  }
  {
    obs::Span layer_span("online.refresh.bandwidth");
    bw_data = &refresh_layer(window.bandwidth_data(), slide_by_one, slot,
                             bandwidth_seed_, bandwidth_tracker_,
                             bandwidth_result_, bandwidth_repaired_,
                             report.bandwidth);
    layer_span.set_value(report.bandwidth.iterations);
  }

  if (options_.collect_support_stats) {
    // The accepted sparse factors live in the Result buffers (full
    // path) or the tracker (row update); either way the cutoff is the
    // window's own, exactly as rpca::relative_l0 derives it.
    const auto layer_stats = [&](const LayerRefresh& info,
                                 const rpca::IncrementalTracker& tracker,
                                 const rpca::Result& result,
                                 const linalg::Matrix& data) {
      const linalg::Matrix& sparse =
          info.incremental_used ? tracker.sparse() : result.sparse;
      const double cutoff =
          options_.finder.l0_rel_tolerance * linalg::max_abs(data);
      return detect::support_stats(sparse, window.cluster_size(), cutoff);
    };
    const detect::SupportStats lat_stats = layer_stats(
        report.latency, latency_tracker_, latency_result_, *lat_data);
    report.latency.support_fraction = lat_stats.fraction;
    report.latency.support_concentration = lat_stats.concentration;
    report.latency.support_vm = lat_stats.vm;
    const detect::SupportStats bw_stats = layer_stats(
        report.bandwidth, bandwidth_tracker_, bandwidth_result_, *bw_data);
    report.bandwidth.support_fraction = bw_stats.fraction;
    report.bandwidth.support_concentration = bw_stats.concentration;
    report.bandwidth.support_vm = bw_stats.vm;
  }

  if (report.latency.incremental_used || report.bandwidth.incremental_used) {
    report.component = assemble_mixed(*lat_data, *bw_data,
                                      window.cluster_size(), report);
  } else {
    report.component = core::assemble_component(
        *lat_data, latency_result_, *bw_data, bandwidth_result_,
        window.cluster_size(), options_.finder.l0_rel_tolerance);
  }

  report.total_seconds = clock.seconds();
  return report;
}

void WindowRefresher::reset() {
  latency_seed_ = rpca::WarmStart{};
  bandwidth_seed_ = rpca::WarmStart{};
  latency_tracker_.reset();
  bandwidth_tracker_.reset();
  last_pushes_ = 0;
}

}  // namespace netconst::online
