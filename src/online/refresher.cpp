#include "online/refresher.hpp"

#include <utility>

#include "support/error.hpp"
#include "support/stopwatch.hpp"

namespace netconst::online {
namespace {

/// Empty a WarmStart without releasing its matrix capacity (resize(0, 0)
/// keeps the buffers; assignment of a fresh WarmStart would free them).
void clear_seed(rpca::WarmStart& seed) {
  seed.low_rank.resize(0, 0);
  seed.sparse.resize(0, 0);
  seed.mu = 0.0;
  seed.mu_floor = 0.0;
}

}  // namespace

WindowRefresher::WindowRefresher(const RefresherOptions& options)
    : options_(options), solve_opts_(options.finder.rpca) {
  NETCONST_CHECK(options_.divergence_residual >= 0.0,
                 "divergence residual must be >= 0");
}

void WindowRefresher::solve_layer(const linalg::Matrix& data,
                                  rpca::WarmStart& seed, rpca::Result& result,
                                  LayerRefresh& info) {
  const Stopwatch clock;
  const bool use_seed =
      options_.warm_start && !seed.empty() &&
      seed.low_rank.rows() == data.rows() &&
      seed.low_rank.cols() == data.cols();
  // Loan the seed's buffers to the solver: a copy into Options would
  // duplicate both factor matrices on every refresh.
  if (use_seed) {
    solve_opts_.warm_start = std::move(seed);
  } else {
    clear_seed(solve_opts_.warm_start);
  }
  info.warm_attempted = use_seed;

  rpca::solve(data, options_.finder.solver, solve_opts_, workspace_, result);
  if (use_seed) {
    seed = std::move(solve_opts_.warm_start);
    clear_seed(solve_opts_.warm_start);
  }
  info.seed_ignored = result.warm_start_ignored;
  info.warm_used = result.warm_started;

  if (result.warm_started &&
      ((options_.fallback_on_nonconvergence && !result.converged) ||
       result.solver_residual > options_.divergence_residual ||
       (result.polished && !result.polish_converged))) {
    // The seed led the solve astray (window contents changed too much,
    // or the iterate stalled): discard and solve from scratch.
    info.cold_fallback = true;
    info.warm_used = false;
    rpca::solve(data, options_.finder.solver, solve_opts_, workspace_,
                result);
  }
  info.iterations = result.iterations;
  info.residual = result.solver_residual;
  info.solve_seconds = clock.seconds();
}

RefreshReport WindowRefresher::refresh(const SlidingWindow& window) {
  NETCONST_CHECK(window.size() >= 2,
                 "refresh needs at least two snapshots in the window");
  const Stopwatch clock;
  const linalg::Matrix& lat_data = window.latency_data();
  const linalg::Matrix& bw_data = window.bandwidth_data();

  RefreshReport report;
  solve_layer(lat_data, latency_seed_, latency_result_, report.latency);
  solve_layer(bw_data, bandwidth_seed_, bandwidth_result_, report.bandwidth);

  report.component = core::assemble_component(
      lat_data, latency_result_, bw_data, bandwidth_result_,
      window.cluster_size(), options_.finder.l0_rel_tolerance);

  // The accepted factors seed the next refresh; copy-assignment reuses
  // the seeds' existing capacity (zero allocations in steady state).
  latency_seed_.low_rank = latency_result_.low_rank;
  latency_seed_.sparse = latency_result_.sparse;
  latency_seed_.mu = latency_result_.final_mu;
  latency_seed_.mu_floor = latency_result_.mu_floor;
  bandwidth_seed_.low_rank = bandwidth_result_.low_rank;
  bandwidth_seed_.sparse = bandwidth_result_.sparse;
  bandwidth_seed_.mu = bandwidth_result_.final_mu;
  bandwidth_seed_.mu_floor = bandwidth_result_.mu_floor;

  report.total_seconds = clock.seconds();
  return report;
}

void WindowRefresher::reset() {
  latency_seed_ = rpca::WarmStart{};
  bandwidth_seed_ = rpca::WarmStart{};
}

}  // namespace netconst::online
