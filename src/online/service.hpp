// ConstantFinderService — the paper's model-maintenance loop as a
// persistent, multi-tenant engine.
//
// Each tenant is one virtual cluster (its own NetworkProvider) with its
// own sliding window, warm-started refresher and adaptive scheduler.
// run() drives K tenants concurrently with a deadline-aware batch
// scheduler: a small set of driver tasks repeatedly claims the tenant
// with the largest estimated remaining work (EWMA cost per step times
// steps left) and advances it one quantum, so a straggling tenant
// cannot serialize the batch tail. By default the drivers run on
// ThreadPool::global() — the same workers the linalg kernels fan out
// on — which the multi-region scheduler multiplexes between tenant
// drivers and solver regions without oversubscribing the machine.
//
// Tenants never share mutable state except the metrics registry and
// the event log, both of which are thread-safe, and a tenant is owned
// by exactly one driver at a time. A tenant's trajectory is therefore
// fully deterministic given its seed and provider, independent of the
// thread count, the quantum size, and the claim order.
//
// One service step per tenant = one Algorithm 1 cycle:
//   run an operation against the constant component, compare measured
//   vs expected time, and when the scheduler fires — on a threshold
//   breach or an (advisor-scaled) interval — slide the window by one
//   fresh calibration and warm-refresh the decomposition.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "cloud/provider.hpp"
#include "core/constant_finder.hpp"
#include "detect/detector.hpp"
#include "obs/convergence.hpp"
#include "online/events.hpp"
#include "online/ingest.hpp"
#include "online/metrics.hpp"
#include "online/refresher.hpp"
#include "online/scheduler.hpp"
#include "online/window.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace netconst::online {

struct TenantConfig {
  std::string name;
  /// Non-owning; must outlive the service. One provider per tenant —
  /// providers are not thread-safe and are never shared.
  cloud::NetworkProvider* provider = nullptr;
  /// TP-matrix window depth (the paper's "time step" parameter).
  std::size_t window_capacity = 10;
  /// Spacing between snapshots while bootstrapping the window, seconds.
  double snapshot_interval = 600.0;
  IngestOptions ingest;
  RefresherOptions refresher;
  SchedulerOptions scheduler;
  /// The synthetic operation stream: one point-to-point transfer of
  /// `operation_bytes` between a random pair every `operation_gap`
  /// provider seconds.
  std::uint64_t operation_bytes = 8ull * 1024 * 1024;
  double operation_gap = 300.0;
  std::uint64_t seed = 1;
  /// A lost operation probe (NaN from the provider: timeout or dropped
  /// measurement) yields no error signal, so a run of them leaves the
  /// scheduler blind. After this many CONSECUTIVE lost probes the
  /// service forces a maintenance cycle (TriggerReason::ForcedDegraded)
  /// rather than trusting a constant it can no longer check. 0 disables.
  std::size_t forced_recalibration_after = 8;
  /// Online change-point detection over the refresh telemetry
  /// (src/detect). When enabled the service feeds every maintenance
  /// refresh's signals — Norm(N_E), solver residual, drift statistic,
  /// sparse-support geometry and the constant's per-pair transfer
  /// times — to a per-tenant ChangePointDetector; verdicts land in the
  /// event log (EventKind::ChangeDetected), the detect.* metrics, and
  /// the flight recorder's auto-dump triggers. Enabling this also turns
  /// on RefresherOptions::collect_support_stats for the tenant.
  bool detector_enabled = false;
  detect::DetectorOptions detector;
  /// With the detector on: a verdict that names a persistent change
  /// (placement_shift or baseline_drift) schedules a pre-emptive
  /// maintenance cycle on the tenant's next step
  /// (TriggerReason::DetectorSignal) instead of waiting for the
  /// threshold/interval policies. Diffuse outlier storms never
  /// pre-empt — transient interference is the dynamic component's job.
  bool detector_preempt = true;
};

struct ServiceOptions {
  /// Worker threads. 0 (the default) shares ThreadPool::global() with
  /// the linalg kernels: tenant drivers and solver fork/join regions
  /// multiplex over one worker set (see support/thread_pool.hpp), so
  /// refreshes overlap without oversubscribing the machine. N > 0
  /// gives the service a dedicated pool of N workers, which pins the
  /// driver parallelism independently of NETCONST_THREADS.
  std::size_t threads = 0;
  /// Steps a driver advances a claimed tenant before re-entering the
  /// batch scheduler (the quantum). Smaller slices rebalance around
  /// stragglers sooner at slightly more scheduling overhead; 0 acts
  /// as 1. Has no effect on any tenant's trajectory.
  std::size_t batch_slice = 16;
  /// Event-log retention; 0 = unbounded.
  std::size_t event_capacity = 0;
  /// Per-tenant solver convergence telemetry: each refresh's per-layer
  /// iteration trace is kept in a bounded ring of this many records
  /// (read back via convergence()). 0 disables collection entirely —
  /// the solver then runs without a probe attached.
  std::size_t convergence_capacity = 64;
};

/// Downstream consumer of refreshed constants (the serving front end's
/// snapshot store — see src/serving/snapshot_store.hpp). The service
/// offers every accepted decomposition to the sink right after the
/// tenant's component is updated: once per bootstrap and once per
/// maintenance cycle, from the driver thread that owns the tenant.
/// Implementations must be safe to call concurrently for DIFFERENT
/// tenants; calls for one tenant are serialized by the ownership rule.
class SnapshotSink {
 public:
  virtual ~SnapshotSink() = default;
  /// `refresh` is the tenant's refresh ordinal (1 = bootstrap solve),
  /// strictly increasing per tenant across all trigger reasons,
  /// forced recalibrations included.
  virtual void publish(const std::string& tenant,
                       const core::ConstantComponent& component,
                       double provider_now, std::uint64_t refresh) = 0;
};

/// Post-run view of one tenant (read via status() after run() returns).
struct TenantStatus {
  std::string name;
  std::size_t steps = 0;
  double provider_time = 0.0;
  double error_norm = 0.0;
  core::Effectiveness level = core::Effectiveness::Stable;
  std::uint64_t snapshots_ingested = 0;
  std::uint64_t refreshes = 0;
  std::uint64_t warm_solves = 0;  // layers accepted from a warm solve
  std::uint64_t cold_solves = 0;  // layers accepted from a cold solve
  std::uint64_t cold_fallbacks = 0;
  std::uint64_t breaches = 0;
  std::uint64_t interval_recalibrations = 0;
  std::uint64_t suppressed_recalibrations = 0;
  // Degradation accounting (all zero on a fault-free provider).
  std::uint64_t dropped_probes = 0;         // lost operation probes
  std::uint64_t calibration_failures = 0;   // lost calibration probe values
  std::uint64_t stale_rows_reused = 0;      // snapshots replaced by last good
  std::uint64_t forced_recalibrations = 0;  // ForcedDegraded maintenances
  std::uint64_t imputed_entries = 0;        // window entries repaired
  // Change-point detector accounting (zero when the detector is off).
  std::uint64_t detector_verdicts = 0;
  std::uint64_t detector_recalibrations = 0;  // DetectorSignal maintenances

  double warm_hit_rate() const {
    const std::uint64_t total = warm_solves + cold_solves;
    return total == 0 ? 0.0
                      : static_cast<double>(warm_solves) /
                            static_cast<double>(total);
  }
};

class ConstantFinderService {
 public:
  explicit ConstantFinderService(const ServiceOptions& options = {});
  ~ConstantFinderService();

  ConstantFinderService(const ConstantFinderService&) = delete;
  ConstantFinderService& operator=(const ConstantFinderService&) = delete;

  /// Register a tenant (before run()). Returns its index.
  std::size_t add_tenant(const TenantConfig& config);

  /// Attach (or detach, with nullptr) the snapshot sink. Non-owning;
  /// must outlive the service or be detached first. Set before run() —
  /// the sink also receives the bootstrap publication. Safe to call
  /// while run() is executing on another thread: the swap is atomic and
  /// the call blocks until every publish already in flight on the old
  /// sink has returned, so the previous sink may be destroyed as soon
  /// as this returns.
  void set_snapshot_sink(SnapshotSink* sink);
  SnapshotSink* snapshot_sink() const {
    return snapshot_sink_.load(std::memory_order_acquire);
  }

  std::size_t tenant_count() const { return tenants_.size(); }

  /// Drive every tenant for `steps` operation cycles, concurrently.
  /// First call bootstraps each tenant (fills its window, cold solve).
  /// Tenants are advanced in batch_slice quanta by up to
  /// min(worker count, tenant count) + 1 drivers (the caller is one),
  /// longest-estimated-remaining first. Blocks until all tenants
  /// finish; rethrows the first tenant error. May be called repeatedly
  /// to continue the campaign.
  void run(std::size_t steps);

  /// Valid after run() returns.
  TenantStatus status(std::size_t tenant) const;
  const core::ConstantComponent& component(std::size_t tenant) const;

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  const EventLog& events() const { return events_; }

  /// The tenant's solver convergence ring (empty when
  /// ServiceOptions::convergence_capacity == 0). Thread-safe.
  const obs::ConvergenceLog& convergence(std::size_t tenant) const;

  /// Prometheus text exposition (version 0.0.4) of every metric in the
  /// registry, per-tenant series rendered as tenant="..." labels.
  void write_prometheus(std::ostream& out) const;

  /// One JSON document with the metrics, every tenant's convergence
  /// ring, and the flight-recorder status (see obs/export.hpp).
  void write_json_snapshot(std::ostream& out) const;

  /// Human-readable per-tenant table + metrics dump.
  void print_report(std::ostream& out) const;

 private:
  struct Tenant;

  void bootstrap(Tenant& tenant);
  void step(Tenant& tenant);
  void maintain(Tenant& tenant, TriggerReason reason, double trigger_value);
  /// Fold the ingestor's lifetime degradation totals into the metrics
  /// (delta since the last sync — fill() can ingest many snapshots).
  void sync_ingest_totals(Tenant& tenant);
  void account_refresh_imputation(Tenant& tenant, const RefreshReport& report);
  /// Move the refresh's per-layer iteration traces into the tenant's
  /// convergence ring and observe the iteration-count histograms.
  void record_convergence(Tenant& tenant, RefreshReport& report);
  /// Feed one refresh to the tenant's change-point detector and act on
  /// a verdict (events, metrics, auto-dump, pre-emption flag).
  void run_detector(Tenant& tenant, const RefreshReport& report);

  /// Offer the tenant's freshly accepted component to the sink.
  void publish_snapshot(Tenant& tenant);

  ServiceOptions options_;
  std::atomic<SnapshotSink*> snapshot_sink_{nullptr};
  /// Publishes currently executing on the sink; set_snapshot_sink waits
  /// for this to drain so a detached sink can be destroyed safely.
  std::atomic<std::size_t> publishes_in_flight_{0};
  std::unique_ptr<ThreadPool> owned_pool_;  // null when sharing global()
  ThreadPool* pool_;
  MetricsRegistry metrics_;
  EventLog events_;
  std::vector<std::unique_ptr<Tenant>> tenants_;
};

}  // namespace netconst::online
