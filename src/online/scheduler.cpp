#include "online/scheduler.hpp"

#include <cmath>

#include "support/error.hpp"

namespace netconst::online {

const char* trigger_reason_name(TriggerReason reason) {
  switch (reason) {
    case TriggerReason::None:
      return "none";
    case TriggerReason::ThresholdBreach:
      return "threshold_breach";
    case TriggerReason::IntervalElapsed:
      return "interval_elapsed";
    case TriggerReason::ForcedDegraded:
      return "forced_degraded";
    case TriggerReason::DetectorSignal:
      return "detector_signal";
  }
  return "unknown";
}

RecalibrationScheduler::RecalibrationScheduler(const SchedulerOptions& options)
    : options_(options), advisor_(options.advisor) {
  NETCONST_CHECK(options_.threshold > 0.0, "threshold must be positive");
  NETCONST_CHECK(options_.base_interval > 0.0,
                 "base interval must be positive");
}

bool RecalibrationScheduler::record_refresh(double now, double error_norm) {
  NETCONST_CHECK(!calibrated_ || now >= last_refresh_time_,
                 "refresh time must be non-decreasing");
  const core::Effectiveness before = advisor_.level();
  const bool seeded = calibrated_;
  advisor_.observe(error_norm);
  calibrated_ = true;
  last_refresh_time_ = now;
  next_base_probe_ = now + options_.base_interval;
  // The very first observation "changes" nothing to react to.
  return seeded && advisor_.level() != before;
}

double RecalibrationScheduler::effective_interval() const {
  if (!options_.adaptive_interval) return options_.base_interval;
  return options_.base_interval * advisor_.recalibration_interval_factor();
}

void RecalibrationScheduler::check_interval(double now,
                                            SchedulerDecision& decision) {
  const double deadline = last_refresh_time_ + effective_interval();
  if (now >= deadline) {
    decision.recalibrate = true;
    decision.reason = TriggerReason::IntervalElapsed;
    ++interval_triggers_;
    return;
  }
  // Count each base-policy probe that came due before the (stretched)
  // adaptive deadline — the observable saving of the interval factor.
  while (next_base_probe_ <= now && next_base_probe_ < deadline) {
    ++decision.suppressed_probes;
    ++suppressed_;
    next_base_probe_ += options_.base_interval;
  }
}

SchedulerDecision RecalibrationScheduler::observe_operation(double now,
                                                            double expected,
                                                            double observed) {
  NETCONST_CHECK(calibrated_,
                 "observe_operation before the first record_refresh");
  NETCONST_CHECK(expected > 0.0, "expected time must be positive");
  NETCONST_CHECK(observed >= 0.0, "observed time must be non-negative");
  SchedulerDecision decision;
  decision.relative_error = std::abs(observed - expected) / expected;
  if (decision.relative_error >= options_.threshold) {
    decision.recalibrate = true;
    decision.reason = TriggerReason::ThresholdBreach;
    ++breaches_;
    return decision;
  }
  check_interval(now, decision);
  return decision;
}

SchedulerDecision RecalibrationScheduler::poll(double now) {
  NETCONST_CHECK(calibrated_, "poll before the first record_refresh");
  SchedulerDecision decision;
  check_interval(now, decision);
  return decision;
}

}  // namespace netconst::online
