// Adaptive recalibration scheduler — Algorithm 1 lines 4-9 as an
// event-driven policy object.
//
// Two triggers:
//  * REACTIVE (the paper's maintenance rule): an operation's measured
//    time t deviates from the expectation t' (alpha-beta on the constant
//    component) by |t - t'| / t' >= threshold;
//  * PROACTIVE: a routine probe interval, scaled by the effectiveness
//    advisor's recalibration_interval_factor() — a Stable tenant is
//    probed 4x less often than the base policy, a Dynamic one 4x more.
//    A base-interval probe skipped because the advisor stretched the
//    deadline is reported as "suppressed" (and counted), so the saving
//    of the adaptive policy is observable, not silent.
#pragma once

#include <cstddef>

#include "core/advisor.hpp"

namespace netconst::online {

enum class TriggerReason {
  None,
  ThresholdBreach,
  IntervalElapsed,
  /// Maintenance forced by the service after a run of consecutive lost
  /// operation probes: deviations are unobservable while probes fail,
  /// so the model is refreshed defensively (see
  /// TenantConfig::forced_recalibration_after).
  ForcedDegraded,
  /// Pre-emptive maintenance requested by the change-point detector
  /// (src/detect): a verdict said the constant's regime moved before
  /// the threshold/interval policies noticed.
  DetectorSignal,
};

const char* trigger_reason_name(TriggerReason reason);

struct SchedulerDecision {
  bool recalibrate = false;
  TriggerReason reason = TriggerReason::None;
  /// |t - t'| / t' of the observation that produced this decision
  /// (0 for pure time polls).
  double relative_error = 0.0;
  /// Number of base-interval probes that came due with this check but
  /// were skipped because the advisor stretched the deadline.
  std::size_t suppressed_probes = 0;
};

struct SchedulerOptions {
  /// Maintenance threshold on |t - t'| / t'; the paper's default is 100%.
  double threshold = 1.0;
  /// Base seconds between routine probes (before advisor scaling).
  double base_interval = 1800.0;
  /// When false the advisor still classifies (and its level is still
  /// reported), but the probe interval stays pinned at base_interval —
  /// no Stable stretching, no Dynamic tightening. Measurement campaigns
  /// that score detection latency against wall-clock ground truth need
  /// the fixed cadence; production tenants keep the adaptive default.
  bool adaptive_interval = true;
  core::AdvisorOptions advisor;
};

class RecalibrationScheduler {
 public:
  explicit RecalibrationScheduler(const SchedulerOptions& options = {});

  /// Record a completed (re)calibration + refresh at `now` with its
  /// Norm(N_E): feeds the advisor and restarts the probe interval.
  /// Returns true when the advisor's level changed.
  bool record_refresh(double now, double error_norm);

  /// One operation observation (expected t' > 0, observed t >= 0).
  /// Requires a prior record_refresh (there is no model to deviate from
  /// otherwise).
  SchedulerDecision observe_operation(double now, double expected,
                                      double observed);

  /// Pure time-driven check with no operation attached.
  SchedulerDecision poll(double now);

  /// Probe interval currently in force: base * advisor factor.
  double effective_interval() const;
  const core::EffectivenessAdvisor& advisor() const { return advisor_; }
  core::Effectiveness level() const { return advisor_.level(); }
  double last_refresh_time() const { return last_refresh_time_; }

  // Lifetime tallies.
  std::size_t breaches() const { return breaches_; }
  std::size_t interval_triggers() const { return interval_triggers_; }
  std::size_t suppressed() const { return suppressed_; }

 private:
  /// Folds the proactive-interval state into `decision`.
  void check_interval(double now, SchedulerDecision& decision);

  SchedulerOptions options_;
  core::EffectivenessAdvisor advisor_;
  bool calibrated_ = false;
  double last_refresh_time_ = 0.0;
  double next_base_probe_ = 0.0;  // tracks skipped base-policy probes
  std::size_t breaches_ = 0;
  std::size_t interval_triggers_ = 0;
  std::size_t suppressed_ = 0;
};

}  // namespace netconst::online
