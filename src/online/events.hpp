// Structured event log for the online service: level changes, threshold
// breaches, cold-solve fallbacks, recalibrations (triggered and
// suppressed) — the audit trail a deployment replays when a tenant's
// model went stale. Thread-safe, optionally bounded (oldest dropped),
// exportable to CSV and JSON.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "support/csv.hpp"

namespace netconst::online {

enum class EventKind {
  SnapshotIngested,         // one calibration row entered the window
  Refresh,                  // RPCA refresh completed (value = Norm(N_E))
  ColdSolveFallback,        // warm solve diverged, redone cold
  ThresholdBreach,          // |t - t'| / t' crossed the threshold
  Recalibration,            // maintenance actually ran
  RecalibrationSuppressed,  // base-interval probe skipped by the advisor
  LevelChange,              // advisor effectiveness level moved
  ProbeDropped,             // an operation probe's value was lost (NaN)
  StaleRowReused,           // degraded calibration replaced by last good row
  ForcedRecalibration,      // consecutive probe losses forced maintenance
  ChangeDetected,           // change-point detector issued a verdict
};
inline constexpr std::size_t kEventKindCount = 11;

const char* event_kind_name(EventKind kind);

struct Event {
  double time = 0.0;  // tenant's provider time (simulated seconds)
  std::string tenant;
  EventKind kind = EventKind::Refresh;
  std::string detail;  // free-form, kind-specific
  double value = 0.0;  // kind-specific (norm, relative error, ...)
};

class EventLog {
 public:
  /// `capacity` == 0 keeps everything; otherwise the oldest events are
  /// dropped once `capacity` is exceeded (per-kind counts keep counting).
  explicit EventLog(std::size_t capacity = 0);

  void record(Event event);

  /// Retained events (<= capacity when bounded).
  std::size_t size() const;
  /// Total recorded, including dropped ones.
  std::uint64_t recorded() const;
  /// Per-kind total over all recorded events (dropped ones included).
  std::uint64_t count(EventKind kind) const;

  /// Copy of the retained events, oldest first.
  std::vector<Event> snapshot() const;

  /// CSV columns: time,tenant,kind,value,detail.
  CsvTable to_csv() const;
  /// {"events": [{"time": ..., "tenant": ..., ...}, ...]}
  void write_json(std::ostream& out) const;

 private:
  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::deque<Event> events_;
  std::uint64_t recorded_ = 0;
  std::array<std::uint64_t, kEventKindCount> counts_{};
};

}  // namespace netconst::online
