#include "online/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <ostream>
#include <vector>

#include "support/error.hpp"

namespace netconst::online {

void Counter::increment(double amount) {
  NETCONST_CHECK(amount >= 0.0, "counters only move forward");
  value_.fetch_add(amount, std::memory_order_relaxed);
}

void Histogram::observe(double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!std::isfinite(value)) {
    ++summary_.rejected;
    return;
  }
  if (summary_.count == 0) {
    summary_.min = value;
    summary_.max = value;
  } else {
    summary_.min = std::min(summary_.min, value);
    summary_.max = std::max(summary_.max, value);
  }
  ++summary_.count;
  summary_.sum += value;
  if (samples_.size() < kMaxSamples) samples_.push_back(value);
}

namespace {

/// Nearest-rank percentile of an unsorted sample buffer (q in (0, 1]).
double percentile(std::vector<double>& scratch, double q) {
  const auto n = scratch.size();
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  std::nth_element(scratch.begin(),
                   scratch.begin() + static_cast<std::ptrdiff_t>(rank - 1),
                   scratch.end());
  return scratch[rank - 1];
}

}  // namespace

Histogram::Summary Histogram::summary() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Summary s = summary_;
  if (!samples_.empty()) {
    std::vector<double> scratch = samples_;
    s.p50 = percentile(scratch, 0.50);
    s.p99 = percentile(scratch, 0.99);
  }
  return s;
}

namespace {

template <typename Map>
bool contains(const Map& map, const std::string& name) {
  return map.find(name) != map.end();
}

}  // namespace

Counter& MetricsRegistry::counter(const std::string& name) {
  NETCONST_CHECK(!name.empty(), "metric name must not be empty");
  std::lock_guard<std::mutex> lock(mutex_);
  NETCONST_CHECK(!contains(gauges_, name) && !contains(histograms_, name),
                 "metric name already bound to another type");
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  NETCONST_CHECK(!name.empty(), "metric name must not be empty");
  std::lock_guard<std::mutex> lock(mutex_);
  NETCONST_CHECK(!contains(counters_, name) && !contains(histograms_, name),
                 "metric name already bound to another type");
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  NETCONST_CHECK(!name.empty(), "metric name must not be empty");
  std::lock_guard<std::mutex> lock(mutex_);
  NETCONST_CHECK(!contains(counters_, name) && !contains(gauges_, name),
                 "metric name already bound to another type");
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

double MetricsRegistry::counter_value(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0.0 : it->second->value();
}

double MetricsRegistry::gauge_value(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second->value();
}

Histogram::Summary MetricsRegistry::histogram_summary(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? Histogram::Summary{}
                                 : it->second->summary();
}

std::size_t MetricsRegistry::metric_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

std::vector<obs::MetricSample> MetricsRegistry::samples() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<obs::MetricSample> rows;
  rows.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, metric] : counters_) {
    obs::MetricSample sample;
    sample.name = name;
    sample.type = obs::MetricType::Counter;
    sample.value = metric->value();
    rows.push_back(std::move(sample));
  }
  for (const auto& [name, metric] : gauges_) {
    obs::MetricSample sample;
    sample.name = name;
    sample.type = obs::MetricType::Gauge;
    sample.value = metric->value();
    rows.push_back(std::move(sample));
  }
  for (const auto& [name, metric] : histograms_) {
    const Histogram::Summary summary = metric->summary();
    obs::MetricSample sample;
    sample.name = name;
    sample.type = obs::MetricType::Histogram;
    sample.histogram.count = summary.count;
    sample.histogram.rejected = summary.rejected;
    sample.histogram.sum = summary.sum;
    sample.histogram.min = summary.min;
    sample.histogram.max = summary.max;
    sample.histogram.p50 = summary.p50;
    sample.histogram.p99 = summary.p99;
    rows.push_back(std::move(sample));
  }
  // std::map iteration is already name-sorted per type; the three sorted
  // ranges merge into one sorted output.
  std::sort(rows.begin(), rows.end(),
            [](const obs::MetricSample& a, const obs::MetricSample& b) {
              return a.name < b.name;
            });
  return rows;
}

CsvTable MetricsRegistry::to_csv() const {
  CsvTable table;
  table.header = {"metric", "type", "count", "value", "sum",
                  "min",    "max",  "mean",  "p50",   "p99"};
  for (const obs::MetricSample& sample : samples()) {
    if (sample.type == obs::MetricType::Histogram) {
      const obs::HistogramStats& h = sample.histogram;
      table.rows.push_back({sample.name, obs::metric_type_name(sample.type),
                            std::to_string(h.count), "",
                            format_double(h.sum), format_double(h.min),
                            format_double(h.max), format_double(h.mean()),
                            format_double(h.p50), format_double(h.p99)});
    } else {
      table.rows.push_back({sample.name, obs::metric_type_name(sample.type),
                            "", format_double(sample.value), "", "", "", "",
                            "", ""});
    }
  }
  return table;
}

void MetricsRegistry::write_json(std::ostream& out) const {
  const CsvTable table = to_csv();
  out << "{\"metrics\":[";
  for (std::size_t r = 0; r < table.rows.size(); ++r) {
    const auto& row = table.rows[r];
    if (r > 0) out << ',';
    out << "{\"name\":\"" << row[0] << "\",\"type\":\"" << row[1] << '"';
    if (row[1] == "histogram") {
      out << ",\"count\":" << row[2] << ",\"sum\":" << row[4]
          << ",\"min\":" << row[5] << ",\"max\":" << row[6]
          << ",\"mean\":" << row[7] << ",\"p50\":" << row[8]
          << ",\"p99\":" << row[9];
    } else {
      out << ",\"value\":" << row[3];
    }
    out << '}';
  }
  out << "]}";
}

ConsoleTable MetricsRegistry::to_table() const {
  const CsvTable csv = to_csv();
  ConsoleTable table({"metric", "type", "value / mean", "count", "min",
                      "max", "p50", "p99"});
  for (const auto& row : csv.rows) {
    if (row[1] == "histogram") {
      table.add_row({row[0], row[1], row[7], row[2], row[5], row[6], row[8],
                     row[9]});
    } else {
      table.add_row({row[0], row[1], row[3], "", "", "", "", ""});
    }
  }
  return table;
}

}  // namespace netconst::online
