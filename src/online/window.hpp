// Sliding snapshot window — the online service's TP-matrix.
//
// Keeps the last `capacity` PerformanceMatrix snapshots of one virtual
// cluster together with their flattened RPCA input layers (latency and
// bandwidth). The flattened matrices are maintained incrementally: once
// the window is full, a push writes exactly one N^2 row in place (the
// ring slot of the evicted snapshot) instead of re-flattening the whole
// window. Rows are therefore stored in RING order — a rotation of time
// order — which is invisible to the decomposition: RPCA, the mean
// constant row and Norm(N_E) are all row-permutation invariant (see
// core::assemble_component).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "linalg/matrix.hpp"
#include "netmodel/tp_matrix.hpp"

namespace netconst::online {

class SlidingWindow {
 public:
  /// Window of the last `capacity` snapshots (capacity >= 2, so a full
  /// window is always decomposable).
  explicit SlidingWindow(std::size_t capacity);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return times_.size(); }
  bool empty() const { return times_.empty(); }
  bool full() const { return times_.size() == capacity_; }
  /// 0 until the first push.
  std::size_t cluster_size() const;
  /// Total pushes, including snapshots that have since been evicted.
  std::uint64_t pushes() const { return pushes_; }

  /// Append a snapshot taken at `time` (non-decreasing; cluster size
  /// must match the first snapshot). Evicts the oldest when full.
  void push(double time, const netmodel::PerformanceMatrix& snapshot);

  /// Drop all contents (capacity and cluster size binding are kept).
  void clear();

  double oldest_time() const;
  double newest_time() const;

  /// Flattened layers, rows in ring-slot order. Valid until the next
  /// push. While the window is filling, rows [0, size) are in time
  /// order; once full, slot ((head + k) mod capacity) holds the k-th
  /// oldest snapshot.
  const linalg::Matrix& latency_data() const;
  const linalg::Matrix& bandwidth_data() const;

  /// Ring slot holding the k-th oldest snapshot (k = 0 is the oldest).
  std::size_t slot_of_age(std::size_t k) const;
  double time_in_slot(std::size_t slot) const;
  const netmodel::PerformanceMatrix& snapshot_in_slot(std::size_t slot) const;

  /// Rebuild a time-ordered TemporalPerformance of the current contents
  /// (an O(size * N^2) copy — for batch consumers and tests, not the
  /// refresh hot path).
  netmodel::TemporalPerformance to_series() const;

 private:
  std::size_t capacity_ = 0;
  std::size_t head_ = 0;  // slot of the oldest snapshot once full
  std::uint64_t pushes_ = 0;
  std::vector<double> times_;  // ring-aligned with the matrix rows
  std::vector<netmodel::PerformanceMatrix> snapshots_;
  linalg::Matrix latency_;    // size x N^2, ring-slot row order
  linalg::Matrix bandwidth_;  // size x N^2, ring-slot row order
};

}  // namespace netconst::online
