// Lightweight metrics for the online service: named counters, gauges
// and summary histograms behind one thread-safe registry, exportable to
// CSV (support/csv), JSON, and the console (support/table).
//
// Design points:
//  * metrics are cheap to update from tenant worker threads (atomics for
//    counters/gauges, one small mutex per histogram);
//  * metric objects live as long as the registry, so hot paths can hold
//    references instead of re-resolving names;
//  * a name is bound to exactly one metric type — reusing it with a
//    different type is a contract violation, not a silent alias.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"

namespace netconst::online {

/// Monotonically increasing value (events, totals).
class Counter {
 public:
  void increment(double amount = 1.0);
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Streaming summary of an observed distribution: count/sum/min/max
/// plus exact sample-based p50/p99 (tail latency is what the
/// concurrent refresh path is judged on, and means hide it). Samples
/// are retained up to kMaxSamples; beyond that the percentiles reflect
/// the first kMaxSamples observations while count/sum/min/max stay
/// exact — far more than any service campaign records today.
class Histogram {
 public:
  static constexpr std::size_t kMaxSamples = 65536;

  struct Summary {
    std::uint64_t count = 0;
    std::uint64_t rejected = 0;  // non-finite observations dropped
    double sum = 0.0;
    double min = 0.0;  // 0 when count == 0
    double max = 0.0;
    double p50 = 0.0;  // nearest-rank percentiles; 0 when count == 0
    double p99 = 0.0;
    double mean() const {
      return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
  };

  /// Non-finite values are rejected (counted in Summary::rejected, never
  /// folded into the statistics): one stray NaN would otherwise poison
  /// min/max/sum/mean forever, and degraded measurement paths report
  /// losses as NaN by design.
  void observe(double value);
  Summary summary() const;

 private:
  mutable std::mutex mutex_;
  Summary summary_;
  std::vector<double> samples_;
};

/// Create-or-get registry of named metrics. Returned references stay
/// valid for the registry's lifetime.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Read accessors that do NOT create: value of an absent metric is 0
  /// (an empty Summary for histograms).
  double counter_value(const std::string& name) const;
  double gauge_value(const std::string& name) const;
  Histogram::Summary histogram_summary(const std::string& name) const;

  std::size_t metric_count() const;

  /// Neutral snapshot rows, sorted by metric name — the single source
  /// every exporter (CSV/JSON/console here, Prometheus/JSON snapshot in
  /// obs/export.hpp) renders from, so type names, units and label
  /// spellings cannot drift between formats (see obs/naming.hpp).
  std::vector<obs::MetricSample> samples() const;

  /// Snapshot exports; rows sorted by metric name.
  /// CSV columns: metric,type,count,value,sum,min,max,mean.
  CsvTable to_csv() const;
  /// {"metrics": [{"name": ..., "type": ..., ...}, ...]}
  void write_json(std::ostream& out) const;
  ConsoleTable to_table() const;

 private:
  mutable std::mutex mutex_;
  // node-based maps + unique_ptr: stable addresses across inserts.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace netconst::online
