// Warm-started incremental RPCA refresh of a sliding window.
//
// When the window slides by one snapshot, exactly one row of the ring-
// ordered data matrices changes, so the previous solve's (D, E) factors
// are an excellent seed: APG resumes at the small continuation mu it
// ended with, skips the spectral-norm estimate and the whole mu-decay
// phase, and only has to repair the replaced row. A warm solve that
// fails to converge (or whose residual says it converged to the wrong
// place) is redone cold — correctness never depends on the seed.
//
// The online path runs the solver with the rank-1 polish on (see
// rpca::polish_rank1): APG's continuation endpoint is path-dependent at
// the mu floor, so a warm and a cold solve of the same window would
// otherwise land ~1% apart. The polish drives both onto the alternation
// fixed point determined by the data alone, making a warm refresh
// reproducible against a cold solve to ~1e-10 — which is also the
// paper's model (rank(N_D) = 1) enforced exactly.
#pragma once

#include <cstdint>

#include "core/constant_finder.hpp"
#include "obs/convergence.hpp"
#include "online/window.hpp"
#include "rpca/incremental.hpp"
#include "rpca/rpca.hpp"
#include "rpca/workspace.hpp"

namespace netconst::online {

struct RefresherOptions {
  /// Solver choice, RPCA options and the Norm(N_E) tolerance. The
  /// online default turns the rank-1 polish on (warm/cold equivalence —
  /// see the header comment); pass polish_iterations = 0 to study the
  /// raw solver endpoints instead.
  core::ConstantFinderOptions finder = [] {
    core::ConstantFinderOptions f;
    f.rpca.polish_iterations = 300;
    return f;
  }();
  /// false = always solve cold (for A/B comparison and benchmarks).
  bool warm_start = true;
  /// A warm solve whose pre-polish relative residual
  /// ||A-D-E||_F/||A||_F exceeds this is declared diverged and redone
  /// cold. Irrelevant for solvers whose residual is expected nonzero
  /// (StablePcp ignores seeds anyway).
  double divergence_residual = 1e-3;
  /// Also redo cold when the warm solve hit max_iterations.
  bool fallback_on_nonconvergence = true;
  /// Collect the accepted solve's per-iteration convergence trace into
  /// LayerRefresh::trace (see obs/convergence.hpp). Off by default: the
  /// probe computes extra per-iteration norms. The trace is capped at
  /// convergence_trace_capacity samples.
  bool collect_convergence = false;
  std::size_t convergence_trace_capacity = 512;
  /// Incremental subspace-tracking hot path (rpca/incremental.hpp):
  /// when the window slid by exactly one snapshot since the last
  /// refresh, serve the refresh by re-fitting only the replaced row
  /// against the tracker's frozen constant direction — O(N^2) instead
  /// of a full re-solve. A drift breach, a masked window, or any
  /// non-single-slide refresh falls back to the full solver path
  /// (warm-seeded from the tracked state) and re-anchors the tracker.
  bool incremental = false;
  rpca::IncrementalOptions incremental_options;
  /// Fill LayerRefresh's sparse-support geometry (fraction,
  /// concentration, most-implicated VM) from the accepted factors —
  /// the change-point detector's classification inputs (src/detect).
  /// Off by default: it is an extra O(n N^2) scan per layer.
  bool collect_support_stats = false;
};

/// Per-layer diagnostics of one refresh.
struct LayerRefresh {
  bool warm_attempted = false;  // a seed was offered to the solver
  bool warm_used = false;       // the accepted result came from a warm solve
  bool cold_fallback = false;   // warm solve rejected, result is a cold redo
  bool seed_ignored = false;    // solver cannot seed (cold, not a fallback)
  int iterations = 0;           // of the accepted solve
  double residual = 0.0;        // of the accepted solve, pre-polish
  double solve_seconds = 0.0;   // total, including a rejected warm attempt
  // Masked-path accounting: non-finite window entries repaired before
  // the solve (see rpca::impute_missing for the priority order).
  std::size_t missing_entries = 0;
  std::size_t imputed_from_constant = 0;
  std::size_t imputed_from_column = 0;
  std::size_t imputed_from_global = 0;
  /// Per-iteration trace of the ACCEPTED solve (a rejected warm attempt
  /// is not retained). Empty unless RefresherOptions::collect_convergence.
  std::vector<obs::IterationStats> trace;
  // Incremental-path accounting (RefresherOptions::incremental).
  bool incremental_used = false;   // the row update served this layer
  bool drift_fallback = false;     // tracker breached; redone as a warm solve
  bool incremental_masked = false; // eligible slide had holes; full path
  bool anchored = false;           // this refresh re-anchored the tracker
  double drift = 0.0;              // instant drift statistic of the update
  /// Accepted randomized-SVT steps inside this layer's solve (0 when
  /// the exact path or the row update served it).
  std::size_t randomized_steps = 0;
  // Sparse-support geometry of the accepted factors at the window's
  // relative-l0 cutoff (RefresherOptions::collect_support_stats; all
  // zero otherwise). See detect::support_stats.
  double support_fraction = 0.0;
  double support_concentration = 0.0;
  std::size_t support_vm = 0;
};

struct RefreshReport {
  core::ConstantComponent component;
  LayerRefresh latency;
  LayerRefresh bandwidth;
  /// Wall-clock of the whole refresh (both layers, fallbacks included).
  double total_seconds = 0.0;

  bool any_cold_fallback() const {
    return latency.cold_fallback || bandwidth.cold_fallback;
  }
  bool fully_warm() const {
    return latency.warm_used && bandwidth.warm_used;
  }
  bool fully_incremental() const {
    return latency.incremental_used && bandwidth.incremental_used;
  }
  bool any_drift_fallback() const {
    return latency.drift_fallback || bandwidth.drift_fallback;
  }
  /// Window entries (both layers) that had to be imputed this refresh.
  std::size_t missing_entries() const {
    return latency.missing_entries + bandwidth.missing_entries;
  }
  bool degraded() const { return missing_entries() > 0; }
};

class WindowRefresher {
 public:
  explicit WindowRefresher(const RefresherOptions& options = {});

  /// Decompose the window's current contents (requires >= 2 rows),
  /// seeding each layer from the previous refresh when possible. The
  /// accepted factors become the seeds for the next call.
  RefreshReport refresh(const SlidingWindow& window);

  /// Drop the seeds; the next refresh solves cold. Call after replacing
  /// the window contents wholesale (e.g. a from-scratch recalibration).
  void reset();

  bool has_seed() const { return !latency_seed_.empty(); }
  const RefresherOptions& options() const { return options_; }

  /// Counters of the persistent solver workspace (solves served,
  /// spectral-norm estimates, SVT fast-path fallbacks).
  const rpca::WorkspaceStats& workspace_stats() const {
    return workspace_.stats;
  }

  /// The per-layer subspace trackers (inspection; empty/not-ready until
  /// the first full solve anchors them under options().incremental).
  const rpca::IncrementalTracker& latency_tracker() const {
    return latency_tracker_;
  }
  const rpca::IncrementalTracker& bandwidth_tracker() const {
    return bandwidth_tracker_;
  }

 private:
  /// One layer end to end: the incremental row update when the window
  /// slid by one and the tracker holds, otherwise repair + full solve +
  /// re-anchor. Returns the matrix the accepted path consumed.
  const linalg::Matrix& refresh_layer(const linalg::Matrix& raw,
                                      bool slide_by_one, std::size_t slot,
                                      rpca::WarmStart& seed,
                                      rpca::IncrementalTracker& tracker,
                                      rpca::Result& result,
                                      linalg::Matrix& repaired,
                                      LayerRefresh& info);
  void solve_layer(const linalg::Matrix& data, rpca::WarmStart& seed,
                   rpca::Result& result, LayerRefresh& info);
  /// Component assembly when at least one layer came from its tracker
  /// (rank/Norm(N_E)/constant read from tracked state instead of a
  /// Result).
  core::ConstantComponent assemble_mixed(const linalg::Matrix& lat_data,
                                         const linalg::Matrix& bw_data,
                                         std::size_t cluster_size,
                                         const RefreshReport& report);
  /// Masked front-end of one layer: when `data` has non-finite entries,
  /// copy it into `repaired`, impute the holes (preferring the rank-1
  /// constant derived from `seed`) and return the repaired matrix;
  /// otherwise return `data` untouched. Fills the masked-path fields of
  /// `info`.
  const linalg::Matrix& repair_layer(const linalg::Matrix& data,
                                     const rpca::WarmStart& seed,
                                     linalg::Matrix& repaired,
                                     LayerRefresh& info);

  RefresherOptions options_;
  rpca::WarmStart latency_seed_;
  rpca::WarmStart bandwidth_seed_;
  // Incremental hot path: per-layer subspace trackers plus the push
  // watermark that detects "slid by exactly one since last refresh".
  rpca::IncrementalTracker latency_tracker_;
  rpca::IncrementalTracker bandwidth_tracker_;
  std::uint64_t last_pushes_ = 0;
  // Convergence probe, reused across solves (reset per attempt so the
  // retained trace always belongs to the accepted solve).
  obs::TraceProbe probe_;
  // Persistent solver state: one workspace plus per-layer Result buffers
  // and a mutable Options whose warm_start slot loans the seed to the
  // solver (moved in and back out around each solve). Together these make
  // a steady-state warm refresh allocation-free in the solver path.
  rpca::SolverWorkspace workspace_;
  rpca::Options solve_opts_;
  rpca::Result latency_result_;
  rpca::Result bandwidth_result_;
  // Masked-path scratch, reused across refreshes (only touched when the
  // window actually has holes; a clean refresh never copies).
  linalg::Matrix latency_repaired_;
  linalg::Matrix bandwidth_repaired_;
  linalg::Matrix constant_scratch_;  // 1 x N^2 rank-1 constant row
  linalg::Matrix bandwidth_constant_scratch_;  // mixed-assembly twin
};

}  // namespace netconst::online
