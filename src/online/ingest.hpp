// Streaming snapshot ingestion: one all-link calibration at a time from
// a NetworkProvider into a SlidingWindow — the online replacement for
// cloud::calibrate_series' batch loop. Snapshots may also be pushed from
// outside (a remote measurement agent, a replayed trace), which is the
// seam future sharded/remote deployments plug into.
#pragma once

#include <cstdint>

#include "cloud/calibration.hpp"
#include "cloud/provider.hpp"
#include "online/window.hpp"

namespace netconst::online {

struct IngestOptions {
  cloud::CalibrationOptions calibration;
};

class SnapshotIngestor {
 public:
  /// Both references must outlive the ingestor. The provider's cluster
  /// size must match the window's (once the window is non-empty).
  SnapshotIngestor(cloud::NetworkProvider& provider, SlidingWindow& window,
                   const IngestOptions& options = {});

  /// Run one all-link calibration on the provider (consuming provider
  /// time, the paper's calibration-overhead accounting) and push the
  /// snapshot. Returns the calibration's elapsed provider seconds.
  double ingest_calibrated();

  /// Push an externally measured snapshot; consumes no provider time.
  void ingest_external(double time,
                       const netmodel::PerformanceMatrix& snapshot);

  /// Calibrate until the window is full, idling `interval` provider
  /// seconds between consecutive snapshots (spacing rows wider than
  /// typical interference bursts keeps the error component sparse —
  /// see cloud::SeriesOptions). Returns total provider seconds consumed,
  /// 0 when the window was already full.
  double fill(double interval);

  std::uint64_t ingested() const { return ingested_; }
  double calibration_seconds() const { return calibration_seconds_; }

 private:
  cloud::NetworkProvider& provider_;
  SlidingWindow& window_;
  IngestOptions options_;
  std::uint64_t ingested_ = 0;
  double calibration_seconds_ = 0.0;  // cumulative provider time
};

}  // namespace netconst::online
