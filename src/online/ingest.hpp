// Streaming snapshot ingestion: one all-link calibration at a time from
// a NetworkProvider into a SlidingWindow — the online replacement for
// cloud::calibrate_series' batch loop. Snapshots may also be pushed from
// outside (a remote measurement agent, a replayed trace), which is the
// seam future sharded/remote deployments plug into.
//
// Degraded-measurement policy: calibration already retries lost probes
// with backoff (cloud::CalibrationOptions); a snapshot that is STILL
// mostly holes after the retries is not worth a window row — pushing it
// would hand the decomposition a row that is mostly imputation. Such a
// snapshot is discarded and the last good snapshot is re-pushed in its
// place (stale-row reuse): slightly stale truth beats fresh garbage,
// and the window keeps its cadence so the scheduler's accounting stays
// simple. Every reuse is counted and surfaced by the service.
#pragma once

#include <cstdint>

#include "cloud/calibration.hpp"
#include "cloud/provider.hpp"
#include "online/window.hpp"

namespace netconst::online {

struct IngestOptions {
  cloud::CalibrationOptions calibration;
  /// A calibrated snapshot whose missing-link fraction exceeds this is
  /// replaced by the last good snapshot (stale-row reuse) when one
  /// exists. >= 1.0 disables the policy.
  double max_missing_fraction = 0.5;
};

/// What one calibrated ingest did (see SnapshotIngestor's cumulative
/// accessors for lifetime totals).
struct IngestReport {
  double elapsed_seconds = 0.0;  // provider time the calibration took
  /// Missing links of the calibrated snapshot (before any reuse).
  std::size_t missing_links = 0;
  /// Probe values lost during the calibration, retries included.
  std::size_t failed_measurements = 0;
  /// Pair re-calibrations performed.
  std::size_t retries = 0;
  /// True when the calibrated snapshot was discarded and the last good
  /// snapshot pushed in its place.
  bool stale_reused = false;
};

class SnapshotIngestor {
 public:
  /// Both references must outlive the ingestor. The provider's cluster
  /// size must match the window's (once the window is non-empty).
  SnapshotIngestor(cloud::NetworkProvider& provider, SlidingWindow& window,
                   const IngestOptions& options = {});

  /// Run one all-link calibration on the provider (consuming provider
  /// time, the paper's calibration-overhead accounting) and push the
  /// snapshot — or, when it is too degraded, re-push the last good one.
  IngestReport ingest_calibrated();

  /// Push an externally measured snapshot; consumes no provider time.
  void ingest_external(double time,
                       const netmodel::PerformanceMatrix& snapshot);

  /// Calibrate until the window is full, idling `interval` provider
  /// seconds between consecutive snapshots (spacing rows wider than
  /// typical interference bursts keeps the error component sparse —
  /// see cloud::SeriesOptions). Returns total provider seconds consumed,
  /// 0 when the window was already full.
  double fill(double interval);

  std::uint64_t ingested() const { return ingested_; }
  double calibration_seconds() const { return calibration_seconds_; }

  // Lifetime degradation totals across all calibrated ingests.
  std::uint64_t failed_measurements() const { return failed_measurements_; }
  std::uint64_t retries() const { return retries_; }
  std::uint64_t missing_links() const { return missing_links_; }
  std::uint64_t stale_rows_reused() const { return stale_rows_reused_; }

 private:
  cloud::NetworkProvider& provider_;
  SlidingWindow& window_;
  IngestOptions options_;
  std::uint64_t ingested_ = 0;
  double calibration_seconds_ = 0.0;  // cumulative provider time
  std::uint64_t failed_measurements_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t missing_links_ = 0;
  std::uint64_t stale_rows_reused_ = 0;
  bool has_last_good_ = false;
  netmodel::PerformanceMatrix last_good_;
};

}  // namespace netconst::online
