#include "online/service.hpp"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <exception>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <thread>

#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"
#include "support/stopwatch.hpp"

namespace netconst::online {

namespace {

/// Convergence telemetry needs the refresher's per-iteration probe on,
/// and the change-point detector needs the sparse-support geometry; the
/// service turns both on per tenant as the config demands (an explicit
/// user choice in RefresherOptions is respected).
RefresherOptions tenant_refresher_options(const TenantConfig& config,
                                          std::size_t convergence_capacity) {
  RefresherOptions options = config.refresher;
  if (convergence_capacity > 0) options.collect_convergence = true;
  if (config.detector_enabled) options.collect_support_stats = true;
  return options;
}

}  // namespace

struct ConstantFinderService::Tenant {
  Tenant(const TenantConfig& config_in, MetricsRegistry& metrics,
         std::size_t convergence_capacity)
      : config(config_in),
        window(config_in.window_capacity),
        refresher(
            tenant_refresher_options(config_in, convergence_capacity)),
        detector(config_in.detector),
        convergence(convergence_capacity == 0 ? 1 : convergence_capacity),
        scheduler(config_in.scheduler),
        ingestor(*config_in.provider, window, config_in.ingest),
        rng(config_in.seed),
        // Hot-path metric handles resolved once; the registry keeps the
        // referenced objects alive for the service's lifetime.
        snapshots(metrics.counter(prefix() + "snapshots_ingested")),
        operations(metrics.counter(prefix() + "operations")),
        refreshes(metrics.counter(prefix() + "refreshes")),
        warm_solves(metrics.counter(prefix() + "warm_solves")),
        cold_solves(metrics.counter(prefix() + "cold_solves")),
        cold_fallbacks(metrics.counter(prefix() + "cold_fallbacks")),
        recalibrations(metrics.counter(prefix() + "recalibrations")),
        suppressed(metrics.counter(prefix() + "recalibrations_suppressed")),
        dropped_probes(metrics.counter(prefix() + "dropped_probes")),
        calibration_failures(
            metrics.counter(prefix() + "calibration_failures")),
        stale_rows(metrics.counter(prefix() + "stale_rows_reused")),
        forced(metrics.counter(prefix() + "forced_recalibrations")),
        imputed_entries(metrics.counter(prefix() + "imputed_entries")),
        incremental_updates(
            metrics.counter(prefix() + "incremental_updates")),
        drift_fallbacks(metrics.counter(prefix() + "drift_fallbacks")),
        detector_verdicts(metrics.counter(prefix() + "detector_verdicts")),
        detector_recalibrations(
            metrics.counter(prefix() + "detector_recalibrations")),
        error_norm_gauge(metrics.gauge(prefix() + "error_norm")),
        refresh_seconds(metrics.histogram(prefix() + "refresh_seconds")),
        solver_iterations(
            metrics.histogram(prefix() + "solver_iterations")) {
    NETCONST_CHECK(config.provider != nullptr, "tenant needs a provider");
    NETCONST_CHECK(config.provider->cluster_size() >= 2,
                   "tenant cluster must have at least two VMs");
    NETCONST_CHECK(config.operation_gap >= 0.0,
                   "operation gap must be >= 0");
  }

  std::string prefix() const { return "tenant." + config.name + "."; }

  TenantConfig config;
  SlidingWindow window;
  WindowRefresher refresher;
  detect::ChangePointDetector detector;
  /// Per-pair transfer times of the accepted constant — the detector's
  /// direction/level reference space (reused scratch).
  std::vector<double> constant_flat;
  /// A persistent-change verdict arms this; the next step() runs a
  /// pre-emptive maintenance (TriggerReason::DetectorSignal).
  bool detector_preempt_pending = false;
  double detector_preempt_score = 0.0;
  obs::ConvergenceLog convergence;  // per-refresh solver telemetry
  RecalibrationScheduler scheduler;
  SnapshotIngestor ingestor;
  Rng rng;
  core::ConstantComponent component;
  bool bootstrapped = false;
  std::size_t steps = 0;
  std::size_t drop_streak = 0;  // consecutive lost operation probes
  // Ingestor lifetime totals already folded into the metrics.
  std::uint64_t synced_failures = 0;
  std::uint64_t synced_stale = 0;

  // Batch-scheduler state, touched only under the batch mutex or by
  // the single driver that currently owns the tenant.
  std::size_t batch_remaining = 0;
  double step_ewma = 0.0;  // seconds per step; 0 = not yet measured

  Counter& snapshots;
  Counter& operations;
  Counter& refreshes;
  Counter& warm_solves;
  Counter& cold_solves;
  Counter& cold_fallbacks;
  Counter& recalibrations;
  Counter& suppressed;
  Counter& dropped_probes;
  Counter& calibration_failures;
  Counter& stale_rows;
  Counter& forced;
  Counter& imputed_entries;
  Counter& incremental_updates;
  Counter& drift_fallbacks;
  Counter& detector_verdicts;
  Counter& detector_recalibrations;
  Gauge& error_norm_gauge;
  Histogram& refresh_seconds;
  Histogram& solver_iterations;
};

ConstantFinderService::ConstantFinderService(const ServiceOptions& options)
    : options_(options),
      owned_pool_(options.threads == 0
                      ? nullptr
                      : std::make_unique<ThreadPool>(options.threads)),
      pool_(owned_pool_ ? owned_pool_.get() : &ThreadPool::global()),
      events_(options.event_capacity) {}

ConstantFinderService::~ConstantFinderService() = default;

std::size_t ConstantFinderService::add_tenant(const TenantConfig& config) {
  NETCONST_CHECK(!config.name.empty(), "tenant name must not be empty");
  for (const auto& tenant : tenants_) {
    NETCONST_CHECK(tenant->config.name != config.name,
                   "duplicate tenant name");
    NETCONST_CHECK(tenant->config.provider != config.provider,
                   "providers must not be shared between tenants");
  }
  tenants_.push_back(std::make_unique<Tenant>(config, metrics_,
                                              options_.convergence_capacity));
  return tenants_.size() - 1;
}

void ConstantFinderService::sync_ingest_totals(Tenant& tenant) {
  const std::uint64_t failures = tenant.ingestor.failed_measurements();
  if (failures > tenant.synced_failures) {
    const auto delta =
        static_cast<double>(failures - tenant.synced_failures);
    tenant.calibration_failures.increment(delta);
    metrics_.counter("online.calibration_failures").increment(delta);
    tenant.synced_failures = failures;
  }
  const std::uint64_t stale = tenant.ingestor.stale_rows_reused();
  if (stale > tenant.synced_stale) {
    const auto delta = static_cast<double>(stale - tenant.synced_stale);
    tenant.stale_rows.increment(delta);
    metrics_.counter("online.stale_rows_reused").increment(delta);
    // One event per reused row, so the event log, the counters, and
    // TenantStatus all agree — bootstrap fills included.
    for (std::uint64_t k = tenant.synced_stale; k < stale; ++k) {
      events_.record({tenant.config.provider->now(), tenant.config.name,
                      EventKind::StaleRowReused,
                      "snapshot too degraded; re-pushed last good",
                      static_cast<double>(k + 1)});
    }
    tenant.synced_stale = stale;
  }
}

void ConstantFinderService::account_refresh_imputation(
    Tenant& tenant, const RefreshReport& report) {
  if (!report.degraded()) return;
  const auto imputed = static_cast<double>(report.missing_entries());
  tenant.imputed_entries.increment(imputed);
  metrics_.counter("online.imputed_entries").increment(imputed);
}

void ConstantFinderService::record_convergence(Tenant& tenant,
                                               RefreshReport& report) {
  tenant.solver_iterations.observe(
      static_cast<double>(report.latency.iterations));
  tenant.solver_iterations.observe(
      static_cast<double>(report.bandwidth.iterations));
  Histogram& global = metrics_.histogram("online.solver_iterations");
  global.observe(static_cast<double>(report.latency.iterations));
  global.observe(static_cast<double>(report.bandwidth.iterations));
  if (options_.convergence_capacity == 0) return;

  const auto refresh =
      static_cast<std::uint64_t>(tenant.refreshes.value());
  const double now = tenant.config.provider->now();
  LayerRefresh* layers[] = {&report.latency, &report.bandwidth};
  const char* names[] = {"latency", "bandwidth"};
  for (std::size_t k = 0; k < 2; ++k) {
    obs::SolveConvergence record;
    record.refresh = refresh;
    record.time = now;
    record.layer = names[k];
    record.warm = layers[k]->warm_used;
    record.cold_fallback = layers[k]->cold_fallback;
    record.iterations = layers[k]->iterations;
    record.residual = layers[k]->residual;
    record.solve_seconds = layers[k]->solve_seconds;
    record.trace = std::move(layers[k]->trace);
    tenant.convergence.record(std::move(record));
  }
}

void ConstantFinderService::run_detector(Tenant& tenant,
                                         const RefreshReport& report) {
  cloud::NetworkProvider& provider = *tenant.config.provider;
  // The constant's direction/level signal: per-pair transfer times of
  // the tenant's own message size — one unit-free vector that moves
  // with both alpha and beta exactly as the operation stream does. A
  // placement shift bends its direction; a uniform (diurnal) swing
  // moves its level and leaves the direction alone.
  const netmodel::PerformanceMatrix& constant = tenant.component.constant;
  const std::size_t n = constant.size();
  tenant.constant_flat.resize(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      tenant.constant_flat[i * n + j] =
          i == j ? 0.0
                 : constant.transfer_time(i, j,
                                          tenant.config.operation_bytes);
    }
  }

  detect::RefreshSignals signals;
  signals.time = provider.now();
  signals.refresh = static_cast<std::uint64_t>(tenant.refreshes.value());
  signals.sparsity = std::max(report.component.error_norm,
                              report.component.latency_error_norm);
  signals.residual =
      std::max(report.latency.residual, report.bandwidth.residual);
  signals.drift = std::max(report.latency.drift, report.bandwidth.drift);
  const LayerRefresh& support_layer =
      report.bandwidth.support_fraction >= report.latency.support_fraction
          ? report.bandwidth
          : report.latency;
  signals.support_concentration = support_layer.support_concentration;
  signals.support_vm = support_layer.support_vm;
  signals.constant = &tenant.constant_flat;

  const std::optional<detect::Verdict> verdict =
      tenant.detector.observe(signals);
  if (!verdict) return;

  const char* kind = detect::verdict_kind_name(verdict->kind);
  tenant.detector_verdicts.increment();
  metrics_.counter(std::string("detect.verdicts.") + kind).increment();
  metrics_.histogram("detect.latency_slides")
      .observe(static_cast<double>(verdict->latency_slides));
  std::string detail = std::string(kind) + " (signal " +
                       detect::signal_name(verdict->signal) + ", latency " +
                       std::to_string(verdict->latency_slides) + " slides";
  if (verdict->kind == detect::VerdictKind::PlacementShift) {
    detail += ", vm " + std::to_string(verdict->vm);
  }
  detail += ")";
  events_.record({provider.now(), tenant.config.name,
                  EventKind::ChangeDetected, std::move(detail),
                  verdict->score});
  // A verdict is exactly the anomaly the flight recorder exists for.
  obs::FlightRecorder::instance().maybe_auto_dump(
      verdict->kind == detect::VerdictKind::PlacementShift
          ? "detector_placement_shift"
      : verdict->kind == detect::VerdictKind::OutlierStorm
          ? "detector_outlier_storm"
          : "detector_baseline_drift");
  if (tenant.config.detector_preempt &&
      verdict->kind != detect::VerdictKind::OutlierStorm) {
    tenant.detector_preempt_pending = true;
    tenant.detector_preempt_score = verdict->score;
    metrics_.counter("detect.preemptions").increment();
  }
}

void ConstantFinderService::set_snapshot_sink(SnapshotSink* sink) {
  snapshot_sink_.store(sink, std::memory_order_seq_cst);
  // A driver that loaded the old sink raised publishes_in_flight_
  // before its load (seq_cst on both sides), so once the counter reads
  // zero here no publish can still be running — or start — on it.
  while (publishes_in_flight_.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
}

void ConstantFinderService::publish_snapshot(Tenant& tenant) {
  publishes_in_flight_.fetch_add(1, std::memory_order_seq_cst);
  struct Leave {
    std::atomic<std::size_t>* counter;
    ~Leave() { counter->fetch_sub(1, std::memory_order_release); }
  } leave{&publishes_in_flight_};
  SnapshotSink* sink = snapshot_sink_.load(std::memory_order_seq_cst);
  if (sink == nullptr) return;
  sink->publish(
      tenant.config.name, tenant.component, tenant.config.provider->now(),
      static_cast<std::uint64_t>(tenant.refreshes.value()));
}

void ConstantFinderService::bootstrap(Tenant& tenant) {
  obs::Span bootstrap_span("svc.bootstrap");
  cloud::NetworkProvider& provider = *tenant.config.provider;
  const double fill_seconds = [&] {
    obs::Span ingest_span("svc.ingest");
    return tenant.ingestor.fill(tenant.config.snapshot_interval);
  }();
  const double ingested = static_cast<double>(tenant.window.size());
  tenant.snapshots.increment(ingested);
  metrics_.counter("online.snapshots_ingested").increment(ingested);
  metrics_.histogram("online.calibration_seconds").observe(fill_seconds);
  sync_ingest_totals(tenant);

  RefreshReport report = tenant.refresher.refresh(tenant.window);
  tenant.component = report.component;
  tenant.scheduler.record_refresh(provider.now(),
                                  report.component.error_norm);
  tenant.refreshes.increment();
  metrics_.counter("online.refreshes").increment();
  publish_snapshot(tenant);
  account_refresh_imputation(tenant, report);
  record_convergence(tenant, report);
  tenant.cold_solves.increment(2.0);
  metrics_.counter("online.cold_solves").increment(2.0);
  for (const LayerRefresh* layer : {&report.latency, &report.bandwidth}) {
    metrics_
        .counter(layer->randomized_steps > 0 ? "rpca.svd.path.randomized"
                                             : "rpca.svd.path.full")
        .increment();
    if (layer->anchored) {
      metrics_.counter("rpca.incremental.anchors").increment();
    }
  }
  tenant.refresh_seconds.observe(report.total_seconds);
  metrics_.histogram("online.refresh_seconds").observe(report.total_seconds);
  metrics_.histogram("online.error_norm").observe(
      report.component.error_norm);
  tenant.error_norm_gauge.set(report.component.error_norm);
  events_.record({provider.now(), tenant.config.name, EventKind::Refresh,
                  "bootstrap (" + std::to_string(tenant.window.size()) +
                      " snapshots, cold solve)",
                  report.component.error_norm});
  if (tenant.config.detector_enabled) run_detector(tenant, report);
  tenant.bootstrapped = true;
}

void ConstantFinderService::maintain(Tenant& tenant, TriggerReason reason,
                                     double trigger_value) {
  obs::Span maintain_span("svc.maintain");
  cloud::NetworkProvider& provider = *tenant.config.provider;

  // The online analogue of Algorithm 1's "re-calibrate": slide the
  // window by one fresh all-link calibration — stale rows phase out of
  // the window instead of being thrown away wholesale, so maintenance
  // costs one snapshot, not time_step of them.
  const IngestReport ingest = [&] {
    obs::Span ingest_span("svc.ingest");
    return tenant.ingestor.ingest_calibrated();
  }();
  tenant.snapshots.increment();
  metrics_.counter("online.snapshots_ingested").increment();
  metrics_.histogram("online.calibration_seconds")
      .observe(ingest.elapsed_seconds);
  sync_ingest_totals(tenant);
  events_.record({provider.now(), tenant.config.name,
                  EventKind::SnapshotIngested,
                  trigger_reason_name(reason), ingest.elapsed_seconds});

  RefreshReport report = tenant.refresher.refresh(tenant.window);
  tenant.component = report.component;
  const bool level_changed = tenant.scheduler.record_refresh(
      provider.now(), report.component.error_norm);

  tenant.refreshes.increment();
  metrics_.counter("online.refreshes").increment();
  publish_snapshot(tenant);
  account_refresh_imputation(tenant, report);
  record_convergence(tenant, report);
  for (const LayerRefresh* layer : {&report.latency, &report.bandwidth}) {
    // Which machinery produced this layer's factors: the incremental
    // row update, the randomized-SVT solver path, or the exact solver.
    if (layer->incremental_used) {
      tenant.incremental_updates.increment();
      metrics_.counter("rpca.incremental.updates").increment();
      metrics_.counter("rpca.svd.path.incremental").increment();
      continue;  // no solve ran for this layer
    }
    metrics_
        .counter(layer->randomized_steps > 0 ? "rpca.svd.path.randomized"
                                             : "rpca.svd.path.full")
        .increment();
    if (layer->drift_fallback) {
      tenant.drift_fallbacks.increment();
      metrics_.counter("rpca.incremental.drift_fallbacks").increment();
    }
    if (layer->incremental_masked) {
      metrics_.counter("rpca.incremental.masked_fallbacks").increment();
    }
    if (layer->anchored) {
      metrics_.counter("rpca.incremental.anchors").increment();
    }
    if (layer->warm_used) {
      tenant.warm_solves.increment();
      metrics_.counter("online.warm_solves").increment();
    } else {
      tenant.cold_solves.increment();
      metrics_.counter("online.cold_solves").increment();
    }
    if (layer->cold_fallback) {
      tenant.cold_fallbacks.increment();
      metrics_.counter("online.cold_fallbacks").increment();
    }
  }
  if (report.any_cold_fallback()) {
    events_.record({provider.now(), tenant.config.name,
                    EventKind::ColdSolveFallback,
                    "warm solve diverged; solved cold",
                    report.component.error_norm});
    // A rejected warm solve is an anomaly worth a post-mortem: freeze
    // the flight recorder's view of the refresh that led here.
    obs::FlightRecorder::instance().maybe_auto_dump("cold_fallback");
  }
  tenant.refresh_seconds.observe(report.total_seconds);
  metrics_.histogram("online.refresh_seconds").observe(report.total_seconds);
  metrics_.histogram("online.error_norm").observe(
      report.component.error_norm);
  tenant.error_norm_gauge.set(report.component.error_norm);

  tenant.recalibrations.increment();
  metrics_.counter("online.recalibrations").increment();
  metrics_
      .counter(reason == TriggerReason::ThresholdBreach
                   ? "online.recalibrations.breach"
               : reason == TriggerReason::ForcedDegraded
                   ? "online.recalibrations.forced"
               : reason == TriggerReason::DetectorSignal
                   ? "online.recalibrations.detector"
                   : "online.recalibrations.interval")
      .increment();
  if (reason == TriggerReason::ForcedDegraded) {
    tenant.forced.increment();
    obs::FlightRecorder::instance().maybe_auto_dump("forced_recalibration");
  }
  if (reason == TriggerReason::DetectorSignal) {
    tenant.detector_recalibrations.increment();
  }
  events_.record({provider.now(), tenant.config.name,
                  EventKind::Recalibration, trigger_reason_name(reason),
                  trigger_value});
  if (level_changed) {
    metrics_.counter("online.level_changes").increment();
    events_.record(
        {provider.now(), tenant.config.name, EventKind::LevelChange,
         core::effectiveness_name(tenant.scheduler.level()),
         report.component.error_norm});
  }
  if (tenant.config.detector_enabled) run_detector(tenant, report);
}

void ConstantFinderService::step(Tenant& tenant) {
  obs::Span step_span("svc.step");
  cloud::NetworkProvider& provider = *tenant.config.provider;
  provider.advance(tenant.config.operation_gap);

  // A persistent-change verdict pre-empts the threshold/interval
  // policies: refresh the model now, before more operations are planned
  // against a constant the detector says is stale.
  if (tenant.detector_preempt_pending) {
    tenant.detector_preempt_pending = false;
    maintain(tenant, TriggerReason::DetectorSignal,
             tenant.detector_preempt_score);
  }

  // One operation of the tenant's stream: a point-to-point transfer
  // between a random pair, planned with the constant component.
  const auto n = static_cast<std::int64_t>(provider.cluster_size());
  const auto i = static_cast<std::size_t>(tenant.rng.uniform_int(0, n - 1));
  auto j = static_cast<std::size_t>(tenant.rng.uniform_int(0, n - 2));
  if (j >= i) ++j;
  const double expected =
      tenant.component.constant.transfer_time(i, j,
                                              tenant.config.operation_bytes);
  const double observed =
      provider.measure(i, j, tenant.config.operation_bytes);
  tenant.operations.increment();
  metrics_.counter("online.operations").increment();

  SchedulerDecision decision;
  if (!std::isfinite(observed)) {
    // Lost probe (timeout / dropped measurement): there is no error
    // signal this cycle, so the threshold policy cannot fire — but a
    // run of blind cycles is itself a signal. Track the streak, keep
    // the adaptive interval policy ticking, and force a maintenance
    // once the streak says the constant can no longer be checked.
    ++tenant.drop_streak;
    tenant.dropped_probes.increment();
    metrics_.counter("online.dropped_probes").increment();
    events_.record({provider.now(), tenant.config.name,
                    EventKind::ProbeDropped, "operation probe lost",
                    static_cast<double>(tenant.drop_streak)});
    if (tenant.config.forced_recalibration_after > 0 &&
        tenant.drop_streak >= tenant.config.forced_recalibration_after) {
      events_.record({provider.now(), tenant.config.name,
                      EventKind::ForcedRecalibration,
                      "consecutive lost probes reached the limit",
                      static_cast<double>(tenant.drop_streak)});
      tenant.drop_streak = 0;
      decision.recalibrate = true;
      decision.reason = TriggerReason::ForcedDegraded;
    } else {
      decision = tenant.scheduler.poll(provider.now());
    }
  } else {
    tenant.drop_streak = 0;
    decision = tenant.scheduler.observe_operation(provider.now(), expected,
                                                  observed);
    metrics_.histogram("online.operation_relative_error")
        .observe(decision.relative_error);
  }

  if (decision.suppressed_probes > 0) {
    const auto count = static_cast<double>(decision.suppressed_probes);
    tenant.suppressed.increment(count);
    metrics_.counter("online.recalibrations_suppressed").increment(count);
    events_.record({provider.now(), tenant.config.name,
                    EventKind::RecalibrationSuppressed,
                    "interval factor " +
                        ConsoleTable::cell(
                            tenant.scheduler.advisor()
                                .recalibration_interval_factor(),
                            2),
                    count});
  }
  if (decision.recalibrate) {
    if (decision.reason == TriggerReason::ThresholdBreach) {
      events_.record({provider.now(), tenant.config.name,
                      EventKind::ThresholdBreach,
                      "operation deviated from expectation",
                      decision.relative_error});
    }
    maintain(tenant, decision.reason, decision.relative_error);
  }
  ++tenant.steps;
}

void ConstantFinderService::run(std::size_t steps) {
  NETCONST_CHECK(!tenants_.empty(), "run() with no tenants");
  const std::size_t slice =
      options_.batch_slice == 0 ? 1 : options_.batch_slice;

  // Shared batch state. Reference-counted because a submitted driver
  // task can outlive run(): once the last tenant finishes the caller
  // is released, but a driver that found the ready queue empty may
  // still be unwinding.
  struct Batch {
    std::mutex mutex;
    std::condition_variable done_cv;
    std::vector<Tenant*> ready;  // claimable tenants with work left
    std::size_t unfinished = 0;
    std::exception_ptr first_error;
  };
  auto batch = std::make_shared<Batch>();
  batch->ready.reserve(tenants_.size());
  for (const auto& tenant : tenants_) {
    tenant->batch_remaining = steps;
    batch->ready.push_back(tenant.get());
  }
  batch->unfinished = tenants_.size();

  // One driver: repeatedly claim the tenant with the largest estimated
  // remaining work and advance it one quantum. Longest-remaining-first
  // keeps a straggling tenant from serializing the batch tail — it gets
  // picked up early and stays in flight while short tenants fill the
  // other workers. Drivers never block: an empty ready queue means
  // every unfinished tenant is already owned by some other driver, so
  // the driver retires instead of waiting (a blocked pool worker would
  // starve the solver regions that share these threads).
  auto drive = [this, batch, slice] {
    for (;;) {
      Tenant* tenant = nullptr;
      {
        std::lock_guard<std::mutex> lock(batch->mutex);
        std::size_t best = batch->ready.size();
        double best_estimate = -1.0;
        for (std::size_t k = 0; k < batch->ready.size(); ++k) {
          const Tenant& candidate = *batch->ready[k];
          // Unmeasured tenants (not yet bootstrapped, or never timed)
          // sort first: they could be arbitrarily expensive.
          const double estimate =
              !candidate.bootstrapped || candidate.step_ewma <= 0.0
                  ? std::numeric_limits<double>::infinity()
                  : candidate.step_ewma *
                        static_cast<double>(candidate.batch_remaining);
          if (estimate > best_estimate) {
            best_estimate = estimate;
            best = k;
          }
        }
        if (best == batch->ready.size()) return;
        tenant = batch->ready[best];
        batch->ready.erase(batch->ready.begin() +
                           static_cast<std::ptrdiff_t>(best));
      }

      bool failed = false;
      std::size_t executed = 0;
      double step_seconds = 0.0;
      try {
        if (!tenant->bootstrapped) bootstrap(*tenant);
        const std::size_t quantum =
            std::min(slice, tenant->batch_remaining);
        const Stopwatch clock;
        for (; executed < quantum; ++executed) step(*tenant);
        step_seconds = clock.seconds();
      } catch (...) {
        failed = true;
        std::lock_guard<std::mutex> lock(batch->mutex);
        if (!batch->first_error) {
          batch->first_error = std::current_exception();
        }
      }

      std::lock_guard<std::mutex> lock(batch->mutex);
      if (executed > 0) {
        // EWMA of wall seconds per step feeds the remaining-work
        // estimate. Noisy (a quantum with a refresh is much dearer
        // than one without) but plenty for straggler ordering.
        const double per_step =
            step_seconds / static_cast<double>(executed);
        tenant->step_ewma = tenant->step_ewma <= 0.0
                                ? per_step
                                : 0.3 * per_step + 0.7 * tenant->step_ewma;
        tenant->batch_remaining -= executed;
      }
      if (!failed && tenant->batch_remaining > 0) {
        batch->ready.push_back(tenant);
      } else if (--batch->unfinished == 0) {
        batch->done_cv.notify_all();
      }
    }
  };

  // min(workers, tenants) pool drivers plus the caller. With a single
  // worker this degenerates gracefully: the caller and one worker
  // drain the batch in longest-remaining-first order.
  const std::size_t drivers =
      std::min(pool_->thread_count(), tenants_.size());
  for (std::size_t d = 0; d < drivers; ++d) pool_->submit(drive);
  drive();

  std::unique_lock<std::mutex> lock(batch->mutex);
  batch->done_cv.wait(lock, [&] { return batch->unfinished == 0; });
  if (batch->first_error) std::rethrow_exception(batch->first_error);
}

TenantStatus ConstantFinderService::status(std::size_t tenant_index) const {
  NETCONST_CHECK(tenant_index < tenants_.size(), "tenant out of range");
  const Tenant& tenant = *tenants_[tenant_index];
  TenantStatus status;
  status.name = tenant.config.name;
  status.steps = tenant.steps;
  status.provider_time = tenant.config.provider->now();
  status.error_norm = tenant.component.error_norm;
  status.level = tenant.scheduler.level();
  status.snapshots_ingested =
      static_cast<std::uint64_t>(tenant.snapshots.value());
  status.refreshes = static_cast<std::uint64_t>(tenant.refreshes.value());
  status.warm_solves =
      static_cast<std::uint64_t>(tenant.warm_solves.value());
  status.cold_solves =
      static_cast<std::uint64_t>(tenant.cold_solves.value());
  status.cold_fallbacks =
      static_cast<std::uint64_t>(tenant.cold_fallbacks.value());
  status.breaches = tenant.scheduler.breaches();
  status.interval_recalibrations = tenant.scheduler.interval_triggers();
  status.suppressed_recalibrations = tenant.scheduler.suppressed();
  status.dropped_probes =
      static_cast<std::uint64_t>(tenant.dropped_probes.value());
  status.calibration_failures =
      static_cast<std::uint64_t>(tenant.calibration_failures.value());
  status.stale_rows_reused =
      static_cast<std::uint64_t>(tenant.stale_rows.value());
  status.forced_recalibrations =
      static_cast<std::uint64_t>(tenant.forced.value());
  status.imputed_entries =
      static_cast<std::uint64_t>(tenant.imputed_entries.value());
  status.detector_verdicts =
      static_cast<std::uint64_t>(tenant.detector_verdicts.value());
  status.detector_recalibrations =
      static_cast<std::uint64_t>(tenant.detector_recalibrations.value());
  return status;
}

const core::ConstantComponent& ConstantFinderService::component(
    std::size_t tenant_index) const {
  NETCONST_CHECK(tenant_index < tenants_.size(), "tenant out of range");
  return tenants_[tenant_index]->component;
}

const obs::ConvergenceLog& ConstantFinderService::convergence(
    std::size_t tenant_index) const {
  NETCONST_CHECK(tenant_index < tenants_.size(), "tenant out of range");
  return tenants_[tenant_index]->convergence;
}

void ConstantFinderService::write_prometheus(std::ostream& out) const {
  obs::write_prometheus(out, metrics_.samples());
}

void ConstantFinderService::write_json_snapshot(std::ostream& out) const {
  obs::TelemetrySnapshot snapshot;
  snapshot.metrics = metrics_.samples();
  snapshot.convergence.reserve(tenants_.size());
  for (const auto& tenant : tenants_) {
    snapshot.convergence.emplace_back(tenant->config.name,
                                      &tenant->convergence);
  }
  obs::write_json_snapshot(out, snapshot);
}

void ConstantFinderService::print_report(std::ostream& out) const {
  print_banner(out, "ConstantFinderService report");
  ConsoleTable table({"tenant", "steps", "Norm(N_E)", "level", "snapshots",
                      "refreshes", "warm rate", "fallbacks", "breaches",
                      "interval", "suppressed", "dropped", "stale",
                      "forced"});
  for (std::size_t t = 0; t < tenants_.size(); ++t) {
    const TenantStatus s = status(t);
    table.add_row({s.name, std::to_string(s.steps),
                   ConsoleTable::cell(s.error_norm),
                   core::effectiveness_name(s.level),
                   std::to_string(s.snapshots_ingested),
                   std::to_string(s.refreshes),
                   ConsoleTable::cell_percent(s.warm_hit_rate()),
                   std::to_string(s.cold_fallbacks),
                   std::to_string(s.breaches),
                   std::to_string(s.interval_recalibrations),
                   std::to_string(s.suppressed_recalibrations),
                   std::to_string(s.dropped_probes),
                   std::to_string(s.stale_rows_reused),
                   std::to_string(s.forced_recalibrations)});
  }
  table.print(out);
  out << '\n';
  print_banner(out, "Metrics");
  metrics_.to_table().print(out);
  out << '\n'
      << "events recorded: " << events_.recorded() << " (retained "
      << events_.size() << ")\n";
}

}  // namespace netconst::online
