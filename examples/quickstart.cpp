// Quickstart: the paper's pipeline in ~60 lines.
//
//   1. stand up a virtual cluster (synthetic EC2-like cloud);
//   2. calibrate a temporal performance matrix (TP-matrix);
//   3. decompose it with RPCA into the constant component N_D and the
//      sparse error N_E;
//   4. read Norm(N_E) to judge whether network-aware optimization is
//      worthwhile;
//   5. build an FNF broadcast tree from N_D and compare it with the
//      MPICH-style binomial baseline on the live network.
//
// Build & run:  ./build/examples/quickstart
#include <cstdint>
#include <iostream>

#include "cloud/calibration.hpp"
#include "cloud/synthetic.hpp"
#include "collective/binomial.hpp"
#include "collective/collective_ops.hpp"
#include "collective/fnf.hpp"
#include "core/constant_finder.hpp"
#include "support/table.hpp"

int main() {
  using namespace netconst;

  // 1. A 16-VM virtual cluster spread over an 8-rack data center.
  cloud::SyntheticCloudConfig config;
  config.cluster_size = 16;
  config.datacenter_racks = 8;
  config.seed = 1;
  cloud::SyntheticCloud cloud(config);

  // 2. Calibrate 10 all-link snapshots (time step = 10).
  cloud::SeriesOptions series_options;
  series_options.time_step = 10;
  series_options.interval = 30.0;
  const cloud::SeriesResult series =
      cloud::calibrate_series(cloud, series_options);
  std::cout << "calibrated " << series.series.row_count()
            << " snapshots of a " << series.series.cluster_size()
            << "-VM cluster in " << series.elapsed_seconds / 60.0
            << " simulated minutes\n";

  // 3. RPCA: TP-matrix -> constant component + sparse error.
  const core::ConstantComponent component =
      core::find_constant(series.series);

  // 4. The effectiveness signal.
  std::cout << "Norm(N_E) = " << component.error_norm
            << (component.error_norm < 0.2
                    ? "  -> network-aware optimization is worthwhile\n"
                    : "  -> network too dynamic, expect little gain\n");

  // 5. Plan a broadcast with the constant component and compare.
  constexpr std::uint64_t kMessage = 8ull << 20;  // 8 MiB
  const auto fnf = collective::fnf_tree(
      component.constant.weight_matrix(kMessage), /*root=*/0);
  const auto binomial = collective::binomial_tree(16, 0);

  ConsoleTable table({"tree", "broadcast_time_s"});
  const auto now = cloud.oracle_snapshot();  // the live network
  table.add_row({"binomial (Baseline)",
                 ConsoleTable::cell(collective::collective_time(
                     binomial, now, collective::Collective::Broadcast,
                     kMessage), 4)});
  table.add_row({"FNF on RPCA constant",
                 ConsoleTable::cell(collective::collective_time(
                     fnf, now, collective::Collective::Broadcast,
                     kMessage), 4)});
  table.print(std::cout);
  return 0;
}
