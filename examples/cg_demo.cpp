// Conjugate gradient on a virtual cluster: solves a real 2-D Laplacian
// system (the residual check proves the numerics), derives the paper's
// distributed profile from the actual iteration count, and prints the
// per-strategy time breakdown on a 16-VM cloud.
//
// Build & run:  ./build/examples/cg_demo
#include <cmath>
#include <iostream>

#include "apps/cg.hpp"
#include "cloud/synthetic.hpp"
#include "core/economics.hpp"
#include "core/experiment.hpp"
#include "support/table.hpp"

int main() {
  using namespace netconst;

  // The real solve: 128x128 Laplacian (16384 unknowns).
  const apps::CsrMatrix a = apps::laplacian_2d(128, 128);
  std::vector<double> b(a.rows(), 1.0);
  const apps::CgResult solve = apps::conjugate_gradient(a, b);
  std::vector<double> ax;
  a.multiply(solve.solution, ax);
  double r2 = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    r2 += (b[i] - ax[i]) * (b[i] - ax[i]);
  }
  std::cout << "CG converged=" << solve.converged << " in "
            << solve.iterations << " iterations, ||b - Ax|| = "
            << std::sqrt(r2) << "\n\n";

  // Distributed profile on 16 instances (Figure 9(a) regime).
  const apps::DistributedProfile profile = apps::cg_profile(a, b, 16);
  std::cout << "per-iteration all-to-all contribution: "
            << profile.bytes_per_member << " bytes/member over "
            << profile.rounds << " rounds\n\n";

  cloud::SyntheticCloudConfig config;
  config.cluster_size = 16;
  config.datacenter_racks = 8;
  config.seed = 44;
  cloud::SyntheticCloud provider(config);

  core::AppCampaignOptions options;
  options.calibration.time_step = 10;
  options.calibration.interval = 10.0;
  const auto result = core::run_app_campaign(provider, profile, options);

  // The paper's future work: the pay-as-you-go bill for each strategy.
  const core::PricingModel pricing;  // ~$0.12 per instance-hour
  ConsoleTable table({"strategy", "compute_s", "communication_s",
                      "overhead_s", "total_s", "cost_usd"});
  for (const auto& [strategy, breakdown] : result) {
    const auto cost = core::application_cost(pricing, 16, breakdown);
    table.add_row({core::strategy_name(strategy),
                   ConsoleTable::cell(breakdown.compute_seconds, 2),
                   ConsoleTable::cell(breakdown.communication_seconds, 2),
                   ConsoleTable::cell(breakdown.overhead_seconds, 2),
                   ConsoleTable::cell(breakdown.total(), 2),
                   ConsoleTable::cell(cost.total(), 4)});
  }
  table.print(std::cout);
  return 0;
}
