// Trace tooling: record a calibration trace from the synthetic cloud,
// persist it to CSV, reload it, and replay an experiment against the
// recording — the paper's repeatable-experiment workflow as a small CLI.
//
//   trace_tools record <path.csv> [instances] [rows]
//   trace_tools info   <path.csv>
//   trace_tools replay <path.csv>
//
// Build & run:  ./build/examples/trace_tools record /tmp/trace.csv
#include <cstdlib>
#include <iostream>
#include <string>

#include "cloud/calibration.hpp"
#include "cloud/synthetic.hpp"
#include "cloud/trace_replay.hpp"
#include "collective/binomial.hpp"
#include "collective/collective_ops.hpp"
#include "collective/fnf.hpp"
#include "core/constant_finder.hpp"
#include "support/table.hpp"

using namespace netconst;

namespace {

int record(const std::string& path, std::size_t instances,
           std::size_t rows) {
  cloud::SyntheticCloudConfig config;
  config.cluster_size = instances;
  config.datacenter_racks = 16;
  config.seed = 9000;
  cloud::SyntheticCloud cloud(config);
  cloud::SeriesOptions options;
  options.time_step = rows;
  options.interval = 1800.0;
  const auto series = cloud::calibrate_series(cloud, options);
  netmodel::Trace trace(series.series);
  trace.save_csv(path);
  std::cout << "recorded " << trace.snapshot_count() << " snapshots of a "
            << trace.cluster_size() << "-VM cluster ("
            << series.elapsed_seconds / 60.0 << " simulated minutes) to "
            << path << "\n";
  return 0;
}

int info(const std::string& path) {
  const netmodel::Trace trace = netmodel::Trace::load_csv(path);
  std::cout << "trace: " << trace.snapshot_count() << " snapshots, "
            << trace.cluster_size() << " VMs, spanning "
            << trace.duration() / 3600.0 << " hours\n";
  const auto component = core::find_constant(trace.series());
  std::cout << "Norm(N_E) = " << component.error_norm
            << ", latency-layer norm = " << component.latency_error_norm
            << ", RPCA solve " << component.solve_seconds << " s\n";
  return 0;
}

int replay(const std::string& path) {
  const netmodel::Trace trace = netmodel::Trace::load_csv(path);
  cloud::TraceReplayProvider provider(trace);
  const std::size_t n = provider.cluster_size();
  const auto component = core::find_constant(trace.series());

  constexpr std::uint64_t kBytes = 8ull << 20;
  const auto fnf = collective::fnf_tree(
      component.constant.weight_matrix(kBytes), 0);
  const auto binomial = collective::binomial_tree(n, 0);

  ConsoleTable table({"snapshot_time_h", "binomial_s", "fnf_rpca_s"});
  for (std::size_t r = 0; r < trace.snapshot_count(); ++r) {
    const auto& snap = trace.series().snapshot(r);
    table.add_row(
        {ConsoleTable::cell(trace.series().time_at(r) / 3600.0, 2),
         ConsoleTable::cell(collective::collective_time(
             binomial, snap, collective::Collective::Broadcast, kBytes),
             4),
         ConsoleTable::cell(collective::collective_time(
             fnf, snap, collective::Collective::Broadcast, kBytes), 4)});
  }
  table.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::cerr << "usage: trace_tools record|info|replay <path.csv> "
                 "[instances] [rows]\n";
    return 2;
  }
  const std::string command = argv[1];
  const std::string path = argv[2];
  try {
    if (command == "record") {
      const std::size_t instances =
          argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3])) : 16;
      const std::size_t rows =
          argc > 4 ? static_cast<std::size_t>(std::atoi(argv[4])) : 10;
      return record(path, instances, rows);
    }
    if (command == "info") return info(path);
    if (command == "replay") return replay(path);
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
  std::cerr << "unknown command: " << command << "\n";
  return 2;
}
