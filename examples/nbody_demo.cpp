// N-body on a virtual cluster: the real physics plus the paper's
// distributed execution profile. Runs an actual gravitational
// simulation (energy/momentum printed as a sanity check), then shows
// the compute/communication/overhead breakdown that the same workload
// would see on a 16-VM cloud under each optimization strategy.
//
// Build & run:  ./build/examples/nbody_demo
#include <iostream>

#include "apps/nbody.hpp"
#include "cloud/synthetic.hpp"
#include "core/experiment.hpp"
#include "support/table.hpp"

int main() {
  using namespace netconst;

  // The real physics: 256 bodies, 200 leapfrog steps. The softening
  // length regularizes close encounters in this dense random cluster so
  // the symplectic integrator stays on its energy surface.
  Rng rng(42);
  apps::NBodySimulation physics(apps::random_bodies(256, rng),
                                /*gravitational_constant=*/1.0,
                                /*softening=*/0.1);
  const double energy_before = physics.total_energy();
  physics.run(200, 1e-4);
  const double energy_after = physics.total_energy();
  std::cout << "N-body physics check: energy " << energy_before << " -> "
            << energy_after << " (drift "
            << std::abs(energy_after - energy_before) /
                   std::abs(energy_before) * 100.0
            << "%)\n\n";

  // The distributed profile: 4096 bodies, 2560 steps, 1 MiB exchanges
  // on 16 instances (the paper's Figure 9(b) regime).
  const apps::DistributedProfile profile =
      apps::nbody_profile(4096, 2560, 1 << 20, 16);

  cloud::SyntheticCloudConfig config;
  config.cluster_size = 16;
  config.datacenter_racks = 8;
  config.seed = 43;
  cloud::SyntheticCloud provider(config);

  core::AppCampaignOptions options;
  options.calibration.time_step = 10;
  options.calibration.interval = 10.0;
  const auto result = core::run_app_campaign(provider, profile, options);

  ConsoleTable table({"strategy", "compute_s", "communication_s",
                      "overhead_s", "total_s"});
  for (const auto& [strategy, b] : result) {
    table.add_row({core::strategy_name(strategy),
                   ConsoleTable::cell(b.compute_seconds, 1),
                   ConsoleTable::cell(b.communication_seconds, 1),
                   ConsoleTable::cell(b.overhead_seconds, 1),
                   ConsoleTable::cell(b.total(), 1)});
  }
  table.print(std::cout);
  return 0;
}
